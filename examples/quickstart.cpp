// Quickstart: the smallest end-to-end use of the library.
//
//   1. Build a synthetic city + taxi fleet (stand-in for your own
//      map-matched trajectory data).
//   2. Build the ReachabilityEngine (speed profile, ST-Index, Con-Index).
//   3. Ask: "which road segments are reachable from downtown at 11:00
//      within 10 minutes on at least 20% of days?"
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "core/dataset.h"
#include "core/reachability_engine.h"

using namespace strr;  // NOLINT

int main() {
  // 1. Data. TestDatasetOptions() is a small deterministic city; swap in
  //    your own RoadNetwork + TrajectoryStore for real data.
  auto dataset = BuildDataset(TestDatasetOptions());
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("city: %zu road segments, %llu trajectories over %d days\n",
              dataset->network.NumSegments(),
              static_cast<unsigned long long>(dataset->store->NumTrajectories()),
              dataset->store->num_days());

  // 2. Engine. work_dir holds the on-disk ST-Index time lists.
  EngineOptions options;
  options.work_dir = "/tmp/strr_quickstart";
  options.delta_t_seconds = 300;  // 5-minute index slots (the paper's Δt)
  auto engine =
      ReachabilityEngine::Build(dataset->network, *dataset->store, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // 3. Query: s-query q = (S, T, L, Prob).
  SQuery query;
  query.location = dataset->center;  // S: downtown
  query.start_tod = HMS(11);         // T: 11:00
  query.duration = 10 * 60;          // L: 10 minutes
  query.prob = 0.2;                  // Prob: reachable on >= 20% of days

  auto region = (*engine)->SQueryIndexed(query);
  if (!region.ok()) {
    std::fprintf(stderr, "query: %s\n", region.status().ToString().c_str());
    return 1;
  }

  std::printf("Prob-reachable region: %zu segments, %.1f km of road\n",
              region->segments.size(), region->total_length_m / 1000.0);
  std::printf("  bounding regions: max=%zu min=%zu segments\n",
              region->stats.max_region_segments,
              region->stats.min_region_segments);
  std::printf("  work: %llu segments verified, %llu time lists read, "
              "%.2f ms\n",
              static_cast<unsigned long long>(region->stats.segments_verified),
              static_cast<unsigned long long>(region->stats.time_lists_read),
              region->stats.wall_ms);

  // Compare with the exhaustive baseline — same answer contract, more I/O.
  auto baseline = (*engine)->SQueryExhaustive(query);
  if (baseline.ok()) {
    std::printf("ES baseline: %zu segments, %llu time lists read, %.2f ms\n",
                baseline->segments.size(),
                static_cast<unsigned long long>(
                    baseline->stats.time_lists_read),
                baseline->stats.wall_ms);
  }
  return 0;
}
