// Emergency dispatching analysis (paper §1.1, application 4): given an
// ambulance depot, which parts of the road network can historically be
// reached within the response deadline — and how does that change across
// the day? A dispatcher uses the high-probability (90%) region as the
// "guaranteed" service area and the 50% region as best-effort.
//
// Run:  ./build/examples/emergency_dispatch
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/dataset.h"
#include "core/reachability_engine.h"

using namespace strr;  // NOLINT

int main() {
  auto dataset = BuildDataset(TestDatasetOptions());
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  EngineOptions options;
  options.work_dir = "/tmp/strr_dispatch_example";
  auto engine =
      ReachabilityEngine::Build(dataset->network, *dataset->store, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  const XyPoint depot = dataset->center;
  const int64_t deadline = 8 * 60;  // 8-minute response target

  std::printf("Depot service area within an 8-minute response target:\n");
  std::printf("%-8s %-28s %-28s\n", "time", "guaranteed (90% of days)",
              "best-effort (50% of days)");
  for (int hour : {7, 8, 11, 14, 18, 21}) {
    SQuery guaranteed{depot, HMS(hour), deadline, 0.9};
    SQuery best_effort{depot, HMS(hour), deadline, 0.5};
    auto rg = (*engine)->SQueryIndexed(guaranteed);
    auto rb = (*engine)->SQueryIndexed(best_effort);
    if (!rg.ok() || !rb.ok()) {
      std::fprintf(stderr, "query failed at %02d:00\n", hour);
      return 1;
    }
    std::printf("%02d:00    %4zu segs / %6.1f km      %4zu segs / %6.1f km\n",
                hour, rg->segments.size(), rg->total_length_m / 1000.0,
                rb->segments.size(), rb->total_length_m / 1000.0);
  }

  // Check a specific incident location against the 11:00 service area.
  Mbr box = dataset->network.BoundingBox();
  XyPoint incident{box.min_x() + box.Width() * 0.7,
                   box.min_y() + box.Height() * 0.6};
  auto incident_seg = (*engine)->st_index().LocateSegment(incident);
  SQuery q{depot, HMS(11), deadline, 0.5};
  auto region = (*engine)->SQueryIndexed(q);
  if (incident_seg.ok() && region.ok()) {
    bool covered = std::binary_search(region->segments.begin(),
                                      region->segments.end(), *incident_seg);
    std::printf("\nIncident at (%.0f, %.0f): %s the 11:00 best-effort "
                "service area.\n",
                incident.x, incident.y,
                covered ? "INSIDE" : "OUTSIDE");
  }
  return 0;
}
