// Business coverage analysis (paper §1.1, application 3): a chain with
// several branches wants its combined delivery coverage — the union of
// the spatio-temporal reachable regions of all branches — and to know
// which candidate site would add the most new coverage.
//
// Uses the m-query path (MQMB + shared trace-back), which answers the
// union directly instead of running one s-query per branch.
//
// Run:  ./build/examples/business_coverage
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/dataset.h"
#include "core/reachability_engine.h"

using namespace strr;  // NOLINT

int main() {
  auto dataset = BuildDataset(TestDatasetOptions());
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  EngineOptions options;
  options.work_dir = "/tmp/strr_coverage_example";
  auto engine =
      ReachabilityEngine::Build(dataset->network, *dataset->store, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Three existing branches spread over the city.
  Mbr box = dataset->network.BoundingBox();
  auto at = [&](double fx, double fy) {
    return XyPoint{box.min_x() + box.Width() * fx,
                   box.min_y() + box.Height() * fy};
  };
  std::vector<XyPoint> branches = {at(0.5, 0.5), at(0.25, 0.3), at(0.75, 0.7)};

  MQuery query;
  query.locations = branches;
  query.start_tod = HMS(12);   // lunch-hour dispatch
  query.duration = 20 * 60;    // 20-minute delivery promise
  query.prob = 0.25;           // dependable on >= 25% of days

  auto coverage = (*engine)->MQueryIndexed(query);
  if (!coverage.ok()) {
    std::fprintf(stderr, "m-query: %s\n",
                 coverage.status().ToString().c_str());
    return 1;
  }
  double total_km = dataset->network.TotalLengthMeters() / 1000.0;
  std::printf("3-branch coverage at 12:00 (20 min, Prob=25%%): "
              "%zu segments, %.1f of %.1f km (%.0f%% of the city)\n",
              coverage->segments.size(), coverage->total_length_m / 1000.0,
              total_km, 100.0 * coverage->total_length_m / 1000.0 / total_km);
  std::printf("  processed in %.2f ms with %llu time-list reads\n",
              coverage->stats.wall_ms,
              static_cast<unsigned long long>(coverage->stats.time_lists_read));

  // Site selection: which candidate adds the most uncovered road length?
  std::vector<XyPoint> candidates = {at(0.15, 0.75), at(0.85, 0.25),
                                     at(0.5, 0.15)};
  std::printf("\nCandidate 4th branches (marginal coverage gain):\n");
  double best_gain = -1.0;
  int best_idx = -1;
  for (size_t i = 0; i < candidates.size(); ++i) {
    MQuery with_candidate = query;
    with_candidate.locations.push_back(candidates[i]);
    auto expanded = (*engine)->MQueryIndexed(with_candidate);
    if (!expanded.ok()) continue;
    double gain_km =
        (expanded->total_length_m - coverage->total_length_m) / 1000.0;
    std::printf("  site %zu at (%.0f, %.0f): +%.1f km\n", i + 1,
                candidates[i].x, candidates[i].y, gain_km);
    if (gain_km > best_gain) {
      best_gain = gain_km;
      best_idx = static_cast<int>(i + 1);
    }
  }
  if (best_idx >= 0) {
    std::printf("-> open site %d (adds %.1f km of dependable coverage)\n",
                best_idx, best_gain);
  }
  return 0;
}
