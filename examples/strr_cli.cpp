// strr_cli — command-line front end for the reachability engine.
//
// Subcommands:
//   generate --out DIR [--taxis N] [--days N] [--seed N]
//       Build a synthetic dataset and persist it (network, trajectories).
//   query --data DIR --time HH:MM --minutes L --prob P [--x M --y M]
//         [--exhaustive] [--geojson FILE]
//       Load a dataset, build the indexes, answer one s-query.
//   stats --data DIR
//       Print dataset statistics (Table 4.1 style).
//
// Examples:
//   ./strr_cli generate --out /tmp/city --taxis 120 --days 12
//   ./strr_cli query --data /tmp/city --time 11:00 --minutes 10 \
//       --prob 0.2 --geojson region.geojson
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/dataset.h"
#include "core/persist.h"
#include "core/reachability_engine.h"
#include "geo/geojson.h"

using namespace strr;  // NOLINT

namespace {

/// Tiny --key value parser; flags without values get "true".
std::map<std::string, std::string> ParseArgs(int argc, char** argv,
                                             int first) {
  std::map<std::string, std::string> args;
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    std::string key = argv[i] + 2;
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args[key] = argv[++i];
    } else {
      args[key] = "true";
    }
  }
  return args;
}

int64_t ParseTimeOfDay(const std::string& hhmm) {
  int h = 0, m = 0;
  if (std::sscanf(hhmm.c_str(), "%d:%d", &h, &m) < 1) return -1;
  return HMS(h, m);
}

int CmdGenerate(const std::map<std::string, std::string>& args) {
  auto it = args.find("out");
  if (it == args.end()) {
    std::fprintf(stderr, "generate: --out DIR is required\n");
    return 2;
  }
  DatasetOptions opt = TestDatasetOptions();
  if (args.count("taxis")) opt.fleet.num_taxis = std::stoul(args.at("taxis"));
  if (args.count("days")) opt.fleet.num_days = std::stoi(args.at("days"));
  if (args.count("seed")) {
    opt.city.seed = std::stoull(args.at("seed"));
    opt.fleet.seed = opt.city.seed * 31 + 7;
  }
  auto dataset = BuildDataset(opt);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  if (Status s = SaveDataset(*dataset, it->second); !s.ok()) {
    std::fprintf(stderr, "generate: %s\n", s.ToString().c_str());
    return 1;
  }
  DatasetStats stats = dataset->store->ComputeStats();
  std::printf("wrote %s: %zu segments, %u taxis x %d days, %llu samples\n",
              it->second.c_str(), dataset->network.NumSegments(),
              stats.num_taxis, stats.num_days,
              static_cast<unsigned long long>(stats.num_samples));
  return 0;
}

int CmdStats(const std::map<std::string, std::string>& args) {
  auto it = args.find("data");
  if (it == args.end()) {
    std::fprintf(stderr, "stats: --data DIR is required\n");
    return 2;
  }
  auto dataset = LoadDataset(it->second);
  if (!dataset.ok()) {
    std::fprintf(stderr, "stats: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  DatasetStats stats = dataset->store->ComputeStats();
  Mbr box = dataset->network.BoundingBox();
  std::printf("segments:      %zu\n", dataset->network.NumSegments());
  std::printf("road length:   %.1f km\n",
              dataset->network.TotalLengthMeters() / 1000.0);
  std::printf("extent:        %.1f x %.1f km\n", box.Width() / 1000.0,
              box.Height() / 1000.0);
  std::printf("days:          %d\n", stats.num_days);
  std::printf("taxis:         %u\n", stats.num_taxis);
  std::printf("trajectories:  %llu\n",
              static_cast<unsigned long long>(stats.num_trajectories));
  std::printf("samples:       %llu\n",
              static_cast<unsigned long long>(stats.num_samples));
  std::printf("mean speed:    %.1f m/s\n", stats.mean_speed_mps);
  return 0;
}

int CmdQuery(const std::map<std::string, std::string>& args) {
  if (!args.count("data")) {
    std::fprintf(stderr, "query: --data DIR is required\n");
    return 2;
  }
  auto dataset = LoadDataset(args.at("data"));
  if (!dataset.ok()) {
    std::fprintf(stderr, "query: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  SQuery q;
  q.location = dataset->center;
  if (args.count("x")) q.location.x = std::stod(args.at("x"));
  if (args.count("y")) q.location.y = std::stod(args.at("y"));
  if (args.count("time")) {
    q.start_tod = ParseTimeOfDay(args.at("time"));
    if (q.start_tod < 0) {
      std::fprintf(stderr, "query: bad --time (want HH:MM)\n");
      return 2;
    }
  } else {
    q.start_tod = HMS(11);
  }
  q.duration = args.count("minutes")
                   ? std::stoll(args.at("minutes")) * 60
                   : 600;
  q.prob = args.count("prob") ? std::stod(args.at("prob")) : 0.2;

  EngineOptions eopt;
  eopt.work_dir = args.at("data") + "/index";
  auto engine =
      ReachabilityEngine::Build(dataset->network, *dataset->store, eopt);
  if (!engine.ok()) {
    std::fprintf(stderr, "query: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  auto region = args.count("exhaustive") ? (*engine)->SQueryExhaustive(q)
                                         : (*engine)->SQueryIndexed(q);
  if (!region.ok()) {
    std::fprintf(stderr, "query: %s\n", region.status().ToString().c_str());
    return 1;
  }
  std::printf("q = (S=(%.0f, %.0f), T=%s, L=%s, Prob=%.0f%%)  [%s]\n",
              q.location.x, q.location.y,
              FormatTimeOfDay(q.start_tod).c_str(),
              FormatDuration(q.duration).c_str(), q.prob * 100.0,
              args.count("exhaustive") ? "ES" : "SQMB+TBS");
  std::printf("region: %zu segments, %.1f km\n", region->segments.size(),
              region->total_length_m / 1000.0);
  std::printf("work:   %.2f ms, %llu verified, %llu time lists, "
              "%llu disk page reads\n",
              region->stats.wall_ms,
              static_cast<unsigned long long>(region->stats.segments_verified),
              static_cast<unsigned long long>(region->stats.time_lists_read),
              static_cast<unsigned long long>(
                  region->stats.io.disk_page_reads));

  if (args.count("geojson")) {
    GeoJsonWriter geo;
    for (SegmentId s : region->segments) {
      std::vector<GeoPoint> coords;
      for (const XyPoint& p : dataset->network.segment(s).shape.points()) {
        coords.push_back(dataset->projection.ToGeo(p));
      }
      geo.AddLineString(coords, {{"segment", std::to_string(s)}});
    }
    geo.AddPoint(dataset->projection.ToGeo(q.location),
                 {{"role", GeoJsonWriter::Quoted("query-location")}});
    if (Status s = geo.WriteFile(args.at("geojson")); !s.ok()) {
      std::fprintf(stderr, "query: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.at("geojson").c_str());
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: strr_cli <generate|stats|query> [--key value ...]\n"
               "  generate --out DIR [--taxis N] [--days N] [--seed N]\n"
               "  stats    --data DIR\n"
               "  query    --data DIR [--time HH:MM] [--minutes L]\n"
               "           [--prob P] [--x M --y M] [--exhaustive]\n"
               "           [--geojson FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string cmd = argv[1];
  auto args = ParseArgs(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "query") return CmdQuery(args);
  Usage();
  return 2;
}
