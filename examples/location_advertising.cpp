// Location-based advertising (paper Fig. 1.2): a shopping mall wants to
// distribute coupons across the area from which customers can actually
// reach it quickly. Because traffic varies, the catchment at 13:00 is much
// larger than at 18:00 (evening rush) — this example computes both and
// writes GeoJSON overlays you can drop onto geojson.io.
//
// Run:  ./build/examples/location_advertising
#include <cstdio>
#include <filesystem>

#include "core/dataset.h"
#include "core/reachability_engine.h"
#include "geo/geojson.h"

using namespace strr;  // NOLINT

namespace {

Status WriteRegion(const Dataset& dataset, const RegionResult& region,
                   const XyPoint& mall, const std::string& path) {
  GeoJsonWriter geo;
  for (SegmentId s : region.segments) {
    std::vector<GeoPoint> coords;
    for (const XyPoint& p : dataset.network.segment(s).shape.points()) {
      coords.push_back(dataset.projection.ToGeo(p));
    }
    geo.AddLineString(coords, {{"segment", std::to_string(s)}});
  }
  geo.AddPoint(dataset.projection.ToGeo(mall),
               {{"role", GeoJsonWriter::Quoted("mall")}});
  return geo.WriteFile(path);
}

}  // namespace

int main() {
  auto dataset = BuildDataset(TestDatasetOptions());
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  EngineOptions options;
  options.work_dir = "/tmp/strr_ads_example";
  auto engine =
      ReachabilityEngine::Build(dataset->network, *dataset->store, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  const XyPoint mall = dataset->center;  // the mall sits downtown
  std::filesystem::create_directories("example_maps");

  std::printf("Coupon catchment for the downtown mall "
              "(15 min travel, reachable on >= 30%% of days):\n");
  double len_13 = 0, len_18 = 0;
  for (int hour : {13, 18}) {
    SQuery q{mall, HMS(hour), 15 * 60, 0.3};
    auto region = (*engine)->SQueryIndexed(q);
    if (!region.ok()) {
      std::fprintf(stderr, "query: %s\n", region.status().ToString().c_str());
      return 1;
    }
    std::string file = "example_maps/ads_catchment_" + std::to_string(hour) +
                       "h.geojson";
    if (auto s = WriteRegion(*dataset, *region, mall, file); !s.ok()) {
      std::fprintf(stderr, "geojson: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("  %02d:00  %4zu segments  %6.1f km of road  -> %s\n", hour,
                region->segments.size(), region->total_length_m / 1000.0,
                file.c_str());
    if (hour == 13) len_13 = region->total_length_m;
    if (hour == 18) len_18 = region->total_length_m;
  }

  if (len_18 < len_13) {
    std::printf("\nEvening rush shrinks the catchment by %.0f%% — "
                "schedule the coupon push for early afternoon.\n",
                100.0 * (1.0 - len_18 / len_13));
  } else {
    std::printf("\nNo rush-hour shrink detected in this synthetic run.\n");
  }
  return 0;
}
