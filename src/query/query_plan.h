// QueryPlan / QueryPlanner: the "plan" half of the plan -> execute pipeline.
//
// A QueryPlan is a fully-resolved, validated description of one
// reachability query: the located start segment set per query location, the
// time window, the probability threshold, and the strategy to run it with.
// Planning does the cheap, fallible front work (argument validation,
// R-tree location lookup) once, so the executor can fan plans across
// worker threads without re-touching shared mutable state and so callers
// can batch, inspect, or reorder queries before paying execution cost.
//
// The planner is stateless apart from const references to the network and
// ST-Index; it is safe to plan from any thread.
#ifndef STRR_QUERY_QUERY_PLAN_H_
#define STRR_QUERY_QUERY_PLAN_H_

#include <vector>

#include "index/st_index.h"
#include "query/query.h"
#include "roadnet/road_network.h"
#include "util/result.h"

namespace strr {

/// How a plan's region is computed.
enum class QueryStrategy {
  /// SQMB (one location) or MQMB (several) bounding regions + TBS — the
  /// paper's indexed path.
  kIndexed,
  /// Exhaustive network expansion verifying every segment (ES baseline;
  /// single-location only).
  kExhaustive,
  /// m-query as one independent indexed s-query per location, regions
  /// unioned (the paper's m-query baseline). The executor can run the
  /// per-location legs in parallel.
  kRepeatedS,
};

const char* QueryStrategyName(QueryStrategy strategy);

/// A validated, resolved query ready for execution. Plans are plain values:
/// copyable, and independent of the planner that made them.
struct QueryPlan {
  QueryStrategy strategy = QueryStrategy::kIndexed;
  /// Original query locations (kept for strategies that re-locate, e.g. the
  /// ES baseline takes the raw point).
  std::vector<XyPoint> locations;
  /// location_starts[i]: the directed segment set location i denotes — the
  /// nearest segment plus its reverse twin on a two-way street. Parallel to
  /// `locations`, each entry non-empty.
  std::vector<std::vector<SegmentId>> location_starts;
  int64_t start_tod = 0;   ///< T: start time of day, seconds
  int64_t duration = 600;  ///< L: query duration, seconds
  double prob = 0.2;       ///< Prob in (0, 1]
  /// Tenant the plan is served on behalf of. Never changes the computed
  /// region — it routes the plan through the tenant's admission quota /
  /// WFQ weight and scopes its cache entry (unless the executor's
  /// shared-cache knob is on). kDefaultTenant reproduces single-tenant
  /// behavior exactly.
  TenantId tenant = kDefaultTenant;

  /// All start segments flattened in location order (duplicates kept: MQMB
  /// expects the caller's ordering and handles overlap itself).
  std::vector<SegmentId> AllStartSegments() const;

  bool IsMultiLocation() const { return locations.size() > 1; }
};

/// Turns raw queries into plans. Thread-safe (const lookups only).
class QueryPlanner {
 public:
  /// The network and index must outlive the planner.
  QueryPlanner(const RoadNetwork& network, const StIndex& st_index)
      : network_(&network), st_index_(&st_index) {}

  /// Plans a single-location query. InvalidArgument on a bad Prob,
  /// NotFound when the location cannot be matched to a segment. `tenant`
  /// stamps the plan for the multi-tenant front door (quota, WFQ weight,
  /// tenant-scoped caching); the default keeps single-tenant semantics.
  StatusOr<QueryPlan> PlanSQuery(
      const SQuery& query, QueryStrategy strategy = QueryStrategy::kIndexed,
      TenantId tenant = kDefaultTenant) const;

  /// Plans a multi-location query (strategy kIndexed -> MQMB, kRepeatedS ->
  /// per-location legs). kExhaustive is rejected: ES is single-location.
  StatusOr<QueryPlan> PlanMQuery(
      const MQuery& query, QueryStrategy strategy = QueryStrategy::kIndexed,
      TenantId tenant = kDefaultTenant) const;

 private:
  Status ResolveLocation(const XyPoint& location, QueryPlan* plan) const;

  const RoadNetwork* network_;
  const StIndex* st_index_;
};

}  // namespace strr

#endif  // STRR_QUERY_QUERY_PLAN_H_
