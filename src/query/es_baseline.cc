#include "query/es_baseline.h"

#include <algorithm>

#include "query/bounding_region.h"
#include "query/probability.h"
#include "roadnet/expansion.h"
#include "util/stopwatch.h"

namespace strr {

StatusOr<RegionResult> ExhaustiveSearch(const StIndex& st_index,
                                        const SpeedProfile& profile,
                                        const SQuery& query, int64_t delta_t) {
  STRR_ASSIGN_OR_RETURN(SegmentId r0, st_index.LocateSegment(query.location));
  return ExhaustiveSearch(st_index, profile, query, delta_t,
                          LocationSegmentSet(st_index.network(), r0));
}

StatusOr<RegionResult> ExhaustiveSearch(const StIndex& st_index,
                                        const SpeedProfile& profile,
                                        const SQuery& query, int64_t delta_t,
                                        const std::vector<SegmentId>& starts) {
  if (query.prob <= 0.0 || query.prob > 1.0) {
    return Status::InvalidArgument("ES: Prob must be in (0, 1]");
  }
  if (starts.empty()) {
    return Status::InvalidArgument("ES: no start segments");
  }
  Stopwatch watch;
  const RoadNetwork& network = st_index.network();
  StorageStats io_before = st_index.storage_stats();

  // Expand the road network from the start within the duration budget.
  // The baseline has no mined speed statistics (those are exactly what the
  // Con-Index contributes), so the only sound bound it can use is the
  // road-class design speed: everything within free-flow reach must be
  // examined against the trajectory store.
  std::vector<ExpansionHit> cone =
      ExpandFromMany(network, starts, static_cast<double>(query.duration),
                     FreeFlowSpeeds(network), nullptr);
  (void)profile;

  STRR_ASSIGN_OR_RETURN(
      ReachabilityProbability oracle,
      ReachabilityProbability::Create(st_index, starts, query.start_tod,
                                      delta_t, query.duration));

  RegionResult result;
  for (const ExpansionHit& hit : cone) {
    STRR_ASSIGN_OR_RETURN(double p, oracle.Probability(hit.segment));
    if (p >= query.prob) result.segments.push_back(hit.segment);
  }
  std::sort(result.segments.begin(), result.segments.end());
  result.total_length_m = network.LengthOfSegments(result.segments);

  result.stats.wall_ms = watch.ElapsedMillis();
  result.stats.segments_verified = oracle.verifications();
  result.stats.time_lists_read = oracle.time_lists_read();
  result.stats.io = st_index.storage_stats() - io_before;
  result.stats.max_region_segments = cone.size();
  return result;
}

}  // namespace strr
