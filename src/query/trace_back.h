// Trace Back Search (TBS) — Algorithm 2 of the paper.
//
// Given the maximum and minimum bounding regions of a query, TBS finds the
// exact Prob-reachable region by verifying segments *from the outside in*:
// it seeds a work queue with the outer boundary of the maximum region,
// checks each segment's reachable probability against the ST-Index time
// lists, and expands inward through road-network neighbours only where the
// probability falls short. Segments enclosed by the qualifying ring —
// including the whole minimum bounding region — are accepted without
// verification; that interior skip is where the 50–90% I/O saving over
// exhaustive search comes from (DESIGN.md documents the semantics).
//
// A visited set guarantees each segment is examined at most once even when
// multiple inward paths reach it (the paper's r* example in Fig. 3.5).
#ifndef STRR_QUERY_TRACE_BACK_H_
#define STRR_QUERY_TRACE_BACK_H_

#include <span>
#include <vector>

#include "query/bounding_region.h"
#include "query/probability.h"
#include "query/query.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace strr {

/// TBS output.
struct TbsOutcome {
  /// The Prob-reachable region: max_region minus every verified-failing
  /// segment (sorted).
  std::vector<SegmentId> region;
  uint64_t segments_verified = 0;
  uint64_t segments_failed = 0;
};

/// Execution knobs for TBS. Results are bit-identical for every setting:
/// the FIFO walk is ring-by-ring (all of ring k verifies before ring k+1
/// exists), per-segment probabilities are pure, and the inward expansion
/// commits in ring order — exactly the sequential queue order.
struct TraceBackOptions {
  ThreadPool* pool = nullptr;  ///< null = sequential
  int workers = 1;
  /// Rings smaller than this verify inline (fan-out overhead dominates).
  size_t min_parallel_ring = 16;
  /// Walk neighbours through the network's flat CSR view (identical
  /// neighbour order; layout change only).
  bool flat_adjacency = false;

  // --- Sharded scatter-gather (src/shard/) ---------------------------------
  /// Dense per-segment shard owner table (ShardMap::owners). When set with
  /// shard_pools, each ring's verifications are bucketed by segment owner
  /// and scattered to the owning shard's slice pool; the commit stays in
  /// ring order, so results are bit-identical.
  std::span<const uint32_t> shard_owner;
  /// One slice pool per shard, indexed by shard id.
  std::span<ThreadPool* const> shard_pools;
  /// The shard running this query; its bucket verifies inline.
  uint32_t home_shard = 0;

  bool parallel() const { return pool != nullptr && workers > 1; }
  bool sharded() const {
    return shard_pools.size() > 1 && !shard_owner.empty();
  }
};

/// Runs trace back search. `prob_oracle` must have been created for the
/// same query (same starts / T / L).
StatusOr<TbsOutcome> TraceBackSearch(const RoadNetwork& network,
                                     const BoundingRegions& regions,
                                     double prob_threshold,
                                     ReachabilityProbability& prob_oracle,
                                     const TraceBackOptions& options = {});

}  // namespace strr

#endif  // STRR_QUERY_TRACE_BACK_H_
