#include "query/query_plan.h"

#include "query/bounding_region.h"

namespace strr {

const char* QueryStrategyName(QueryStrategy strategy) {
  switch (strategy) {
    case QueryStrategy::kIndexed:
      return "Indexed";
    case QueryStrategy::kExhaustive:
      return "Exhaustive";
    case QueryStrategy::kRepeatedS:
      return "RepeatedS";
  }
  return "Unknown";
}

std::vector<SegmentId> QueryPlan::AllStartSegments() const {
  std::vector<SegmentId> all;
  for (const auto& starts : location_starts) {
    all.insert(all.end(), starts.begin(), starts.end());
  }
  return all;
}

Status QueryPlanner::ResolveLocation(const XyPoint& location,
                                     QueryPlan* plan) const {
  STRR_ASSIGN_OR_RETURN(SegmentId r0, st_index_->LocateSegment(location));
  plan->locations.push_back(location);
  plan->location_starts.push_back(LocationSegmentSet(*network_, r0));
  return Status::OK();
}

StatusOr<QueryPlan> QueryPlanner::PlanSQuery(const SQuery& query,
                                             QueryStrategy strategy,
                                             TenantId tenant) const {
  if (query.prob <= 0.0 || query.prob > 1.0) {
    return Status::InvalidArgument("SQuery: Prob must be in (0, 1]");
  }
  if (query.duration <= 0) {
    return Status::InvalidArgument("SQuery: duration must be positive");
  }
  if (strategy == QueryStrategy::kRepeatedS) {
    // A one-location RepeatedS degenerates to Indexed; normalize so the
    // executor has one code path per strategy.
    strategy = QueryStrategy::kIndexed;
  }
  QueryPlan plan;
  plan.strategy = strategy;
  plan.start_tod = query.start_tod;
  plan.duration = query.duration;
  plan.prob = query.prob;
  plan.tenant = tenant;
  STRR_RETURN_IF_ERROR(ResolveLocation(query.location, &plan));
  return plan;
}

StatusOr<QueryPlan> QueryPlanner::PlanMQuery(const MQuery& query,
                                             QueryStrategy strategy,
                                             TenantId tenant) const {
  if (query.locations.empty()) {
    return Status::InvalidArgument("MQuery: no locations");
  }
  if (query.prob <= 0.0 || query.prob > 1.0) {
    return Status::InvalidArgument("MQuery: Prob must be in (0, 1]");
  }
  if (query.duration <= 0) {
    return Status::InvalidArgument("MQuery: duration must be positive");
  }
  if (strategy == QueryStrategy::kExhaustive) {
    return Status::InvalidArgument(
        "MQuery: the exhaustive baseline is single-location; plan each "
        "location as an SQuery instead");
  }
  QueryPlan plan;
  plan.strategy = strategy;
  plan.start_tod = query.start_tod;
  plan.duration = query.duration;
  plan.prob = query.prob;
  plan.tenant = tenant;
  for (const XyPoint& p : query.locations) {
    STRR_RETURN_IF_ERROR(ResolveLocation(p, &plan));
  }
  return plan;
}

}  // namespace strr
