// Bounding-region search: SQMB (Algorithm 1) and MQMB (Algorithm 3).
//
// SQMB walks the Con-Index Far (resp. Near) lists for k = ceil(L/Δt) hops
// to produce the maximum (resp. minimum) bounding region of a query — an
// upper (lower) bound of the Prob-reachable region obtained without
// touching any trajectory data on disk.
//
// MQMB does the same for several start locations at once, eliminating
// overlap with the paper's nearest-start rule: a frontier segment is kept
// only when the start whose Far cone produced it is also its nearest start
// (by travel time), so overlapped interiors are expanded exactly once.
//
// Both searches run on the unified frontier core (src/search/): pooled
// ExpansionContexts (no per-query O(network) allocations) and, when a
// BoundingSearchOptions carries a parallel FrontierRuntime, a
// level-synchronous parallel interior whose results are bit-identical to
// sequential execution (see search/frontier_engine.h for the argument).
#ifndef STRR_QUERY_BOUNDING_REGION_H_
#define STRR_QUERY_BOUNDING_REGION_H_

#include <vector>

#include "index/con_index.h"
#include "index/st_index.h"
#include "roadnet/road_network.h"
#include "search/frontier_engine.h"
#include "util/result.h"

namespace strr {

/// Output of a bounding-region search.
struct BoundingRegions {
  std::vector<SegmentId> start_segments;  ///< located start road segment(s)
  std::vector<SegmentId> max_region;      ///< sorted maximum bounding region
  std::vector<SegmentId> min_region;      ///< sorted minimum bounding region
  /// Outer boundary of max_region: members with at least one road-network
  /// neighbour outside the region. Seeds the trace back search.
  std::vector<SegmentId> boundary;
};

/// How a bounding search executes: sequential by default; a parallel
/// runtime fans the expansion interior without changing results. `metrics`
/// (optional) accumulates search work counters for QueryStats.
struct BoundingSearchOptions {
  FrontierRuntime runtime;
  SearchMetrics* metrics = nullptr;
};

/// SQMB: single-location maximum/minimum bounding region search.
/// `start` must be a valid segment (callers locate it via StIndex).
StatusOr<BoundingRegions> SqmbSearch(const RoadNetwork& network,
                                     const ConIndex& con_index,
                                     SegmentId start, int64_t start_tod,
                                     int64_t duration_seconds);

/// SQMB over a start-segment *set*: one query location on a two-way street
/// corresponds to both directed twins (a trajectory in either direction
/// passes the location). All segments expand as one frontier.
StatusOr<BoundingRegions> SqmbSearchSet(const RoadNetwork& network,
                                        const ConIndex& con_index,
                                        const std::vector<SegmentId>& starts,
                                        int64_t start_tod,
                                        int64_t duration_seconds,
                                        const BoundingSearchOptions& options);

StatusOr<BoundingRegions> SqmbSearchSet(const RoadNetwork& network,
                                        const ConIndex& con_index,
                                        const std::vector<SegmentId>& starts,
                                        int64_t start_tod,
                                        int64_t duration_seconds);

/// The segment set a query location on `seg` denotes: {seg} plus its
/// reverse twin when the street is two-way.
std::vector<SegmentId> LocationSegmentSet(const RoadNetwork& network,
                                          SegmentId seg);

/// MQMB: multi-location variant with overlap elimination. `starts` must be
/// non-empty, deduplicated valid segments.
StatusOr<BoundingRegions> MqmbSearch(const RoadNetwork& network,
                                     const ConIndex& con_index,
                                     const SpeedProfile& profile,
                                     const std::vector<SegmentId>& starts,
                                     int64_t start_tod,
                                     int64_t duration_seconds,
                                     const BoundingSearchOptions& options);

StatusOr<BoundingRegions> MqmbSearch(const RoadNetwork& network,
                                     const ConIndex& con_index,
                                     const SpeedProfile& profile,
                                     const std::vector<SegmentId>& starts,
                                     int64_t start_tod,
                                     int64_t duration_seconds);

/// Boundary extraction (exposed for tests): members of `region` (sorted)
/// having a neighbour outside it.
std::vector<SegmentId> RegionBoundary(const RoadNetwork& network,
                                      const std::vector<SegmentId>& region);

}  // namespace strr

#endif  // STRR_QUERY_BOUNDING_REGION_H_
