// Query and result types for spatio-temporal reachability queries.
#ifndef STRR_QUERY_QUERY_H_
#define STRR_QUERY_QUERY_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "roadnet/segment.h"
#include "storage/page.h"
#include "util/time_util.h"

namespace strr {

/// Identity of the client (tenant) a query is served on behalf of. The
/// multi-tenant front door (core/tenant_registry.h, core/wfq_admission.h)
/// keys quotas, weighted fair queueing and per-tenant counters on it; a
/// single-tenant deployment leaves every query on kDefaultTenant and sees
/// no behavioral difference.
using TenantId = uint32_t;
inline constexpr TenantId kDefaultTenant = 0;

/// Single-location ST reachability query q = (S, T, L, Prob).
struct SQuery {
  XyPoint location;        ///< S: query location (projected)
  int64_t start_tod = 0;   ///< T: start time of day, seconds
  int64_t duration = 600;  ///< L: query duration, seconds
  double prob = 0.2;       ///< Prob in (0, 1]
};

/// Multi-location ST reachability query q = ({s1..sn}, T, L, Prob).
struct MQuery {
  std::vector<XyPoint> locations;
  int64_t start_tod = 0;
  int64_t duration = 600;
  double prob = 0.2;
};

/// Work/IO accounting for one query execution.
struct QueryStats {
  double wall_ms = 0.0;            ///< end-to-end processing time
  /// Summed wall time of the sub-queries a composite strategy ran (the
  /// repeated-s-query baseline runs one per location). Equals wall_ms for
  /// single-leg queries; under parallel legs it exceeds wall_ms — the gap
  /// is the intra-query speedup.
  double sum_wall_ms = 0.0;
  uint64_t time_lists_read = 0;    ///< ST-Index time-list fetches
  uint64_t segments_verified = 0;  ///< probability computations performed
  // --- Search-interior work (src/search/ FrontierEngine; composite
  // strategies sum their legs) ------------------------------------------------
  /// Frontier members expanded across this query's bounding-region
  /// searches (cone hops + nearest-start maps).
  uint64_t segments_expanded = 0;
  /// d-ary heap pops in the timed (Dijkstra) expansions.
  uint64_t heap_pops = 0;
  /// Level-synchronous gather/commit rounds that actually fanned across
  /// the interior pool (0 when the interior ran sequentially).
  uint64_t parallel_rounds = 0;
  /// True when the result was served from the executor's ResultCache. The
  /// remaining stats then describe the execution that originally produced
  /// the entry, not the (near-free) cache lookup.
  bool cache_hit = false;
  /// Version of the live index snapshot this result was computed against
  /// (see live/live_profile_manager.h). 0 when live ingestion is off —
  /// results then come from the engine-built (static) indexes. Every read
  /// of one query sees exactly this version: snapshots are immutable and
  /// pinned for the query's duration.
  uint64_t snapshot_version = 0;
  /// Storage-layer traffic attributed to this query. Executor-run queries
  /// count through a per-thread ScopedIoCounters in the BufferPool read
  /// path, so the numbers are exact even under concurrent execution
  /// (sequentially they equal the engine-global counter delta). Queries
  /// shed by admission control produce no result and hence no stats; shed
  /// counts live in QueryExecutor::front_door_stats().
  StorageStats io;
  size_t max_region_segments = 0;  ///< |maximum bounding region|
  size_t min_region_segments = 0;  ///< |minimum bounding region|
  size_t boundary_segments = 0;    ///< |outer boundary| seeded into TBS
};

/// A Prob-reachable region: the answer to a query.
struct RegionResult {
  std::vector<SegmentId> segments;  ///< sorted segment ids in the region
  double total_length_m = 0.0;      ///< summed road length (Fig 4.x metric)
  QueryStats stats;
};

}  // namespace strr

#endif  // STRR_QUERY_QUERY_H_
