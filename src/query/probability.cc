#include "query/probability.h"

#include <algorithm>

namespace strr {

bool SortedIntersects(const std::vector<TrajectoryId>& a,
                      const std::vector<TrajectoryId>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

StatusOr<ReachabilityProbability> ReachabilityProbability::Create(
    const StIndex& st_index, const std::vector<SegmentId>& starts,
    int64_t start_tod, int64_t window_seconds, int64_t duration_seconds) {
  if (starts.empty()) {
    return Status::InvalidArgument("probability: no start segments");
  }
  if (window_seconds <= 0 || duration_seconds <= 0) {
    return Status::InvalidArgument("probability: window/duration must be > 0");
  }
  ReachabilityProbability p(st_index, start_tod, duration_seconds);
  p.candidate_slots_ =
      st_index.SlotsCovering(start_tod, start_tod + duration_seconds);

  // Union the start segments' trajectory ids per day over the start window.
  p.start_ids_.assign(static_cast<size_t>(st_index.num_days()), {});
  std::vector<SlotId> start_slots =
      st_index.SlotsCovering(start_tod, start_tod + window_seconds);
  for (SegmentId s : starts) {
    for (SlotId slot : start_slots) {
      STRR_ASSIGN_OR_RETURN(TimeList lists, st_index.ReadTimeList(s, slot));
      ++p.time_lists_read_;
      for (size_t d = 0; d < lists.size() && d < p.start_ids_.size(); ++d) {
        if (lists[d].empty()) continue;
        auto& day = p.start_ids_[d];
        day.insert(day.end(), lists[d].begin(), lists[d].end());
      }
    }
  }
  for (auto& day : p.start_ids_) {
    std::sort(day.begin(), day.end());
    day.erase(std::unique(day.begin(), day.end()), day.end());
    if (!day.empty()) ++p.start_active_days_;
  }
  return p;
}

StatusOr<double> ReachabilityProbability::Probability(SegmentId r) {
  verifications_.fetch_add(1, std::memory_order_relaxed);
  const int num_days = st_index_->num_days();
  if (num_days == 0 || start_active_days_ == 0) return 0.0;

  // Accumulate r's per-day ids over the duration slots, testing days
  // against the start lists. A day counts once some common id appears.
  std::vector<uint8_t> day_hit(static_cast<size_t>(num_days), 0);
  int hits = 0;
  for (SlotId slot : candidate_slots_) {
    if (!st_index_->HasTraffic(r, slot)) continue;  // directory check, no IO
    STRR_ASSIGN_OR_RETURN(TimeList lists, st_index_->ReadTimeList(r, slot));
    time_lists_read_.fetch_add(1, std::memory_order_relaxed);
    for (int d = 0; d < num_days; ++d) {
      if (day_hit[d] || lists[d].empty() || start_ids_[d].empty()) continue;
      if (SortedIntersects(start_ids_[d], lists[d])) {
        day_hit[d] = 1;
        ++hits;
      }
    }
    if (hits == num_days) break;  // cannot improve further
  }
  return static_cast<double>(hits) / static_cast<double>(num_days);
}

}  // namespace strr
