#include "query/trace_back.h"

#include <algorithm>
#include <future>
#include <span>

#include "roadnet/csr_graph.h"

namespace strr {

StatusOr<TbsOutcome> TraceBackSearch(const RoadNetwork& network,
                                     const BoundingRegions& regions,
                                     double prob_threshold,
                                     ReachabilityProbability& prob_oracle,
                                     const TraceBackOptions& options) {
  if (prob_threshold <= 0.0 || prob_threshold > 1.0) {
    return Status::InvalidArgument("TBS: Prob must be in (0, 1]");
  }
  const size_t n = network.NumSegments();
  std::vector<uint8_t> in_max(n, 0), in_min(n, 0), visited(n, 0), failed(n, 0);
  for (SegmentId s : regions.max_region) in_max[s] = 1;
  for (SegmentId s : regions.min_region) in_min[s] = 1;

  // Seed ring 0 with the outer boundary; when the max region has no
  // outside neighbours at all (covers a whole connected component), verify
  // the entire max-minus-min shell instead.
  std::vector<SegmentId> ring;
  if (!regions.boundary.empty()) {
    for (SegmentId s : regions.boundary) {
      if (!visited[s]) {
        visited[s] = 1;
        ring.push_back(s);
      }
    }
  } else {
    for (SegmentId s : regions.max_region) {
      if (!in_min[s] && !visited[s]) {
        visited[s] = 1;
        ring.push_back(s);
      }
    }
  }
  if (ring.empty()) {
    // Fully degenerate: the minimum bounding region swallowed the whole
    // maximum region (tiny networks / generous speed floors). Trusting it
    // blindly would fabricate reachability, so verify everything instead.
    for (SegmentId s : regions.max_region) {
      if (!visited[s]) {
        visited[s] = 1;
        ring.push_back(s);
      }
    }
  }

  const CsrAdjacency* csr =
      options.flat_adjacency ? network.csr() : nullptr;
  auto neighbors_of = [&](SegmentId r) -> std::span<const SegmentId> {
    if (csr != nullptr) return csr->Neighbors(r);
    const std::vector<SegmentId>& nb = network.NeighborsOf(r);
    return {nb.data(), nb.size()};
  };

  // The FIFO queue of the sequential formulation is processed strictly
  // ring by ring (ring k+1 is produced entirely by ring k), so verifying a
  // whole ring concurrently and committing in ring order replays the
  // sequential order exactly. Probability() is pure per segment and
  // thread-safe (see ReachabilityProbability).
  TbsOutcome out;
  std::vector<SegmentId> next_ring;
  std::vector<double> probs;
  while (!ring.empty()) {
    probs.assign(ring.size(), 0.0);
    const bool shard_fan =
        options.sharded() && ring.size() >= options.min_parallel_ring;
    const bool fan = !shard_fan && options.parallel() &&
                     ring.size() >= options.min_parallel_ring;
    if (shard_fan) {
      // Sharded scatter: bucket ring indices by owning shard; each bucket
      // verifies on its owner's slice pool (home inline). probs[] slots
      // are disjoint across buckets and the commit below still walks the
      // ring in order, so the outcome matches the sequential walk exactly.
      const size_t num_shards = options.shard_pools.size();
      const uint32_t home = std::min(
          options.home_shard, static_cast<uint32_t>(num_shards - 1));
      std::vector<std::vector<uint32_t>> buckets(num_shards);
      for (size_t i = 0; i < ring.size(); ++i) {
        buckets[options.shard_owner[ring[i]]].push_back(
            static_cast<uint32_t>(i));
      }
      auto verify_indices =
          [&](const std::vector<uint32_t>& indices) -> Status {
        for (uint32_t i : indices) {
          STRR_ASSIGN_OR_RETURN(double p, prob_oracle.Probability(ring[i]));
          probs[i] = p;
        }
        return Status::OK();
      };
      std::vector<std::future<Status>> joins;
      joins.reserve(num_shards - 1);
      for (size_t s = 0; s < num_shards; ++s) {
        if (s == home || buckets[s].empty()) continue;
        joins.push_back(options.shard_pools[s]->Submit(
            [&verify_indices, &buckets, s]() -> Status {
              return verify_indices(buckets[s]);
            }));
      }
      Status st = verify_indices(buckets[home]);
      // Join every worker before surfacing an error (no dangling refs).
      for (auto& j : joins) {
        Status ws = j.get();
        if (st.ok() && !ws.ok()) st = ws;
      }
      if (!st.ok()) return st;
    } else if (fan) {
      const size_t chunks =
          std::min(static_cast<size_t>(options.workers), ring.size());
      const size_t per = (ring.size() + chunks - 1) / chunks;
      auto verify_range = [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          STRR_ASSIGN_OR_RETURN(double p, prob_oracle.Probability(ring[i]));
          probs[i] = p;
        }
        return Status::OK();
      };
      std::vector<std::future<Status>> joins;
      joins.reserve(chunks - 1);
      for (size_t c = 1; c < chunks; ++c) {
        size_t begin = c * per;
        size_t end = std::min(begin + per, ring.size());
        joins.push_back(options.pool->Submit(
            [&verify_range, begin, end]() -> Status {
              return verify_range(begin, end);
            }));
      }
      Status st = verify_range(0, std::min(per, ring.size()));
      // Join every worker before surfacing an error (no dangling refs).
      for (auto& j : joins) {
        Status ws = j.get();
        if (st.ok() && !ws.ok()) st = ws;
      }
      if (!st.ok()) return st;
    } else {
      for (size_t i = 0; i < ring.size(); ++i) {
        STRR_ASSIGN_OR_RETURN(double p, prob_oracle.Probability(ring[i]));
        probs[i] = p;
      }
    }

    // Ring-order commit: counters, failure marks, and the inward expansion
    // all happen in the sequential queue order.
    next_ring.clear();
    for (size_t i = 0; i < ring.size(); ++i) {
      SegmentId r = ring[i];
      ++out.segments_verified;
      if (probs[i] >= prob_threshold) continue;  // qualifies: stop tracing
      failed[r] = 1;
      ++out.segments_failed;
      // Trace back: enqueue unvisited neighbours inside the max region but
      // outside the minimum bounding region (Algorithm 2, line 9).
      for (SegmentId nb : neighbors_of(r)) {
        if (!in_max[nb] || in_min[nb] || visited[nb]) continue;
        visited[nb] = 1;
        next_ring.push_back(nb);
      }
    }
    ring.swap(next_ring);
  }

  out.region.reserve(regions.max_region.size());
  for (SegmentId s : regions.max_region) {
    if (!failed[s]) out.region.push_back(s);
  }
  return out;
}

}  // namespace strr
