#include "query/trace_back.h"

#include <algorithm>
#include <deque>

namespace strr {

StatusOr<TbsOutcome> TraceBackSearch(const RoadNetwork& network,
                                     const BoundingRegions& regions,
                                     double prob_threshold,
                                     ReachabilityProbability& prob_oracle) {
  if (prob_threshold <= 0.0 || prob_threshold > 1.0) {
    return Status::InvalidArgument("TBS: Prob must be in (0, 1]");
  }
  const size_t n = network.NumSegments();
  std::vector<uint8_t> in_max(n, 0), in_min(n, 0), visited(n, 0), failed(n, 0);
  for (SegmentId s : regions.max_region) in_max[s] = 1;
  for (SegmentId s : regions.min_region) in_min[s] = 1;

  // Seed with the outer boundary; when the max region has no outside
  // neighbours at all (covers a whole connected component), verify the
  // entire max-minus-min shell instead.
  std::deque<SegmentId> queue;
  if (!regions.boundary.empty()) {
    for (SegmentId s : regions.boundary) {
      if (!visited[s]) {
        visited[s] = 1;
        queue.push_back(s);
      }
    }
  } else {
    for (SegmentId s : regions.max_region) {
      if (!in_min[s] && !visited[s]) {
        visited[s] = 1;
        queue.push_back(s);
      }
    }
  }
  if (queue.empty()) {
    // Fully degenerate: the minimum bounding region swallowed the whole
    // maximum region (tiny networks / generous speed floors). Trusting it
    // blindly would fabricate reachability, so verify everything instead.
    for (SegmentId s : regions.max_region) {
      if (!visited[s]) {
        visited[s] = 1;
        queue.push_back(s);
      }
    }
  }

  TbsOutcome out;
  while (!queue.empty()) {
    SegmentId r = queue.front();
    queue.pop_front();
    STRR_ASSIGN_OR_RETURN(double p, prob_oracle.Probability(r));
    ++out.segments_verified;
    if (p >= prob_threshold) continue;  // qualifies: stop tracing inward here
    failed[r] = 1;
    ++out.segments_failed;
    // Trace back: enqueue unvisited neighbours inside the max region but
    // outside the minimum bounding region (Algorithm 2, line 9).
    for (SegmentId nb : network.NeighborsOf(r)) {
      if (!in_max[nb] || in_min[nb] || visited[nb]) continue;
      visited[nb] = 1;
      queue.push_back(nb);
    }
  }

  out.region.reserve(regions.max_region.size());
  for (SegmentId s : regions.max_region) {
    if (!failed[s]) out.region.push_back(s);
  }
  return out;
}

}  // namespace strr
