// ES: the exhaustive-search baseline the paper compares against (§4.2).
//
// ES answers an s-query with plain network expansion from the start
// segment — no Con-Index, no bounding regions. It expands the road network
// outward (Dijkstra over travel time at the historical maximum speeds, so
// its search cone covers everything any trajectory could have reached) and
// verifies *every* expanded segment against the ST-Index time lists. That
// includes the dense region near the start location, which SQMB+TBS skips;
// the resulting extra time-list I/O is exactly the paper's reported gap.
//
// Termination (under-specified in the thesis; see DESIGN.md): a branch
// stops expanding once the time budget L is exhausted; segments are
// collected when their verified probability meets Prob.
#ifndef STRR_QUERY_ES_BASELINE_H_
#define STRR_QUERY_ES_BASELINE_H_

#include "index/speed_profile.h"
#include "index/st_index.h"
#include "query/query.h"
#include "util/result.h"

namespace strr {

/// Runs the exhaustive-search baseline for an s-query. `delta_t` sets the
/// start window [T, T+Δt) of Eq. 3.1 (same value the indexed path uses, so
/// results are comparable). Locates the start segment itself.
StatusOr<RegionResult> ExhaustiveSearch(const StIndex& st_index,
                                        const SpeedProfile& profile,
                                        const SQuery& query, int64_t delta_t);

/// Same, over an already-located start segment set (the QueryPlanner
/// resolves locations once at plan time; this overload skips the repeat
/// R-tree lookup). `starts` must be non-empty.
StatusOr<RegionResult> ExhaustiveSearch(const StIndex& st_index,
                                        const SpeedProfile& profile,
                                        const SQuery& query, int64_t delta_t,
                                        const std::vector<SegmentId>& starts);

}  // namespace strr

#endif  // STRR_QUERY_ES_BASELINE_H_
