// ReachabilityProbability: Eq. 3.1 of the paper.
//
//   probability(r, r0) = m* / m,
//
// where m* is the number of days d with Tr(r0, [T, T+Δt), d) ∩
// Tr(r, [T, T+L], d) ≠ ∅: some trajectory passed the start segment right
// after T *and* passed r within the duration, on that day.
//
// One instance is built per query execution: it reads and caches the start
// segment's time lists once, then verifies candidates one by one, reading
// their time lists from the ST-Index (this is the disk I/O the SQMB/TBS
// machinery exists to minimize). Multi-location queries pass several start
// segments; their per-day ID lists are unioned (reachable from ANY start).
#ifndef STRR_QUERY_PROBABILITY_H_
#define STRR_QUERY_PROBABILITY_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "index/st_index.h"
#include "util/result.h"

namespace strr {

/// Per-query probability oracle.
class ReachabilityProbability {
 public:
  /// Prepares the start-side lists: trajectories leaving any of `starts`
  /// during [start_tod, start_tod + window). The paper uses window = Δt
  /// (one index slot).
  static StatusOr<ReachabilityProbability> Create(
      const StIndex& st_index, const std::vector<SegmentId>& starts,
      int64_t start_tod, int64_t window_seconds, int64_t duration_seconds);

  /// probability(r, starts) in [0, 1]; reads r's time lists from disk.
  /// Safe to call concurrently from multiple threads (parallel TBS rings):
  /// all query state is read-only after Create and the work counters are
  /// relaxed atomics.
  StatusOr<double> Probability(SegmentId r);

  ReachabilityProbability(ReachabilityProbability&& o) noexcept
      : st_index_(o.st_index_),
        start_tod_(o.start_tod_),
        duration_(o.duration_),
        candidate_slots_(std::move(o.candidate_slots_)),
        start_ids_(std::move(o.start_ids_)),
        start_active_days_(o.start_active_days_),
        verifications_(o.verifications_.load(std::memory_order_relaxed)),
        time_lists_read_(o.time_lists_read_.load(std::memory_order_relaxed)) {}
  ReachabilityProbability& operator=(ReachabilityProbability&& o) noexcept {
    st_index_ = o.st_index_;
    start_tod_ = o.start_tod_;
    duration_ = o.duration_;
    candidate_slots_ = std::move(o.candidate_slots_);
    start_ids_ = std::move(o.start_ids_);
    start_active_days_ = o.start_active_days_;
    verifications_.store(o.verifications_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    time_lists_read_.store(
        o.time_lists_read_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }

  /// Number of candidate verifications performed so far.
  uint64_t verifications() const {
    return verifications_.load(std::memory_order_relaxed);
  }
  /// Number of time-list reads issued (start + candidates).
  uint64_t time_lists_read() const {
    return time_lists_read_.load(std::memory_order_relaxed);
  }

  /// True when no trajectory left the start segments in the window on any
  /// day (every probability will be 0).
  bool StartHasNoTraffic() const { return start_active_days_ == 0; }

 private:
  ReachabilityProbability(const StIndex& st_index, int64_t start_tod,
                          int64_t duration_seconds)
      : st_index_(&st_index),
        start_tod_(start_tod),
        duration_(duration_seconds) {}

  const StIndex* st_index_;
  int64_t start_tod_;
  int64_t duration_;
  std::vector<SlotId> candidate_slots_;  // slots covering [T, T+L]
  /// start_ids_[d] = sorted trajectory ids leaving the starts on day d.
  std::vector<std::vector<TrajectoryId>> start_ids_;
  int start_active_days_ = 0;
  std::atomic<uint64_t> verifications_{0};
  std::atomic<uint64_t> time_lists_read_{0};
};

/// Sorted-vector intersection test (exposed for tests).
bool SortedIntersects(const std::vector<TrajectoryId>& a,
                      const std::vector<TrajectoryId>& b);

}  // namespace strr

#endif  // STRR_QUERY_PROBABILITY_H_
