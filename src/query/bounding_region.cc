#include "query/bounding_region.h"

#include <algorithm>

#include "search/expansion_context.h"

namespace strr {

namespace {

/// Region membership + boundary scan on a pooled context (no O(network)
/// allocation per call): members of `region` with a neighbour outside it.
std::vector<SegmentId> BoundaryWith(ExpansionContext& ctx,
                                    const RoadNetwork& network,
                                    const std::vector<SegmentId>& region) {
  ctx.Begin(network.NumSegments());
  for (SegmentId s : region) ctx.Touch(s);  // Seen == inside
  std::vector<SegmentId> boundary;
  for (SegmentId s : region) {
    for (SegmentId nb : network.NeighborsOf(s)) {
      if (!ctx.Seen(nb)) {
        boundary.push_back(s);
        break;
      }
    }
  }
  return boundary;
}

/// Boundary used to seed TBS: region members with a neighbour outside the
/// region. When the cone saturated a whole connected component there is no
/// "outside" — fall back to the expansion's outermost shell, which is
/// still the geometric rim the trace back should start from.
std::vector<SegmentId> MergeBoundary(
    ExpansionContext& ctx, const RoadNetwork& network,
    const std::vector<SegmentId>& region,
    const std::vector<SegmentId>& last_frontier) {
  std::vector<SegmentId> boundary = BoundaryWith(ctx, network, region);
  if (!boundary.empty()) return boundary;
  return last_frontier;
}

/// Reachability-list oracles over the Con-Index.
FrontierEngine::ListFn FarLists(const ConIndex& con_index) {
  return [&con_index](SegmentId r,
                      int64_t tod) -> const std::vector<SegmentId>& {
    return con_index.Far(r, tod);
  };
}

FrontierEngine::ListFn NearLists(const ConIndex& con_index) {
  return [&con_index](SegmentId r,
                      int64_t tod) -> const std::vector<SegmentId>& {
    return con_index.Near(r, tod);
  };
}

FrontierEngine::ConeRequest MakeConeRequest(
    const std::vector<SegmentId>& starts, int64_t start_tod, int64_t duration,
    const ConIndex& con_index) {
  FrontierEngine::ConeRequest request;
  request.starts = starts;
  request.start_tod = start_tod;
  request.duration_seconds = duration;
  request.delta_t_seconds = con_index.delta_t_seconds();
  request.profile_slot_seconds =
      kSecondsPerDay / std::max(1, con_index.num_profile_slots());
  return request;
}

}  // namespace

std::vector<SegmentId> RegionBoundary(const RoadNetwork& network,
                                      const std::vector<SegmentId>& region) {
  auto ctx = ExpansionContextPool::Global().Acquire();
  return BoundaryWith(*ctx, network, region);
}

std::vector<SegmentId> LocationSegmentSet(const RoadNetwork& network,
                                          SegmentId seg) {
  std::vector<SegmentId> set{seg};
  const RoadSegment& s = network.segment(seg);
  if (s.two_way && s.reverse_id != kInvalidSegment) {
    set.push_back(s.reverse_id);
  }
  std::sort(set.begin(), set.end());
  return set;
}

StatusOr<BoundingRegions> SqmbSearch(const RoadNetwork& network,
                                     const ConIndex& con_index,
                                     SegmentId start, int64_t start_tod,
                                     int64_t duration_seconds) {
  if (start >= network.NumSegments()) {
    return Status::InvalidArgument("SQMB: invalid start segment");
  }
  return SqmbSearchSet(network, con_index, {start}, start_tod,
                       duration_seconds);
}

StatusOr<BoundingRegions> SqmbSearchSet(const RoadNetwork& network,
                                        const ConIndex& con_index,
                                        const std::vector<SegmentId>& starts,
                                        int64_t start_tod,
                                        int64_t duration_seconds) {
  return SqmbSearchSet(network, con_index, starts, start_tod, duration_seconds,
                       BoundingSearchOptions{});
}

StatusOr<BoundingRegions> SqmbSearchSet(const RoadNetwork& network,
                                        const ConIndex& con_index,
                                        const std::vector<SegmentId>& starts,
                                        int64_t start_tod,
                                        int64_t duration_seconds,
                                        const BoundingSearchOptions& options) {
  if (starts.empty()) {
    return Status::InvalidArgument("SQMB: no start segments");
  }
  for (SegmentId s : starts) {
    if (s >= network.NumSegments()) {
      return Status::InvalidArgument("SQMB: invalid start segment");
    }
  }
  if (duration_seconds <= 0) {
    return Status::InvalidArgument("SQMB: duration must be positive");
  }

  BoundingRegions out;
  out.start_segments = starts;

  FrontierEngine engine(network, options.runtime);
  auto ctx = ExpansionContextPool::Global().Acquire();
  FrontierEngine::ConeRequest request = MakeConeRequest(
      out.start_segments, start_tod, duration_seconds, con_index);

  std::vector<SegmentId> last_frontier;
  out.max_region = engine.RunCone(*ctx, request, FarLists(con_index), nullptr,
                                  &last_frontier, options.metrics);
  out.min_region = engine.RunCone(*ctx, request, NearLists(con_index), nullptr,
                                  nullptr, options.metrics);
  out.boundary = MergeBoundary(*ctx, network, out.max_region, last_frontier);
  return out;
}

StatusOr<BoundingRegions> MqmbSearch(const RoadNetwork& network,
                                     const ConIndex& con_index,
                                     const SpeedProfile& profile,
                                     const std::vector<SegmentId>& starts,
                                     int64_t start_tod,
                                     int64_t duration_seconds) {
  return MqmbSearch(network, con_index, profile, starts, start_tod,
                    duration_seconds, BoundingSearchOptions{});
}

StatusOr<BoundingRegions> MqmbSearch(const RoadNetwork& network,
                                     const ConIndex& con_index,
                                     const SpeedProfile& profile,
                                     const std::vector<SegmentId>& starts,
                                     int64_t start_tod,
                                     int64_t duration_seconds,
                                     const BoundingSearchOptions& options) {
  if (starts.empty()) {
    return Status::InvalidArgument("MQMB: no start segments");
  }
  for (SegmentId s : starts) {
    if (s >= network.NumSegments()) {
      return Status::InvalidArgument("MQMB: invalid start segment");
    }
  }
  if (duration_seconds <= 0) {
    return Status::InvalidArgument("MQMB: duration must be positive");
  }

  BoundingRegions out;
  out.start_segments = starts;
  std::sort(out.start_segments.begin(), out.start_segments.end());
  out.start_segments.erase(
      std::unique(out.start_segments.begin(), out.start_segments.end()),
      out.start_segments.end());

  FrontierEngine engine(network, options.runtime);

  // Nearest-start assignment by travel time (multi-source expansion with
  // the same speed statistics the Far/Near tables use, budgeted by L).
  // The winning start per segment stays queryable on the contexts for the
  // cone filters below — no O(network) origin arrays are materialized.
  SpeedFn max_speed = [&profile, start_tod](SegmentId id) {
    return profile.MaxSpeed(id, start_tod);
  };
  SpeedFn min_speed = [&profile, start_tod](SegmentId id) {
    return profile.MinSpeed(id, start_tod);
  };
  FrontierEngine::TimedRequest nearest;
  nearest.sources = out.start_segments;
  nearest.budget = static_cast<double>(duration_seconds) * 1.25 + 60.0;
  nearest.track_origin = true;
  auto nearest_max = ExpansionContextPool::Global().Acquire();
  auto nearest_min = ExpansionContextPool::Global().Acquire();
  engine.RunTimed(*nearest_max, nearest, max_speed, options.metrics);
  engine.RunTimed(*nearest_min, nearest, min_speed, options.metrics);

  // The elimination rule (paper §3.3.2): keep a discovered segment only if
  // it was reached through its *nearest* start's cone. Segments outside the
  // budgeted nearest-start map (rare profile-drift cases) are kept.
  ExpansionContext& nmx = *nearest_max;
  ExpansionContext& nmn = *nearest_min;
  auto keep_max = [&nmx](SegmentId owner, SegmentId found) {
    return !nmx.Seen(found) || nmx.Origin(found) == owner;
  };
  auto keep_min = [&nmn](SegmentId owner, SegmentId found) {
    return !nmn.Seen(found) || nmn.Origin(found) == owner;
  };

  auto ctx = ExpansionContextPool::Global().Acquire();
  FrontierEngine::ConeRequest request = MakeConeRequest(
      out.start_segments, start_tod, duration_seconds, con_index);

  std::vector<SegmentId> last_frontier;
  out.max_region = engine.RunCone(*ctx, request, FarLists(con_index), keep_max,
                                  &last_frontier, options.metrics);
  out.min_region = engine.RunCone(*ctx, request, NearLists(con_index),
                                  keep_min, nullptr, options.metrics);
  out.boundary = MergeBoundary(*ctx, network, out.max_region, last_frontier);
  return out;
}

}  // namespace strr
