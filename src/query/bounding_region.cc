#include "query/bounding_region.h"

#include <algorithm>

#include "roadnet/expansion.h"

namespace strr {

namespace {

/// Number of Δt hops for duration L: k with kΔt <= L < (k+1)Δt, at least 1.
int NumHops(int64_t duration, int64_t delta_t) {
  int k = static_cast<int>(duration / delta_t);
  return k < 1 ? 1 : k;
}

using ListFn =
    std::function<const std::vector<SegmentId>&(SegmentId, int64_t)>;

/// Shared frontier walk for SQMB/MQMB cones. Members are expanded once per
/// profile slot (Algorithm 1 re-expands the whole set every step; speeds
/// only change across profile slots, so re-expansion below that granularity
/// is provably a no-op). `filter` (optional) implements MQMB's
/// nearest-start elimination: return false to reject a discovered segment.
/// `last_frontier_out` (optional) receives the segments discovered in the
/// final hop that added anything — the outermost expansion shell, which
/// TBS uses as its trace-back seed when the cone has no geometric edge
/// (e.g. it saturated the whole network).
std::vector<SegmentId> ExpandCone(
    const RoadNetwork& network, const std::vector<SegmentId>& starts,
    int64_t start_tod, int64_t duration, int64_t delta_t,
    int64_t profile_slot_seconds, const ListFn& lists,
    const std::function<bool(SegmentId owner_start, SegmentId found)>& filter,
    std::vector<SegmentId>* owner_out,
    std::vector<SegmentId>* last_frontier_out) {
  const size_t n = network.NumSegments();
  std::vector<uint8_t> in_cone(n, 0);
  std::vector<int32_t> expanded_slot(n, -1);
  std::vector<SegmentId> owner(n, kInvalidSegment);
  std::vector<SegmentId> members;
  members.reserve(64);
  for (SegmentId s : starts) {
    if (s < n && !in_cone[s]) {
      in_cone[s] = 1;
      owner[s] = s;
      members.push_back(s);
    }
  }

  size_t last_frontier_begin = 0;
  size_t last_frontier_end = members.size();
  const int hops = NumHops(duration, delta_t);
  for (int step = 0; step < hops; ++step) {
    int64_t tod = (start_tod + step * delta_t) % kSecondsPerDay;
    int32_t pslot = static_cast<int32_t>(tod / profile_slot_seconds);
    size_t snapshot = members.size();  // segments found this step expand next
    for (size_t i = 0; i < snapshot; ++i) {
      SegmentId r = members[i];
      if (expanded_slot[r] == pslot) continue;
      expanded_slot[r] = pslot;
      for (SegmentId found : lists(r, tod)) {
        if (in_cone[found]) continue;
        if (filter && !filter(owner[r], found)) continue;
        in_cone[found] = 1;
        owner[found] = owner[r];
        members.push_back(found);
      }
    }
    if (members.size() > snapshot) {
      last_frontier_begin = snapshot;
      last_frontier_end = members.size();
    }
  }
  if (last_frontier_out != nullptr) {
    last_frontier_out->assign(members.begin() + last_frontier_begin,
                              members.begin() + last_frontier_end);
    std::sort(last_frontier_out->begin(), last_frontier_out->end());
  }
  std::sort(members.begin(), members.end());
  if (owner_out != nullptr) *owner_out = std::move(owner);
  return members;
}

}  // namespace

std::vector<SegmentId> RegionBoundary(const RoadNetwork& network,
                                      const std::vector<SegmentId>& region) {
  std::vector<uint8_t> inside(network.NumSegments(), 0);
  for (SegmentId s : region) inside[s] = 1;
  std::vector<SegmentId> boundary;
  for (SegmentId s : region) {
    for (SegmentId nb : network.NeighborsOf(s)) {
      if (!inside[nb]) {
        boundary.push_back(s);
        break;
      }
    }
  }
  return boundary;
}

namespace {

/// Boundary used to seed TBS: region members with a neighbour outside the
/// region. When the cone saturated a whole connected component there is no
/// "outside" — fall back to the expansion's outermost shell, which is
/// still the geometric rim the trace back should start from.
std::vector<SegmentId> MergeBoundary(
    const RoadNetwork& network, const std::vector<SegmentId>& region,
    const std::vector<SegmentId>& last_frontier) {
  std::vector<SegmentId> boundary = RegionBoundary(network, region);
  if (!boundary.empty()) return boundary;
  return last_frontier;
}

}  // namespace

std::vector<SegmentId> LocationSegmentSet(const RoadNetwork& network,
                                          SegmentId seg) {
  std::vector<SegmentId> set{seg};
  const RoadSegment& s = network.segment(seg);
  if (s.two_way && s.reverse_id != kInvalidSegment) {
    set.push_back(s.reverse_id);
  }
  std::sort(set.begin(), set.end());
  return set;
}

StatusOr<BoundingRegions> SqmbSearch(const RoadNetwork& network,
                                     const ConIndex& con_index,
                                     SegmentId start, int64_t start_tod,
                                     int64_t duration_seconds) {
  if (start >= network.NumSegments()) {
    return Status::InvalidArgument("SQMB: invalid start segment");
  }
  return SqmbSearchSet(network, con_index, {start}, start_tod,
                       duration_seconds);
}

StatusOr<BoundingRegions> SqmbSearchSet(const RoadNetwork& network,
                                        const ConIndex& con_index,
                                        const std::vector<SegmentId>& starts,
                                        int64_t start_tod,
                                        int64_t duration_seconds) {
  if (starts.empty()) {
    return Status::InvalidArgument("SQMB: no start segments");
  }
  for (SegmentId s : starts) {
    if (s >= network.NumSegments()) {
      return Status::InvalidArgument("SQMB: invalid start segment");
    }
  }
  if (duration_seconds <= 0) {
    return Status::InvalidArgument("SQMB: duration must be positive");
  }
  const int64_t profile_slot_sec =
      kSecondsPerDay / std::max(1, con_index.num_profile_slots());

  BoundingRegions out;
  out.start_segments = starts;

  ListFn far = [&con_index](SegmentId r,
                            int64_t tod) -> const std::vector<SegmentId>& {
    return con_index.Far(r, tod);
  };
  ListFn near = [&con_index](SegmentId r,
                             int64_t tod) -> const std::vector<SegmentId>& {
    return con_index.Near(r, tod);
  };

  std::vector<SegmentId> last_frontier;
  out.max_region = ExpandCone(network, out.start_segments, start_tod,
                              duration_seconds, con_index.delta_t_seconds(),
                              profile_slot_sec, far, nullptr, nullptr,
                              &last_frontier);
  out.min_region = ExpandCone(network, out.start_segments, start_tod,
                              duration_seconds, con_index.delta_t_seconds(),
                              profile_slot_sec, near, nullptr, nullptr,
                              nullptr);
  out.boundary = MergeBoundary(network, out.max_region, last_frontier);
  return out;
}

StatusOr<BoundingRegions> MqmbSearch(const RoadNetwork& network,
                                     const ConIndex& con_index,
                                     const SpeedProfile& profile,
                                     const std::vector<SegmentId>& starts,
                                     int64_t start_tod,
                                     int64_t duration_seconds) {
  if (starts.empty()) {
    return Status::InvalidArgument("MQMB: no start segments");
  }
  for (SegmentId s : starts) {
    if (s >= network.NumSegments()) {
      return Status::InvalidArgument("MQMB: invalid start segment");
    }
  }
  if (duration_seconds <= 0) {
    return Status::InvalidArgument("MQMB: duration must be positive");
  }
  const int64_t profile_slot_sec =
      kSecondsPerDay / std::max(1, con_index.num_profile_slots());

  BoundingRegions out;
  out.start_segments = starts;
  std::sort(out.start_segments.begin(), out.start_segments.end());
  out.start_segments.erase(
      std::unique(out.start_segments.begin(), out.start_segments.end()),
      out.start_segments.end());

  // Nearest-start assignment by travel time (multi-source expansion with
  // the same speed statistics the Far/Near tables use, budgeted by L).
  SpeedFn max_speed = [&profile, start_tod](SegmentId id) {
    return profile.MaxSpeed(id, start_tod);
  };
  SpeedFn min_speed = [&profile, start_tod](SegmentId id) {
    return profile.MinSpeed(id, start_tod);
  };
  std::vector<SegmentId> nearest_max, nearest_min;
  ExpandFromMany(network, out.start_segments,
                 static_cast<double>(duration_seconds) * 1.25 + 60.0,
                 max_speed, &nearest_max);
  ExpandFromMany(network, out.start_segments,
                 static_cast<double>(duration_seconds) * 1.25 + 60.0,
                 min_speed, &nearest_min);

  ListFn far = [&con_index](SegmentId r,
                            int64_t tod) -> const std::vector<SegmentId>& {
    return con_index.Far(r, tod);
  };
  ListFn near = [&con_index](SegmentId r,
                             int64_t tod) -> const std::vector<SegmentId>& {
    return con_index.Near(r, tod);
  };

  // The elimination rule (paper §3.3.2): keep a discovered segment only if
  // it was reached through its *nearest* start's cone. Segments outside the
  // budgeted nearest-start map (rare profile-drift cases) are kept.
  auto keep_max = [&nearest_max](SegmentId owner, SegmentId found) {
    return nearest_max[found] == kInvalidSegment ||
           nearest_max[found] == owner;
  };
  auto keep_min = [&nearest_min](SegmentId owner, SegmentId found) {
    return nearest_min[found] == kInvalidSegment ||
           nearest_min[found] == owner;
  };

  std::vector<SegmentId> last_frontier;
  out.max_region = ExpandCone(network, out.start_segments, start_tod,
                              duration_seconds, con_index.delta_t_seconds(),
                              profile_slot_sec, far, keep_max, nullptr,
                              &last_frontier);
  out.min_region = ExpandCone(network, out.start_segments, start_tod,
                              duration_seconds, con_index.delta_t_seconds(),
                              profile_slot_sec, near, keep_min, nullptr,
                              nullptr);
  out.boundary = MergeBoundary(network, out.max_region, last_frontier);
  return out;
}

}  // namespace strr
