// Trajectory types.
//
// Raw side: what GPS sets emit — (trajectory id, lat/lon, timestamp, speed),
// the five core attributes of the paper's dataset description (§4.1).
// Matched side: what the indexes consume after map-matching — per-trajectory
// sequences of (segment, enter timestamp, speed).
//
// Per the paper, "one moving object only has one trajectory per day": a
// TrajectoryId identifies a (taxi, day) pair and is unique dataset-wide.
#ifndef STRR_TRAJ_TRAJECTORY_H_
#define STRR_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "roadnet/segment.h"
#include "util/time_util.h"

namespace strr {

using TrajectoryId = uint32_t;
using TaxiId = uint32_t;

/// One raw GPS fix, in projected coordinates (the projection travels with
/// the dataset; raw lat/lon conversions happen at the edges).
struct GpsRecord {
  XyPoint position;
  Timestamp timestamp = 0;
  double speed_mps = 0.0;
};

/// A raw (pre-map-matching) trajectory: one taxi, one day.
struct RawTrajectory {
  TrajectoryId id = 0;
  TaxiId taxi = 0;
  DayIndex day = 0;
  std::vector<GpsRecord> points;
};

/// One map-matched observation: the trajectory entered `segment` at
/// `timestamp` traveling at `speed_mps`.
struct MatchedSample {
  SegmentId segment = kInvalidSegment;
  Timestamp timestamp = 0;
  float speed_mps = 0.0f;
};

/// A map-matched trajectory: one taxi, one day, ordered samples.
struct MatchedTrajectory {
  TrajectoryId id = 0;
  TaxiId taxi = 0;
  DayIndex day = 0;
  std::vector<MatchedSample> samples;
};

}  // namespace strr

#endif  // STRR_TRAJ_TRAJECTORY_H_
