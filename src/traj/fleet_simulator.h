// FleetSimulator: synthetic taxi fleet over a road network.
//
// Substitute for the Shenzhen taxi dataset (see DESIGN.md §2). Each taxi
// runs a daily schedule of origin→destination trips; routes come from an
// A* router under free-flow speeds, but traversal speeds follow the
// time-of-day CongestionModel plus per-trip noise, so rush hours genuinely
// slow the fleet. Trips are drawn from a hotspot model (taxis concentrate
// around popular places, with a bias toward the centre) mixed with fully
// random trips, which yields the broad-but-uneven coverage real taxi data
// has.
//
// Output: map-matched trajectories (ground truth) and, optionally, raw
// noisy GPS trajectories for exercising the MapMatcher.
#ifndef STRR_TRAJ_FLEET_SIMULATOR_H_
#define STRR_TRAJ_FLEET_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "live/observation.h"
#include "roadnet/road_network.h"
#include "traj/congestion.h"
#include "traj/trajectory.h"
#include "traj/trajectory_store.h"
#include "util/result.h"
#include "util/rng.h"

namespace strr {

/// Fleet generation knobs.
struct FleetOptions {
  uint32_t num_taxis = 200;
  int32_t num_days = 30;
  double trips_per_hour = 1.4;   ///< mean trips a working taxi starts hourly
  int shift_start_hour = 6;     ///< taxis work [shift_start, shift_end)
  int shift_end_hour = 24;
  double night_fraction = 0.15;  ///< share of taxis on the night shift
  int num_hotspots = 48;         ///< trip endpoint attractors
  double hotspot_trip_fraction = 0.7;  ///< trips between hotspot segments
  double gps_interval_sec = 30.0;      ///< raw GPS sampling period
  double gps_noise_std_m = 18.0;       ///< raw GPS position noise
  double speed_noise_std = 0.12;       ///< per-trip lognormal-ish speed noise
  /// Probability that a segment traversal is badly delayed (red light,
  /// double-parked truck, jam shockwave); such traversals run at a small
  /// fraction of the expected speed. This produces the near-crawl minimum
  /// observed speeds real taxi data has, which the Con-Index Near lists
  /// (and hence minimum bounding regions) depend on.
  double slow_traversal_prob = 0.08;
  double slow_traversal_factor_lo = 0.12;  ///< slow traversal speed range
  double slow_traversal_factor_hi = 0.40;
  uint64_t seed = 2014;
  CongestionModel congestion;
};

/// Result of a simulation run.
struct FleetResult {
  std::unique_ptr<TrajectoryStore> store;     ///< matched trajectories
  std::vector<RawTrajectory> raw_sample;      ///< raw GPS (if requested)
  uint64_t num_trips = 0;
  uint64_t num_gps_points = 0;  ///< raw GPS points the fleet would emit
};

/// Simulates the fleet. When `raw_days` > 0, raw GPS trajectories for the
/// first `raw_days` days are also materialized (they are bulky, so benches
/// leave this at 0 and tests use 1).
StatusOr<FleetResult> SimulateFleet(const RoadNetwork& network,
                                    const FleetOptions& options,
                                    int raw_days = 0);

/// Streaming counterpart of SimulateFleet: an endless source of live speed
/// observations drawn from the same congestion + noise model the fleet's
/// matched samples come from. Drives the live ingestion subsystem in soak
/// tests and benches the way a real probe-vehicle feed would: plausible
/// per-segment speeds, rush-hour dips, occasional near-crawl traversals
/// that move a slot's minimum. Deterministic from the seed. Not
/// thread-safe; give each producer thread its own source (fork the seed).
/// Observation generation knobs (defaults mirror FleetOptions).
struct LiveObservationOptions {
  uint64_t seed = 2014;
  double speed_noise_std = 0.12;
  double slow_traversal_prob = 0.08;
  double slow_traversal_factor_lo = 0.12;
  double slow_traversal_factor_hi = 0.40;
  CongestionModel congestion;
};

class LiveObservationSource {
 public:
  /// The network must outlive the source.
  explicit LiveObservationSource(const RoadNetwork& network,
                                 const LiveObservationOptions& options = {});

  /// One observation on a uniformly random segment at `time_of_day_sec`.
  SpeedObservation Next(int64_t time_of_day_sec);

  /// One observation on a specific segment (targeted tests/benches).
  SpeedObservation NextAt(SegmentId segment, int64_t time_of_day_sec);

 private:
  const RoadNetwork* network_;
  LiveObservationOptions options_;
  Rng rng_;
};

}  // namespace strr

#endif  // STRR_TRAJ_FLEET_SIMULATOR_H_
