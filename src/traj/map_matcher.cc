#include "traj/map_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

namespace strr {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

struct Candidate {
  SegmentId segment;
  double emission_logp;
};
}  // namespace

MapMatcher::MapMatcher(const RoadNetwork& network, MapMatcherOptions options)
    : network_(network),
      options_(options),
      grid_(network, options.candidate_radius_m * 2.0) {}

double MapMatcher::RouteDistance(SegmentId from, SegmentId to,
                                 double budget_m) const {
  if (from == to) return 0.0;
  // Dijkstra over meters, bounded by budget_m, from the head of `from`.
  struct Entry {
    double dist;
    SegmentId seg;
    bool operator>(const Entry& o) const { return dist > o.dist; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  std::unordered_map<SegmentId, double> dist;
  dist[from] = 0.0;
  queue.push({0.0, from});
  while (!queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    if (top.dist > dist[top.seg]) continue;
    if (top.seg == to) return top.dist;
    for (SegmentId next : network_.OutgoingOf(top.seg)) {
      double d = top.dist + network_.segment(next).length;
      if (d > budget_m) continue;
      auto it = dist.find(next);
      if (it == dist.end() || d < it->second) {
        dist[next] = d;
        queue.push({d, next});
      }
    }
  }
  return kInf;
}

StatusOr<MatchedTrajectory> MapMatcher::Match(const RawTrajectory& raw) const {
  MatchedTrajectory out;
  out.id = raw.id;
  out.taxi = raw.taxi;
  out.day = raw.day;
  if (raw.points.empty()) return out;

  const double sigma2 = options_.gps_sigma_m * options_.gps_sigma_m;

  // Build candidate sets, skipping fixes with no nearby segment.
  std::vector<std::vector<Candidate>> layers;
  std::vector<size_t> fix_of_layer;
  for (size_t i = 0; i < raw.points.size(); ++i) {
    std::vector<SegmentId> near =
        grid_.WithinRadius(raw.points[i].position, options_.candidate_radius_m);
    if (near.empty()) continue;
    if (near.size() > options_.max_candidates) {
      near.resize(options_.max_candidates);  // WithinRadius sorts by distance
    }
    std::vector<Candidate> layer;
    layer.reserve(near.size());
    for (SegmentId seg : near) {
      double d =
          network_.segment(seg).shape.Project(raw.points[i].position).distance;
      layer.push_back({seg, -0.5 * d * d / sigma2});
    }
    layers.push_back(std::move(layer));
    fix_of_layer.push_back(i);
  }
  if (layers.empty()) return out;

  // Viterbi.
  std::vector<std::vector<double>> score(layers.size());
  std::vector<std::vector<int>> back(layers.size());
  score[0].resize(layers[0].size());
  back[0].assign(layers[0].size(), -1);
  for (size_t j = 0; j < layers[0].size(); ++j) {
    score[0][j] = layers[0][j].emission_logp;
  }

  for (size_t t = 1; t < layers.size(); ++t) {
    const GpsRecord& prev_fix = raw.points[fix_of_layer[t - 1]];
    const GpsRecord& cur_fix = raw.points[fix_of_layer[t]];
    double straight = Distance(prev_fix.position, cur_fix.position);
    double budget =
        std::max(200.0, straight * options_.max_route_factor + 200.0);
    score[t].assign(layers[t].size(), -kInf);
    back[t].assign(layers[t].size(), -1);
    for (size_t j = 0; j < layers[t].size(); ++j) {
      for (size_t k = 0; k < layers[t - 1].size(); ++k) {
        if (score[t - 1][k] == -kInf) continue;
        double route = RouteDistance(layers[t - 1][k].segment,
                                     layers[t][j].segment, budget);
        double mismatch = route == kInf
                              ? budget  // unreachable: harshest penalty
                              : std::abs(route - straight);
        double trans_logp = -mismatch / (options_.transition_beta *
                                         options_.gps_sigma_m);
        double s = score[t - 1][k] + trans_logp + layers[t][j].emission_logp;
        if (s > score[t][j]) {
          score[t][j] = s;
          back[t][j] = static_cast<int>(k);
        }
      }
    }
  }

  // Backtrack from the best final state.
  size_t last = layers.size() - 1;
  int best = 0;
  for (size_t j = 1; j < layers[last].size(); ++j) {
    if (score[last][j] > score[last][best]) best = static_cast<int>(j);
  }
  std::vector<SegmentId> path(layers.size());
  for (size_t t = last + 1; t-- > 0;) {
    path[t] = layers[t][best].segment;
    if (t > 0) best = back[t][best];
    if (best < 0 && t > 0) {
      // Broken chain (all-(-inf) column); fall back to emission-only pick.
      best = 0;
    }
  }

  // Collapse consecutive duplicates into MatchedSamples.
  for (size_t t = 0; t < path.size(); ++t) {
    const GpsRecord& fix = raw.points[fix_of_layer[t]];
    if (!out.samples.empty() && out.samples.back().segment == path[t]) {
      continue;
    }
    out.samples.push_back(
        {path[t], fix.timestamp, static_cast<float>(fix.speed_mps)});
  }
  return out;
}

}  // namespace strr
