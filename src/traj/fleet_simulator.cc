#include "traj/fleet_simulator.h"

#include <algorithm>
#include <cmath>

#include "roadnet/router.h"
#include "roadnet/segment_grid.h"
#include "util/rng.h"

namespace strr {

namespace {

/// Hotspot: a popular neighbourhood — an anchor segment plus every segment
/// within walking distance, so trips end across the whole block, not on
/// one street.
struct Hotspot {
  SegmentId segment;
  double weight;
  std::vector<SegmentId> nearby;  ///< endpoint pool around the anchor
};

constexpr double kHotspotJitterRadiusM = 550.0;

/// Picks hotspot neighbourhoods, biased toward the centre of the network
/// so the synthetic city has a recognizable "downtown".
std::vector<Hotspot> PickHotspots(const RoadNetwork& network,
                                  const SegmentGrid& grid, int count,
                                  Rng& rng) {
  std::vector<Hotspot> hotspots;
  Mbr box = network.BoundingBox();
  XyPoint center = box.Center();
  double radius = std::max(box.Width(), box.Height()) / 2.0 + 1.0;
  const size_t n = network.NumSegments();
  for (int i = 0; i < count && n > 0; ++i) {
    SegmentId seg = static_cast<SegmentId>(rng.UniformInt(0, n - 1));
    XyPoint mid = network.segment(seg).shape.Interpolate(
        network.segment(seg).length / 2.0);
    double dist_ratio = Distance(mid, center) / radius;  // 0 centre, 1 edge
    // Weight decays with distance from centre; keep a floor so suburbs get
    // some traffic too.
    double weight = 0.15 + std::exp(-4.0 * dist_ratio * dist_ratio);
    Hotspot h{seg, weight, grid.WithinRadius(mid, kHotspotJitterRadiusM)};
    if (h.nearby.empty()) h.nearby.push_back(seg);
    hotspots.push_back(std::move(h));
  }
  return hotspots;
}

/// Samples a trip endpoint: a segment in a hotspot neighbourhood
/// (weighted), or a uniformly random segment.
SegmentId SampleEndpoint(const RoadNetwork& network,
                         const std::vector<Hotspot>& hotspots,
                         double hotspot_fraction, Rng& rng,
                         std::vector<double>& weight_scratch) {
  if (!hotspots.empty() && rng.Chance(hotspot_fraction)) {
    if (weight_scratch.size() != hotspots.size()) {
      weight_scratch.resize(hotspots.size());
      for (size_t i = 0; i < hotspots.size(); ++i) {
        weight_scratch[i] = hotspots[i].weight;
      }
    }
    const Hotspot& h = hotspots[rng.WeightedIndex(weight_scratch)];
    return h.nearby[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(h.nearby.size()) - 1))];
  }
  return static_cast<SegmentId>(
      rng.UniformInt(0, static_cast<int64_t>(network.NumSegments()) - 1));
}

/// Deterministic per-(segment, variant) factor in [0.75, 1.25): perturbs
/// route costs so different drivers take different reasonable paths
/// between the same endpoints (real traffic spreads over parallel roads;
/// pure shortest paths would funnel everything onto one street).
double VariantFactor(SegmentId seg, int variant) {
  uint64_t x =
      (static_cast<uint64_t>(seg) << 8) | static_cast<uint64_t>(variant);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return 0.75 + 0.5 * (static_cast<double>(x & 0xffffff) / 16777216.0);
}

}  // namespace

StatusOr<FleetResult> SimulateFleet(const RoadNetwork& network,
                                    const FleetOptions& opt, int raw_days) {
  if (!network.finalized()) {
    return Status::FailedPrecondition("SimulateFleet: network not finalized");
  }
  if (network.NumSegments() == 0) {
    return Status::InvalidArgument("SimulateFleet: empty network");
  }
  if (opt.num_days <= 0 || opt.num_taxis == 0) {
    return Status::InvalidArgument("SimulateFleet: need taxis and days");
  }

  Rng master(opt.seed);
  FleetResult result;
  result.store = std::make_unique<TrajectoryStore>(opt.num_days);

  SegmentGrid grid(network, 400.0);
  std::vector<Hotspot> hotspots =
      PickHotspots(network, grid, opt.num_hotspots, master);
  std::vector<double> weight_scratch;

  // Route diversity: each trip uses one of a few cost perturbations, so
  // the same OD pair spreads over parallel streets across days.
  constexpr int kNumRouteVariants = 5;
  std::vector<std::unique_ptr<Router>> routers;
  for (int v = 0; v < kNumRouteVariants; ++v) {
    SpeedFn speeds = [&network, v](SegmentId id) {
      return FreeFlowSpeed(network.segment(id).level) * VariantFactor(id, v);
    };
    routers.push_back(std::make_unique<Router>(
        network, speeds, FreeFlowSpeed(RoadLevel::kHighway) * 1.25));
  }

  TrajectoryId next_id = 0;
  for (uint32_t taxi = 0; taxi < opt.num_taxis; ++taxi) {
    Rng taxi_rng = master.Fork();
    bool night_shift = taxi_rng.Chance(opt.night_fraction);
    for (DayIndex day = 0; day < opt.num_days; ++day) {
      Rng rng = taxi_rng.Fork();
      MatchedTrajectory traj;
      traj.id = next_id++;
      traj.taxi = taxi;
      traj.day = day;
      RawTrajectory raw;
      bool want_raw = day < raw_days;
      if (want_raw) {
        raw.id = traj.id;
        raw.taxi = taxi;
        raw.day = day;
      }

      // Shift window (night shift wraps conceptually; we just run the
      // complementary hours of the same day to keep days independent).
      double shift_begin, shift_end;
      if (night_shift) {
        shift_begin = 0.0;
        shift_end = HMS(opt.shift_start_hour) + 3600.0;
      } else {
        shift_begin = HMS(opt.shift_start_hour);
        shift_end = HMS(opt.shift_end_hour);
      }

      double now = shift_begin + rng.Uniform(0.0, 1800.0);
      SegmentId position = SampleEndpoint(network, hotspots,
                                          opt.hotspot_trip_fraction, rng,
                                          weight_scratch);
      double gps_countdown = 0.0;  // emit a raw fix when it reaches <= 0

      while (now < shift_end) {
        // Idle gap before the next pickup.
        double gap = rng.Exponential(opt.trips_per_hour / 3600.0);
        now += std::min(gap, 3600.0 * 2);
        if (now >= shift_end) break;

        SegmentId dest = SampleEndpoint(network, hotspots,
                                        opt.hotspot_trip_fraction, rng,
                                        weight_scratch);
        if (dest == position) continue;
        int variant =
            static_cast<int>(rng.UniformInt(0, kNumRouteVariants - 1));
        const std::vector<SegmentId>& path =
            routers[variant]->RouteCached(position, dest);
        if (path.empty()) continue;
        ++result.num_trips;

        double trip_noise = std::exp(rng.Gaussian(0.0, opt.speed_noise_std));
        for (SegmentId seg_id : path) {
          // Trips never cross midnight: a day's trajectory is self-contained
          // (the paper's "one trajectory per day" model).
          if (now >= kSecondsPerDay - 1) break;
          const RoadSegment& seg = network.segment(seg_id);
          int64_t tod = static_cast<int64_t>(now);
          double speed = opt.congestion.ExpectedSpeed(seg.level, tod) *
                         trip_noise *
                         std::exp(rng.Gaussian(0.0, opt.speed_noise_std * 0.5));
          if (rng.Chance(opt.slow_traversal_prob)) {
            speed *= rng.Uniform(opt.slow_traversal_factor_lo,
                                 opt.slow_traversal_factor_hi);
          }
          // Physical speed limit: noise never pushes past the design speed.
          double limit = FreeFlowSpeed(seg.level);
          if (speed > limit) speed = limit;
          if (speed < 0.8) speed = 0.8;
          Timestamp enter = MakeTimestamp(day, tod);
          traj.samples.push_back(
              {seg_id, enter, static_cast<float>(speed)});

          if (want_raw) {
            // Emit raw GPS fixes while traversing this segment.
            double traverse = seg.length / speed;
            double t_in_seg = 0.0;
            while (gps_countdown <= traverse - t_in_seg) {
              t_in_seg += gps_countdown;
              double offset = speed * t_in_seg;
              XyPoint p = seg.shape.Interpolate(offset);
              p.x += rng.Gaussian(0.0, opt.gps_noise_std_m);
              p.y += rng.Gaussian(0.0, opt.gps_noise_std_m);
              int64_t fix_tod = std::min<int64_t>(
                  static_cast<int64_t>(now + t_in_seg), kSecondsPerDay - 1);
              raw.points.push_back({p, MakeTimestamp(day, fix_tod), speed});
              gps_countdown = opt.gps_interval_sec;
            }
            gps_countdown -= (traverse - t_in_seg);
          }

          now += seg.length / speed;
          if (now >= shift_end + 1800.0) break;  // over-long trip guard
        }
        position = dest;
        result.num_gps_points += static_cast<uint64_t>(
            network.LengthOfSegments(path) /
                (opt.congestion.ExpectedSpeed(RoadLevel::kArterial,
                                              static_cast<int64_t>(now) %
                                                  kSecondsPerDay) *
                 opt.gps_interval_sec) +
            1);
      }

      if (!traj.samples.empty()) {
        STRR_RETURN_IF_ERROR(result.store->Add(std::move(traj)));
      }
      if (want_raw && !raw.points.empty()) {
        result.raw_sample.push_back(std::move(raw));
      }
    }
  }
  return result;
}

LiveObservationSource::LiveObservationSource(
    const RoadNetwork& network, const LiveObservationOptions& options)
    : network_(&network), options_(options), rng_(options.seed) {}

SpeedObservation LiveObservationSource::Next(int64_t time_of_day_sec) {
  SegmentId seg = static_cast<SegmentId>(
      rng_.UniformInt(0, static_cast<int64_t>(network_->NumSegments()) - 1));
  return NextAt(seg, time_of_day_sec);
}

SpeedObservation LiveObservationSource::NextAt(SegmentId segment,
                                               int64_t time_of_day_sec) {
  // The same speed model SimulateFleet samples matched trajectories from,
  // minus the per-trip noise (a live probe is one vehicle-second, not a
  // trip): congestion-dipped expected speed, lognormal jitter, occasional
  // near-crawl traversal, clamped to the design speed.
  const RoadSegment& seg = network_->segment(segment);
  int64_t tod = NormalizeTimeOfDay(time_of_day_sec);
  double speed = options_.congestion.ExpectedSpeed(seg.level, tod) *
                 std::exp(rng_.Gaussian(0.0, options_.speed_noise_std));
  if (rng_.Chance(options_.slow_traversal_prob)) {
    speed *= rng_.Uniform(options_.slow_traversal_factor_lo,
                          options_.slow_traversal_factor_hi);
  }
  double limit = FreeFlowSpeed(seg.level);
  if (speed > limit) speed = limit;
  if (speed < 0.8) speed = 0.8;
  return SpeedObservation{segment, tod, speed};
}

}  // namespace strr
