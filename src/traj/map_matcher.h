// MapMatcher: HMM/Viterbi map-matching of raw GPS trajectories onto the
// road network (the paper's pre-processing step, which cites the IVMM
// matcher [29]; we implement the standard HMM formulation that fills the
// same role — see DESIGN.md §2).
//
// States per GPS fix: candidate segments within a radius (via SegmentGrid).
// Emission: Gaussian in the perpendicular distance from fix to segment.
// Transition: penalizes the mismatch between on-network route length and
// the straight-line displacement between consecutive fixes (Newson-Krumm
// style), with route lengths from a budgeted Dijkstra.
#ifndef STRR_TRAJ_MAP_MATCHER_H_
#define STRR_TRAJ_MAP_MATCHER_H_

#include <memory>
#include <vector>

#include "roadnet/road_network.h"
#include "roadnet/segment_grid.h"
#include "traj/trajectory.h"
#include "util/result.h"

namespace strr {

/// Matching knobs.
struct MapMatcherOptions {
  double candidate_radius_m = 60.0;  ///< candidate search radius per fix
  size_t max_candidates = 6;         ///< strongest candidates kept per fix
  double gps_sigma_m = 20.0;         ///< emission noise scale
  double transition_beta = 2.0;      ///< route-vs-line mismatch scale (log)
  double max_route_factor = 4.0;     ///< route search budget multiplier
};

/// Viterbi matcher; construct once per network, Match per trajectory.
class MapMatcher {
 public:
  MapMatcher(const RoadNetwork& network, MapMatcherOptions options = {});

  /// Matches a raw trajectory. Fixes with no candidate in radius are
  /// dropped; if fewer than one fix survives, returns an empty matched
  /// trajectory (same ids). Consecutive identical segments are collapsed
  /// into one MatchedSample at the first enter time.
  StatusOr<MatchedTrajectory> Match(const RawTrajectory& raw) const;

  const MapMatcherOptions& options() const { return options_; }

 private:
  /// On-network travel distance (meters) from the head of `from` to the
  /// head of `to`, bounded by `budget_m`; +inf when not reachable in budget.
  double RouteDistance(SegmentId from, SegmentId to, double budget_m) const;

  const RoadNetwork& network_;
  MapMatcherOptions options_;
  SegmentGrid grid_;
};

}  // namespace strr

#endif  // STRR_TRAJ_MAP_MATCHER_H_
