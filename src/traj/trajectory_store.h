// TrajectoryStore: the cleaned (map-matched) trajectory database.
//
// Holds every MatchedTrajectory grouped by day and exposes the iteration
// and summary statistics the index builders and the Table 4.1 bench need.
#ifndef STRR_TRAJ_TRAJECTORY_STORE_H_
#define STRR_TRAJ_TRAJECTORY_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "traj/trajectory.h"
#include "util/result.h"
#include "util/status.h"

namespace strr {

/// Dataset-level summary (the paper's Table 4.1 rows).
struct DatasetStats {
  int32_t num_days = 0;
  uint32_t num_taxis = 0;
  uint64_t num_trajectories = 0;
  uint64_t num_samples = 0;   ///< matched (segment, time) observations
  double mean_speed_mps = 0.0;
};

/// In-memory matched-trajectory database.
class TrajectoryStore {
 public:
  explicit TrajectoryStore(int32_t num_days) : by_day_(num_days) {}

  /// Adds a trajectory; its day must be within [0, num_days).
  Status Add(MatchedTrajectory trajectory);

  int32_t num_days() const { return static_cast<int32_t>(by_day_.size()); }

  const std::vector<MatchedTrajectory>& TrajectoriesOnDay(DayIndex day) const {
    return by_day_[day];
  }

  /// Invokes `fn` for every trajectory, day by day.
  void ForEach(const std::function<void(const MatchedTrajectory&)>& fn) const;

  DatasetStats ComputeStats() const;

  uint64_t NumTrajectories() const;

 private:
  std::vector<std::vector<MatchedTrajectory>> by_day_;
};

}  // namespace strr

#endif  // STRR_TRAJ_TRAJECTORY_STORE_H_
