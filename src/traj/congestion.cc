#include "traj/congestion.h"

#include <cmath>

namespace strr {

namespace {
double Bump(double t, double center, double width) {
  double z = (t - center) / width;
  return std::exp(-0.5 * z * z);
}
}  // namespace

double CongestionModel::Multiplier(RoadLevel level,
                                   int64_t time_of_day_sec) const {
  double dip, base;
  switch (level) {
    case RoadLevel::kHighway:
      dip = highway_dip;
      base = highway_base_dip;
      break;
    case RoadLevel::kArterial:
      dip = arterial_dip;
      base = arterial_base_dip;
      break;
    default:
      dip = local_dip;
      base = local_base_dip;
      break;
  }
  double t = static_cast<double>(time_of_day_sec);
  double rush = Bump(t, morning_peak_sec, peak_width_sec) +
                Bump(t, evening_peak_sec, peak_width_sec);
  if (rush > 1.0) rush = 1.0;
  double mult = (1.0 - base) * (1.0 - dip * rush);
  return mult < 0.05 ? 0.05 : mult;
}

double CongestionModel::ExpectedSpeed(RoadLevel level,
                                      int64_t time_of_day_sec) const {
  return FreeFlowSpeed(level) * Multiplier(level, time_of_day_sec);
}

}  // namespace strr
