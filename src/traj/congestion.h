// Time-of-day congestion model for the synthetic fleet.
//
// Travel speeds dip during the morning (~8:00) and evening (~18:00) rush
// hours; local roads are hit harder than highways, reproducing the paper's
// observations: smaller reachable regions at rush hours (Fig. 4.5/4.6) and
// highway-backbone stability across probability levels (Fig. 4.4).
#ifndef STRR_TRAJ_CONGESTION_H_
#define STRR_TRAJ_CONGESTION_H_

#include "roadnet/segment.h"
#include "util/time_util.h"

namespace strr {

/// Parameters of the double-Gaussian congestion dip.
struct CongestionModel {
  double morning_peak_sec = HMS(8, 0);   ///< centre of the AM rush
  double evening_peak_sec = HMS(18, 0);  ///< centre of the PM rush
  double peak_width_sec = 4500.0;        ///< Gaussian sigma (~75 min)
  double highway_dip = 0.35;   ///< max fractional speed loss, highways
  double arterial_dip = 0.50;  ///< … arterials
  double local_dip = 0.60;     ///< … local streets
  /// Permanent urban friction: real traffic rarely touches the design
  /// speed even off-peak (signals, pedestrians, parking). Applied on top
  /// of the rush-hour dips.
  double highway_base_dip = 0.05;
  double arterial_base_dip = 0.10;
  double local_base_dip = 0.12;

  /// Speed multiplier in (0, 1] for a road class at a time of day.
  double Multiplier(RoadLevel level, int64_t time_of_day_sec) const;

  /// Effective expected speed (free-flow x multiplier), meters/second.
  double ExpectedSpeed(RoadLevel level, int64_t time_of_day_sec) const;
};

}  // namespace strr

#endif  // STRR_TRAJ_CONGESTION_H_
