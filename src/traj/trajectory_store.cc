#include "traj/trajectory_store.h"

namespace strr {

Status TrajectoryStore::Add(MatchedTrajectory trajectory) {
  if (trajectory.day < 0 ||
      trajectory.day >= static_cast<DayIndex>(by_day_.size())) {
    return Status::InvalidArgument(
        "trajectory day " + std::to_string(trajectory.day) +
        " outside dataset range [0, " + std::to_string(by_day_.size()) + ")");
  }
  by_day_[trajectory.day].push_back(std::move(trajectory));
  return Status::OK();
}

void TrajectoryStore::ForEach(
    const std::function<void(const MatchedTrajectory&)>& fn) const {
  for (const auto& day : by_day_) {
    for (const MatchedTrajectory& t : day) fn(t);
  }
}

uint64_t TrajectoryStore::NumTrajectories() const {
  uint64_t n = 0;
  for (const auto& day : by_day_) n += day.size();
  return n;
}

DatasetStats TrajectoryStore::ComputeStats() const {
  DatasetStats stats;
  stats.num_days = num_days();
  uint64_t speed_samples = 0;
  double speed_sum = 0.0;
  uint32_t max_taxi = 0;
  bool any = false;
  for (const auto& day : by_day_) {
    for (const MatchedTrajectory& t : day) {
      ++stats.num_trajectories;
      stats.num_samples += t.samples.size();
      any = true;
      if (t.taxi > max_taxi) max_taxi = t.taxi;
      for (const MatchedSample& s : t.samples) {
        speed_sum += s.speed_mps;
        ++speed_samples;
      }
    }
  }
  stats.num_taxis = any ? max_taxi + 1 : 0;
  stats.mean_speed_mps = speed_samples > 0 ? speed_sum / speed_samples : 0.0;
  return stats;
}

}  // namespace strr
