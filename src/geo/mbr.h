// Minimum bounding rectangle in projected (meter) space.
//
// Used as the R-tree key type and as the per-road-segment spatial summary
// the paper's road-network model calls for.
#ifndef STRR_GEO_MBR_H_
#define STRR_GEO_MBR_H_

#include <algorithm>
#include <limits>
#include <ostream>

#include "geo/point.h"

namespace strr {

/// Axis-aligned rectangle; default-constructed state is *empty* (inverted
/// bounds) and behaves as the identity for Extend/Union.
class Mbr {
 public:
  Mbr()
      : min_x_(std::numeric_limits<double>::max()),
        min_y_(std::numeric_limits<double>::max()),
        max_x_(std::numeric_limits<double>::lowest()),
        max_y_(std::numeric_limits<double>::lowest()) {}

  Mbr(double min_x, double min_y, double max_x, double max_y)
      : min_x_(min_x), min_y_(min_y), max_x_(max_x), max_y_(max_y) {}

  static Mbr FromPoint(const XyPoint& p) { return Mbr(p.x, p.y, p.x, p.y); }

  static Mbr FromPoints(const XyPoint& a, const XyPoint& b) {
    return Mbr(std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
               std::max(a.y, b.y));
  }

  bool IsEmpty() const { return min_x_ > max_x_ || min_y_ > max_y_; }

  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }

  double Width() const { return IsEmpty() ? 0.0 : max_x_ - min_x_; }
  double Height() const { return IsEmpty() ? 0.0 : max_y_ - min_y_; }
  double Area() const { return Width() * Height(); }
  double Perimeter() const { return 2.0 * (Width() + Height()); }

  XyPoint Center() const {
    return {(min_x_ + max_x_) / 2.0, (min_y_ + max_y_) / 2.0};
  }

  /// Grows this rectangle to cover `p`.
  void Extend(const XyPoint& p) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x_ = std::max(max_x_, p.x);
    max_y_ = std::max(max_y_, p.y);
  }

  /// Grows this rectangle to cover `other`.
  void Extend(const Mbr& other) {
    if (other.IsEmpty()) return;
    min_x_ = std::min(min_x_, other.min_x_);
    min_y_ = std::min(min_y_, other.min_y_);
    max_x_ = std::max(max_x_, other.max_x_);
    max_y_ = std::max(max_y_, other.max_y_);
  }

  /// Expands every side outward by `margin` meters.
  Mbr Expanded(double margin) const {
    if (IsEmpty()) return *this;
    return Mbr(min_x_ - margin, min_y_ - margin, max_x_ + margin,
               max_y_ + margin);
  }

  bool Intersects(const Mbr& o) const {
    if (IsEmpty() || o.IsEmpty()) return false;
    return min_x_ <= o.max_x_ && o.min_x_ <= max_x_ && min_y_ <= o.max_y_ &&
           o.min_y_ <= max_y_;
  }

  bool Contains(const XyPoint& p) const {
    return !IsEmpty() && p.x >= min_x_ && p.x <= max_x_ && p.y >= min_y_ &&
           p.y <= max_y_;
  }

  bool Contains(const Mbr& o) const {
    if (IsEmpty() || o.IsEmpty()) return false;
    return o.min_x_ >= min_x_ && o.max_x_ <= max_x_ && o.min_y_ >= min_y_ &&
           o.max_y_ <= max_y_;
  }

  /// Area of the union-cover minus own area; the classic R-tree insertion
  /// cost ("enlargement") metric.
  double EnlargementToCover(const Mbr& o) const {
    Mbr u = *this;
    u.Extend(o);
    return u.Area() - Area();
  }

  /// Minimum Euclidean distance from `p` to this rectangle (0 inside).
  double MinDistance(const XyPoint& p) const {
    if (IsEmpty()) return std::numeric_limits<double>::max();
    double dx = std::max({min_x_ - p.x, 0.0, p.x - max_x_});
    double dy = std::max({min_y_ - p.y, 0.0, p.y - max_y_});
    return std::sqrt(dx * dx + dy * dy);
  }

  bool operator==(const Mbr& o) const {
    if (IsEmpty() && o.IsEmpty()) return true;
    return min_x_ == o.min_x_ && min_y_ == o.min_y_ && max_x_ == o.max_x_ &&
           max_y_ == o.max_y_;
  }

 private:
  double min_x_, min_y_, max_x_, max_y_;
};

inline std::ostream& operator<<(std::ostream& os, const Mbr& m) {
  if (m.IsEmpty()) return os << "[empty]";
  return os << "[" << m.min_x() << "," << m.min_y() << " .. " << m.max_x()
            << "," << m.max_y() << "]";
}

}  // namespace strr

#endif  // STRR_GEO_MBR_H_
