#include "geo/polyline.h"

#include <algorithm>
#include <cassert>

namespace strr {

double PointSegmentDistance(const XyPoint& p, const XyPoint& a,
                            const XyPoint& b, XyPoint* closest, double* t) {
  XyPoint ab = b - a;
  double len2 = ab.NormSquared();
  double tt = 0.0;
  if (len2 > 0.0) {
    tt = std::clamp((p - a).Dot(ab) / len2, 0.0, 1.0);
  }
  XyPoint c = a + ab * tt;
  if (closest != nullptr) *closest = c;
  if (t != nullptr) *t = tt;
  return Distance(p, c);
}

Polyline::Polyline(std::vector<XyPoint> points) : points_(std::move(points)) {
  cumulative_.reserve(points_.size());
  double acc = 0.0;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) acc += Distance(points_[i - 1], points_[i]);
    cumulative_.push_back(acc);
    mbr_.Extend(points_[i]);
  }
}

XyPoint Polyline::Interpolate(double offset) const {
  if (points_.empty()) return {};
  if (points_.size() == 1 || offset <= 0.0) return points_.front();
  if (offset >= Length()) return points_.back();
  // Find first vertex whose cumulative length exceeds the offset.
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), offset);
  size_t i = static_cast<size_t>(it - cumulative_.begin());
  assert(i > 0 && i < points_.size());
  double seg_start = cumulative_[i - 1];
  double seg_len = cumulative_[i] - seg_start;
  double t = seg_len > 0.0 ? (offset - seg_start) / seg_len : 0.0;
  return points_[i - 1] + (points_[i] - points_[i - 1]) * t;
}

PolylineProjection Polyline::Project(const XyPoint& p) const {
  PolylineProjection best;
  best.distance = std::numeric_limits<double>::max();
  if (points_.empty()) return best;
  if (points_.size() == 1) {
    best.closest = points_[0];
    best.distance = Distance(p, points_[0]);
    best.offset = 0.0;
    return best;
  }
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    XyPoint closest;
    double t;
    double d =
        PointSegmentDistance(p, points_[i], points_[i + 1], &closest, &t);
    if (d < best.distance) {
      best.distance = d;
      best.closest = closest;
      best.segment_index = i;
      best.offset = cumulative_[i] + t * (cumulative_[i + 1] - cumulative_[i]);
    }
  }
  return best;
}

std::vector<Polyline> Polyline::SplitAt(
    const std::vector<double>& offsets) const {
  std::vector<Polyline> out;
  if (IsEmpty()) {
    out.push_back(*this);
    return out;
  }
  const double total = Length();
  std::vector<XyPoint> current;
  current.push_back(points_.front());
  size_t vertex = 1;  // next original vertex to consume
  double prev_cut = 0.0;
  for (double cut : offsets) {
    if (cut <= prev_cut || cut >= total) continue;
    // Consume original vertices strictly before the cut point.
    while (vertex < points_.size() && cumulative_[vertex] < cut) {
      current.push_back(points_[vertex]);
      ++vertex;
    }
    XyPoint at = Interpolate(cut);
    current.push_back(at);
    out.emplace_back(std::move(current));
    current.clear();
    current.push_back(at);
    prev_cut = cut;
  }
  while (vertex < points_.size()) {
    current.push_back(points_[vertex]);
    ++vertex;
  }
  out.emplace_back(std::move(current));
  return out;
}

}  // namespace strr
