#include "geo/geojson.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace strr {

namespace {
std::string FormatCoord(const GeoPoint& p) {
  char buf[64];
  // GeoJSON is [lon, lat].
  std::snprintf(buf, sizeof(buf), "[%.6f,%.6f]", p.lon, p.lat);
  return buf;
}
}  // namespace

std::string GeoJsonWriter::Quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string GeoJsonWriter::PropsToJson(const Properties& props) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [k, v] : props) {
    if (!first) os << ",";
    first = false;
    os << Quoted(k) << ":" << v;
  }
  os << "}";
  return os.str();
}

void GeoJsonWriter::AddLineString(const std::vector<GeoPoint>& coords,
                                  const Properties& props) {
  std::ostringstream os;
  os << "{\"type\":\"Feature\",\"properties\":" << PropsToJson(props)
     << ",\"geometry\":{\"type\":\"LineString\",\"coordinates\":[";
  for (size_t i = 0; i < coords.size(); ++i) {
    if (i > 0) os << ",";
    os << FormatCoord(coords[i]);
  }
  os << "]}}";
  features_.push_back(os.str());
}

void GeoJsonWriter::AddPoint(const GeoPoint& p, const Properties& props) {
  std::ostringstream os;
  os << "{\"type\":\"Feature\",\"properties\":" << PropsToJson(props)
     << ",\"geometry\":{\"type\":\"Point\",\"coordinates\":" << FormatCoord(p)
     << "}}";
  features_.push_back(os.str());
}

std::string GeoJsonWriter::ToString() const {
  std::ostringstream os;
  os << "{\"type\":\"FeatureCollection\",\"features\":[";
  for (size_t i = 0; i < features_.size(); ++i) {
    if (i > 0) os << ",";
    os << features_[i];
  }
  os << "]}";
  return os.str();
}

Status GeoJsonWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToString();
  if (!out) return Status::IoError("short write to " + path);
  return Status::OK();
}

}  // namespace strr
