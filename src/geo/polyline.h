// Polyline geometry helpers for road-segment shapes: length, interpolation,
// point-to-polyline projection (the map-matcher's inner loop).
#ifndef STRR_GEO_POLYLINE_H_
#define STRR_GEO_POLYLINE_H_

#include <vector>

#include "geo/mbr.h"
#include "geo/point.h"

namespace strr {

/// Result of projecting a point onto a polyline.
struct PolylineProjection {
  XyPoint closest;        ///< nearest point on the polyline
  double distance = 0.0;  ///< meters from query point to `closest`
  double offset = 0.0;    ///< arc-length from the polyline start to `closest`
  size_t segment_index = 0;  ///< index of the vertex pair containing it
};

/// Immutable sequence of projected points with cached cumulative lengths.
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<XyPoint> points);

  const std::vector<XyPoint>& points() const { return points_; }
  size_t NumPoints() const { return points_.size(); }
  bool IsEmpty() const { return points_.size() < 2; }

  /// Total arc length, meters.
  double Length() const {
    return cumulative_.empty() ? 0.0 : cumulative_.back();
  }

  /// Tight bounding rectangle of all vertices.
  const Mbr& BoundingBox() const { return mbr_; }

  /// Point at arc-length `offset` from the start (clamped to [0, Length]).
  XyPoint Interpolate(double offset) const;

  /// Nearest point on the polyline to `p`.
  PolylineProjection Project(const XyPoint& p) const;

  /// Splits this polyline at the given sorted arc-length offsets, returning
  /// the resulting pieces in order. Offsets outside (0, Length) are ignored.
  /// Used by road re-segmentation.
  std::vector<Polyline> SplitAt(const std::vector<double>& offsets) const;

 private:
  std::vector<XyPoint> points_;
  std::vector<double> cumulative_;  // cumulative_[i] = length up to points_[i]
  Mbr mbr_;
};

/// Distance from point `p` to the segment [a, b], plus the projection
/// parameter t in [0,1] and the closest point.
double PointSegmentDistance(const XyPoint& p, const XyPoint& a,
                            const XyPoint& b, XyPoint* closest = nullptr,
                            double* t = nullptr);

}  // namespace strr

#endif  // STRR_GEO_POLYLINE_H_
