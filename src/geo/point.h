// Geographic and projected point types.
//
// The library works in two coordinate spaces:
//  * GeoPoint  — WGS84 latitude/longitude in degrees (what GPS emits).
//  * XyPoint   — meters in a local equirectangular projection anchored at a
//                reference GeoPoint (what geometry and distance code uses).
#ifndef STRR_GEO_POINT_H_
#define STRR_GEO_POINT_H_

#include <cmath>
#include <ostream>

namespace strr {

/// WGS84 coordinate, degrees.
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;

  bool operator==(const GeoPoint& o) const {
    return lat == o.lat && lon == o.lon;
  }
};

/// Local planar coordinate, meters east (x) / north (y) of the projection
/// anchor.
struct XyPoint {
  double x = 0.0;
  double y = 0.0;

  XyPoint operator+(const XyPoint& o) const { return {x + o.x, y + o.y}; }
  XyPoint operator-(const XyPoint& o) const { return {x - o.x, y - o.y}; }
  XyPoint operator*(double s) const { return {x * s, y * s}; }

  double Dot(const XyPoint& o) const { return x * o.x + y * o.y; }
  double NormSquared() const { return x * x + y * y; }
  double Norm() const { return std::sqrt(NormSquared()); }

  bool operator==(const XyPoint& o) const { return x == o.x && y == o.y; }
};

/// Euclidean distance between two projected points, meters.
inline double Distance(const XyPoint& a, const XyPoint& b) {
  return (a - b).Norm();
}

/// Great-circle (haversine) distance between two geographic points, meters.
double HaversineMeters(const GeoPoint& a, const GeoPoint& b);

/// Bidirectional local projection anchored at `origin`. Accurate to well
/// under 0.1% over a metropolitan extent (tens of km), which is all the
/// algorithms need — distances feed travel-time heuristics, not geodesy.
class Projection {
 public:
  explicit Projection(GeoPoint origin);
  Projection() : Projection(GeoPoint{0.0, 0.0}) {}

  XyPoint ToXy(const GeoPoint& p) const;
  GeoPoint ToGeo(const XyPoint& p) const;

  const GeoPoint& origin() const { return origin_; }

 private:
  GeoPoint origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

inline std::ostream& operator<<(std::ostream& os, const GeoPoint& p) {
  return os << "(" << p.lat << ", " << p.lon << ")";
}
inline std::ostream& operator<<(std::ostream& os, const XyPoint& p) {
  return os << "(" << p.x << "m, " << p.y << "m)";
}

}  // namespace strr

#endif  // STRR_GEO_POINT_H_
