// GeoJSON FeatureCollection writer, used to regenerate the paper's map
// figures (Figs 4.2, 4.4, 4.6, 4.9) as files a browser or geojson.io can
// render.
#ifndef STRR_GEO_GEOJSON_H_
#define STRR_GEO_GEOJSON_H_

#include <map>
#include <string>
#include <vector>

#include "geo/point.h"
#include "util/status.h"

namespace strr {

/// Accumulates features and serializes them as a GeoJSON FeatureCollection.
class GeoJsonWriter {
 public:
  /// Property bag attached to a feature; values are emitted verbatim for
  /// numbers and quoted for strings.
  using Properties = std::map<std::string, std::string>;

  /// Adds a LineString feature from geographic coordinates.
  void AddLineString(const std::vector<GeoPoint>& coords,
                     const Properties& props = {});

  /// Adds a Point feature.
  void AddPoint(const GeoPoint& p, const Properties& props = {});

  /// Serializes the collection to a JSON string.
  std::string ToString() const;

  /// Writes the collection to `path`.
  Status WriteFile(const std::string& path) const;

  size_t NumFeatures() const { return features_.size(); }

  /// Helper: quotes a string value for use in Properties.
  static std::string Quoted(const std::string& s);

 private:
  std::vector<std::string> features_;

  static std::string PropsToJson(const Properties& props);
};

}  // namespace strr

#endif  // STRR_GEO_GEOJSON_H_
