#include "geo/point.h"

namespace strr {

namespace {
constexpr double kEarthRadiusMeters = 6371008.8;
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double HaversineMeters(const GeoPoint& a, const GeoPoint& b) {
  double lat1 = a.lat * kDegToRad;
  double lat2 = b.lat * kDegToRad;
  double dlat = (b.lat - a.lat) * kDegToRad;
  double dlon = (b.lon - a.lon) * kDegToRad;
  double s = std::sin(dlat / 2.0);
  double t = std::sin(dlon / 2.0);
  double h = s * s + std::cos(lat1) * std::cos(lat2) * t * t;
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

Projection::Projection(GeoPoint origin) : origin_(origin) {
  meters_per_deg_lat_ = kEarthRadiusMeters * kDegToRad;
  meters_per_deg_lon_ =
      kEarthRadiusMeters * kDegToRad * std::cos(origin.lat * kDegToRad);
}

XyPoint Projection::ToXy(const GeoPoint& p) const {
  return {(p.lon - origin_.lon) * meters_per_deg_lon_,
          (p.lat - origin_.lat) * meters_per_deg_lat_};
}

GeoPoint Projection::ToGeo(const XyPoint& p) const {
  return {origin_.lat + p.y / meters_per_deg_lat_,
          origin_.lon + p.x / meters_per_deg_lon_};
}

}  // namespace strr
