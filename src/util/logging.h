// Minimal leveled logger. The library is quiet by default (kWarning);
// tools and benches raise the level for progress reporting.
#ifndef STRR_UTIL_LOGGING_H_
#define STRR_UTIL_LOGGING_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace strr {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-collecting helper behind the STRR_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace strr

#define STRR_LOG(level)                                                   \
  if (::strr::LogLevel::k##level < ::strr::GetLogLevel()) {               \
  } else                                                                  \
    ::strr::internal::LogMessage(::strr::LogLevel::k##level, __FILE__,    \
                                 __LINE__)                                \
        .stream()

#endif  // STRR_UTIL_LOGGING_H_
