// Minimal leveled logger. The library is quiet by default (kWarning);
// tools and benches raise the level for progress reporting.
#ifndef STRR_UTIL_LOGGING_H_
#define STRR_UTIL_LOGGING_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace strr {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Applies STRR_LOG_LEVEL from the environment, if set: one of
/// debug|info|warning|error|off (case-insensitive). Unset or
/// unrecognized values leave the level untouched. Tools and tests call
/// this once at startup so operators can turn on structured logging
/// without a rebuild.
void SetLogLevelFromEnv();

namespace internal {

/// Stream-collecting helper behind the STRR_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace strr

#define STRR_LOG(level)                                                   \
  if (::strr::LogLevel::k##level < ::strr::GetLogLevel()) {               \
  } else                                                                  \
    ::strr::internal::LogMessage(::strr::LogLevel::k##level, __FILE__,    \
                                 __LINE__)                                \
        .stream()

#endif  // STRR_UTIL_LOGGING_H_
