// FlatU64Map: open-addressing hash map from uint64_t keys to values,
// stored flat in two parallel arrays — the cache-conscious replacement
// for node-based unordered_map in grow-only memo caches (Router's path
// cache). One lookup is a hash, a mask and a short linear probe over one
// contiguous array: no bucket pointer chase, no per-node allocation.
//
// Deliberately minimal: insert-or-find and lookup only (no erase — the
// memo caches it serves never remove entries), power-of-two capacity,
// linear probing at <= 0.7 load. Values live in a parallel vector so
// probing touches only the 8-byte keys.
#ifndef STRR_UTIL_FLAT_HASH_H_
#define STRR_UTIL_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace strr {

template <typename V>
class FlatU64Map {
 public:
  explicit FlatU64Map(size_t initial_capacity = 64) {
    size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    slots_.assign(cap, Slot{});
  }

  size_t size() const { return size_; }

  /// Pointer to the value for `key`, or nullptr when absent.
  V* Find(uint64_t key) {
    size_t i = Probe(key);
    return slots_[i].used ? &values_[slots_[i].value_index] : nullptr;
  }
  const V* Find(uint64_t key) const {
    size_t i = Probe(key);
    return slots_[i].used ? &values_[slots_[i].value_index] : nullptr;
  }

  /// Returns {value pointer, inserted}. The pointer stays valid until the
  /// next insertion (values live in a growing vector).
  std::pair<V*, bool> Emplace(uint64_t key, V value) {
    MaybeGrow();
    size_t i = Probe(key);
    if (slots_[i].used) return {&values_[slots_[i].value_index], false};
    slots_[i].used = true;
    slots_[i].key = key;
    slots_[i].value_index = static_cast<uint32_t>(values_.size());
    values_.push_back(std::move(value));
    ++size_;
    return {&values_.back(), true};
  }

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t value_index = 0;
    bool used = false;
  };

  static uint64_t Mix(uint64_t k) {
    // splitmix64 finalizer: full-avalanche so sequential (src<<32)|dst
    // keys spread over the table.
    k ^= k >> 30;
    k *= 0xbf58476d1ce4e5b9ULL;
    k ^= k >> 27;
    k *= 0x94d049bb133111ebULL;
    k ^= k >> 31;
    return k;
  }

  /// Index of `key`'s slot (used) or the first free slot of its probe
  /// sequence. The table always keeps free slots (load <= 0.7).
  size_t Probe(uint64_t key) const {
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(Mix(key)) & mask;
    while (slots_[i].used && slots_[i].key != key) i = (i + 1) & mask;
    return i;
  }

  void MaybeGrow() {
    if ((size_ + 1) * 10 <= slots_.size() * 7) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (const Slot& s : old) {
      if (!s.used) continue;
      size_t i = Probe(s.key);
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::vector<V> values_;
  size_t size_ = 0;
};

}  // namespace strr

#endif  // STRR_UTIL_FLAT_HASH_H_
