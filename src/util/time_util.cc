#include "util/time_util.h"

#include <cstdio>

namespace strr {

std::string FormatTimeOfDay(int64_t time_of_day_sec) {
  int hours = static_cast<int>(time_of_day_sec / kSecondsPerHour) % 24;
  int minutes =
      static_cast<int>((time_of_day_sec % kSecondsPerHour) / kSecondsPerMinute);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%02d:%02d", hours, minutes);
  return buf;
}

std::string FormatDuration(int64_t seconds) {
  char buf[32];
  if (seconds % kSecondsPerHour == 0 && seconds >= kSecondsPerHour) {
    std::snprintf(buf, sizeof(buf), "%lldh",
                  static_cast<long long>(seconds / kSecondsPerHour));
  } else if (seconds % kSecondsPerMinute == 0 && seconds >= kSecondsPerMinute) {
    std::snprintf(buf, sizeof(buf), "%lldmin",
                  static_cast<long long>(seconds / kSecondsPerMinute));
  } else {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(seconds));
  }
  return buf;
}

}  // namespace strr
