// Cache-line-aligned allocation for the hot per-segment arrays.
//
// The frontier interior's label/stamp/offset arrays are streamed by every
// expansion; starting each array on its own 64-byte line keeps one pop's
// touches to one line per array and stops allocator-placed headers from
// splitting the first elements across lines. AlignedVector is a plain
// std::vector with this allocator — same API, same growth, only the
// storage alignment changes.
#ifndef STRR_UTIL_ALIGNED_H_
#define STRR_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace strr {

/// One x86/ARM cache line. (std::hardware_destructive_interference_size
/// is constexpr-unstable across toolchains; pinning 64 keeps layouts and
/// ABI identical everywhere.)
inline constexpr size_t kCacheLineBytes = 64;

/// Minimal allocator handing out kCacheLineBytes-aligned storage.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}  // NOLINT

  T* allocate(size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t(kCacheLineBytes)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(kCacheLineBytes));
  }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const { return true; }
};

template <typename T>
using AlignedVector = std::vector<T, CacheAlignedAllocator<T>>;

/// Software prefetch of the line holding `p` (read intent). A no-op on
/// toolchains without the builtin — prefetching is a scheduling hint and
/// never affects results.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

}  // namespace strr

#endif  // STRR_UTIL_ALIGNED_H_
