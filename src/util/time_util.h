// Time model used across the library.
//
// The trajectory dataset spans `m` calendar days. A timestamp is expressed
// as seconds since midnight of day 0:
//
//   timestamp = day_index * kSecondsPerDay + time_of_day_seconds
//
// Indexes partition the day into fixed-width *time slots* of `slot_seconds`
// each (the paper's Δt, default 5 minutes). Helpers below convert between
// timestamps, (day, time-of-day) pairs, and slot ids.
#ifndef STRR_UTIL_TIME_UTIL_H_
#define STRR_UTIL_TIME_UTIL_H_

#include <cstdint>
#include <string>

namespace strr {

using Timestamp = int64_t;  ///< seconds since midnight of day 0
using DayIndex = int32_t;   ///< 0-based calendar day within the dataset
using SlotId = int32_t;     ///< 0-based time slot within one day

inline constexpr int64_t kSecondsPerMinute = 60;
inline constexpr int64_t kSecondsPerHour = 3600;
inline constexpr int64_t kSecondsPerDay = 86400;

/// Day index of `ts` (floor division; negative timestamps are invalid input
/// and clamp to day 0 semantics only in release builds).
inline DayIndex DayOf(Timestamp ts) {
  return static_cast<DayIndex>(ts / kSecondsPerDay);
}

/// Seconds since midnight of `ts`'s own day, in [0, 86400).
inline int64_t TimeOfDay(Timestamp ts) { return ts % kSecondsPerDay; }

/// Builds a timestamp from a day index and a time of day in seconds.
inline Timestamp MakeTimestamp(DayIndex day, int64_t time_of_day_sec) {
  return static_cast<Timestamp>(day) * kSecondsPerDay + time_of_day_sec;
}

/// Time-of-day in seconds for h:m:s (24h clock).
inline int64_t HMS(int hours, int minutes = 0, int seconds = 0) {
  return hours * kSecondsPerHour + minutes * kSecondsPerMinute + seconds;
}

/// Normalizes an arbitrary (possibly negative or multi-day) second count
/// into a time-of-day in [0, 86400). Live feeds carry skewed or pre-epoch
/// timestamps; truncating modulo would turn those into negative slots.
inline int64_t NormalizeTimeOfDay(int64_t seconds) {
  return ((seconds % kSecondsPerDay) + kSecondsPerDay) % kSecondsPerDay;
}

/// Slot id within the day for a time-of-day, given the slot width.
inline SlotId SlotOfTimeOfDay(int64_t time_of_day_sec, int64_t slot_seconds) {
  return static_cast<SlotId>(time_of_day_sec / slot_seconds);
}

/// Slot id within the day for a full timestamp.
inline SlotId SlotOf(Timestamp ts, int64_t slot_seconds) {
  return SlotOfTimeOfDay(TimeOfDay(ts), slot_seconds);
}

/// Number of slots per day for the given width (last slot may be short when
/// 86400 % slot_seconds != 0; widths are validated at index build time).
inline int32_t SlotsPerDay(int64_t slot_seconds) {
  return static_cast<int32_t>((kSecondsPerDay + slot_seconds - 1) /
                              slot_seconds);
}

/// Formats a time-of-day as "HH:MM" (e.g. 39600 -> "11:00").
std::string FormatTimeOfDay(int64_t time_of_day_sec);

/// Formats a duration in seconds compactly, e.g. "5min", "90s", "2h".
std::string FormatDuration(int64_t seconds);

}  // namespace strr

#endif  // STRR_UTIL_TIME_UTIL_H_
