// Wall-clock stopwatch used by the query-statistics machinery and benches.
#ifndef STRR_UTIL_STOPWATCH_H_
#define STRR_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace strr {

/// Measures elapsed wall time with steady_clock resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement from now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in milliseconds (fractional).
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }

  /// Elapsed time in seconds (fractional).
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace strr

#endif  // STRR_UTIL_STOPWATCH_H_
