// Binary serialization helpers: little-endian fixed-width encodes plus
// varint32/64, in the LevelDB/RocksDB coding style. Used by the page store
// and the index persistence code.
#ifndef STRR_UTIL_SERIALIZE_H_
#define STRR_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace strr {

/// Appends values to a growing byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    char tmp[4];
    std::memcpy(tmp, &v, 4);
    buf_.append(tmp, 4);
  }

  void PutU64(uint64_t v) {
    char tmp[8];
    std::memcpy(tmp, &v, 8);
    buf_.append(tmp, 8);
  }

  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutDouble(double v) {
    char tmp[8];
    std::memcpy(tmp, &v, 8);
    buf_.append(tmp, 8);
  }

  /// LEB128 variable-length unsigned encode (1-5 bytes for 32-bit).
  void PutVarint32(uint32_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v));
  }

  void PutVarint64(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v));
  }

  /// Length-prefixed (varint32) byte string.
  void PutString(const std::string& s) {
    PutVarint32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }

  /// Length-prefixed list of uint32, delta-encoded when sorted==true
  /// (callers must then pass a non-decreasing list).
  void PutU32List(const std::vector<uint32_t>& values, bool sorted = false) {
    PutVarint32(static_cast<uint32_t>(values.size()));
    uint32_t prev = 0;
    for (uint32_t v : values) {
      if (sorted) {
        PutVarint32(v - prev);
        prev = v;
      } else {
        PutVarint32(v);
      }
    }
  }

  void PutRaw(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  const std::string& data() const { return buf_; }
  size_t size() const { return buf_.size(); }
  std::string Release() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Sequentially decodes values written by BinaryWriter. All getters report
/// truncation / malformed input via Status rather than UB.
class BinaryReader {
 public:
  BinaryReader(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  explicit BinaryReader(const std::string& s)
      : BinaryReader(s.data(), s.size()) {}

  StatusOr<uint8_t> GetU8() {
    if (pos_ + 1 > size_) return Truncated("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  StatusOr<uint32_t> GetU32() {
    if (pos_ + 4 > size_) return Truncated("u32");
    uint32_t v;
    std::memcpy(&v, data_ + pos_, 4);
    pos_ += 4;
    return v;
  }

  StatusOr<uint64_t> GetU64() {
    if (pos_ + 8 > size_) return Truncated("u64");
    uint64_t v;
    std::memcpy(&v, data_ + pos_, 8);
    pos_ += 8;
    return v;
  }

  StatusOr<int32_t> GetI32() {
    STRR_ASSIGN_OR_RETURN(uint32_t v, GetU32());
    return static_cast<int32_t>(v);
  }

  StatusOr<int64_t> GetI64() {
    STRR_ASSIGN_OR_RETURN(uint64_t v, GetU64());
    return static_cast<int64_t>(v);
  }

  StatusOr<double> GetDouble() {
    if (pos_ + 8 > size_) return Truncated("double");
    double v;
    std::memcpy(&v, data_ + pos_, 8);
    pos_ += 8;
    return v;
  }

  StatusOr<uint32_t> GetVarint32() {
    uint32_t result = 0;
    for (int shift = 0; shift <= 28; shift += 7) {
      if (pos_ >= size_) return Truncated("varint32");
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      result |= static_cast<uint32_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return result;
    }
    return Status::Corruption("varint32 too long");
  }

  StatusOr<uint64_t> GetVarint64() {
    uint64_t result = 0;
    for (int shift = 0; shift <= 63; shift += 7) {
      if (pos_ >= size_) return Truncated("varint64");
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return result;
    }
    return Status::Corruption("varint64 too long");
  }

  StatusOr<std::string> GetString() {
    STRR_ASSIGN_OR_RETURN(uint32_t n, GetVarint32());
    if (pos_ + n > size_) return Truncated("string body");
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  StatusOr<std::vector<uint32_t>> GetU32List(bool sorted = false) {
    STRR_ASSIGN_OR_RETURN(uint32_t n, GetVarint32());
    // Each element costs at least one byte on the wire; reject impossible
    // counts before reserving so corrupt input cannot OOM us.
    if (n > size_ - pos_ + 0u && n > RemainingBytes()) {
      return Status::Corruption("u32 list count exceeds remaining bytes");
    }
    std::vector<uint32_t> out;
    out.reserve(n);
    uint32_t prev = 0;
    for (uint32_t i = 0; i < n; ++i) {
      STRR_ASSIGN_OR_RETURN(uint32_t delta, GetVarint32());
      if (sorted) {
        prev += delta;
        out.push_back(prev);
      } else {
        out.push_back(delta);
      }
    }
    return out;
  }

  size_t position() const { return pos_; }
  size_t RemainingBytes() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ >= size_; }

 private:
  Status Truncated(const char* what) {
    return Status::Corruption(std::string("truncated input reading ") + what);
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace strr

#endif  // STRR_UTIL_SERIALIZE_H_
