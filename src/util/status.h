// Status: lightweight error-reporting value type used across the library.
//
// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
// (or a StatusOr<T>, see result.h) instead of throwing. A Status is cheap to
// move, carries an error code plus a human-readable message, and converts to
// bool-like checks via ok().
#ifndef STRR_UTIL_STATUS_H_
#define STRR_UTIL_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace strr {

/// Error categories used by the library. Kept deliberately small; the
/// message carries the details.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIoError = 5,
  kCorruption = 6,
  kFailedPrecondition = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kResourceExhausted = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "IOError").
const char* StatusCodeToString(StatusCode code);

/// Value type describing the outcome of an operation.
///
/// The OK state is represented with a null rep so that returning OK is a
/// single pointer move and `ok()` is a null check.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<Rep>(Rep{code, std::move(message)})) {}

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// True iff the operation succeeded.
  bool ok() const { return rep_ == nullptr; }

  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  // Factory helpers ----------------------------------------------------------
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace strr

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function.
#define STRR_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::strr::Status _strr_status = (expr);         \
    if (!_strr_status.ok()) return _strr_status;  \
  } while (0)

#endif  // STRR_UTIL_STATUS_H_
