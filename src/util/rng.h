// Seeded pseudo-random number generation for synthetic data.
//
// All randomness in the library flows through Rng so that datasets, fleets
// and workloads are exactly reproducible from a single uint64 seed.
#ifndef STRR_UTIL_RNG_H_
#define STRR_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace strr {

/// Deterministic random source (Mersenne engine behind a small facade).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Normal deviate.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Exponential deviate with the given rate (events per unit).
  double Exponential(double rate) {
    std::exponential_distribution<double> d(rate);
    return d(engine_);
  }

  /// Bernoulli trial.
  bool Chance(double p) { return Uniform() < p; }

  /// Samples an index in [0, weights.size()) proportional to weights.
  /// Returns 0 when all weights are zero.
  size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return 0;
    double x = Uniform(0.0, total);
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (x < acc) return i;
    }
    return weights.size() - 1;
  }

  /// Derives an independent child generator; used to give each simulated
  /// taxi / day its own stream so adding taxis does not perturb others.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace strr

#endif  // STRR_UTIL_RNG_H_
