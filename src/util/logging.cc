#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace strr {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

void SetLogLevelFromEnv() {
  const char* raw = std::getenv("STRR_LOG_LEVEL");
  if (raw == nullptr || *raw == '\0') return;
  std::string name(raw);
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  if (name == "debug") {
    SetLogLevel(LogLevel::kDebug);
  } else if (name == "info") {
    SetLogLevel(LogLevel::kInfo);
  } else if (name == "warning" || name == "warn") {
    SetLogLevel(LogLevel::kWarning);
  } else if (name == "error") {
    SetLogLevel(LogLevel::kError);
  } else if (name == "off") {
    SetLogLevel(LogLevel::kOff);
  } else {
    STRR_LOG(Warning) << "STRR_LOG_LEVEL=\"" << raw
                      << "\" is not one of debug|info|warning|error|off; "
                         "keeping the current level";
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
}

}  // namespace internal
}  // namespace strr
