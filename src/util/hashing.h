// Small non-cryptographic hashing helpers shared by in-memory keyed
// structures (the query-result cache keys its entries by a canonical byte
// encoding of the plan; FNV-1a over those bytes picks the shard and the
// bucket). Deterministic across runs and platforms — cache behaviour in
// tests must not depend on libstdc++'s std::hash seed.
#ifndef STRR_UTIL_HASHING_H_
#define STRR_UTIL_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace strr {

inline constexpr uint64_t kFnv1a64Offset = 1469598103934665603ULL;
inline constexpr uint64_t kFnv1a64Prime = 1099511628211ULL;

/// FNV-1a over a byte range, optionally continuing from a previous state.
inline uint64_t Fnv1a64(const void* data, size_t n,
                        uint64_t state = kFnv1a64Offset) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    state ^= p[i];
    state *= kFnv1a64Prime;
  }
  return state;
}

inline uint64_t Fnv1a64(std::string_view bytes,
                        uint64_t state = kFnv1a64Offset) {
  return Fnv1a64(bytes.data(), bytes.size(), state);
}

/// boost-style combiner for folding an already-hashed value into a seed.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace strr

#endif  // STRR_UTIL_HASHING_H_
