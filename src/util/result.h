// StatusOr<T>: a value-or-Status union, the return type of fallible
// functions that produce a value. Mirrors the absl/Arrow Result idiom.
#ifndef STRR_UTIL_RESULT_H_
#define STRR_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace strr {

/// Holds either a `T` or a non-OK Status explaining why there is no `T`.
///
/// Accessors assert in debug builds when misused; call ok() (or check
/// status()) before dereferencing.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  /// Constructs from a non-OK status (implicit, so STRR_RETURN_IF_ERROR-style
  /// early returns work).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }

  /// The error status, or OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when in the error state.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is set
};

}  // namespace strr

/// Assigns the value of a StatusOr expression to `lhs`, or propagates the
/// error out of the enclosing function.
#define STRR_ASSIGN_OR_RETURN(lhs, expr)               \
  STRR_ASSIGN_OR_RETURN_IMPL_(                         \
      STRR_CONCAT_(_strr_statusor_, __LINE__), lhs, expr)

#define STRR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define STRR_CONCAT_(a, b) STRR_CONCAT_IMPL_(a, b)
#define STRR_CONCAT_IMPL_(a, b) a##b

#endif  // STRR_UTIL_RESULT_H_
