// CRC32C (Castagnoli) checksums for on-disk record integrity.
//
// Software byte-table implementation (no SSE4.2 dependency) with the
// LevelDB-style mask/unmask transform: a raw CRC stored inside data that is
// itself CRC'd later degenerates (CRC of a string containing its own CRC is
// pathologically weak), so stored checksums are masked first.
#ifndef STRR_UTIL_CRC32C_H_
#define STRR_UTIL_CRC32C_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace strr {

namespace crc32c_internal {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli polynomial

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1u) ? (kPoly ^ (crc >> 1)) : (crc >> 1);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace crc32c_internal

/// Extends `crc` (a previous Crc32c result, or 0) with `data[0, n)`.
inline uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc ^= 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = crc32c_internal::kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

/// CRC32C of `data[0, n)`.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(std::string_view bytes) {
  return Crc32c(bytes.data(), bytes.size());
}

inline constexpr uint32_t kCrcMaskDelta = 0xa282ead8u;

/// Masks a CRC before storing it inside data that may itself be checksummed.
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kCrcMaskDelta;
}

/// Inverse of Crc32cMask.
inline uint32_t Crc32cUnmask(uint32_t masked) {
  uint32_t rot = masked - kCrcMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace strr

#endif  // STRR_UTIL_CRC32C_H_
