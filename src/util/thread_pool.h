// Fixed-size worker pool shared by index construction (Con-Index expansion
// runs per time slot are independent) and the concurrent query executor
// (independent query plans fan out across workers).
#ifndef STRR_UTIL_THREAD_POOL_H_
#define STRR_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace strr {

/// Simple task-queue thread pool. Tasks are void() callables; exceptions
/// must not escape tasks (the library does not use exceptions — the
/// futures overload transports values, not throwables).
///
/// Thread-safety: Submit, Wait and the futures overload may be called
/// concurrently from any number of threads. Tasks may Submit more work,
/// but must NOT call Wait(): a waiting task counts as pending, so it
/// would deadlock waiting for itself. Code that may run on a worker
/// checks OnWorkerThread() and joins via futures or runs inline instead
/// (QueryExecutor::ExecuteBatch does exactly that).
class ThreadPool {
 public:
  /// `num_threads` of 0 means "one worker per hardware thread".
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) {
      num_threads = std::thread::hardware_concurrency();
      if (num_threads == 0) num_threads = 1;  // unknown topology
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker. When the submitting
  /// thread has an active query trace, the task carries it along: the
  /// worker runs under a task-local child buffer that merges back into
  /// the query's span tree (the submitter joins the task — via future or
  /// Wait — before its QueryTrace closes, which every in-tree fan-out
  /// already does).
  void Submit(std::function<void()> task) {
    obs::internal::TaskTraceHandle trace = obs::internal::CaptureTaskTrace();
    if (trace.parent != nullptr) {
      task = [trace, inner = std::move(task)] {
        obs::internal::ScopedTaskTrace scope(trace);
        inner();
      };
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
      ++pending_;
      // Under the lock so stats() never observes completed > submitted
      // or pending > submitted.
      submitted_.fetch_add(1, std::memory_order_relaxed);
    }
    QueuedTasksGauge().Add(1);
    cv_.notify_one();
  }

  /// Enqueues a value-returning task and returns the future for its result.
  /// (Void callables take the overload above; join them with Wait().)
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>,
            typename = std::enable_if_t<!std::is_void_v<R>>>
  std::future<R> Submit(F&& fn) {
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Submit(std::function<void()>([task] { (*task)(); }));
    return result;
  }

  /// Blocks until the pool is idle: every task submitted so far — and any
  /// task submitted while waiting — has finished. Callers that need
  /// per-task joins under concurrent Submit traffic should hold futures
  /// instead.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  size_t num_threads() const { return workers_.size(); }

  /// Point-in-time observability counters. `queue_depth` is tasks waiting
  /// for a worker (not yet started); `pending` additionally includes tasks
  /// currently running. Consumers: QueryExecutor::front_door_stats surfaces
  /// these so operators can see whether latency comes from queueing, and
  /// backpressure logic (admission, the live ingestor) can reason about
  /// pool saturation coherently with its own queue depths.
  struct Stats {
    uint64_t submitted = 0;  ///< tasks ever enqueued
    uint64_t completed = 0;  ///< tasks finished
    size_t queue_depth = 0;  ///< enqueued, not yet picked up
    size_t pending = 0;      ///< enqueued or running
    size_t threads = 0;
  };
  Stats stats() const {
    Stats out;
    out.submitted = submitted_.load(std::memory_order_relaxed);
    out.completed = completed_.load(std::memory_order_relaxed);
    out.threads = workers_.size();
    std::lock_guard<std::mutex> lock(mu_);
    out.queue_depth = tasks_.size();
    out.pending = pending_;
    return out;
  }

  /// True when the calling thread is one of THIS pool's workers. Lets
  /// nested fan-out decide to run inline instead of re-submitting to the
  /// pool and blocking a worker on work that may never be scheduled.
  bool OnWorkerThread() const { return current_pool_ == this; }

 private:
  void WorkerLoop() {
    current_pool_ = this;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
        if (shutdown_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      QueuedTasksGauge().Add(-1);
      task();
      completed_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  /// Tasks enqueued-but-not-started summed over every pool in the process
  /// (executor, prewarm, frontier workers share one gauge): the per-pool
  /// split lives in stats(); the gauge answers "is anything backed up".
  static obs::Gauge& QueuedTasksGauge() {
    static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
        "strr_pool_queued_tasks");
    return g;
  }

  static thread_local const ThreadPool* current_pool_;

  mutable std::mutex mu_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  size_t pending_ = 0;
  bool shutdown_ = false;
};

inline thread_local const ThreadPool* ThreadPool::current_pool_ = nullptr;

}  // namespace strr

#endif  // STRR_UTIL_THREAD_POOL_H_
