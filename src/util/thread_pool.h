// Fixed-size worker pool used to parallelize index construction
// (Con-Index expansion runs per time slot are independent).
#ifndef STRR_UTIL_THREAD_POOL_H_
#define STRR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace strr {

/// Simple task-queue thread pool. Tasks are void() callables; exceptions
/// must not escape tasks (the library does not use exceptions).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
        if (shutdown_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  size_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace strr

#endif  // STRR_UTIL_THREAD_POOL_H_
