// Bloom filter in the LevelDB style: double hashing over one base hash,
// k derived from bits_per_key, k stored in the filter's last byte so the
// probe side needs no out-of-band configuration.
//
// Used by the immutable observation tables to answer "might this table
// touch segment S?" without decoding the batches; the same building block
// is the planned doorkeeper for posting lookups (ROADMAP).
#ifndef STRR_STORAGE_BLOOM_FILTER_H_
#define STRR_STORAGE_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace strr {

class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key = 10)
      : bits_per_key_(bits_per_key < 1 ? 1 : bits_per_key) {
    // k = bits_per_key * ln(2), clamped to a sane range.
    k_ = static_cast<uint32_t>(bits_per_key_ * 0.69);
    if (k_ < 1) k_ = 1;
    if (k_ > 30) k_ = 30;
  }

  /// Adds one key by its (already mixed) hash.
  void AddHash(uint64_t h) { hashes_.push_back(static_cast<uint32_t>(h)); }

  /// Builds the filter bytes (bit array + trailing k byte).
  std::string Build() const {
    size_t bits = hashes_.size() * static_cast<size_t>(bits_per_key_);
    if (bits < 64) bits = 64;  // small-n false-positive floor
    size_t bytes = (bits + 7) / 8;
    bits = bytes * 8;
    std::string filter(bytes, '\0');
    for (uint32_t h : hashes_) {
      uint32_t delta = (h >> 17) | (h << 15);
      for (uint32_t j = 0; j < k_; ++j) {
        uint32_t bit = h % static_cast<uint32_t>(bits);
        filter[bit / 8] |= static_cast<char>(1u << (bit % 8));
        h += delta;
      }
    }
    filter.push_back(static_cast<char>(k_));
    return filter;
  }

  size_t num_keys() const { return hashes_.size(); }

 private:
  int bits_per_key_;
  uint32_t k_;
  std::vector<uint32_t> hashes_;
};

/// Probes a filter produced by BloomFilterBuilder::Build. An empty or
/// malformed filter conservatively answers true (never a false negative).
inline bool BloomMayContain(std::string_view filter, uint64_t hash) {
  if (filter.size() < 2) return true;
  size_t bits = (filter.size() - 1) * 8;
  uint32_t k = static_cast<uint8_t>(filter.back());
  if (k == 0 || k > 30) return true;  // reserved / corrupt: stay safe
  uint32_t h = static_cast<uint32_t>(hash);
  uint32_t delta = (h >> 17) | (h << 15);
  for (uint32_t j = 0; j < k; ++j) {
    uint32_t bit = h % static_cast<uint32_t>(bits);
    if ((filter[bit / 8] & static_cast<char>(1u << (bit % 8))) == 0) {
      return false;
    }
    h += delta;
  }
  return true;
}

}  // namespace strr

#endif  // STRR_STORAGE_BLOOM_FILTER_H_
