// Immutable observation tables: sealed, checksummed, bloom-filtered files
// holding coalesce-ready observation batches flushed out of the WAL
// memtable (the LevelDB table_builder idea specialized to the live tier's
// replay workload).
//
// A table preserves *batch boundaries and byte-exact observation values*
// (speeds as raw doubles) so recovery can re-publish the identical update
// stream the ingestor originally applied. The bloom filter over segment
// ids answers "might this table touch segment S?" without decoding.
//
// File layout (all little-endian, written atomically — a torn table file
// can never appear under its committed name):
//
//   u64 magic  u32 version
//   batches:   per batch  varint64 seq, varint32 count,
//              per obs    varint32 segment, varint64 zigzag(tod),
//                         f64 speed (raw bits)
//   bloom:     varint32 length + bytes (BloomFilterBuilder)
//   footer:    u64 num_batches, u64 num_observations,
//              u64 first_seq, u64 last_seq,
//              u32 crc32c (over every preceding byte), u64 tail magic
#ifndef STRR_STORAGE_OBS_TABLE_H_
#define STRR_STORAGE_OBS_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "live/observation.h"
#include "util/result.h"
#include "util/serialize.h"
#include "util/status.h"

namespace strr {

/// One WAL-acked batch: the unit of durability and of replay.
struct ObservationBatch {
  uint64_t seq = 0;  ///< monotonically increasing batch sequence number
  std::vector<SpeedObservation> observations;
};

/// Appends one batch to `w` in the shared WAL/table encoding.
void EncodeObservationBatch(BinaryWriter& w, const ObservationBatch& batch);

/// Decodes one batch; Corruption on malformed input, with allocation
/// clamped by the remaining bytes (hostile counts cannot OOM).
Status DecodeObservationBatch(BinaryReader& r, ObservationBatch* out);

/// Accumulates batches and seals them into an immutable table file.
class ObservationTableBuilder {
 public:
  explicit ObservationTableBuilder(int bloom_bits_per_key = 10);

  void AddBatch(const ObservationBatch& batch);

  /// Bytes of encoded batch data so far (the memtable flush trigger).
  size_t encoded_size() const { return writer_.size(); }
  uint64_t num_batches() const { return num_batches_; }

  /// Seals and atomically publishes the table at `path`.
  Status Finish(const std::string& path);

 private:
  BinaryWriter writer_;  // batch section only; header/bloom/footer at Finish
  std::vector<uint64_t> segment_hashes_;
  int bloom_bits_per_key_;
  uint64_t num_batches_ = 0;
  uint64_t num_observations_ = 0;
  uint64_t first_seq_ = 0;
  uint64_t last_seq_ = 0;
};

/// Read side: verifies the whole-file checksum at open, then exposes the
/// batches and the bloom filter.
class ObservationTable {
 public:
  static StatusOr<ObservationTable> Open(const std::string& path);

  /// Parses table bytes (exposed for corruption tests); `origin` labels
  /// error messages.
  static StatusOr<ObservationTable> Parse(const std::string& bytes,
                                          const std::string& origin);

  const std::vector<ObservationBatch>& batches() const { return batches_; }
  std::vector<ObservationBatch> TakeBatches() { return std::move(batches_); }

  /// Bloom probe: false means no batch in this table touches `segment`.
  bool MayContainSegment(SegmentId segment) const;

  uint64_t first_seq() const { return first_seq_; }
  uint64_t last_seq() const { return last_seq_; }
  uint64_t num_observations() const { return num_observations_; }

 private:
  std::vector<ObservationBatch> batches_;
  std::string bloom_;
  uint64_t first_seq_ = 0;
  uint64_t last_seq_ = 0;
  uint64_t num_observations_ = 0;
};

}  // namespace strr

#endif  // STRR_STORAGE_OBS_TABLE_H_
