#include "storage/fs_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace strr {

namespace {

// Bytes remaining before the injected "disk full" fires; negative = off.
// A single global is enough: the hook exists for single-threaded
// persistence tests.
std::atomic<int64_t> g_inject_failure_after{-1};

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// write(2) until done, honoring the failure-injection budget. On an
/// injected failure a *prefix* may have reached the file — exactly the
/// torn-write shape a crash or full disk produces.
Status WriteFully(int fd, const char* data, size_t n, const std::string& path) {
  int64_t budget = g_inject_failure_after.load(std::memory_order_relaxed);
  if (budget >= 0) {
    int64_t allowed = budget < static_cast<int64_t>(n)
                          ? budget
                          : static_cast<int64_t>(n);
    g_inject_failure_after.store(budget - allowed, std::memory_order_relaxed);
    if (allowed < static_cast<int64_t>(n)) {
      // Write the allowed prefix, then report ENOSPC-like failure.
      size_t wrote = 0;
      while (wrote < static_cast<size_t>(allowed)) {
        ssize_t r = ::write(fd, data + wrote,
                            static_cast<size_t>(allowed) - wrote);
        if (r < 0) {
          if (errno == EINTR) continue;
          return Errno("write", path);
        }
        wrote += static_cast<size_t>(r);
      }
      return Status::IoError("injected short write: " + path);
    }
  }
  size_t wrote = 0;
  while (wrote < n) {
    ssize_t r = ::write(fd, data + wrote, n - wrote);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    wrote += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

void TestInjectWriteFailureAfter(int64_t bytes) {
  g_inject_failure_after.store(bytes, std::memory_order_relaxed);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("cannot open for read", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("fstat", path);
    ::close(fd);
    return s;
  }
  if (st.st_size < 0) {
    ::close(fd);
    return Status::IoError("negative file size reported for " + path);
  }
  std::string bytes;
  bytes.resize(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < bytes.size()) {
    ssize_t r = ::read(fd, bytes.data() + got, bytes.size() - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      Status s = Errno("read", path);
      ::close(fd);
      return s;
    }
    if (r == 0) break;  // file shrank under us
    got += static_cast<size_t>(r);
  }
  ::close(fd);
  if (got != bytes.size()) {
    return Status::IoError("short read: " + path);
  }
  return bytes;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("cannot open dir for sync", dir);
  Status s;
  if (::fsync(fd) != 0) s = Errno("fsync dir", dir);
  ::close(fd);
  return s;
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("cannot open for write", tmp);
  Status s = WriteFully(fd, bytes.data(), bytes.size(), tmp);
  if (s.ok() && ::fsync(fd) != 0) s = Errno("fsync", tmp);
  if (::close(fd) != 0 && s.ok()) s = Errno("close", tmp);
  if (!s.ok()) {
    ::unlink(tmp.c_str());  // best effort; never touch the destination
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    s = Errno("rename", tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return s;
  }
  // Make the rename itself durable.
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  return SyncDir(parent.string());
}

StatusOr<std::unique_ptr<AppendOnlyFile>> AppendOnlyFile::Create(
    const std::string& path) {
  int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("cannot create", path);
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  if (Status s = SyncDir(parent.string()); !s.ok()) {
    ::close(fd);
    return s;
  }
  return std::unique_ptr<AppendOnlyFile>(new AppendOnlyFile(path, fd));
}

AppendOnlyFile::~AppendOnlyFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendOnlyFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::IoError("append on closed file " + path_);
  STRR_RETURN_IF_ERROR(WriteFully(fd_, data.data(), data.size(), path_));
  size_ += data.size();
  return Status::OK();
}

Status AppendOnlyFile::Sync() {
  if (fd_ < 0) return Status::IoError("sync on closed file " + path_);
#if defined(__APPLE__)
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
#else
  if (::fdatasync(fd_) != 0) return Errno("fdatasync", path_);
#endif
  return Status::OK();
}

Status AppendOnlyFile::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close", path_);
  return Status::OK();
}

}  // namespace strr
