#include "storage/buffer_pool.h"

#include <algorithm>

#include "storage/io_context.h"

namespace strr {

namespace {

/// Bumps the calling thread's attribution scope (if any) alongside the
/// pool-global counter. The pool lock is held by the caller, but `scope`
/// is thread-local to the requesting thread, so the two never race.
inline void Count(uint64_t StorageStats::* field) {
  if (StorageStats* scope = ScopedIoCounters::Current()) ++(scope->*field);
}

obs::Counter& PoolCounter(const char* name, const std::string& role) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (role.empty()) return registry.GetCounter(name);
  return registry.GetCounter(name, {{"role", role}});
}

uint64_t MixPageId(PageId id) {
  // splitmix64 finalizer: PageIds are sequential, the sketch rows want
  // well-spread bits.
  uint64_t x = id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BufferPool::BufferPool(FileManager* file, const BufferPoolOptions& options)
    : file_(file),
      options_(options),
      hits_counter_(PoolCounter("strr_bufferpool_hits_total", options.role)),
      misses_counter_(
          PoolCounter("strr_bufferpool_misses_total", options.role)),
      evictions_counter_(
          PoolCounter("strr_bufferpool_evictions_total", options.role)),
      admission_rejects_counter_(PoolCounter(
          "strr_bufferpool_admission_rejects_total", options.role)) {
  if (options_.policy == CachePolicy::kTinyLfu &&
      options_.capacity_pages > 0) {
    double share = std::clamp(options_.protected_share, 0.0, 1.0);
    protected_cap_ = static_cast<size_t>(
        static_cast<double>(options_.capacity_pages) * share);
    // Probation keeps at least one frame so every page still enters
    // through it (and the admission contest has a victim to weigh).
    protected_cap_ = std::min(protected_cap_, options_.capacity_pages - 1);
    // ~8 sketch counters per cached frame, the ResultCache density.
    sketch_ =
        std::make_unique<FrequencySketch>(options_.capacity_pages * 8);
  }
}

void BufferPool::TouchLocked(PageId id, Frame* frame) {
  if (options_.policy == CachePolicy::kLru || protected_cap_ == 0) {
    probation_.erase(frame->lru_it);
    probation_.push_front(id);
    frame->lru_it = probation_.begin();
    return;
  }
  if (frame->in_protected) {
    protected_.erase(frame->lru_it);
    protected_.push_front(id);
    frame->lru_it = protected_.begin();
    return;
  }
  // Re-use in probation promotes; the protected segment sheds its own LRU
  // back to probation when over budget (it keeps a second chance there).
  probation_.erase(frame->lru_it);
  protected_.push_front(id);
  frame->lru_it = protected_.begin();
  frame->in_protected = true;
  while (protected_.size() > protected_cap_) {
    PageId demoted = protected_.back();
    protected_.pop_back();
    Frame* d = frames_.at(demoted).get();
    probation_.push_front(demoted);
    d->lru_it = probation_.begin();
    d->in_protected = false;
  }
}

void BufferPool::EvictOneLocked() {
  PageId victim;
  if (!probation_.empty()) {
    victim = probation_.back();
    probation_.pop_back();
  } else {
    victim = protected_.back();
    protected_.pop_back();
  }
  frames_.erase(victim);
  ++pool_stats_.evictions;
  Count(&StorageStats::evictions);
  evictions_counter_.Add();
}

StatusOr<const Page*> BufferPool::ReadScratchLocked(PageId id) {
  if (scratch_ == nullptr) {
    scratch_ = std::make_unique<Page>(file_->page_size());
  }
  STRR_RETURN_IF_ERROR(file_->ReadPage(id, scratch_.get()));
  Count(&StorageStats::disk_page_reads);
  return const_cast<const Page*>(scratch_.get());
}

StatusOr<const Page*> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return FetchLocked(id);
}

Status BufferPool::ReadInto(PageId id, uint32_t offset, void* dst,
                            uint32_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  STRR_ASSIGN_OR_RETURN(const Page* page, FetchLocked(id));
  page->Read(offset, dst, n);
  return Status::OK();
}

StatusOr<const Page*> BufferPool::FetchLocked(PageId id) {
  if (options_.capacity_pages == 0) {
    // Degenerate pool: cache nothing. Every request is a miss served from
    // a private scratch frame (valid until the next Fetch).
    ++pool_stats_.cache_misses;
    Count(&StorageStats::cache_misses);
    misses_counter_.Add();
    return ReadScratchLocked(id);
  }
  if (sketch_ != nullptr) sketch_->Increment(MixPageId(id));
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++pool_stats_.cache_hits;
    Count(&StorageStats::cache_hits);
    hits_counter_.Add();
    TouchLocked(id, it->second.get());
    return const_cast<const Page*>(&it->second->page);
  }
  ++pool_stats_.cache_misses;
  Count(&StorageStats::cache_misses);
  misses_counter_.Add();

  if (frames_.size() >= options_.capacity_pages) {
    if (sketch_ != nullptr && !probation_.empty()) {
      // Admission contest: only displace the probation victim when the
      // incoming page has proven at least as useful recently. Rejected
      // pages are served via scratch and earn frequency for next time.
      PageId victim = probation_.back();
      if (sketch_->Estimate(MixPageId(id)) <=
          sketch_->Estimate(MixPageId(victim))) {
        ++admission_rejects_;
        admission_rejects_counter_.Add();
        return ReadScratchLocked(id);
      }
    }
    while (frames_.size() >= options_.capacity_pages) EvictOneLocked();
  }

  auto frame = std::make_unique<Frame>(file_->page_size());
  probation_.push_front(id);
  frame->lru_it = probation_.begin();
  Frame* raw = frame.get();
  frames_[id] = std::move(frame);
  Status s = file_->ReadPage(id, &raw->page);
  if (!s.ok()) {
    probation_.erase(raw->lru_it);
    frames_.erase(id);
    return s;
  }
  Count(&StorageStats::disk_page_reads);
  return const_cast<const Page*>(&raw->page);
}

Status BufferPool::WriteThrough(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  STRR_RETURN_IF_ERROR(file_->WritePage(id, page));
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    it->second->page = page;
    TouchLocked(id, it->second.get());
  }
  return Status::OK();
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  frames_.clear();
  probation_.clear();
  protected_.clear();
}

StorageStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StorageStats out = pool_stats_;
  out.disk_page_reads = file_->stats().disk_page_reads;
  out.disk_page_writes = file_->stats().disk_page_writes;
  return out;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  pool_stats_ = StorageStats{};
  admission_rejects_ = 0;
  file_->ResetStats();
}

BufferPool::Detail BufferPool::detail() const {
  std::lock_guard<std::mutex> lock(mu_);
  Detail out;
  out.admission_rejects = admission_rejects_;
  out.probation_pages = probation_.size();
  out.protected_pages = protected_.size();
  return out;
}

size_t BufferPool::CachedPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

}  // namespace strr
