#include "storage/buffer_pool.h"

#include "obs/metrics.h"
#include "storage/io_context.h"

namespace strr {

namespace {

/// Bumps the calling thread's attribution scope (if any) alongside the
/// pool-global counter. The pool lock is held by the caller, but `scope`
/// is thread-local to the requesting thread, so the two never race.
inline void Count(uint64_t StorageStats::* field) {
  if (StorageStats* scope = ScopedIoCounters::Current()) ++(scope->*field);
}

obs::Counter& PageHitsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_bufferpool_hits_total");
  return c;
}
obs::Counter& PageMissesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_bufferpool_misses_total");
  return c;
}
obs::Counter& PageEvictionsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_bufferpool_evictions_total");
  return c;
}

}  // namespace

BufferPool::Frame* BufferPool::InstallLocked(PageId id) {
  while (capacity_ > 0 && frames_.size() >= capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    frames_.erase(victim);
    ++pool_stats_.evictions;
    Count(&StorageStats::evictions);
    PageEvictionsCounter().Add();
  }
  auto frame = std::make_unique<Frame>(file_->page_size());
  lru_.push_front(id);
  frame->lru_it = lru_.begin();
  Frame* raw = frame.get();
  frames_[id] = std::move(frame);
  return raw;
}

StatusOr<const Page*> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return FetchLocked(id);
}

Status BufferPool::ReadInto(PageId id, uint32_t offset, void* dst,
                            uint32_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  STRR_ASSIGN_OR_RETURN(const Page* page, FetchLocked(id));
  page->Read(offset, dst, n);
  return Status::OK();
}

StatusOr<const Page*> BufferPool::FetchLocked(PageId id) {
  if (capacity_ == 0) {
    // Degenerate pool: cache nothing. Every request is a miss served from
    // a private scratch frame (valid until the next Fetch).
    ++pool_stats_.cache_misses;
    Count(&StorageStats::cache_misses);
    PageMissesCounter().Add();
    if (scratch_ == nullptr) {
      scratch_ = std::make_unique<Page>(file_->page_size());
    }
    STRR_RETURN_IF_ERROR(file_->ReadPage(id, scratch_.get()));
    Count(&StorageStats::disk_page_reads);
    return const_cast<const Page*>(scratch_.get());
  }
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++pool_stats_.cache_hits;
    Count(&StorageStats::cache_hits);
    PageHitsCounter().Add();
    lru_.erase(it->second->lru_it);
    lru_.push_front(id);
    it->second->lru_it = lru_.begin();
    return const_cast<const Page*>(&it->second->page);
  }
  ++pool_stats_.cache_misses;
  Count(&StorageStats::cache_misses);
  PageMissesCounter().Add();
  Frame* frame = InstallLocked(id);
  Status s = file_->ReadPage(id, &frame->page);
  if (!s.ok()) {
    lru_.erase(frame->lru_it);
    frames_.erase(id);
    return s;
  }
  Count(&StorageStats::disk_page_reads);
  return const_cast<const Page*>(&frame->page);
}

Status BufferPool::WriteThrough(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  STRR_RETURN_IF_ERROR(file_->WritePage(id, page));
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    it->second->page = page;
    lru_.erase(it->second->lru_it);
    lru_.push_front(id);
    it->second->lru_it = lru_.begin();
  }
  return Status::OK();
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  frames_.clear();
  lru_.clear();
}

StorageStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StorageStats out = pool_stats_;
  out.disk_page_reads = file_->stats().disk_page_reads;
  out.disk_page_writes = file_->stats().disk_page_writes;
  return out;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  pool_stats_ = StorageStats{};
  file_->ResetStats();
}

size_t BufferPool::CachedPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

}  // namespace strr
