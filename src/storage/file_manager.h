// FileManager: page-granular access to one backing file.
//
// The lowest storage layer: allocates, reads and writes whole pages and
// counts every transfer. Sits below the BufferPool, which adds caching.
#ifndef STRR_STORAGE_FILE_MANAGER_H_
#define STRR_STORAGE_FILE_MANAGER_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace strr {

/// Owns a stdio file handle and exposes page-level I/O.
///
/// Thread-compatible: callers serialize access (the BufferPool does).
class FileManager {
 public:
  ~FileManager();

  FileManager(const FileManager&) = delete;
  FileManager& operator=(const FileManager&) = delete;

  /// Creates (truncating) a new page file at `path`.
  static StatusOr<std::unique_ptr<FileManager>> Create(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// Opens an existing page file read/write.
  static StatusOr<std::unique_ptr<FileManager>> Open(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// Extends the file by one zeroed page; returns its id.
  StatusOr<PageId> AllocatePage();

  /// Reads page `id` into `*page` (page must match page_size()).
  Status ReadPage(PageId id, Page* page);

  /// Writes `page` at page `id` (must be < NumPages()).
  Status WritePage(PageId id, const Page& page);

  /// Flushes stdio buffers to the OS.
  Status Sync();

  uint32_t page_size() const { return page_size_; }
  uint64_t NumPages() const { return num_pages_; }
  const std::string& path() const { return path_; }

  const StorageStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StorageStats{}; }

 private:
  FileManager(std::string path, std::FILE* file, uint32_t page_size,
              uint64_t num_pages)
      : path_(std::move(path)),
        file_(file),
        page_size_(page_size),
        num_pages_(num_pages) {}

  std::string path_;
  std::FILE* file_;
  uint32_t page_size_;
  uint64_t num_pages_;
  StorageStats stats_;
};

}  // namespace strr

#endif  // STRR_STORAGE_FILE_MANAGER_H_
