// FileManager: page-granular access to one backing file.
//
// The lowest storage layer: allocates, reads and writes whole pages and
// counts every transfer. Sits below the BufferPool, which adds caching.
#ifndef STRR_STORAGE_FILE_MANAGER_H_
#define STRR_STORAGE_FILE_MANAGER_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace strr {

/// Owns a stdio file handle and exposes page-level I/O.
///
/// Thread-safe: page transfers serialize on an internal mutex (one stdio
/// handle has one file position), and the transfer counters are atomics so
/// stats() is a lock-free snapshot readable while other threads do I/O.
class FileManager {
 public:
  ~FileManager();

  FileManager(const FileManager&) = delete;
  FileManager& operator=(const FileManager&) = delete;

  /// Creates (truncating) a new page file at `path`.
  static StatusOr<std::unique_ptr<FileManager>> Create(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// Opens an existing page file read/write.
  static StatusOr<std::unique_ptr<FileManager>> Open(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// Extends the file by one zeroed page; returns its id.
  StatusOr<PageId> AllocatePage();

  /// Reads page `id` into `*page` (page must match page_size()).
  Status ReadPage(PageId id, Page* page);

  /// Writes `page` at page `id` (must be < NumPages()).
  Status WritePage(PageId id, const Page& page);

  /// Flushes stdio buffers to the OS.
  Status Sync();

  uint32_t page_size() const { return page_size_; }
  uint64_t NumPages() const {
    return num_pages_.load(std::memory_order_acquire);
  }
  const std::string& path() const { return path_; }

  /// Snapshot of the transfer counters (reads/writes only; the cache
  /// fields of StorageStats belong to the BufferPool above).
  StorageStats stats() const {
    StorageStats s;
    s.disk_page_reads = page_reads_.load(std::memory_order_relaxed);
    s.disk_page_writes = page_writes_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    page_reads_.store(0, std::memory_order_relaxed);
    page_writes_.store(0, std::memory_order_relaxed);
  }

 private:
  FileManager(std::string path, std::FILE* file, uint32_t page_size,
              uint64_t num_pages)
      : path_(std::move(path)),
        file_(file),
        page_size_(page_size),
        num_pages_(num_pages) {}

  std::string path_;
  std::FILE* file_;
  uint32_t page_size_;
  std::atomic<uint64_t> num_pages_;
  std::atomic<uint64_t> page_reads_{0};
  std::atomic<uint64_t> page_writes_{0};
  std::mutex io_mu_;  // serializes seek+transfer pairs on file_
};

}  // namespace strr

#endif  // STRR_STORAGE_FILE_MANAGER_H_
