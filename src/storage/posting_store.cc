#include "storage/posting_store.h"

#include <algorithm>

#include "storage/bloom_filter.h"
#include "util/serialize.h"

namespace strr {

namespace {
constexpr uint64_t kMagic = 0x535452525053544fULL;  // "STRRPSTO"

uint64_t MixKey(PostingKey key) {
  // splitmix64 finalizer: keys pack (segment, slot) into adjacent bit
  // ranges, the bloom probes want well-spread bits.
  uint64_t x = key + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

// --- PostingStoreBuilder ----------------------------------------------------

StatusOr<std::unique_ptr<PostingStoreBuilder>> PostingStoreBuilder::Create(
    const std::string& path, uint32_t page_size) {
  STRR_ASSIGN_OR_RETURN(std::unique_ptr<FileManager> file,
                        FileManager::Create(path, page_size));
  // Reserve page 0 for the header.
  STRR_ASSIGN_OR_RETURN(PageId header, file->AllocatePage());
  (void)header;
  auto builder = std::unique_ptr<PostingStoreBuilder>(
      new PostingStoreBuilder(std::move(file)));
  builder->current_page_ = Page(page_size);
  return builder;
}

Status PostingStoreBuilder::AppendBytes(const char* data, size_t n) {
  const uint32_t page_size = file_->page_size();
  size_t written = 0;
  while (written < n) {
    uint64_t in_page = data_end_ % page_size;
    PageId page_index = 1 + data_end_ / page_size;  // +1 skips the header
    if (page_index >= file_->NumPages()) {
      STRR_ASSIGN_OR_RETURN(PageId id, file_->AllocatePage());
      (void)id;
      current_page_.Zero();
      current_dirty_ = false;
    }
    uint32_t room = page_size - static_cast<uint32_t>(in_page);
    uint32_t chunk = static_cast<uint32_t>(std::min<size_t>(room, n - written));
    current_page_.Write(static_cast<uint32_t>(in_page), data + written, chunk);
    current_dirty_ = true;
    written += chunk;
    data_end_ += chunk;
    if (data_end_ % page_size == 0) {
      // Page filled: flush it.
      STRR_RETURN_IF_ERROR(file_->WritePage(page_index, current_page_));
      current_page_.Zero();
      current_dirty_ = false;
    }
  }
  return Status::OK();
}

Status PostingStoreBuilder::Add(PostingKey key, const std::string& blob) {
  if (finished_) {
    return Status::FailedPrecondition("PostingStoreBuilder already finished");
  }
  if (directory_.count(key) > 0) {
    return Status::AlreadyExists("duplicate posting key " +
                                 std::to_string(key));
  }
  Extent extent{data_end_, static_cast<uint32_t>(blob.size())};
  STRR_RETURN_IF_ERROR(AppendBytes(blob.data(), blob.size()));
  directory_[key] = extent;
  insertion_order_.push_back(key);
  return Status::OK();
}

Status PostingStoreBuilder::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("PostingStoreBuilder already finished");
  }
  const uint32_t page_size = file_->page_size();
  // Flush the partially-filled tail page.
  if (current_dirty_) {
    PageId tail = 1 + data_end_ / page_size;
    if (tail >= file_->NumPages()) {
      STRR_ASSIGN_OR_RETURN(PageId id, file_->AllocatePage());
      (void)id;
    }
    STRR_RETURN_IF_ERROR(file_->WritePage(tail, current_page_));
    current_dirty_ = false;
  }

  // Serialize the directory in insertion order (deterministic files).
  BinaryWriter dir;
  dir.PutU64(directory_.size());
  for (PostingKey key : insertion_order_) {
    const Extent& e = directory_.at(key);
    dir.PutU64(key);
    dir.PutU64(e.offset);
    dir.PutU32(e.length);
  }
  uint64_t dir_offset = data_end_;
  // Round the data end up to a fresh page so the directory never shares a
  // page with blob bytes (simpler recovery reasoning).
  uint64_t slack = (page_size - data_end_ % page_size) % page_size;
  if (slack > 0) {
    std::string zeros(slack, '\0');
    STRR_RETURN_IF_ERROR(AppendBytes(zeros.data(), zeros.size()));
    dir_offset = data_end_;
  }
  const std::string& dir_bytes = dir.data();
  STRR_RETURN_IF_ERROR(AppendBytes(dir_bytes.data(), dir_bytes.size()));
  // Flush the directory's tail page.
  if (current_dirty_) {
    PageId tail = 1 + data_end_ / page_size;
    if (tail >= file_->NumPages()) {
      STRR_ASSIGN_OR_RETURN(PageId id, file_->AllocatePage());
      (void)id;
    }
    STRR_RETURN_IF_ERROR(file_->WritePage(tail, current_page_));
  }

  // Header.
  Page header(page_size);
  BinaryWriter hw;
  hw.PutU64(kMagic);
  hw.PutU32(page_size);
  hw.PutU64(dir_offset);  // byte offset of directory in data region
  hw.PutU64(dir_bytes.size());            // directory byte length
  hw.PutU64(directory_.size());           // entry count (redundant check)
  header.Write(0, hw.data().data(), static_cast<uint32_t>(hw.size()));
  STRR_RETURN_IF_ERROR(file_->WritePage(0, header));
  STRR_RETURN_IF_ERROR(file_->Sync());
  finished_ = true;
  return Status::OK();
}

// --- PostingStore ------------------------------------------------------------

StatusOr<std::unique_ptr<PostingStore>> PostingStore::Open(
    const std::string& path, size_t cache_pages, uint32_t page_size) {
  PostingStoreOptions options;
  options.cache_pages = cache_pages;
  options.page_size = page_size;
  return Open(path, options);
}

StatusOr<std::unique_ptr<PostingStore>> PostingStore::Open(
    const std::string& path, const PostingStoreOptions& options) {
  const uint32_t page_size = options.page_size;
  STRR_ASSIGN_OR_RETURN(std::unique_ptr<FileManager> file,
                        FileManager::Open(path, page_size));
  if (file->NumPages() == 0) {
    return Status::Corruption("posting store has no header page: " + path);
  }
  BufferPoolOptions pool_options;
  pool_options.capacity_pages = options.cache_pages;
  pool_options.policy = options.cache_policy;
  pool_options.protected_share = options.cache_protected_share;
  pool_options.role = options.role;
  auto pool = std::make_unique<BufferPool>(file.get(), pool_options);

  // Read the header directly (not through the pool: header reads should not
  // pollute query statistics).
  Page header(page_size);
  STRR_RETURN_IF_ERROR(file->ReadPage(0, &header));
  BinaryReader hr(header.data(), header.size());
  STRR_ASSIGN_OR_RETURN(uint64_t magic, hr.GetU64());
  if (magic != kMagic) {
    return Status::Corruption("bad posting store magic in " + path);
  }
  STRR_ASSIGN_OR_RETURN(uint32_t stored_page_size, hr.GetU32());
  if (stored_page_size != page_size) {
    return Status::InvalidArgument(
        "posting store was written with page size " +
        std::to_string(stored_page_size));
  }
  STRR_ASSIGN_OR_RETURN(uint64_t dir_offset, hr.GetU64());
  STRR_ASSIGN_OR_RETURN(uint64_t dir_size, hr.GetU64());
  STRR_ASSIGN_OR_RETURN(uint64_t entry_count, hr.GetU64());

  auto store = std::unique_ptr<PostingStore>(
      new PostingStore(std::move(file), std::move(pool)));
  store->data_start_ = page_size;  // data region begins at page 1

  // Load the directory bytes (straight reads; bypass the pool).
  std::string dir_bytes(dir_size, '\0');
  {
    const uint64_t begin = dir_offset;
    uint64_t copied = 0;
    Page scratch(page_size);
    while (copied < dir_size) {
      uint64_t byte = begin + copied;
      PageId pid = 1 + byte / page_size;
      uint32_t in_page = static_cast<uint32_t>(byte % page_size);
      uint32_t chunk =
          std::min<uint64_t>(page_size - in_page, dir_size - copied);
      STRR_RETURN_IF_ERROR(store->file_->ReadPage(pid, &scratch));
      scratch.Read(in_page, dir_bytes.data() + copied, chunk);
      copied += chunk;
    }
  }
  BinaryReader dr(dir_bytes);
  STRR_ASSIGN_OR_RETURN(uint64_t n, dr.GetU64());
  if (n != entry_count) {
    return Status::Corruption("directory entry count mismatch in " + path);
  }
  store->directory_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    STRR_ASSIGN_OR_RETURN(uint64_t key, dr.GetU64());
    STRR_ASSIGN_OR_RETURN(uint64_t offset, dr.GetU64());
    STRR_ASSIGN_OR_RETURN(uint32_t length, dr.GetU32());
    store->directory_[key] = Extent{offset, length};
  }
  if (options.bloom_bits_per_key > 0) {
    BloomFilterBuilder bloom(options.bloom_bits_per_key);
    for (const auto& [key, extent] : store->directory_) {
      bloom.AddHash(MixKey(key));
    }
    store->bloom_ = bloom.Build();
  }
  store->file_->ResetStats();
  return store;
}

bool PostingStore::MayContain(PostingKey key) const {
  if (bloom_.empty()) return true;
  if (BloomMayContain(bloom_, MixKey(key))) return true;
  bloom_negatives_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

StatusOr<std::string> PostingStore::Get(PostingKey key) const {
  if (!MayContain(key)) {
    return Status::NotFound("posting key " + std::to_string(key));
  }
  auto it = directory_.find(key);
  if (it == directory_.end()) {
    return Status::NotFound("posting key " + std::to_string(key));
  }
  const Extent& e = it->second;
  const uint32_t page_size = file_->page_size();
  std::string out(e.length, '\0');
  uint64_t copied = 0;
  while (copied < e.length) {
    uint64_t byte = e.offset + copied;
    PageId pid = 1 + byte / page_size;
    uint32_t in_page = static_cast<uint32_t>(byte % page_size);
    uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(page_size - in_page,
                                                 e.length - copied));
    // ReadInto copies under the pool lock: safe against concurrent readers
    // evicting the frame mid-copy (Fetch's raw pointer is not).
    STRR_RETURN_IF_ERROR(
        pool_->ReadInto(pid, in_page, out.data() + copied, chunk));
    copied += chunk;
  }
  return out;
}

}  // namespace strr
