// Fixed-size page abstraction for the on-disk stores.
#ifndef STRR_STORAGE_PAGE_H_
#define STRR_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace strr {

using PageId = uint64_t;

inline constexpr uint32_t kDefaultPageSize = 4096;

/// A page-sized byte buffer. Pages are the unit of disk transfer and of
/// buffer-pool caching; every read/write statistic counts pages.
class Page {
 public:
  explicit Page(uint32_t size = kDefaultPageSize) : data_(size, 0) {}

  uint32_t size() const { return static_cast<uint32_t>(data_.size()); }
  char* data() { return data_.data(); }
  const char* data() const { return data_.data(); }

  /// Copies `n` bytes into the page at `offset`; caller guarantees bounds.
  void Write(uint32_t offset, const void* src, uint32_t n) {
    std::memcpy(data_.data() + offset, src, n);
  }

  /// Copies `n` bytes out of the page at `offset`; caller guarantees bounds.
  void Read(uint32_t offset, void* dst, uint32_t n) const {
    std::memcpy(dst, data_.data() + offset, n);
  }

  void Zero() { std::fill(data_.begin(), data_.end(), 0); }

 private:
  std::vector<char> data_;
};

/// Counters describing storage-layer activity. The query algorithms are
/// compared primarily on these numbers: the paper's efficiency claim is
/// about avoided trajectory-data disk accesses.
struct StorageStats {
  uint64_t disk_page_reads = 0;   ///< pages fetched from the backing file
  uint64_t disk_page_writes = 0;  ///< pages flushed to the backing file
  uint64_t cache_hits = 0;        ///< page requests served from memory
  uint64_t cache_misses = 0;      ///< page requests that went to disk
  uint64_t evictions = 0;         ///< pages dropped by LRU pressure

  StorageStats operator-(const StorageStats& o) const {
    return {disk_page_reads - o.disk_page_reads,
            disk_page_writes - o.disk_page_writes, cache_hits - o.cache_hits,
            cache_misses - o.cache_misses, evictions - o.evictions};
  }

  StorageStats& operator+=(const StorageStats& o) {
    disk_page_reads += o.disk_page_reads;
    disk_page_writes += o.disk_page_writes;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    evictions += o.evictions;
    return *this;
  }

  uint64_t TotalRequests() const { return cache_hits + cache_misses; }
};

}  // namespace strr

#endif  // STRR_STORAGE_PAGE_H_
