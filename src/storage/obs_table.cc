#include "storage/obs_table.h"

#include <cstring>

#include "storage/bloom_filter.h"
#include "storage/fs_util.h"
#include "util/crc32c.h"
#include "util/hashing.h"

namespace strr {

namespace {

constexpr uint64_t kObsTableMagic = 0x5354525f4f544231ULL;      // "STR_OTB1"
constexpr uint64_t kObsTableTailMagic = 0x4f54425f454e4431ULL;  // "OTB_END1"
constexpr uint32_t kObsTableVersion = 1;
// num_batches + num_obs + first_seq + last_seq + crc + tail magic.
constexpr size_t kFooterSize = 8 + 8 + 8 + 8 + 4 + 8;
constexpr size_t kHeaderSize = 8 + 4;

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

uint64_t SegmentHash(SegmentId segment) {
  return Fnv1a64(&segment, sizeof(segment));
}

}  // namespace

void EncodeObservationBatch(BinaryWriter& w, const ObservationBatch& batch) {
  w.PutVarint64(batch.seq);
  w.PutVarint32(static_cast<uint32_t>(batch.observations.size()));
  for (const SpeedObservation& obs : batch.observations) {
    w.PutVarint32(obs.segment);
    w.PutVarint64(ZigZag(obs.time_of_day_sec));
    // Raw double bits: replay must fold byte-identical values.
    w.PutDouble(obs.speed_mps);
  }
}

Status DecodeObservationBatch(BinaryReader& r, ObservationBatch* out) {
  STRR_ASSIGN_OR_RETURN(out->seq, r.GetVarint64());
  STRR_ASSIGN_OR_RETURN(uint32_t count, r.GetVarint32());
  // Every observation costs >= 10 bytes (1 + 1 + 8); reject impossible
  // counts before reserving so corrupt input cannot demand gigabytes.
  if (count > r.RemainingBytes() / 10) {
    return Status::Corruption("observation count exceeds remaining bytes");
  }
  out->observations.clear();
  out->observations.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SpeedObservation obs;
    STRR_ASSIGN_OR_RETURN(obs.segment, r.GetVarint32());
    STRR_ASSIGN_OR_RETURN(uint64_t zz, r.GetVarint64());
    obs.time_of_day_sec = UnZigZag(zz);
    STRR_ASSIGN_OR_RETURN(obs.speed_mps, r.GetDouble());
    out->observations.push_back(obs);
  }
  return Status::OK();
}

ObservationTableBuilder::ObservationTableBuilder(int bloom_bits_per_key)
    : bloom_bits_per_key_(bloom_bits_per_key) {}

void ObservationTableBuilder::AddBatch(const ObservationBatch& batch) {
  if (num_batches_ == 0) first_seq_ = batch.seq;
  last_seq_ = batch.seq;
  ++num_batches_;
  num_observations_ += batch.observations.size();
  for (const SpeedObservation& obs : batch.observations) {
    segment_hashes_.push_back(SegmentHash(obs.segment));
  }
  EncodeObservationBatch(writer_, batch);
}

Status ObservationTableBuilder::Finish(const std::string& path) {
  BloomFilterBuilder bloom(bloom_bits_per_key_);
  for (uint64_t h : segment_hashes_) bloom.AddHash(h);

  BinaryWriter file;
  file.PutU64(kObsTableMagic);
  file.PutU32(kObsTableVersion);
  file.PutRaw(writer_.data().data(), writer_.size());
  file.PutString(bloom.Build());
  file.PutU64(num_batches_);
  file.PutU64(num_observations_);
  file.PutU64(first_seq_);
  file.PutU64(last_seq_);
  file.PutU32(Crc32c(file.data()));
  file.PutU64(kObsTableTailMagic);
  return AtomicWriteFile(path, file.data());
}

StatusOr<ObservationTable> ObservationTable::Open(const std::string& path) {
  STRR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return Parse(bytes, path);
}

StatusOr<ObservationTable> ObservationTable::Parse(const std::string& bytes,
                                                   const std::string& origin) {
  if (bytes.size() < kHeaderSize + kFooterSize) {
    return Status::Corruption("observation table too short: " + origin);
  }
  uint64_t tail_magic;
  uint32_t stored_crc;
  std::memcpy(&tail_magic, bytes.data() + bytes.size() - 8, 8);
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 12, 4);
  if (tail_magic != kObsTableTailMagic) {
    return Status::Corruption("observation table tail magic mismatch: " +
                              origin);
  }
  if (Crc32c(bytes.data(), bytes.size() - 12) != stored_crc) {
    return Status::Corruption("observation table checksum mismatch: " +
                              origin);
  }

  BinaryReader footer(bytes.data() + bytes.size() - kFooterSize, 32);
  ObservationTable table;
  uint64_t num_batches;
  STRR_ASSIGN_OR_RETURN(num_batches, footer.GetU64());
  STRR_ASSIGN_OR_RETURN(table.num_observations_, footer.GetU64());
  STRR_ASSIGN_OR_RETURN(table.first_seq_, footer.GetU64());
  STRR_ASSIGN_OR_RETURN(table.last_seq_, footer.GetU64());

  BinaryReader r(bytes.data(), bytes.size() - kFooterSize);
  STRR_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
  if (magic != kObsTableMagic) {
    return Status::Corruption("bad observation table magic: " + origin);
  }
  STRR_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kObsTableVersion) {
    return Status::Corruption("unsupported observation table version " +
                              std::to_string(version) + ": " + origin);
  }
  // Batches cost >= 2 bytes each even when empty.
  if (num_batches > r.RemainingBytes() / 2) {
    return Status::Corruption("batch count exceeds remaining bytes: " +
                              origin);
  }
  table.batches_.reserve(num_batches);
  uint64_t observed = 0;
  for (uint64_t i = 0; i < num_batches; ++i) {
    ObservationBatch batch;
    STRR_RETURN_IF_ERROR(DecodeObservationBatch(r, &batch));
    if (i > 0 && batch.seq <= table.batches_.back().seq) {
      return Status::Corruption("non-monotonic batch sequence: " + origin);
    }
    observed += batch.observations.size();
    table.batches_.push_back(std::move(batch));
  }
  STRR_ASSIGN_OR_RETURN(table.bloom_, r.GetString());
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in observation table: " +
                              origin);
  }
  if (observed != table.num_observations_) {
    return Status::Corruption("footer observation count mismatch: " + origin);
  }
  if (num_batches > 0 && (table.batches_.front().seq != table.first_seq_ ||
                          table.batches_.back().seq != table.last_seq_)) {
    return Status::Corruption("footer sequence range mismatch: " + origin);
  }
  return table;
}

bool ObservationTable::MayContainSegment(SegmentId segment) const {
  return BloomMayContain(bloom_, SegmentHash(segment));
}

}  // namespace strr
