// On-disk format shared by LogWriter and LogReader (LevelDB-style
// record-oriented WAL).
//
// The log is a sequence of 32 KiB blocks. A logical record is stored as
// one or more physical fragments, each with a 7-byte header:
//
//   [masked crc32c : u32 LE] [payload length : u16 LE] [type : u8]
//
// The checksum covers the type byte plus the payload, and is masked
// (util/crc32c.h) so a WAL that is later embedded in checksummed state
// keeps full error-detection strength. A fragment never crosses a block
// boundary; when fewer than 7 bytes remain in a block the writer pads the
// trailer with zeros and the reader skips it. kFirst/kMiddle/kLast chain
// fragments of one record across blocks; kFull is the common
// single-fragment case.
//
// Torn-tail contract: an append is a single sequential write, so a crash
// leaves a *prefix* of the final record (possibly zero-padded by the
// filesystem). The reader distinguishes "bytes missing at end of file"
// (tolerated: clean recovery point) from "bytes present but inconsistent"
// (typed Corruption).
#ifndef STRR_STORAGE_WAL_LOG_FORMAT_H_
#define STRR_STORAGE_WAL_LOG_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace strr {
namespace wal {

inline constexpr size_t kBlockSize = 32768;
inline constexpr size_t kHeaderSize = 7;  // u32 crc + u16 length + u8 type

enum class RecordType : uint8_t {
  kZero = 0,  // reserved: zero-filled regions (trailer padding)
  kFull = 1,
  kFirst = 2,
  kMiddle = 3,
  kLast = 4,
};

inline constexpr uint8_t kMaxRecordType = 4;

}  // namespace wal
}  // namespace strr

#endif  // STRR_STORAGE_WAL_LOG_FORMAT_H_
