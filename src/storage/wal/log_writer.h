// LogWriter: appends checksummed, block-aligned records to an append-only
// file (see log_format.h). One writer per file; not thread-safe — the
// ObservationJournal serializes appends.
#ifndef STRR_STORAGE_WAL_LOG_WRITER_H_
#define STRR_STORAGE_WAL_LOG_WRITER_H_

#include <string_view>

#include "storage/fs_util.h"
#include "storage/wal/log_format.h"
#include "util/status.h"

namespace strr {
namespace wal {

class LogWriter {
 public:
  /// Writes to `dest`, which must be fresh (the writer assumes it starts
  /// at a block boundary) and must outlive the writer.
  explicit LogWriter(AppendOnlyFile* dest) : dest_(dest) {}

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Appends one logical record (fragmented across blocks as needed).
  /// On failure the file may hold a torn fragment — exactly what a crash
  /// would leave; readers tolerate it at the tail.
  Status AddRecord(std::string_view payload);

  /// Durability point for everything appended so far.
  Status Sync() { return dest_->Sync(); }

 private:
  Status EmitPhysicalRecord(RecordType type, const char* data, size_t n);

  AppendOnlyFile* dest_;
  size_t block_offset_ = 0;  // position within the current block
};

}  // namespace wal
}  // namespace strr

#endif  // STRR_STORAGE_WAL_LOG_WRITER_H_
