#include "storage/wal/log_writer.h"

#include <algorithm>
#include <cstring>

#include "util/crc32c.h"

namespace strr {
namespace wal {

Status LogWriter::AddRecord(std::string_view payload) {
  const char* ptr = payload.data();
  size_t left = payload.size();

  // Emit at least one fragment (an empty payload is a valid record).
  bool begin = true;
  do {
    size_t leftover = kBlockSize - block_offset_;
    if (leftover < kHeaderSize) {
      // Not enough room for a header: zero-pad the block trailer.
      if (leftover > 0) {
        static const char kZeros[kHeaderSize] = {0};
        STRR_RETURN_IF_ERROR(
            dest_->Append(std::string_view(kZeros, leftover)));
      }
      block_offset_ = 0;
    }

    size_t avail = kBlockSize - block_offset_ - kHeaderSize;
    size_t fragment = std::min(left, avail);
    bool end = (fragment == left);
    RecordType type = (begin && end)  ? RecordType::kFull
                      : begin         ? RecordType::kFirst
                      : end           ? RecordType::kLast
                                      : RecordType::kMiddle;
    STRR_RETURN_IF_ERROR(EmitPhysicalRecord(type, ptr, fragment));
    ptr += fragment;
    left -= fragment;
    begin = false;
  } while (left > 0);
  return Status::OK();
}

Status LogWriter::EmitPhysicalRecord(RecordType type, const char* data,
                                     size_t n) {
  // Header + payload in one buffer so the append is a single sequential
  // write — a crash leaves a prefix, never an interleaving.
  char header[kHeaderSize];
  uint8_t type_byte = static_cast<uint8_t>(type);
  uint32_t crc = Crc32cExtend(Crc32c(&type_byte, 1), data, n);
  uint32_t masked = Crc32cMask(crc);
  uint16_t length = static_cast<uint16_t>(n);
  std::memcpy(header, &masked, 4);
  std::memcpy(header + 4, &length, 2);
  header[6] = static_cast<char>(type_byte);

  std::string buf;
  buf.reserve(kHeaderSize + n);
  buf.append(header, kHeaderSize);
  buf.append(data, n);
  STRR_RETURN_IF_ERROR(dest_->Append(buf));
  block_offset_ += kHeaderSize + n;
  return Status::OK();
}

}  // namespace wal
}  // namespace strr
