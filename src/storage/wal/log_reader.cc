#include "storage/wal/log_reader.h"

#include <cstring>

#include "util/crc32c.h"

namespace strr {
namespace wal {

bool LogReader::RemainingAllZero() const {
  for (size_t i = pos_; i < contents_.size(); ++i) {
    if (contents_[i] != '\0') return false;
  }
  return true;
}

LogReader::Outcome LogReader::ParsePhysicalRecord(std::string_view* fragment,
                                                  RecordType* type) {
  for (;;) {
    size_t block_rem = kBlockSize - (pos_ % kBlockSize);
    size_t file_rem = contents_.size() - pos_;

    if (block_rem < kHeaderSize) {
      // Block trailer: the writer zero-pads it. Nonzero bytes here are
      // corruption; a file ending inside the trailer is fine.
      size_t n = std::min(block_rem, file_rem);
      for (size_t i = 0; i < n; ++i) {
        if (contents_[pos_ + i] != '\0') {
          status_ = Status::Corruption("nonzero WAL block trailer");
          return Outcome::kCorrupt;
        }
      }
      pos_ += n;
      if (pos_ >= contents_.size()) return Outcome::kEof;
      continue;
    }

    if (file_rem == 0) return Outcome::kEof;
    if (file_rem < kHeaderSize) {
      // Partial header at end of file: the crash landed mid-append.
      pos_ = contents_.size();
      return Outcome::kTornTail;
    }

    uint32_t masked_crc;
    uint16_t length;
    std::memcpy(&masked_crc, contents_.data() + pos_, 4);
    std::memcpy(&length, contents_.data() + pos_ + 4, 2);
    uint8_t type_byte = static_cast<uint8_t>(contents_[pos_ + 6]);

    if (masked_crc == 0 && length == 0 && type_byte == 0) {
      // A zero header is either a zero-filled tail (filesystems may
      // materialize zeros past the last durable write after a crash) or
      // corruption when real data follows it.
      if (RemainingAllZero()) {
        pos_ = contents_.size();
        return Outcome::kTornTail;
      }
      status_ = Status::Corruption("zero WAL record header amid data");
      return Outcome::kCorrupt;
    }
    if (type_byte == 0 || type_byte > kMaxRecordType) {
      status_ = Status::Corruption("unknown WAL record type " +
                                   std::to_string(type_byte));
      return Outcome::kCorrupt;
    }
    if (length > block_rem - kHeaderSize) {
      status_ = Status::Corruption("WAL fragment length crosses block");
      return Outcome::kCorrupt;
    }
    if (kHeaderSize + length > file_rem) {
      // The payload was cut off by the crash.
      pos_ = contents_.size();
      return Outcome::kTornTail;
    }

    const char* payload = contents_.data() + pos_ + kHeaderSize;
    uint32_t expect = Crc32cUnmask(masked_crc);
    uint32_t actual = Crc32cExtend(Crc32c(&type_byte, 1), payload, length);
    if (expect != actual) {
      status_ = Status::Corruption("WAL fragment checksum mismatch");
      return Outcome::kCorrupt;
    }

    pos_ += kHeaderSize + length;
    *fragment = std::string_view(payload, length);
    *type = static_cast<RecordType>(type_byte);
    return Outcome::kRecord;
  }
}

bool LogReader::ReadRecord(std::string* record) {
  record->clear();
  if (done_) return false;

  std::string scratch;
  bool in_fragmented = false;
  for (;;) {
    std::string_view fragment;
    RecordType type = RecordType::kZero;
    Outcome outcome = ParsePhysicalRecord(&fragment, &type);
    switch (outcome) {
      case Outcome::kEof:
        done_ = true;
        if (in_fragmented) {
          // kFirst/kMiddle durable but the chain never completed: the
          // crash hit between fragment appends. Same contract as a torn
          // final fragment.
          torn_tail_ = true;
        }
        return false;
      case Outcome::kTornTail:
        done_ = true;
        torn_tail_ = true;
        return false;
      case Outcome::kCorrupt:
        done_ = true;
        return false;
      case Outcome::kRecord:
        break;
    }

    switch (type) {
      case RecordType::kFull:
        if (in_fragmented) {
          status_ = Status::Corruption("kFull fragment inside a record");
          done_ = true;
          return false;
        }
        record->assign(fragment.data(), fragment.size());
        consumed_ = pos_;
        return true;
      case RecordType::kFirst:
        if (in_fragmented) {
          status_ = Status::Corruption("kFirst fragment inside a record");
          done_ = true;
          return false;
        }
        scratch.assign(fragment.data(), fragment.size());
        in_fragmented = true;
        break;
      case RecordType::kMiddle:
      case RecordType::kLast:
        if (!in_fragmented) {
          status_ = Status::Corruption("continuation fragment without start");
          done_ = true;
          return false;
        }
        scratch.append(fragment.data(), fragment.size());
        if (type == RecordType::kLast) {
          *record = std::move(scratch);
          consumed_ = pos_;
          return true;
        }
        break;
      case RecordType::kZero:
        status_ = Status::Corruption("unexpected zero record type");
        done_ = true;
        return false;
    }
  }
}

}  // namespace wal
}  // namespace strr
