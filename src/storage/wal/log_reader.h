// LogReader: sequentially decodes records written by LogWriter, verifying
// every fragment checksum and distinguishing a torn tail (crash artifact
// at end of file — tolerated, clean recovery point) from corruption
// (bytes fully present but inconsistent — typed error).
#ifndef STRR_STORAGE_WAL_LOG_READER_H_
#define STRR_STORAGE_WAL_LOG_READER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "storage/wal/log_format.h"
#include "util/status.h"

namespace strr {
namespace wal {

class LogReader {
 public:
  /// Reads from `contents` (the whole log file), which must outlive the
  /// reader.
  explicit LogReader(std::string_view contents) : contents_(contents) {}

  /// Fetches the next logical record into `*record`. Returns false when no
  /// further record can be read; check status() to distinguish a clean end
  /// (OK — true EOF or a tolerated torn tail, see torn_tail()) from
  /// corruption.
  bool ReadRecord(std::string* record);

  /// OK after a clean end; Corruption when fully-present bytes failed a
  /// checksum or structural check. Never transitions back to OK.
  const Status& status() const { return status_; }

  /// True when reading stopped because the final record was torn by a
  /// crash (incomplete header/payload or a mid-record end of file).
  bool torn_tail() const { return torn_tail_; }

  /// Offset of the first byte not consumed as a complete record — the
  /// safe truncation point for the tail.
  uint64_t consumed_offset() const { return consumed_; }

 private:
  enum class Outcome { kRecord, kEof, kTornTail, kCorrupt };

  Outcome ParsePhysicalRecord(std::string_view* fragment, RecordType* type);
  bool RemainingAllZero() const;

  std::string_view contents_;
  size_t pos_ = 0;
  uint64_t consumed_ = 0;
  Status status_;
  bool torn_tail_ = false;
  bool done_ = false;
};

}  // namespace wal
}  // namespace strr

#endif  // STRR_STORAGE_WAL_LOG_READER_H_
