// BufferPool: page cache over a FileManager.
//
// Every page request is either a cache hit (no disk traffic) or a miss
// (one disk_page_read). Capacity is configurable so the benchmarks can
// study the index algorithms under different memory pressure — the
// ablation bench sweeps this knob.
//
// Two replacement policies:
//
//  - kLru (default): plain LRU, the seed behavior.
//  - kTinyLfu: a segmented block cache (W-TinyLFU style). Pages enter a
//    probation segment and are promoted to a protected segment on re-use;
//    on eviction contests a frequency sketch (core/frequency_sketch.h,
//    the same admission idiom the ResultCache uses) decides whether the
//    incoming page is worth more than the probation victim — one-shot
//    scans cannot flush the hot working set. A rejected page is served
//    through the scratch frame without being cached.
//
// `BufferPoolOptions::role` labels this pool's metric series (e.g.
// role="posting"), giving per-file-role hit/miss/eviction accounting
// across the engine's pools.
#ifndef STRR_STORAGE_BUFFER_POOL_H_
#define STRR_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/frequency_sketch.h"
#include "obs/metrics.h"
#include "storage/file_manager.h"
#include "storage/page.h"
#include "util/result.h"

namespace strr {

enum class CachePolicy {
  kLru,      ///< plain LRU (seed behavior)
  kTinyLfu,  ///< segmented probation/protected with sketch admission
};

struct BufferPoolOptions {
  /// 0 means "cache nothing" (every request is a miss), which is how the
  /// benches emulate a cold disk.
  size_t capacity_pages = 0;
  CachePolicy policy = CachePolicy::kLru;
  /// TinyLFU only: fraction of capacity reserved for the protected
  /// segment (clamped so probation keeps at least one frame).
  double protected_share = 0.8;
  /// Metric label for this pool's series ("" = the unlabeled series).
  std::string role;
};

/// Page cache. Thread-safe.
class BufferPool {
 public:
  BufferPool(FileManager* file, size_t capacity_pages)
      : BufferPool(file, BufferPoolOptions{.capacity_pages = capacity_pages}) {}

  BufferPool(FileManager* file, const BufferPoolOptions& options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches page `id`, reading it from disk on a miss. The returned
  /// pointer is owned by the pool and remains valid only until the next
  /// Fetch/ReadInto from ANY thread (which may evict the frame, or reuse
  /// the scratch frame of a capacity-0 pool or a TinyLFU admission
  /// reject). Single-threaded callers (tests, benches) only; concurrent
  /// readers must use ReadInto, which copies while the frame is pinned
  /// under the pool lock.
  StatusOr<const Page*> Fetch(PageId id);

  /// Copies `n` bytes at `offset` within page `id` into `dst`, going
  /// through the cache (hit/miss accounting identical to Fetch). The copy
  /// happens under the pool lock, so the bytes are consistent even while
  /// other threads fetch and evict — this is the concurrent read path the
  /// query executor relies on. Caller guarantees offset + n <= page size.
  Status ReadInto(PageId id, uint32_t offset, void* dst, uint32_t n);

  /// Writes `page` through to disk and refreshes/installs the cached copy.
  Status WriteThrough(PageId id, const Page& page);

  /// Drops all cached pages (stats are preserved).
  void Clear();

  /// Combined statistics: pool-level hits/misses/evictions merged with the
  /// underlying file's disk counters.
  StorageStats stats() const;

  /// Zeroes both pool and file counters.
  void ResetStats();

  /// Policy-level detail beyond StorageStats.
  struct Detail {
    uint64_t admission_rejects = 0;  ///< TinyLFU: pages denied a frame
    size_t probation_pages = 0;
    size_t protected_pages = 0;  ///< 0 under kLru (single segment)
  };
  Detail detail() const;

  size_t capacity() const { return options_.capacity_pages; }
  CachePolicy policy() const { return options_.policy; }
  const std::string& role() const { return options_.role; }
  size_t CachedPages() const;
  FileManager* file() { return file_; }

 private:
  struct Frame {
    Page page;
    std::list<PageId>::iterator lru_it;
    bool in_protected = false;
    explicit Frame(uint32_t page_size) : page(page_size) {}
  };

  /// Hit/miss lookup for `id`. Caller holds mu_; the returned pointer is
  /// valid only while the lock is held.
  StatusOr<const Page*> FetchLocked(PageId id);

  /// Reads `id` into the scratch frame (capacity-0 pools and TinyLFU
  /// admission rejects). Caller holds mu_.
  StatusOr<const Page*> ReadScratchLocked(PageId id);

  /// Moves a resident frame to the front of its segment, promoting
  /// probation frames under TinyLFU. Caller holds mu_.
  void TouchLocked(PageId id, Frame* frame);

  /// Evicts from the back of probation (then protected) until a frame is
  /// free. Caller holds mu_.
  void EvictOneLocked();

  FileManager* file_;
  BufferPoolOptions options_;
  size_t protected_cap_ = 0;  // TinyLFU protected-segment frame budget

  mutable std::mutex mu_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  std::list<PageId> probation_;  // front = most recent; kLru uses only this
  std::list<PageId> protected_;  // TinyLFU re-use segment
  std::unique_ptr<FrequencySketch> sketch_;  // TinyLFU admission
  std::unique_ptr<Page> scratch_;
  StorageStats pool_stats_;
  uint64_t admission_rejects_ = 0;

  obs::Counter& hits_counter_;
  obs::Counter& misses_counter_;
  obs::Counter& evictions_counter_;
  obs::Counter& admission_rejects_counter_;
};

}  // namespace strr

#endif  // STRR_STORAGE_BUFFER_POOL_H_
