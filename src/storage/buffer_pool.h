// BufferPool: LRU page cache over a FileManager.
//
// Every page request is either a cache hit (no disk traffic) or a miss
// (one disk_page_read). Capacity is configurable so the benchmarks can
// study the index algorithms under different memory pressure — the
// ablation bench sweeps this knob.
#ifndef STRR_STORAGE_BUFFER_POOL_H_
#define STRR_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "storage/file_manager.h"
#include "storage/page.h"
#include "util/result.h"

namespace strr {

/// LRU page cache. Thread-safe.
class BufferPool {
 public:
  /// `capacity_pages` of 0 means "cache nothing" (every request is a miss),
  /// which is how the benches emulate a cold disk.
  BufferPool(FileManager* file, size_t capacity_pages)
      : file_(file), capacity_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches page `id`, reading it from disk on a miss. The returned
  /// pointer is owned by the pool and remains valid until eviction; callers
  /// copy what they need before the next Fetch (the PostingStore and index
  /// readers do exactly that).
  StatusOr<const Page*> Fetch(PageId id);

  /// Writes `page` through to disk and refreshes/installs the cached copy.
  Status WriteThrough(PageId id, const Page& page);

  /// Drops all cached pages (stats are preserved).
  void Clear();

  /// Combined statistics: pool-level hits/misses/evictions merged with the
  /// underlying file's disk counters.
  StorageStats stats() const;

  /// Zeroes both pool and file counters.
  void ResetStats();

  size_t capacity() const { return capacity_; }
  size_t CachedPages() const;
  FileManager* file() { return file_; }

 private:
  struct Frame {
    Page page;
    std::list<PageId>::iterator lru_it;
    explicit Frame(uint32_t page_size) : page(page_size) {}
  };

  /// Installs a frame for `id`, evicting LRU victims as needed. Caller
  /// holds mu_.
  Frame* InstallLocked(PageId id);

  FileManager* file_;
  size_t capacity_;

  mutable std::mutex mu_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  std::list<PageId> lru_;  // front = most recent
  std::unique_ptr<Page> scratch_;  // capacity-0 pools read into this
  StorageStats pool_stats_;
};

}  // namespace strr

#endif  // STRR_STORAGE_BUFFER_POOL_H_
