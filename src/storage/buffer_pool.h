// BufferPool: LRU page cache over a FileManager.
//
// Every page request is either a cache hit (no disk traffic) or a miss
// (one disk_page_read). Capacity is configurable so the benchmarks can
// study the index algorithms under different memory pressure — the
// ablation bench sweeps this knob.
#ifndef STRR_STORAGE_BUFFER_POOL_H_
#define STRR_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "storage/file_manager.h"
#include "storage/page.h"
#include "util/result.h"

namespace strr {

/// LRU page cache. Thread-safe.
class BufferPool {
 public:
  /// `capacity_pages` of 0 means "cache nothing" (every request is a miss),
  /// which is how the benches emulate a cold disk.
  BufferPool(FileManager* file, size_t capacity_pages)
      : file_(file), capacity_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches page `id`, reading it from disk on a miss. The returned
  /// pointer is owned by the pool and remains valid only until the next
  /// Fetch/ReadInto from ANY thread (which may evict the frame, or reuse
  /// the scratch frame of a capacity-0 pool). Single-threaded callers
  /// (tests, benches) only; concurrent readers must use ReadInto, which
  /// copies while the frame is pinned under the pool lock.
  StatusOr<const Page*> Fetch(PageId id);

  /// Copies `n` bytes at `offset` within page `id` into `dst`, going
  /// through the cache (hit/miss accounting identical to Fetch). The copy
  /// happens under the pool lock, so the bytes are consistent even while
  /// other threads fetch and evict — this is the concurrent read path the
  /// query executor relies on. Caller guarantees offset + n <= page size.
  Status ReadInto(PageId id, uint32_t offset, void* dst, uint32_t n);

  /// Writes `page` through to disk and refreshes/installs the cached copy.
  Status WriteThrough(PageId id, const Page& page);

  /// Drops all cached pages (stats are preserved).
  void Clear();

  /// Combined statistics: pool-level hits/misses/evictions merged with the
  /// underlying file's disk counters.
  StorageStats stats() const;

  /// Zeroes both pool and file counters.
  void ResetStats();

  size_t capacity() const { return capacity_; }
  size_t CachedPages() const;
  FileManager* file() { return file_; }

 private:
  struct Frame {
    Page page;
    std::list<PageId>::iterator lru_it;
    explicit Frame(uint32_t page_size) : page(page_size) {}
  };

  /// Installs a frame for `id`, evicting LRU victims as needed. Caller
  /// holds mu_.
  Frame* InstallLocked(PageId id);

  /// Hit/miss lookup for `id`. Caller holds mu_; the returned pointer is
  /// valid only while the lock is held.
  StatusOr<const Page*> FetchLocked(PageId id);

  FileManager* file_;
  size_t capacity_;

  mutable std::mutex mu_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  std::list<PageId> lru_;  // front = most recent
  std::unique_ptr<Page> scratch_;  // capacity-0 pools read into this
  StorageStats pool_stats_;
};

}  // namespace strr

#endif  // STRR_STORAGE_BUFFER_POOL_H_
