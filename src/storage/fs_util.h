// Crash-safe filesystem primitives shared by dataset persistence and the
// WAL layer: whole-file reads with size validation, atomic
// temp-file + fsync + rename writes, append-only files with explicit
// durability points, and directory fsync.
//
// All failure paths return typed Status (IoError) instead of leaving a
// torn destination: AtomicWriteFile either publishes the complete new
// bytes under `path` or leaves whatever was there before untouched.
#ifndef STRR_STORAGE_FS_UTIL_H_
#define STRR_STORAGE_FS_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace strr {

/// Reads the whole file into a string. IoError on open/seek/short-read
/// problems (including an unrepresentable size from the OS).
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `bytes` to `<path>.tmp`, fsyncs, closes with error checking,
/// renames onto `path`, and fsyncs the parent directory. A crash or full
/// disk at any point leaves the previous `path` contents intact.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// fsyncs a directory so a rename/creation inside it is durable.
Status SyncDir(const std::string& dir);

/// Test hook: after `bytes` more bytes have been written through this
/// layer, every write fails as if the disk were full (short write). Pass a
/// negative value to disable. Not for production use.
void TestInjectWriteFailureAfter(int64_t bytes);

/// Append-only file handle for the WAL: explicit Append / Sync / Close,
/// every step error-checked. Not thread-safe; the owner serializes.
class AppendOnlyFile {
 public:
  /// Creates (or truncates) `path` for appending; fsyncs the parent
  /// directory so the file's existence survives a crash.
  static StatusOr<std::unique_ptr<AppendOnlyFile>> Create(
      const std::string& path);

  ~AppendOnlyFile();

  AppendOnlyFile(const AppendOnlyFile&) = delete;
  AppendOnlyFile& operator=(const AppendOnlyFile&) = delete;

  Status Append(std::string_view data);

  /// Durability point: flushes the file to stable storage (fdatasync).
  Status Sync();

  /// Closes with error checking; further use is invalid. Idempotent.
  Status Close();

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  AppendOnlyFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_;
  uint64_t size_ = 0;
};

}  // namespace strr

#endif  // STRR_STORAGE_FS_UTIL_H_
