#include "storage/checkpoint/profile_checkpoint.h"

#include <algorithm>
#include <bit>

#include "storage/fs_util.h"
#include "util/crc32c.h"
#include "util/serialize.h"
#include "util/time_util.h"

namespace strr {
namespace {

constexpr uint64_t kCheckpointMagic = 0x5354525f434b5031ULL;   // "STR_CKP1"
constexpr uint64_t kCheckpointTailMagic = 0x434b505f454e4431ULL;  // "CKP_END1"
constexpr uint32_t kCheckpointVersion = 1;

uint64_t CellKey(SegmentId segment, uint32_t slot) {
  return (static_cast<uint64_t>(segment) << 32) | static_cast<uint64_t>(slot);
}

}  // namespace

std::string CheckpointFileName(const std::string& dir, uint64_t number) {
  return dir + "/ckpt_" + std::to_string(number) + ".ckpt";
}

Status WriteProfileCheckpoint(const std::string& path, uint64_t covered_seq,
                              int64_t slot_seconds,
                              std::span<const CoalescedUpdate> entries) {
  BinaryWriter w;
  w.PutU64(kCheckpointMagic);
  w.PutU32(kCheckpointVersion);
  w.PutU64(covered_seq);
  w.PutU64(static_cast<uint64_t>(slot_seconds));
  w.PutU64(entries.size());
  for (const CoalescedUpdate& u : entries) {
    w.PutVarint32(static_cast<uint32_t>(u.segment));
    w.PutVarint64(static_cast<uint64_t>(u.slot_tod));
    w.PutU32(std::bit_cast<uint32_t>(u.min_speed));
    w.PutU32(std::bit_cast<uint32_t>(u.max_speed));
    w.PutU32(std::bit_cast<uint32_t>(u.sum_speed));
    w.PutVarint32(u.count);
  }
  w.PutU32(Crc32c(w.data().data(), w.size()));
  w.PutU64(kCheckpointTailMagic);
  return AtomicWriteFile(path, w.data());
}

StatusOr<ProfileCheckpoint> ParseProfileCheckpoint(const std::string& bytes,
                                                   const std::string& origin) {
  constexpr size_t kFooterBytes = sizeof(uint32_t) + sizeof(uint64_t);
  if (bytes.size() < kFooterBytes) {
    return Status::Corruption("checkpoint truncated: " + origin);
  }
  const size_t body_size = bytes.size() - kFooterBytes;
  BinaryReader footer(bytes.data() + body_size, kFooterBytes);
  STRR_ASSIGN_OR_RETURN(uint32_t stored_crc, footer.GetU32());
  STRR_ASSIGN_OR_RETURN(uint64_t tail_magic, footer.GetU64());
  if (tail_magic != kCheckpointTailMagic) {
    return Status::Corruption("checkpoint tail magic mismatch: " + origin);
  }
  if (Crc32c(bytes.data(), body_size) != stored_crc) {
    return Status::Corruption("checkpoint checksum mismatch: " + origin);
  }

  BinaryReader r(bytes.data(), body_size);
  STRR_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
  if (magic != kCheckpointMagic) {
    return Status::Corruption("not a checkpoint file: " + origin);
  }
  STRR_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version: " + origin);
  }
  ProfileCheckpoint out;
  STRR_ASSIGN_OR_RETURN(out.covered_seq, r.GetU64());
  STRR_ASSIGN_OR_RETURN(uint64_t slot_seconds, r.GetU64());
  out.slot_seconds = static_cast<int64_t>(slot_seconds);
  if (out.slot_seconds <= 0) {
    return Status::Corruption("checkpoint slot_seconds implausible: " + origin);
  }
  STRR_ASSIGN_OR_RETURN(uint64_t num_entries, r.GetU64());
  if (num_entries > body_size) {  // each entry is >= 1 byte
    return Status::Corruption("checkpoint entry count implausible: " + origin);
  }
  out.entries.reserve(num_entries);
  const CoalescedUpdate* prev = nullptr;
  for (uint64_t i = 0; i < num_entries; ++i) {
    CoalescedUpdate u;
    STRR_ASSIGN_OR_RETURN(uint32_t segment, r.GetVarint32());
    u.segment = static_cast<SegmentId>(segment);
    STRR_ASSIGN_OR_RETURN(uint64_t slot_tod, r.GetVarint64());
    u.slot_tod = static_cast<int64_t>(slot_tod);
    STRR_ASSIGN_OR_RETURN(uint32_t min_bits, r.GetU32());
    STRR_ASSIGN_OR_RETURN(uint32_t max_bits, r.GetU32());
    STRR_ASSIGN_OR_RETURN(uint32_t sum_bits, r.GetU32());
    u.min_speed = std::bit_cast<float>(min_bits);
    u.max_speed = std::bit_cast<float>(max_bits);
    u.sum_speed = std::bit_cast<float>(sum_bits);
    STRR_ASSIGN_OR_RETURN(u.count, r.GetVarint32());
    if (u.count == 0) {
      return Status::Corruption("checkpoint entry with zero count: " + origin);
    }
    if (prev != nullptr && (u.segment < prev->segment ||
                            (u.segment == prev->segment &&
                             u.slot_tod <= prev->slot_tod))) {
      return Status::Corruption("checkpoint entries out of order: " + origin);
    }
    out.entries.push_back(u);
    prev = &out.entries.back();
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in checkpoint: " + origin);
  }
  return out;
}

StatusOr<ProfileCheckpoint> ReadProfileCheckpoint(const std::string& path) {
  STRR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return ParseProfileCheckpoint(bytes, path);
}

CheckpointState::CheckpointState(int64_t slot_seconds)
    : slot_seconds_(slot_seconds > 0 ? slot_seconds : 1) {}

void CheckpointState::FoldObservations(
    std::span<const SpeedObservation> observations) {
  FoldUpdates(CoalesceObservations(observations, slot_seconds_));
}

void CheckpointState::FoldUpdates(std::span<const CoalescedUpdate> updates) {
  for (const CoalescedUpdate& in : updates) {
    int64_t tod = NormalizeTimeOfDay(in.slot_tod);
    SlotId slot = SlotOfTimeOfDay(tod, slot_seconds_);
    auto [it, inserted] =
        cells_.try_emplace(CellKey(in.segment, static_cast<uint32_t>(slot)));
    CoalescedUpdate& cell = it->second;
    if (inserted) {
      cell.segment = in.segment;
      // Canonical slot start: any tod inside the slot folds identically,
      // and a fixed representative keeps serialized checkpoints
      // byte-stable across rebuilds.
      cell.slot_tod = static_cast<int64_t>(slot) * slot_seconds_;
      cell.min_speed = in.min_speed;
      cell.max_speed = in.max_speed;
    } else {
      cell.min_speed = std::min(cell.min_speed, in.min_speed);
      cell.max_speed = std::max(cell.max_speed, in.max_speed);
    }
    cell.sum_speed += in.sum_speed;
    cell.count += in.count;
  }
}

std::vector<CoalescedUpdate> CheckpointState::Snapshot() const {
  std::vector<CoalescedUpdate> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) out.push_back(cell);
  std::sort(out.begin(), out.end(),
            [](const CoalescedUpdate& a, const CoalescedUpdate& b) {
              return a.segment != b.segment ? a.segment < b.segment
                                            : a.slot_tod < b.slot_tod;
            });
  return out;
}

}  // namespace strr
