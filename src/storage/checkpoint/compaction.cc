#include "storage/checkpoint/compaction.h"

#include <filesystem>

#include "storage/obs_table.h"

namespace strr {

StatusOr<CompactionResult> CompactTables(
    std::span<const std::string> input_paths, const std::string& out_path,
    int bloom_bits_per_key) {
  if (input_paths.empty()) {
    return Status::InvalidArgument("compaction needs at least one input");
  }
  ObservationTableBuilder builder(bloom_bits_per_key);
  CompactionResult result;
  uint64_t last_emitted = 0;
  for (const std::string& path : input_paths) {
    STRR_ASSIGN_OR_RETURN(ObservationTable table, ObservationTable::Open(path));
    for (ObservationBatch& batch : table.TakeBatches()) {
      if (result.batches > 0 && batch.seq <= last_emitted) continue;  // dup
      if (result.batches > 0 && batch.seq != last_emitted + 1) {
        return Status::Corruption("sequence gap in compaction inputs at " +
                                  path + ": have " +
                                  std::to_string(last_emitted) + ", next " +
                                  std::to_string(batch.seq));
      }
      if (result.batches == 0) result.first_seq = batch.seq;
      last_emitted = batch.seq;
      result.observations += batch.observations.size();
      ++result.batches;
      builder.AddBatch(batch);
    }
  }
  result.last_seq = last_emitted;
  STRR_RETURN_IF_ERROR(builder.Finish(out_path));
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(out_path, ec);
  result.output_bytes = ec ? 0 : size;
  return result;
}

}  // namespace strr
