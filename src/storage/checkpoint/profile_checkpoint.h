// Profile checkpoints: a durable serialization of the coalesced live
// profile state accumulated from every acked observation up to a covered
// WAL sequence number.
//
// A checkpoint stores one merged CoalescedUpdate per (segment, profile
// slot) — exact-float min/max plus running sum and count — together with
// `covered_seq`, the last observation-batch sequence folded in. Recovery
// publishes the checkpoint aggregates first and then replays only batches
// with seq > covered_seq, so restart cost is O(delta) instead of
// O(stream). Publishing the merged aggregates is bit-identical to
// replaying the covered batches for every statistic the query path reads:
// per-cell min/max/count are order- and batching-independent, and the
// float sum (which can differ in the last rounding bit) feeds only the
// mean, which region expansion never consults.
//
// File format (`ckpt_<N>.ckpt`, shared file-number space with WAL/table
// files, committed via AtomicWriteFile):
//
//   u64 magic | u32 version | u64 covered_seq | u64 slot_seconds
//   u64 num_entries
//   per entry: varint32 segment, varint64 slot_tod,
//              u32 min_bits, u32 max_bits, u32 sum_bits (raw float bits),
//              varint32 count
//   footer: u32 crc32c over all preceding bytes | u64 tail magic
//
// Entries are sorted by (segment, slot_tod) and floats are stored as raw
// bits, so the same state always encodes to the same bytes. Committed
// checkpoints are sealed artifacts: any parse/CRC failure is Corruption
// (a crash mid-write leaves only a `.tmp` the journal ignores).
#ifndef STRR_STORAGE_CHECKPOINT_PROFILE_CHECKPOINT_H_
#define STRR_STORAGE_CHECKPOINT_PROFILE_CHECKPOINT_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "live/observation.h"
#include "util/result.h"

namespace strr {

/// `dir/ckpt_<number>.ckpt`.
std::string CheckpointFileName(const std::string& dir, uint64_t number);

/// In-memory image of one committed checkpoint file.
struct ProfileCheckpoint {
  uint64_t covered_seq = 0;
  int64_t slot_seconds = 0;  ///< profile slot width the aggregates use
  std::vector<CoalescedUpdate> entries;  ///< sorted by (segment, slot_tod)
};

/// Serializes and atomically commits a checkpoint (tmp + fsync + rename).
Status WriteProfileCheckpoint(const std::string& path, uint64_t covered_seq,
                              int64_t slot_seconds,
                              std::span<const CoalescedUpdate> entries);

/// Reads and fully validates a committed checkpoint. Strict: damage of any
/// kind (magic, truncation, CRC, malformed entries) is Corruption.
StatusOr<ProfileCheckpoint> ReadProfileCheckpoint(const std::string& path);

/// Parse from an in-memory byte string; `origin` labels errors. Exposed so
/// corruption tests can sweep mutations without touching the filesystem.
StatusOr<ProfileCheckpoint> ParseProfileCheckpoint(const std::string& bytes,
                                                   const std::string& origin);

/// Accumulates the coalesced live profile across observation batches — the
/// state a checkpoint serializes. The journal folds every acked batch into
/// one of these; recovery rebuilds it from checkpoint + replayed batches.
///
/// Merging is per (segment, profile slot): min/max are exact float
/// extremes, sum accumulates in fold order (so a state rebuilt by folding
/// the same batches in the same order is bit-identical, sums included),
/// and slot_tod is canonicalized to the slot start so snapshots are
/// deterministic. Not thread-safe — callers serialize (the journal folds
/// under its mutex).
class CheckpointState {
 public:
  explicit CheckpointState(int64_t slot_seconds);

  /// Coalesces one observation batch (same grouping as live ingest) and
  /// folds the resulting aggregates.
  void FoldObservations(std::span<const SpeedObservation> observations);

  /// Folds pre-coalesced aggregates (e.g. entries of a loaded checkpoint).
  void FoldUpdates(std::span<const CoalescedUpdate> updates);

  /// Snapshot sorted by (segment, slot_tod) — the serialization order.
  std::vector<CoalescedUpdate> Snapshot() const;

  size_t size() const { return cells_.size(); }
  int64_t slot_seconds() const { return slot_seconds_; }

 private:
  int64_t slot_seconds_;
  std::unordered_map<uint64_t, CoalescedUpdate> cells_;  // (seg<<32|slot)
};

}  // namespace strr

#endif  // STRR_STORAGE_CHECKPOINT_PROFILE_CHECKPOINT_H_
