// Table compaction: merges small sealed observation tables into one
// larger seq-deduplicated table with a rebuilt bloom filter.
//
// The merge itself is a pure function over sealed inputs — it opens each
// input (full CRC validation), emits batches in sequence order exactly
// once, and commits the output via ObservationTableBuilder::Finish's
// atomic rename. The caller (the journal's maintenance thread) picks the
// inputs and swaps the file set; recovery tolerates every crash window by
// construction because the merged table and its inputs carry overlapping
// sequence ranges that RecoveryManager deduplicates.
#ifndef STRR_STORAGE_CHECKPOINT_COMPACTION_H_
#define STRR_STORAGE_CHECKPOINT_COMPACTION_H_

#include <cstdint>
#include <span>
#include <string>

#include "util/result.h"

namespace strr {

struct CompactionResult {
  uint64_t batches = 0;
  uint64_t observations = 0;
  uint64_t first_seq = 0;
  uint64_t last_seq = 0;
  uint64_t output_bytes = 0;
};

/// Merges `input_paths` (sealed tables, ordered by ascending first_seq,
/// jointly covering a contiguous sequence range) into a new table at
/// `out_path`. Batches duplicated across inputs are emitted once; a
/// sequence gap in the merged stream is Corruption. Inputs are read one
/// at a time, so peak memory is one input plus the output image.
StatusOr<CompactionResult> CompactTables(
    std::span<const std::string> input_paths, const std::string& out_path,
    int bloom_bits_per_key = 10);

}  // namespace strr

#endif  // STRR_STORAGE_CHECKPOINT_COMPACTION_H_
