// PostingStore: key -> blob store for time-list postings, disk-resident.
//
// The ST-Index stores, for every (road segment, time slot), a posting block
// containing the per-day trajectory-ID lists. Blocks are appended densely
// across data pages (a block may span pages); a directory (key -> byte
// extent) is serialized at the tail of the file and loaded fully at open.
// Reads pull the covering pages through the BufferPool, so every posting
// access shows up in StorageStats — exactly the I/O the paper's algorithms
// compete on.
//
// File layout (page 0 is the header):
//   page 0:  magic | page_size | data_end_offset | dir_offset | dir_size
//   data:    concatenated blobs starting at byte offset page_size
//   dir:     BinaryWriter-encoded (key, offset, length) triples
#ifndef STRR_STORAGE_POSTING_STORE_H_
#define STRR_STORAGE_POSTING_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/file_manager.h"
#include "util/result.h"

namespace strr {

using PostingKey = uint64_t;

/// Composes a posting key from a segment id and a slot id.
inline PostingKey MakePostingKey(uint32_t segment, uint32_t slot) {
  return (static_cast<uint64_t>(segment) << 32) | slot;
}

/// Append-only writer; call Add for every key then Finish exactly once.
class PostingStoreBuilder {
 public:
  /// Creates/truncates the store file at `path`.
  static StatusOr<std::unique_ptr<PostingStoreBuilder>> Create(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// Adds a blob under `key`; duplicate keys are rejected.
  Status Add(PostingKey key, const std::string& blob);

  /// Writes the directory + header and closes the builder. The builder is
  /// unusable afterwards.
  Status Finish();

  uint64_t NumEntries() const { return directory_.size(); }
  uint64_t DataBytes() const { return data_end_; }

 private:
  struct Extent {
    uint64_t offset;
    uint32_t length;
  };

  PostingStoreBuilder(std::unique_ptr<FileManager> file)
      : file_(std::move(file)) {}

  /// Appends raw bytes at data_end_, allocating pages as needed.
  Status AppendBytes(const char* data, size_t n);

  std::unique_ptr<FileManager> file_;
  std::unordered_map<PostingKey, Extent> directory_;
  std::vector<PostingKey> insertion_order_;
  uint64_t data_end_ = 0;  // byte offset within the data region
  Page current_page_{kDefaultPageSize};
  bool current_dirty_ = false;
  bool finished_ = false;
};

/// Open-time knobs beyond the pool size.
struct PostingStoreOptions {
  size_t cache_pages = 0;
  uint32_t page_size = kDefaultPageSize;
  /// Replacement policy for the store's BufferPool.
  CachePolicy cache_policy = CachePolicy::kLru;
  double cache_protected_share = 0.8;
  /// Metric-label role for the pool's series ("" = unlabeled).
  std::string role;
  /// Build a bloom doorkeeper over the posting keys at open; lookups for
  /// absent keys short-circuit on the filter before the directory probe.
  /// 0 disables (seed behavior).
  int bloom_bits_per_key = 0;
};

/// Read side. Thread-safe for concurrent Get calls: the immutable
/// directory is shared read-only and page bytes are copied out under the
/// BufferPool lock (ReadInto), so eviction races cannot tear a blob.
class PostingStore {
 public:
  /// Opens the store, loading the directory eagerly. The store owns its
  /// FileManager and BufferPool; `cache_pages` sizes the pool.
  static StatusOr<std::unique_ptr<PostingStore>> Open(
      const std::string& path, size_t cache_pages,
      uint32_t page_size = kDefaultPageSize);

  /// Opens with full storage-engine knobs (block-cache policy, per-role
  /// metric labels, bloom doorkeeper).
  static StatusOr<std::unique_ptr<PostingStore>> Open(
      const std::string& path, const PostingStoreOptions& options);

  /// Fetches the blob stored under `key`; NotFound when absent.
  StatusOr<std::string> Get(PostingKey key) const;

  /// True when `key` exists (bloom doorkeeper, then directory; no I/O).
  bool Contains(PostingKey key) const {
    if (!MayContain(key)) return false;
    return directory_.find(key) != directory_.end();
  }

  uint64_t NumEntries() const { return directory_.size(); }

  /// Lookups the bloom doorkeeper answered negatively (absent-key probes
  /// that skipped the directory). 0 when the filter is off.
  uint64_t BloomNegatives() const {
    return bloom_negatives_.load(std::memory_order_relaxed);
  }

  StorageStats stats() const { return pool_->stats(); }
  void ResetStats() { pool_->ResetStats(); }
  /// Drops the page cache — benches use this to measure cold-cache runs.
  void DropCache() { pool_->Clear(); }

  BufferPool* buffer_pool() { return pool_.get(); }

 private:
  struct Extent {
    uint64_t offset;
    uint32_t length;
  };

  PostingStore(std::unique_ptr<FileManager> file,
               std::unique_ptr<BufferPool> pool)
      : file_(std::move(file)), pool_(std::move(pool)) {}

  /// Bloom probe (safe-true when the filter is off or malformed).
  bool MayContain(PostingKey key) const;

  std::unique_ptr<FileManager> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unordered_map<PostingKey, Extent> directory_;
  std::string bloom_;  // doorkeeper over keys; empty = off
  mutable std::atomic<uint64_t> bloom_negatives_{0};
  uint64_t data_start_ = 0;  // byte offset of the data region (page 1)
};

}  // namespace strr

#endif  // STRR_STORAGE_POSTING_STORE_H_
