#include "storage/file_manager.h"

#include <sys/stat.h>

namespace strr {

FileManager::~FileManager() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<FileManager>> FileManager::Create(
    const std::string& path, uint32_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size too small: " +
                                   std::to_string(page_size));
  }
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IoError("cannot create page file: " + path);
  }
  return std::unique_ptr<FileManager>(
      new FileManager(path, f, page_size, /*num_pages=*/0));
}

StatusOr<std::unique_ptr<FileManager>> FileManager::Open(
    const std::string& path, uint32_t page_size) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IoError("cannot open page file: " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek page file: " + path);
  }
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot size page file: " + path);
  }
  if (static_cast<uint64_t>(size) % page_size != 0) {
    std::fclose(f);
    return Status::Corruption("file size " + std::to_string(size) +
                              " is not a multiple of page size " +
                              std::to_string(page_size) + ": " + path);
  }
  uint64_t pages = static_cast<uint64_t>(size) / page_size;
  return std::unique_ptr<FileManager>(
      new FileManager(path, f, page_size, pages));
}

StatusOr<PageId> FileManager::AllocatePage() {
  Page zero(page_size_);
  std::lock_guard<std::mutex> lock(io_mu_);
  PageId id = num_pages_.load(std::memory_order_relaxed);
  if (std::fseek(file_, static_cast<long>(id * page_size_), SEEK_SET) != 0) {
    return Status::IoError("seek failed allocating page");
  }
  if (std::fwrite(zero.data(), 1, page_size_, file_) != page_size_) {
    return Status::IoError("short write allocating page");
  }
  num_pages_.store(id + 1, std::memory_order_release);
  page_writes_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Status FileManager::ReadPage(PageId id, Page* page) {
  if (id >= NumPages()) {
    return Status::OutOfRange("read of page " + std::to_string(id) +
                              " beyond EOF (" + std::to_string(NumPages()) +
                              " pages)");
  }
  if (page->size() != page_size_) {
    return Status::InvalidArgument("page buffer size mismatch");
  }
  std::lock_guard<std::mutex> lock(io_mu_);
  if (std::fseek(file_, static_cast<long>(id * page_size_), SEEK_SET) != 0) {
    return Status::IoError("seek failed reading page " + std::to_string(id));
  }
  if (std::fread(page->data(), 1, page_size_, file_) != page_size_) {
    return Status::IoError("short read of page " + std::to_string(id));
  }
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FileManager::WritePage(PageId id, const Page& page) {
  if (id >= NumPages()) {
    return Status::OutOfRange("write of page " + std::to_string(id) +
                              " beyond EOF");
  }
  if (page.size() != page_size_) {
    return Status::InvalidArgument("page buffer size mismatch");
  }
  std::lock_guard<std::mutex> lock(io_mu_);
  if (std::fseek(file_, static_cast<long>(id * page_size_), SEEK_SET) != 0) {
    return Status::IoError("seek failed writing page " + std::to_string(id));
  }
  if (std::fwrite(page.data(), 1, page_size_, file_) != page_size_) {
    return Status::IoError("short write of page " + std::to_string(id));
  }
  page_writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FileManager::Sync() {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (std::fflush(file_) != 0) {
    return Status::IoError("fflush failed for " + path_);
  }
  return Status::OK();
}

}  // namespace strr
