// Per-query I/O attribution.
//
// The StorageStats counters on FileManager/BufferPool are engine-global:
// under concurrent queries, a before/after delta on them attributes every
// overlapping query's traffic to whoever happened to snapshot it (the
// contamination ROADMAP flagged after PR 1). This header fixes attribution
// at the source instead: a ScopedIoCounters installs a thread-local
// counter block, and the BufferPool read path — the only storage traffic a
// query generates — additionally bumps the innermost scope on the calling
// thread. A query executed under a scope therefore sees exactly its own
// page requests, no matter how many queries share the engine.
//
// Scopes nest but do not propagate: while an inner scope is installed the
// outer one is paused, so a composite query (repeated-s m-query legs) can
// sum its legs' exact counters without double counting. One scope serves
// one thread; parallel sub-work installs its own scope on its own worker.
#ifndef STRR_STORAGE_IO_CONTEXT_H_
#define STRR_STORAGE_IO_CONTEXT_H_

#include "storage/page.h"

namespace strr {

/// RAII thread-local I/O counter scope. Not copyable/movable: the
/// destructor must run on the thread (and in the frame) that installed it.
class ScopedIoCounters {
 public:
  ScopedIoCounters() : prev_(current_) { current_ = &counters_; }
  ~ScopedIoCounters() { current_ = prev_; }

  ScopedIoCounters(const ScopedIoCounters&) = delete;
  ScopedIoCounters& operator=(const ScopedIoCounters&) = delete;

  /// Counters accumulated by this scope so far.
  const StorageStats& stats() const { return counters_; }

  /// The calling thread's innermost scope, or nullptr when none is
  /// installed. Storage code bumps this; queries never call it directly.
  static StorageStats* Current() { return current_; }

 private:
  StorageStats counters_;
  StorageStats* prev_;
  static thread_local StorageStats* current_;
};

inline thread_local StorageStats* ScopedIoCounters::current_ = nullptr;

}  // namespace strr

#endif  // STRR_STORAGE_IO_CONTEXT_H_
