// MetricsRegistry: zero-dependency named counters, gauges and log-linear
// histograms with a Prometheus / JSON export surface.
//
// Design targets (see ISSUE 8):
//  * Off by default and free when off — every metric holds a pointer to
//    its registry's enabled flag; a disabled Add()/Record() is one relaxed
//    atomic load and a branch. Nothing in the query path changes shape
//    when metrics are off, so results stay bit-identical.
//  * Cheap when on — counters and histogram bucket arrays are sharded
//    across a small fixed set of cache-line-padded slots indexed by a
//    per-thread id, updated with relaxed atomics: the hot path pays one
//    uncontended cache-line bump. Shards are merged on scrape, never on
//    the write path.
//  * Percentiles without samples — histograms bucket values (callers
//    record microseconds by convention) into exact unit buckets below 32
//    and log-linear buckets (8 sub-buckets per power of two, ~12.5% worst
//    case relative width) above; p50/p90/p99/p999 come from cumulative
//    bucket interpolation at scrape time.
//
// Instrumentation sites cache the metric handle once:
//
//   static obs::Counter& hits =
//       obs::MetricsRegistry::Global().GetCounter("strr_cache_hits_total");
//   hits.Add();
//
// Handles returned by Get*() are stable for the registry's lifetime (the
// registry never erases a metric), so cached references across threads are
// safe. Names must match Prometheus conventions ([a-zA-Z_:][a-zA-Z0-9_:]*);
// the registry asserts this in debug builds and exports names verbatim.
#ifndef STRR_OBS_METRICS_H_
#define STRR_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace strr::obs {

namespace internal {

/// Stable small integer id for the calling thread, assigned on first use.
/// Used to pick a metric shard; ids are never recycled, so long-lived
/// servers that churn threads still distribute (id % shards) evenly.
uint32_t ThreadIndex();

constexpr size_t kShards = 8;  // power of two; indexed by ThreadIndex()

struct alignas(64) PaddedAtomicU64 {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

/// Monotonic counter. Add() is a no-op while the owning registry is
/// disabled.
class Counter {
 public:
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[internal::ThreadIndex() % internal::kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Merged value across shards (scrape path).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  const std::atomic<bool>* enabled_;
  std::array<internal::PaddedAtomicU64, internal::kShards> shards_;
};

/// Last-writer-wins gauge with an additive mode for resource levels
/// (queue depths) that multiple threads raise and lower concurrently.
/// Stored as a signed 64-bit integer (gauge semantics here are counts,
/// versions and milliseconds — never fractional).
class Gauge {
 public:
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }

  void Add(int64_t delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  const std::atomic<bool>* enabled_;
  std::atomic<int64_t> value_{0};
};

/// Log-linear-bucket histogram of non-negative integer samples (callers
/// record latencies in microseconds and sizes in bytes by convention).
///
/// Bucket layout: values below kLinearMax land in exact unit buckets;
/// above that, each power of two is split into kSubBuckets sub-buckets
/// (relative width 1/kSubBuckets), up to an overflow bucket past
/// 2^kMaxPow2. Percentile(q) merges the shards, walks the cumulative
/// distribution and interpolates linearly inside the target bucket.
class Histogram {
 public:
  static constexpr uint64_t kLinearMax = 32;    // exact buckets [0, 32)
  static constexpr int kSubBits = 3;            // 8 sub-buckets per octave
  static constexpr int kMaxPow2 = 40;           // ~12.7 days in microseconds
  static constexpr size_t kNumBuckets =
      kLinearMax + static_cast<size_t>(kMaxPow2 - 5) * (1u << kSubBits) + 1;

  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    Shard& s = shards_[internal::ThreadIndex() % internal::kShards];
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  uint64_t Sum() const;

  /// Interpolated percentile of the recorded distribution, q in [0, 1].
  /// Exact for values below kLinearMax (up to sub-unit interpolation),
  /// within one sub-bucket's width (~12.5%) above. Returns 0 on an empty
  /// histogram.
  double Percentile(double q) const;

  /// Merged bucket counts (index -> count), plus count/sum, in one pass —
  /// the export and percentile substrate.
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum = 0;
  };
  Snapshot Snap() const;

  void Reset();

  /// Bucket index for a value (exposed for tests).
  static size_t BucketIndex(uint64_t value);
  /// Inclusive lower / exclusive upper bound of a bucket. The overflow
  /// bucket's upper bound is reported as its lower bound (open-ended).
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketUpperBound(size_t index);

  /// Interpolated percentile over an arbitrary snapshot (used by
  /// Percentile() and by callers holding a pre-merged Snapshot).
  static double PercentileOf(const Snapshot& snap, double q);

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };

  const std::atomic<bool>* enabled_;
  std::array<Shard, internal::kShards> shards_;
};

/// Named metric registry. Get*() registers on first use and returns a
/// stable reference; DumpPrometheus / DumpJson merge the shards and
/// render. Thread-safe throughout.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = false) : enabled_(enabled) {}

  /// The process-global registry every built-in instrumentation site
  /// reports to. Disabled until an engine is built with
  /// EngineOptions::metrics (or a caller flips set_enabled).
  static MetricsRegistry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// One label dimension per series: (key, value) pairs rendered into the
  /// canonical `{k="v",...}` suffix (keys sorted, so any call-site order
  /// maps to one series). Labeled and unlabeled series of the same base
  /// name coexist; the exporters emit one `# TYPE` line per base name and
  /// splice histogram `le` labels into the series' own label set. Handles
  /// are stable exactly like the unlabeled ones; hot sites cache the
  /// handle per (tenant, shard) instead of re-rendering the suffix.
  using Labels = std::vector<std::pair<std::string, std::string>>;
  Counter& GetCounter(const std::string& name, const Labels& labels);
  Gauge& GetGauge(const std::string& name, const Labels& labels);
  Histogram& GetHistogram(const std::string& name, const Labels& labels);

  /// The canonical label suffix (`{k="v",...}`, keys sorted); "" for no
  /// labels. Exposed for tests and for callers pre-building series names.
  static std::string CanonicalLabels(const Labels& labels);

  /// Appends the full registry in Prometheus text exposition format
  /// (counters as `# TYPE x counter`, histograms as cumulative
  /// `x_bucket{le="..."}` series with `x_sum` / `x_count`). Only buckets
  /// that change the cumulative count are emitted, plus `+Inf`, so the
  /// exposition stays compact; any Prometheus scraper accepts sparse
  /// boundaries. Honors the STRR_OBS_SCRAPE_SLEEP_MS test hook (injected
  /// scrape latency for the CI overhead gate's negative test).
  void DumpPrometheus(std::string* out) const;

  /// Appends a JSON object: counters/gauges by value, histograms as
  /// {count, sum, p50, p90, p99, p999}.
  void DumpJson(std::string* out) const;

  /// Zeroes every registered metric's value. Handles stay valid (tests
  /// and the bench overhead mode share Global() with cached static
  /// references at the instrumentation sites).
  void ResetValues();

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mu_;
  // std::map: deterministic (sorted) export order, stable addresses via
  // unique_ptr values.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace strr::obs

#endif  // STRR_OBS_METRICS_H_
