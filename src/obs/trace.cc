#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics.h"
#include "util/logging.h"

namespace strr::obs {

namespace internal {

namespace {

/// Per-query span cap: a runaway expansion cannot grow a trace without
/// bound; overflow is counted, never reallocated past this.
constexpr size_t kMaxEventsPerQuery = 512;

/// Spans close leaves-first, so at the cap the first casualties would be
/// the query's own summary spans (search phase, TBS, the root) — the
/// ones a trace is least able to lose. Shallow spans therefore keep
/// recording past the cap, up to this slack.
constexpr uint16_t kAlwaysKeepDepth = 2;
constexpr size_t kShallowSlack = 64;

thread_local TraceBuffer* tl_active = nullptr;

}  // namespace

TraceBuffer* ActiveBuffer() { return tl_active; }

void SetActiveBuffer(TraceBuffer* buf) { tl_active = buf; }

void OpenSpan(TraceBuffer* buf, const char* name, uint64_t arg) {
  buf->stack.push_back(TraceBuffer::OpenSpan{
      name, Tracer::NowUs(), arg, static_cast<uint16_t>(buf->stack.size())});
}

void CloseSpan(TraceBuffer* buf) {
  if (buf->stack.empty()) return;  // defensive: unbalanced close
  TraceBuffer::OpenSpan open = buf->stack.back();
  buf->stack.pop_back();
  uint16_t depth = static_cast<uint16_t>(buf->base_depth + open.depth);
  size_t cap = depth <= kAlwaysKeepDepth ? kMaxEventsPerQuery + kShallowSlack
                                         : kMaxEventsPerQuery;
  TraceEvent ev;
  ev.name = open.name;
  ev.query_id = buf->query_id;
  ev.tid = ThreadIndex();
  ev.depth = depth;
  ev.start_us = open.start_us;
  ev.dur_us = Tracer::NowUs() - open.start_us;
  ev.arg = open.arg;
  std::lock_guard<std::mutex> lock(buf->events_mu);
  if (buf->events.size() >= cap) {
    ++buf->dropped;
    return;
  }
  buf->events.push_back(ev);
}

TaskTraceHandle CaptureTaskTrace() {
  TraceBuffer* buf = tl_active;
  if (buf == nullptr) return TaskTraceHandle{};
  return TaskTraceHandle{
      buf, static_cast<uint16_t>(buf->base_depth + buf->stack.size())};
}

ScopedTaskTrace::ScopedTaskTrace(const TaskTraceHandle& handle)
    : parent_(handle.parent), prev_(tl_active) {
  local_.query_id = parent_->query_id;
  local_.sampled = parent_->sampled;
  local_.base_depth = handle.depth;
  local_.events.reserve(16);
  local_.stack.reserve(8);
  tl_active = &local_;
}

ScopedTaskTrace::~ScopedTaskTrace() {
  while (!local_.stack.empty()) CloseSpan(&local_);  // defensive drain
  tl_active = prev_;
  std::lock_guard<std::mutex> lock(parent_->events_mu);
  for (const TraceEvent& ev : local_.events) {
    if (parent_->events.size() >= kMaxEventsPerQuery + kShallowSlack) {
      parent_->dropped +=
          static_cast<uint32_t>(local_.events.size() -
                                (&ev - local_.events.data()));
      break;
    }
    parent_->events.push_back(ev);
  }
  parent_->dropped += local_.dropped;
}

}  // namespace internal

namespace {

/// Indented span tree for the slow-query log: events sorted by start time
/// (ties broken by depth, so a parent precedes children that started in
/// the same microsecond).
std::string FormatSpanTree(const internal::TraceBuffer& buf,
                           int64_t wall_us, int64_t threshold_us) {
  std::vector<TraceEvent> events = buf.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_us != b.start_us) {
                       return a.start_us < b.start_us;
                     }
                     return a.depth < b.depth;
                   });
  int64_t root_start = events.empty() ? 0 : events.front().start_us;
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "slow query %llu: %.3f ms (threshold %.3f ms), %zu spans%s",
                static_cast<unsigned long long>(buf.query_id),
                static_cast<double>(wall_us) / 1000.0,
                static_cast<double>(threshold_us) / 1000.0, events.size(),
                buf.dropped > 0 ? " (truncated)" : "");
  out += line;
  for (const TraceEvent& ev : events) {
    std::snprintf(line, sizeof(line), "\n%*s%s +%lldus %lldus",
                  2 * (ev.depth + 1), "", ev.name,
                  static_cast<long long>(ev.start_us - root_start),
                  static_cast<long long>(ev.dur_us));
    out += line;
  }
  return out;
}

}  // namespace

Tracer& Tracer::Global() {
  // Leaked: span destructors may run during static teardown.
  static Tracer* g = new Tracer();
  return *g;
}

int64_t Tracer::NowUs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void Tracer::Configure(const TracerOptions& options) {
  bool on = options.sample_n > 0 || options.slow_query_ms > 0.0;
  // Drop the flag first so in-flight roots on other threads stop
  // activating while the ring is being resized.
  enabled_.store(false, std::memory_order_relaxed);
  sample_n_.store(options.sample_n, std::memory_order_relaxed);
  slow_us_.store(static_cast<int64_t>(options.slow_query_ms * 1000.0),
                 std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.assign(on ? options.flight_recorder_events : 0, TraceEvent{});
    ring_next_ = 0;
  }
  enabled_.store(on, std::memory_order_relaxed);
}

uint64_t Tracer::BeginQuery(bool* sampled) {
  uint64_t id = next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint32_t n = sample_n_.load(std::memory_order_relaxed);
  *sampled = n > 0 && ((id - 1) % n == 0);
  return id;
}

void Tracer::FinishQuery(internal::TraceBuffer* buf, int64_t wall_us) {
  if (buf->dropped > 0) {
    events_dropped_.fetch_add(buf->dropped, std::memory_order_relaxed);
  }
  int64_t threshold_us = slow_us_.load(std::memory_order_relaxed);
  bool slow = threshold_us > 0 && wall_us >= threshold_us;
  // Slow queries are force-recorded into the ring even when unsampled:
  // the flight recorder's whole point is having the incident on hand.
  if (!buf->sampled && !slow) return;
  std::string report;
  if (slow) {
    slow_queries_.fetch_add(1, std::memory_order_relaxed);
    report = FormatSpanTree(*buf, wall_us, threshold_us);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ring_.empty()) {
      for (const TraceEvent& ev : buf->events) {
        ring_[ring_next_ % ring_.size()] = ev;
        ++ring_next_;
      }
      events_recorded_.fetch_add(buf->events.size(),
                                 std::memory_order_relaxed);
    }
    if (slow) last_slow_report_ = report;
  }
  if (slow) {
    STRR_LOG(Warning) << report;
  }
}

std::vector<TraceEvent> Tracer::FlightRecorderSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  if (ring_.empty()) return out;
  size_t cap = ring_.size();
  size_t n = std::min(ring_next_, cap);
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(ring_next_ - n + i) % cap]);
  }
  return out;
}

void Tracer::DumpChromeTrace(std::string* out) const {
  std::vector<TraceEvent> events = FlightRecorderSnapshot();
  out->append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  char line[224];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    std::snprintf(
        line, sizeof(line),
        "%s\n{\"name\":\"%s\",\"cat\":\"strr\",\"ph\":\"X\",\"ts\":%lld,"
        "\"dur\":%lld,\"pid\":%llu,\"tid\":%u,\"args\":{\"depth\":%u,"
        "\"arg\":%llu}}",
        i == 0 ? "" : ",", ev.name == nullptr ? "?" : ev.name,
        static_cast<long long>(ev.start_us),
        static_cast<long long>(ev.dur_us),
        static_cast<unsigned long long>(ev.query_id), ev.tid,
        static_cast<unsigned>(ev.depth),
        static_cast<unsigned long long>(ev.arg));
    out->append(line);
  }
  out->append("\n]}\n");
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::string json;
  DumpChromeTrace(&json);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("trace dump: cannot open " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_err = std::fclose(f);
  if (written != json.size() || close_err != 0) {
    return Status::IoError("trace dump: short write to " + path);
  }
  return Status::OK();
}

uint64_t Tracer::events_recorded() const {
  return events_recorded_.load(std::memory_order_relaxed);
}

uint64_t Tracer::events_dropped() const {
  return events_dropped_.load(std::memory_order_relaxed);
}

uint64_t Tracer::slow_queries() const {
  return slow_queries_.load(std::memory_order_relaxed);
}

std::string Tracer::last_slow_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_slow_report_;
}

void Tracer::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(ring_.begin(), ring_.end(), TraceEvent{});
  ring_next_ = 0;
  events_recorded_.store(0, std::memory_order_relaxed);
  events_dropped_.store(0, std::memory_order_relaxed);
  slow_queries_.store(0, std::memory_order_relaxed);
  next_query_id_.store(0, std::memory_order_relaxed);
  last_slow_report_.clear();
}

QueryTrace::QueryTrace(const char* name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  internal::TraceBuffer* active = internal::ActiveBuffer();
  if (active != nullptr) {
    // Nested root (facade over executor): record as a plain child span so
    // the outer frame keeps ownership of the buffer.
    child_ = true;
    internal::OpenSpan(active, name, 0);
    return;
  }
  bool sampled = false;
  uint64_t id = tracer.BeginQuery(&sampled);
  if (!sampled && tracer.slow_query_us() <= 0) return;  // no sink consumes
  buffer_.query_id = id;
  buffer_.sampled = sampled;
  buffer_.events.reserve(64);
  buffer_.stack.reserve(16);
  internal::SetActiveBuffer(&buffer_);
  internal::OpenSpan(&buffer_, name, 0);
  owner_ = true;
}

QueryTrace::~QueryTrace() {
  if (child_) {
    internal::TraceBuffer* active = internal::ActiveBuffer();
    if (active != nullptr) internal::CloseSpan(active);
    return;
  }
  if (!owner_) return;
  int64_t root_start = buffer_.stack.empty() ? Tracer::NowUs()
                                             : buffer_.stack.front().start_us;
  internal::CloseSpan(&buffer_);
  internal::SetActiveBuffer(nullptr);
  Tracer::Global().FinishQuery(&buffer_, Tracer::NowUs() - root_start);
}

}  // namespace strr::obs
