// Per-query trace spans, a bounded flight recorder, and a slow-query log.
//
// One query produces one span tree: the front door opens a root
// `QueryTrace` and each pipeline stage underneath (plan, admission wait,
// cache lookup, snapshot pin, expansion rounds, TBS, cache insert) opens
// a RAII `TraceSpan`. Spans propagate through a thread_local active-buffer
// pointer — the same idiom as storage's ScopedIoCounters — so call sites
// never thread a context object through the stack, and a span constructed
// on a thread with no active query trace is a no-op. Work fanned out to
// ThreadPool workers carries the active trace along: Submit() captures a
// TaskTraceHandle and the worker runs under a ScopedTaskTrace whose local
// buffer merges into the parent query's buffer when the task finishes, so
// scatter-gather spans show per-worker imbalance instead of collapsing
// onto the orchestrating thread. The merge contract: the submitter joins
// the task's future before the root QueryTrace closes (true for every
// in-tree fan-out — gather chunks, m-query legs and batch futures are all
// joined inside the query).
//
// Lifecycle and cost:
//  * Off (default): every QueryTrace/TraceSpan constructor is one relaxed
//    atomic load and a branch; nothing allocates, nothing locks, and query
//    results are bit-identical to an untraced build.
//  * On: a traced query buffers up to kMaxEventsPerQuery completed spans
//    locally (two steady-clock reads per span), then pushes them into the
//    global ring under one mutex acquisition at query end.
//
// Export surfaces:
//  * Flight recorder — a bounded ring of the most recent span events from
//    sampled queries (1-in-N knob), always recording while tracing is on;
//    DumpChromeTrace() renders it as Chrome trace-event JSON that loads
//    directly into chrome://tracing or https://ui.perfetto.dev.
//  * Slow-query log — any query whose wall time exceeds the threshold
//    knob logs its full span tree through STRR_LOG(Warning) (util/logging
//    is the one structured sink) and is force-recorded into the ring,
//    sampled or not.
#ifndef STRR_OBS_TRACE_H_
#define STRR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace strr::obs {

/// One completed span. `name` must be a string literal (stored unowned).
struct TraceEvent {
  const char* name = nullptr;
  uint64_t query_id = 0;   ///< per-process sequence number of the query
  uint32_t tid = 0;        ///< obs thread index of the recording thread
  uint16_t depth = 0;      ///< nesting depth under the query root (root=0)
  int64_t start_us = 0;    ///< steady-clock µs since tracer epoch
  int64_t dur_us = 0;
  uint64_t arg = 0;        ///< optional payload (round index, sizes)
};

struct TracerOptions {
  /// Export every Nth query's spans to the flight recorder; 0 = none.
  uint32_t sample_n = 0;
  /// Flight-recorder ring capacity in span events.
  size_t flight_recorder_events = 4096;
  /// Queries slower than this log their span tree; 0 = off.
  double slow_query_ms = 0.0;
};

namespace internal {

/// Per-query span buffer, owned by the root QueryTrace frame and reached
/// through a thread_local pointer while that query runs. Pool workers run
/// under task-local child buffers (base_depth > 0) whose events merge into
/// the root buffer under events_mu when the task finishes.
struct TraceBuffer {
  struct OpenSpan {
    const char* name;
    int64_t start_us;
    uint64_t arg;
    uint16_t depth;
  };
  std::vector<TraceEvent> events;
  std::vector<OpenSpan> stack;
  uint64_t query_id = 0;
  uint32_t dropped = 0;
  bool sampled = false;
  /// Depth of this buffer's spans under the query root (0 for the root
  /// buffer; the capturing span's depth for a task-local child).
  uint16_t base_depth = 0;
  /// Serializes event pushes: the owner thread closes spans while joined
  /// tasks merge their child buffers back in.
  std::mutex events_mu;
};

TraceBuffer* ActiveBuffer();
void SetActiveBuffer(TraceBuffer* buf);
void OpenSpan(TraceBuffer* buf, const char* name, uint64_t arg);
void CloseSpan(TraceBuffer* buf);

/// Snapshot of the submitting thread's active trace, captured inside
/// ThreadPool::Submit. parent == nullptr means "no active trace" (the
/// task runs untraced).
struct TaskTraceHandle {
  TraceBuffer* parent = nullptr;
  uint16_t depth = 0;  ///< effective depth of the capturing span
};

TaskTraceHandle CaptureTaskTrace();

/// RAII frame a pool worker runs a traced task under: activates a local
/// child buffer for the task's spans and merges them into the parent
/// query buffer on destruction. Requires handle.parent != nullptr; the
/// submitter must join the task before the parent QueryTrace closes.
class ScopedTaskTrace {
 public:
  explicit ScopedTaskTrace(const TaskTraceHandle& handle);
  ScopedTaskTrace(const ScopedTaskTrace&) = delete;
  ScopedTaskTrace& operator=(const ScopedTaskTrace&) = delete;
  ~ScopedTaskTrace();

 private:
  TraceBuffer* parent_;
  TraceBuffer* prev_;
  TraceBuffer local_;
};

}  // namespace internal

/// Process-global trace sink: sampling policy, flight-recorder ring and
/// slow-query log. Configured once by the engine (EngineOptions knobs);
/// all methods are thread-safe.
class Tracer {
 public:
  static Tracer& Global();

  /// Enables tracing when the options ask for any sink (sample_n > 0 or
  /// slow_query_ms > 0); disables it otherwise. Resizes the ring.
  void Configure(const TracerOptions& options);
  void Disable() { Configure(TracerOptions{}); }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  uint32_t sample_n() const {
    return sample_n_.load(std::memory_order_relaxed);
  }
  int64_t slow_query_us() const {
    return slow_us_.load(std::memory_order_relaxed);
  }

  /// Monotonic µs since the tracer epoch (process start, first use).
  static int64_t NowUs();

  /// Oldest-first copy of the flight-recorder ring.
  std::vector<TraceEvent> FlightRecorderSnapshot() const;

  /// Renders the flight recorder as Chrome trace-event JSON ("X" complete
  /// events; pid = query id so chrome://tracing groups each query's span
  /// tree into its own lane).
  void DumpChromeTrace(std::string* out) const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Total span events ever pushed into the ring (monotonic; exceeds the
  /// ring capacity once wraparound discards oldest events).
  uint64_t events_recorded() const;
  /// Spans dropped because a single query overflowed its per-query buffer.
  uint64_t events_dropped() const;
  uint64_t slow_queries() const;
  /// Human-readable span tree of the most recent slow query ("" if none).
  std::string last_slow_report() const;

  /// Clears the ring and counters; keeps the configuration.
  void ResetForTest();

  // --- Internal (QueryTrace plumbing) ---------------------------------------

  /// Claims a query id and decides sampling for a new root trace.
  uint64_t BeginQuery(bool* sampled);
  /// Ingests a finished query's buffer: ring push when sampled (or slow),
  /// slow-query log when over threshold.
  void FinishQuery(internal::TraceBuffer* buf, int64_t wall_us);

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint32_t> sample_n_{0};
  std::atomic<int64_t> slow_us_{0};
  std::atomic<uint64_t> next_query_id_{0};
  std::atomic<uint64_t> events_recorded_{0};
  std::atomic<uint64_t> events_dropped_{0};
  std::atomic<uint64_t> slow_queries_{0};

  mutable std::mutex mu_;          // ring + slow report
  std::vector<TraceEvent> ring_;   // capacity fixed by Configure
  size_t ring_next_ = 0;           // total pushes mod nothing (monotonic)
  std::string last_slow_report_;
};

/// RAII root span for one query. On a thread with no active trace it
/// activates the per-query buffer (when the tracer is enabled and this
/// query is selected by sampling or the slow-query log is armed); nested
/// inside an already-active trace it degrades to a plain child span, so
/// facade and executor can both open one without double-rooting.
class QueryTrace {
 public:
  explicit QueryTrace(const char* name);
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;
  ~QueryTrace();

  /// True when this frame owns an active buffer (spans will record).
  bool active() const { return owner_; }

 private:
  internal::TraceBuffer buffer_;
  bool owner_ = false;
  bool child_ = false;  // nested: recorded as a plain span
};

/// RAII child span; records into the calling thread's active query trace,
/// no-op when there is none.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, uint64_t arg = 0)
      : buf_(internal::ActiveBuffer()) {
    if (buf_ != nullptr) internal::OpenSpan(buf_, name, arg);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (buf_ != nullptr) internal::CloseSpan(buf_);
  }

 private:
  internal::TraceBuffer* buf_;
};

}  // namespace strr::obs

#endif  // STRR_OBS_TRACE_H_
