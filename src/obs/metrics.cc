#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace strr::obs {

namespace internal {

uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace internal

namespace {

constexpr int kFirstOctave = 5;  // 2^5 == Histogram::kLinearMax

/// Debug-only guard: names are exported verbatim, so they must already be
/// valid Prometheus metric names.
bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 c == '_' || c == ':';
    bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n),
                                               sizeof(buf) - 1));
}

}  // namespace

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kLinearMax) return static_cast<size_t>(value);
  int msb = 63 - std::countl_zero(value);
  if (msb >= kMaxPow2) return kNumBuckets - 1;  // overflow bucket
  uint64_t sub = (value >> (msb - kSubBits)) & ((1u << kSubBits) - 1);
  return kLinearMax +
         static_cast<size_t>(msb - kFirstOctave) * (1u << kSubBits) +
         static_cast<size_t>(sub);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kLinearMax) return index;
  if (index >= kNumBuckets - 1) return uint64_t{1} << kMaxPow2;
  size_t rel = index - kLinearMax;
  int octave = kFirstOctave + static_cast<int>(rel >> kSubBits);
  uint64_t sub = rel & ((1u << kSubBits) - 1);
  return (uint64_t{1} << octave) + (sub << (octave - kSubBits));
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < kLinearMax) return index + 1;
  if (index >= kNumBuckets - 1) return uint64_t{1} << kMaxPow2;
  size_t rel = index - kLinearMax;
  int octave = kFirstOctave + static_cast<int>(rel >> kSubBits);
  return BucketLowerBound(index) + (uint64_t{1} << (octave - kSubBits));
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
  }
  return out;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::PercentileOf(const Snapshot& snap, double q) {
  // Bucket totals can momentarily exceed the count total under concurrent
  // writers (bucket and count are bumped with two relaxed ops); summing
  // the buckets keeps rank and cumulative walk consistent with each other.
  uint64_t count = 0;
  for (uint64_t b : snap.buckets) count += b;
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = snap.buckets[i];
    if (in_bucket == 0) continue;
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) >= target) {
      double before = static_cast<double>(cumulative - in_bucket);
      double fraction = (target - before) / static_cast<double>(in_bucket);
      if (fraction < 0.0) fraction = 0.0;
      if (fraction > 1.0) fraction = 1.0;
      double lower = static_cast<double>(BucketLowerBound(i));
      double upper = static_cast<double>(BucketUpperBound(i));
      return lower + fraction * (upper - lower);
    }
  }
  return static_cast<double>(BucketLowerBound(kNumBuckets - 1));
}

double Histogram::Percentile(double q) const { return PercentileOf(Snap(), q); }

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: instrumentation sites hold references from static
  // initializers and may fire during static destruction (pool threads).
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  assert(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(&enabled_);
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  assert(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(&enabled_);
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  assert(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(&enabled_);
  return *slot;
}

void MetricsRegistry::DumpPrometheus(std::string* out) const {
  // CI overhead-gate negative test: an injected scrape latency must trip
  // the >5% qps gate. Read per call — the scrape path is cold by design.
  if (const char* ms = std::getenv("STRR_OBS_SCRAPE_SLEEP_MS")) {
    long sleep_ms = std::atol(ms);
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    AppendF(out, "# TYPE %s counter\n", name.c_str());
    AppendF(out, "%s %llu\n", name.c_str(),
            static_cast<unsigned long long>(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    AppendF(out, "# TYPE %s gauge\n", name.c_str());
    AppendF(out, "%s %lld\n", name.c_str(),
            static_cast<long long>(gauge->Value()));
  }
  for (const auto& [name, hist] : histograms_) {
    Histogram::Snapshot snap = hist->Snap();
    AppendF(out, "# TYPE %s histogram\n", name.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;  // sparse: only boundaries that
      cumulative += snap.buckets[i];       // advance the cumulative count
      if (i == Histogram::kNumBuckets - 1) break;  // overflow -> +Inf only
      AppendF(out, "%s_bucket{le=\"%llu\"} %llu\n", name.c_str(),
              static_cast<unsigned long long>(Histogram::BucketUpperBound(i)),
              static_cast<unsigned long long>(cumulative));
    }
    AppendF(out, "%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
            static_cast<unsigned long long>(cumulative));
    AppendF(out, "%s_sum %llu\n", name.c_str(),
            static_cast<unsigned long long>(snap.sum));
    AppendF(out, "%s_count %llu\n", name.c_str(),
            static_cast<unsigned long long>(cumulative));
  }
}

void MetricsRegistry::DumpJson(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->append("{\"counters\":{");
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    AppendF(out, "%s\"%s\":%llu", first ? "" : ",", name.c_str(),
            static_cast<unsigned long long>(counter->Value()));
    first = false;
  }
  out->append("},\"gauges\":{");
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    AppendF(out, "%s\"%s\":%lld", first ? "" : ",", name.c_str(),
            static_cast<long long>(gauge->Value()));
    first = false;
  }
  out->append("},\"histograms\":{");
  first = true;
  for (const auto& [name, hist] : histograms_) {
    Histogram::Snapshot snap = hist->Snap();
    AppendF(out, "%s\"%s\":{\"count\":%llu,\"sum\":%llu", first ? "" : ",",
            name.c_str(), static_cast<unsigned long long>(snap.count),
            static_cast<unsigned long long>(snap.sum));
    AppendF(out, ",\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f,\"p999\":%.3f}",
            Histogram::PercentileOf(snap, 0.50),
            Histogram::PercentileOf(snap, 0.90),
            Histogram::PercentileOf(snap, 0.99),
            Histogram::PercentileOf(snap, 0.999));
    first = false;
  }
  out->append("}}");
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace strr::obs
