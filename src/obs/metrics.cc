#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>

namespace strr::obs {

namespace internal {

uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace internal

namespace {

constexpr int kFirstOctave = 5;  // 2^5 == Histogram::kLinearMax

/// Debug-only guard: names are exported verbatim, so they must already be
/// valid Prometheus metric names, optionally carrying one canonical
/// `{k="v",...}` label suffix (see MetricsRegistry::CanonicalLabels).
bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  size_t base_end = name.find('{');
  if (base_end == std::string::npos) base_end = name.size();
  if (base_end == 0) return false;
  for (size_t i = 0; i < base_end; ++i) {
    char c = name[i];
    bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 c == '_' || c == ':';
    bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  if (base_end < name.size() && name.back() != '}') return false;
  return true;
}

/// Splits a series name into its base name and the inner label list (the
/// suffix without braces, "" when unlabeled).
void SplitSeries(const std::string& name, std::string* base,
                 std::string* inner) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    inner->clear();
    return;
  }
  *base = name.substr(0, brace);
  *inner = name.substr(brace + 1, name.size() - brace - 2);
}

/// JSON string escape for series names (label values may hold quotes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n),
                                               sizeof(buf) - 1));
}

}  // namespace

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kLinearMax) return static_cast<size_t>(value);
  int msb = 63 - std::countl_zero(value);
  if (msb >= kMaxPow2) return kNumBuckets - 1;  // overflow bucket
  uint64_t sub = (value >> (msb - kSubBits)) & ((1u << kSubBits) - 1);
  return kLinearMax +
         static_cast<size_t>(msb - kFirstOctave) * (1u << kSubBits) +
         static_cast<size_t>(sub);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kLinearMax) return index;
  if (index >= kNumBuckets - 1) return uint64_t{1} << kMaxPow2;
  size_t rel = index - kLinearMax;
  int octave = kFirstOctave + static_cast<int>(rel >> kSubBits);
  uint64_t sub = rel & ((1u << kSubBits) - 1);
  return (uint64_t{1} << octave) + (sub << (octave - kSubBits));
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < kLinearMax) return index + 1;
  if (index >= kNumBuckets - 1) return uint64_t{1} << kMaxPow2;
  size_t rel = index - kLinearMax;
  int octave = kFirstOctave + static_cast<int>(rel >> kSubBits);
  return BucketLowerBound(index) + (uint64_t{1} << (octave - kSubBits));
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
  }
  return out;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::PercentileOf(const Snapshot& snap, double q) {
  // Bucket totals can momentarily exceed the count total under concurrent
  // writers (bucket and count are bumped with two relaxed ops); summing
  // the buckets keeps rank and cumulative walk consistent with each other.
  uint64_t count = 0;
  for (uint64_t b : snap.buckets) count += b;
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = snap.buckets[i];
    if (in_bucket == 0) continue;
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) >= target) {
      double before = static_cast<double>(cumulative - in_bucket);
      double fraction = (target - before) / static_cast<double>(in_bucket);
      if (fraction < 0.0) fraction = 0.0;
      if (fraction > 1.0) fraction = 1.0;
      double lower = static_cast<double>(BucketLowerBound(i));
      double upper = static_cast<double>(BucketUpperBound(i));
      return lower + fraction * (upper - lower);
    }
  }
  return static_cast<double>(BucketLowerBound(kNumBuckets - 1));
}

double Histogram::Percentile(double q) const { return PercentileOf(Snap(), q); }

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: instrumentation sites hold references from static
  // initializers and may fire during static destruction (pool threads).
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  assert(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(&enabled_);
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  assert(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(&enabled_);
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  assert(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(&enabled_);
  return *slot;
}

std::string MetricsRegistry::CanonicalLabels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : sorted) {
    if (!first) out.push_back(',');
    first = false;
    out += key;
    out += "=\"";
    for (char c : value) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out += "\"";
  }
  out.push_back('}');
  return out;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  return GetCounter(name + CanonicalLabels(labels));
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  return GetGauge(name + CanonicalLabels(labels));
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  return GetHistogram(name + CanonicalLabels(labels));
}

void MetricsRegistry::DumpPrometheus(std::string* out) const {
  // CI overhead-gate negative test: an injected scrape latency must trip
  // the >5% qps gate. Read per call — the scrape path is cold by design.
  if (const char* ms = std::getenv("STRR_OBS_SCRAPE_SLEEP_MS")) {
    long sleep_ms = std::atol(ms);
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  // One `# TYPE` line per base name: labeled series share the base metric.
  // '{' sorts after '_' so "foo_x" can interleave between "foo" and
  // "foo{...}" in the map — dedupe TYPE lines with a seen-set instead of
  // relying on contiguity.
  std::string base;
  std::string inner;
  std::set<std::string> typed;
  for (const auto& [name, counter] : counters_) {
    SplitSeries(name, &base, &inner);
    if (typed.insert(base).second) {
      AppendF(out, "# TYPE %s counter\n", base.c_str());
    }
    out->append(name);
    AppendF(out, " %llu\n", static_cast<unsigned long long>(counter->Value()));
  }
  typed.clear();
  for (const auto& [name, gauge] : gauges_) {
    SplitSeries(name, &base, &inner);
    if (typed.insert(base).second) {
      AppendF(out, "# TYPE %s gauge\n", base.c_str());
    }
    out->append(name);
    AppendF(out, " %lld\n", static_cast<long long>(gauge->Value()));
  }
  typed.clear();
  for (const auto& [name, hist] : histograms_) {
    SplitSeries(name, &base, &inner);
    if (typed.insert(base).second) {
      AppendF(out, "# TYPE %s histogram\n", base.c_str());
    }
    // The series' own labels splice ahead of `le` in each bucket line.
    std::string bucket_prefix = base + "_bucket{";
    if (!inner.empty()) bucket_prefix += inner + ",";
    Histogram::Snapshot snap = hist->Snap();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;  // sparse: only boundaries that
      cumulative += snap.buckets[i];       // advance the cumulative count
      if (i == Histogram::kNumBuckets - 1) break;  // overflow -> +Inf only
      out->append(bucket_prefix);
      AppendF(out, "le=\"%llu\"} %llu\n",
              static_cast<unsigned long long>(Histogram::BucketUpperBound(i)),
              static_cast<unsigned long long>(cumulative));
    }
    out->append(bucket_prefix);
    AppendF(out, "le=\"+Inf\"} %llu\n",
            static_cast<unsigned long long>(cumulative));
    std::string suffix = inner.empty() ? "" : "{" + inner + "}";
    out->append(base).append("_sum").append(suffix);
    AppendF(out, " %llu\n", static_cast<unsigned long long>(snap.sum));
    out->append(base).append("_count").append(suffix);
    AppendF(out, " %llu\n", static_cast<unsigned long long>(cumulative));
  }
}

void MetricsRegistry::DumpJson(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->append("{\"counters\":{");
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    AppendF(out, "%s\"%s\":%llu", first ? "" : ",", JsonEscape(name).c_str(),
            static_cast<unsigned long long>(counter->Value()));
    first = false;
  }
  out->append("},\"gauges\":{");
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    AppendF(out, "%s\"%s\":%lld", first ? "" : ",", JsonEscape(name).c_str(),
            static_cast<long long>(gauge->Value()));
    first = false;
  }
  out->append("},\"histograms\":{");
  first = true;
  for (const auto& [name, hist] : histograms_) {
    Histogram::Snapshot snap = hist->Snap();
    AppendF(out, "%s\"%s\":{\"count\":%llu,\"sum\":%llu", first ? "" : ",",
            JsonEscape(name).c_str(),
            static_cast<unsigned long long>(snap.count),
            static_cast<unsigned long long>(snap.sum));
    AppendF(out, ",\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f,\"p999\":%.3f}",
            Histogram::PercentileOf(snap, 0.50),
            Histogram::PercentileOf(snap, 0.90),
            Histogram::PercentileOf(snap, 0.99),
            Histogram::PercentileOf(snap, 0.999));
    first = false;
  }
  out->append("}}");
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace strr::obs
