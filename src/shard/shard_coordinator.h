// ShardCoordinator: the scatter-gather front door of the sharded serving
// tier.
//
// The coordinator partitions the road network into N EngineShards
// (ShardMap) and routes every query to the shard owning its start
// segment. A query runs on the owner's query pool; when its cone or TBS
// rings spill across the partition, the per-hop slices are scattered to
// the owning shards' slice pools and merged through the search kernels'
// deterministic ordered commit — so the sharded answer is bit-identical
// to the unsharded executor's, and the 1-shard configuration measures a
// true serialized baseline for the shard-count sweep.
//
// Front door, engine-global (not N× per shard):
//  * SharedResultCache keyed by canonical plan + snapshot version — a hit
//    on any shard's earlier answer serves without executing, and the
//    version-in-key makes stale hits structurally impossible;
//  * quota arbitration through TenantRegistry::TryClaimInflight — one
//    CAS-maintained in-flight count per tenant across all shards;
//  * one snapshot pin per query (m-query legs included), taken here and
//    passed down via QueryExecutor::ExecuteAgainst, so a scattered query
//    is never stitched from two live versions.
//
// kRepeatedS m-queries scatter per-location legs to their owning shards
// and merge in location order, replicating the unsharded merge exactly.
// Whole kIndexed m-queries route to the first start's owner: MQMB's
// joint cone is not decomposable by start, but its interior still
// scatters per hop through the slice pools.
//
// Live observations fan to the owning shard's ingestor when per-shard
// ingestors are enabled (live mode without durability; the journal is
// single-writer).
//
// Thread-safe: Execute may be called concurrently from any thread. Do not
// destroy the coordinator while queries are in flight.
#ifndef STRR_SHARD_SHARD_COORDINATOR_H_
#define STRR_SHARD_SHARD_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/tenant_registry.h"
#include "live/live_profile_manager.h"
#include "live/observation_ingestor.h"
#include "obs/metrics.h"
#include "query/query_plan.h"
#include "shard/engine_shard.h"
#include "shard/shard_map.h"
#include "shard/shard_options.h"
#include "shard/shared_result_cache.h"

namespace strr {

/// See file comment.
class ShardCoordinator {
 public:
  /// All referenced structures must outlive the coordinator. `live`
  /// (optional) supplies per-query snapshot pins; `tenants` (optional)
  /// supplies the engine-global quota + attribution registry.
  ShardCoordinator(const RoadNetwork& network, const StIndex& st_index,
                   const ConIndex& con_index, const SpeedProfile& profile,
                   int64_t delta_t_seconds, const ShardingOptions& options,
                   LiveProfileManager* live = nullptr,
                   TenantRegistry* tenants = nullptr);

  /// Executes one plan through the sharded front door (shared cache ->
  /// quota -> route/scatter -> merge -> cache insert). Blocks the calling
  /// thread until the result is ready.
  StatusOr<RegionResult> Execute(const QueryPlan& plan);

  /// Creates one ObservationIngestor per shard over the live manager.
  /// FailedPrecondition without a live manager.
  Status EnableLiveIngestors(const ObservationIngestorOptions& options);
  bool has_ingestors() const { return ingestors_enabled_; }

  /// Routes one observation to its owning shard's ingestor. False when
  /// per-shard ingestors are off (caller falls back) or the owner's queue
  /// rejected it.
  bool OfferObservation(const SpeedObservation& observation);

  /// Drains every shard ingestor's queue into publishes; returns the
  /// total observations published. Deterministic settling for tests.
  size_t FlushIngestors();

  struct Stats {
    uint64_t routed = 0;       ///< queries executed through the tier
    uint64_t cross_shard = 0;  ///< routed queries whose region left home
    uint64_t shed = 0;         ///< quota rejections
    SharedResultCache::Stats cache;
  };
  Stats stats() const;

  int num_shards() const { return map_.num_shards(); }
  const ShardMap& map() const { return map_; }
  SharedResultCache& shared_cache() { return cache_; }
  EngineShard& shard(uint32_t s) { return *shards_[s]; }

 private:
  /// Owner of the plan's first start segment (shard 0 when unlocatable;
  /// validation then fails identically on any shard).
  uint32_t HomeShard(const QueryPlan& plan) const;

  /// True when a kRepeatedS plan is well-formed enough to scatter per-leg
  /// (malformed plans route whole so validation errors match unsharded).
  static bool RoutableRepeatedS(const QueryPlan& plan);

  StatusOr<RegionResult> RouteWhole(const QueryPlan& plan, uint32_t home,
                                    const ConIndex* con,
                                    const SpeedProfile* profile,
                                    uint64_t version);
  StatusOr<RegionResult> ScatterRepeatedS(const QueryPlan& plan,
                                          const ConIndex* con,
                                          const SpeedProfile* profile,
                                          uint64_t version);

  const RoadNetwork* network_;
  ShardingOptions options_;
  LiveProfileManager* live_;
  TenantRegistry* tenants_;
  ShardMap map_;
  std::vector<std::unique_ptr<EngineShard>> shards_;
  /// Slice pool table indexed by shard id; the spans the per-shard
  /// executors hold point into this vector.
  std::vector<ThreadPool*> slice_pools_;
  SharedResultCache cache_;
  bool ingestors_enabled_ = false;

  std::atomic<uint64_t> routed_{0};
  std::atomic<uint64_t> cross_shard_{0};
  std::atomic<uint64_t> shed_{0};
  /// Labeled per-shard metric handles ({shard="i"}), cached once.
  std::vector<obs::Counter*> routed_counters_;
  std::vector<obs::Counter*> cross_counters_;
};

}  // namespace strr

#endif  // STRR_SHARD_SHARD_COORDINATOR_H_
