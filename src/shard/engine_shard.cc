#include "shard/engine_shard.h"

#include <algorithm>

namespace strr {

EngineShard::EngineShard(uint32_t id, const ShardingOptions& options)
    : id_(id),
      options_(options),
      query_pool_(static_cast<size_t>(std::max(1, options.shard_query_threads))),
      slice_pool_(static_cast<size_t>(std::max(1, options.slice_threads))) {}

void EngineShard::BuildExecutor(const RoadNetwork& network,
                                const StIndex& st_index,
                                const ConIndex& con_index,
                                const SpeedProfile& profile,
                                int64_t delta_t_seconds,
                                std::span<const uint32_t> owners,
                                std::span<ThreadPool* const> slice_pools) {
  QueryExecutorOptions opt;
  // The coordinator is the front door; the shard executor only computes.
  opt.num_threads = 1;  // its internal batch pool is unused
  opt.parallel_mquery_legs = false;  // legs are scattered by the coordinator
  opt.interior_workers = 1;
  opt.result_cache_entries = 0;
  opt.max_inflight = 0;
  opt.tenant_fairness = false;
  opt.shard_owner = owners;
  opt.shard_pools = slice_pools;
  opt.home_shard = id_;
  opt.min_parallel_frontier = options_.min_scatter_frontier;
  opt.min_parallel_ring = options_.min_scatter_ring;
  executor_ = std::make_unique<QueryExecutor>(network, st_index, con_index,
                                              profile, delta_t_seconds, opt);
}

void EngineShard::EnableIngestor(LiveProfileManager& live,
                                 const ObservationIngestorOptions& options) {
  ingestor_ = std::make_unique<ObservationIngestor>(live, options);
}

}  // namespace strr
