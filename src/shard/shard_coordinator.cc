#include "shard/shard_coordinator.h"

#include <algorithm>
#include <future>
#include <string>
#include <utility>

#include "core/result_cache.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace strr {

ShardCoordinator::ShardCoordinator(const RoadNetwork& network,
                                   const StIndex& st_index,
                                   const ConIndex& con_index,
                                   const SpeedProfile& profile,
                                   int64_t delta_t_seconds,
                                   const ShardingOptions& options,
                                   LiveProfileManager* live,
                                   TenantRegistry* tenants)
    : network_(&network),
      options_(options),
      live_(live),
      tenants_(tenants),
      map_(network, std::max(1, options.num_shards), options.cell_meters),
      cache_(options.shared_cache_entries, options.shared_cache_shards) {
  const int n = map_.num_shards();
  shards_.reserve(n);
  slice_pools_.reserve(n);
  for (int s = 0; s < n; ++s) {
    shards_.push_back(
        std::make_unique<EngineShard>(static_cast<uint32_t>(s), options_));
    slice_pools_.push_back(&shards_.back()->slice_pool());
  }
  // Executors second: each holds the complete slice-pool table so its
  // searches can scatter to any shard.
  for (int s = 0; s < n; ++s) {
    shards_[s]->BuildExecutor(
        network, st_index, con_index, profile, delta_t_seconds, map_.owners(),
        {slice_pools_.data(), slice_pools_.size()});
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  routed_counters_.reserve(n);
  cross_counters_.reserve(n);
  for (int s = 0; s < n; ++s) {
    obs::MetricsRegistry::Labels labels = {{"shard", std::to_string(s)}};
    routed_counters_.push_back(
        &reg.GetCounter("strr_shard_queries_total", labels));
    cross_counters_.push_back(
        &reg.GetCounter("strr_shard_cross_shard_queries_total", labels));
  }
}

uint32_t ShardCoordinator::HomeShard(const QueryPlan& plan) const {
  for (const std::vector<SegmentId>& starts : plan.location_starts) {
    for (SegmentId s : starts) {
      if (s < map_.owners().size()) return map_.owner(s);
    }
  }
  return 0;
}

bool ShardCoordinator::RoutableRepeatedS(const QueryPlan& plan) {
  if (plan.locations.empty()) return false;
  if (plan.location_starts.size() != plan.locations.size()) return false;
  for (const std::vector<SegmentId>& starts : plan.location_starts) {
    if (starts.empty()) return false;
  }
  return true;
}

StatusOr<RegionResult> ShardCoordinator::Execute(const QueryPlan& plan) {
  obs::TraceSpan span("shard_route");
  // One snapshot pin per query, held across routing, scatter and merge —
  // every leg and every slice reads exactly this version.
  SnapshotRef snap;
  const ConIndex* con = nullptr;
  const SpeedProfile* profile = nullptr;
  uint64_t version = 0;
  if (live_ != nullptr) {
    obs::TraceSpan pin_span("snapshot_pin");
    snap = live_->Acquire();
    con = &snap.con_index();
    profile = &snap.profile();
    version = snap.version();
  }

  std::string cache_key;
  if (cache_.capacity() > 0) {
    // Tenant-shared key space: results are bit-identical across tenants
    // by construction, and the shard tier exists to pool work.
    PlanKey key = MakePlanKey(plan, /*tenant_scoped=*/false);
    cache_key = SharedResultCache::MakeKey(key.canonical, version);
    StatusOr<RegionResult> hit = cache_.Lookup(cache_key);
    if (hit.ok()) {
      if (tenants_ != nullptr) tenants_->RecordCacheHit(plan.tenant);
      hit->stats.cache_hit = true;
      return hit;
    }
    if (tenants_ != nullptr) tenants_->RecordCacheMiss(plan.tenant);
  }

  bool claimed = false;
  if (tenants_ != nullptr) {
    size_t quota = tenants_->config(plan.tenant).max_inflight;
    if (!tenants_->TryClaimInflight(plan.tenant, quota)) {
      tenants_->RecordShed(plan.tenant);
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "sharded front door: tenant in-flight quota exhausted");
    }
    claimed = true;
  }

  const uint32_t home = HomeShard(plan);
  StatusOr<RegionResult> result =
      plan.strategy == QueryStrategy::kRepeatedS && RoutableRepeatedS(plan)
          ? ScatterRepeatedS(plan, con, profile, version)
          : RouteWhole(plan, home, con, profile, version);

  if (claimed) {
    tenants_->ReleaseClaim(plan.tenant);
    if (result.ok()) tenants_->RecordCompletion(plan.tenant, result->stats.io);
  }
  if (result.ok()) {
    routed_.fetch_add(1, std::memory_order_relaxed);
    routed_counters_[home]->Add(1);
    bool cross = false;
    for (SegmentId s : result->segments) {
      if (map_.owner(s) != home) {
        cross = true;
        break;
      }
    }
    if (cross) {
      cross_shard_.fetch_add(1, std::memory_order_relaxed);
      cross_counters_[home]->Add(1);
    }
    // The snapshot version is part of the key, so the entry stays valid
    // forever (it can only be looked up by queries pinned to the same
    // version); no insert/publish race to guard against.
    if (!cache_key.empty()) cache_.Insert(cache_key, *result);
  }
  return result;
}

StatusOr<RegionResult> ShardCoordinator::RouteWhole(const QueryPlan& plan,
                                                    uint32_t home,
                                                    const ConIndex* con,
                                                    const SpeedProfile* profile,
                                                    uint64_t version) {
  EngineShard& shard = *shards_[home];
  auto run = [&shard, &plan, con, profile, version]() {
    return shard.executor()->ExecuteAgainst(plan, con, profile, version);
  };
  // Inline when already on the owner's query pool (nested routing must
  // not block a worker on a task that may never be scheduled).
  if (shard.query_pool().OnWorkerThread()) return run();
  std::future<StatusOr<RegionResult>> fut = shard.query_pool().Submit(run);
  return fut.get();
}

StatusOr<RegionResult> ShardCoordinator::ScatterRepeatedS(
    const QueryPlan& plan, const ConIndex* con, const SpeedProfile* profile,
    uint64_t version) {
  Stopwatch watch;

  // One independent single-location indexed leg per query location,
  // exactly as QueryExecutor::ExecuteRepeatedS builds them.
  std::vector<QueryPlan> legs;
  legs.reserve(plan.locations.size());
  for (size_t i = 0; i < plan.locations.size(); ++i) {
    QueryPlan leg;
    leg.strategy = QueryStrategy::kIndexed;
    leg.locations = {plan.locations[i]};
    leg.location_starts = {plan.location_starts[i]};
    leg.start_tod = plan.start_tod;
    leg.duration = plan.duration;
    leg.prob = plan.prob;
    legs.push_back(std::move(leg));
  }

  // Scatter each leg to its owning shard's query pool; gather in index
  // order so the merge below is independent of scheduling.
  obs::TraceSpan legs_span("mquery_legs", legs.size());
  std::vector<StatusOr<RegionResult>> leg_results;
  leg_results.reserve(legs.size());
  for (size_t i = 0; i < legs.size(); ++i) {
    leg_results.push_back(Status::Internal("leg not executed"));
  }
  struct Pending {
    size_t index;
    std::future<StatusOr<RegionResult>> future;
  };
  std::vector<Pending> pending;
  pending.reserve(legs.size());
  for (size_t i = 0; i < legs.size(); ++i) {
    uint32_t owner = HomeShard(legs[i]);
    EngineShard& shard = *shards_[owner];
    auto run = [&shard, &legs, i, con, profile, version]() {
      return shard.executor()->ExecuteAgainst(legs[i], con, profile, version);
    };
    if (shard.query_pool().OnWorkerThread()) {
      leg_results[i] = run();
    } else {
      pending.push_back({i, shard.query_pool().Submit(run)});
    }
  }
  for (Pending& p : pending) leg_results[p.index] = p.future.get();

  // Merge in location order — byte-for-byte the unsharded
  // ExecuteRepeatedS merge, so composite results stay bit-identical.
  RegionResult merged;
  std::vector<SegmentId> all;
  for (auto& leg_result : leg_results) {
    if (!leg_result.ok()) return leg_result.status();
    const RegionResult& r = *leg_result;
    all.insert(all.end(), r.segments.begin(), r.segments.end());
    merged.stats.sum_wall_ms += r.stats.wall_ms;
    merged.stats.segments_verified += r.stats.segments_verified;
    merged.stats.time_lists_read += r.stats.time_lists_read;
    merged.stats.segments_expanded += r.stats.segments_expanded;
    merged.stats.heap_pops += r.stats.heap_pops;
    merged.stats.parallel_rounds += r.stats.parallel_rounds;
    merged.stats.max_region_segments += r.stats.max_region_segments;
    merged.stats.min_region_segments += r.stats.min_region_segments;
    merged.stats.boundary_segments += r.stats.boundary_segments;
    merged.stats.io += r.stats.io;
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  merged.segments = std::move(all);
  merged.total_length_m = network_->LengthOfSegments(merged.segments);
  merged.stats.wall_ms = watch.ElapsedMillis();
  merged.stats.snapshot_version = version;
  return merged;
}

Status ShardCoordinator::EnableLiveIngestors(
    const ObservationIngestorOptions& options) {
  if (live_ == nullptr) {
    return Status::FailedPrecondition(
        "shard ingestors require a live profile manager");
  }
  if (options.journal != nullptr) {
    return Status::FailedPrecondition(
        "shard ingestors are incompatible with a journal (single-writer)");
  }
  for (auto& shard : shards_) {
    shard->EnableIngestor(*live_, options);
  }
  ingestors_enabled_ = true;
  return Status::OK();
}

bool ShardCoordinator::OfferObservation(const SpeedObservation& observation) {
  if (!ingestors_enabled_) return false;
  uint32_t owner = observation.segment < map_.owners().size()
                       ? map_.owner(observation.segment)
                       : 0;
  ObservationIngestor* ingestor = shards_[owner]->ingestor();
  if (ingestor == nullptr) return false;
  return ingestor->Offer(observation);
}

size_t ShardCoordinator::FlushIngestors() {
  size_t total = 0;
  for (auto& shard : shards_) {
    if (shard->ingestor() != nullptr) total += shard->ingestor()->Flush();
  }
  return total;
}

ShardCoordinator::Stats ShardCoordinator::stats() const {
  Stats out;
  out.routed = routed_.load(std::memory_order_relaxed);
  out.cross_shard = cross_shard_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.cache = cache_.stats();
  return out;
}

}  // namespace strr
