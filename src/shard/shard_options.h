// Knobs for the sharded scatter-gather serving tier. Standalone header so
// EngineOptions can embed it by value without pulling the shard subsystem
// into every core translation unit.
#ifndef STRR_SHARD_SHARD_OPTIONS_H_
#define STRR_SHARD_SHARD_OPTIONS_H_

#include <cstddef>

namespace strr {

/// Configuration for the sharded serving tier (ShardCoordinator). All off
/// by default: `num_shards <= 1` keeps the engine on its single executor
/// path, bit-for-bit unchanged.
struct ShardingOptions {
  /// Engine shards to partition the road network across. <= 1 disables
  /// sharding entirely.
  int num_shards = 0;
  /// Worker threads in each shard's query pool (whole queries / m-query
  /// legs routed to the shard run here).
  int shard_query_threads = 1;
  /// Worker threads in each shard's slice pool (per-hop frontier slices
  /// and trace-back ring slices scattered to the shard run here). These
  /// are the pools cross-shard cones fan out over.
  int slice_threads = 1;
  /// Spatial granularity of the shard map: segments are bucketed into
  /// SegmentGrid-style square cells of this size before cells are dealt
  /// to shards. Coarser cells = fewer boundary segments, lumpier balance.
  double cell_meters = 2000.0;
  /// Capacity (entries) of the shard-shared result cache keyed by
  /// canonical plan + snapshot version. 0 disables the shared cache.
  size_t shared_cache_entries = 0;
  /// Lock shards inside the shared result cache (concurrency, not
  /// correctness; clamped to >= 1).
  size_t shared_cache_shards = 8;
  /// Minimum cone-frontier size before a gather round scatters across
  /// shard slice pools; below it the round runs on the owning shard
  /// alone. Tests lower this to force cross-shard scatter on tiny grids.
  size_t min_scatter_frontier = 128;
  /// Minimum TBS ring size before ring verification scatters.
  size_t min_scatter_ring = 16;

  bool enabled() const { return num_shards > 1; }
};

}  // namespace strr

#endif  // STRR_SHARD_SHARD_OPTIONS_H_
