// ShardMap: a spatial partition of the road network into N engine shards.
//
// Sharding here is a *scheduling* partition, not an index partition: every
// shard executes against the same immutable global index stack, and the
// map only decides which shard's slice pool expands a given segment's
// frontier slice (and which shard's query pool owns a query that starts
// there). Because the partition never changes what is computed — only
// where — the sharded answer stays bit-identical to the unsharded one.
//
// Construction mirrors SegmentGrid's cell scheme: each segment is bucketed
// by the midpoint of its endpoint nodes into a square cell, occupied cells
// are sorted by key, and the sorted run is cut into `num_shards`
// contiguous spans of roughly equal segment count. Sorted-cell contiguity
// keeps shards spatially coherent (a cone mostly stays on one shard), and
// the deterministic cut makes the map a pure function of the network.
#ifndef STRR_SHARD_SHARD_MAP_H_
#define STRR_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "roadnet/road_network.h"

namespace strr {

/// Immutable segment -> shard assignment. Thread-safe after construction.
class ShardMap {
 public:
  /// Partitions `network` (finalized) into `num_shards` shards using
  /// `cell_meters` spatial cells. num_shards is clamped to [1, segments].
  ShardMap(const RoadNetwork& network, int num_shards,
           double cell_meters = 2000.0);

  int num_shards() const { return num_shards_; }

  /// Owning shard of a segment.
  uint32_t owner(SegmentId seg) const { return owner_[seg]; }

  /// Dense per-segment owner table (indexed by SegmentId) for the search
  /// kernels' scatter loops.
  std::span<const uint32_t> owners() const { return owner_; }

  /// All segments owned by shard `s`, ascending.
  const std::vector<SegmentId>& shard_segments(uint32_t s) const {
    return shard_segments_[s];
  }

  /// Shard `s`'s boundary: its segments with at least one NeighborsOf
  /// neighbor (or reverse twin) owned by a different shard. Ascending.
  const std::vector<SegmentId>& boundary(uint32_t s) const {
    return boundary_[s];
  }

  /// Shard `s`'s halo: segments owned by *other* shards adjacent to shard
  /// s's boundary — what a per-partition subnetwork needs to import so
  /// cones seeded at the boundary can take their first cross-shard hop
  /// locally. Ascending, deduplicated.
  const std::vector<SegmentId>& halo(uint32_t s) const { return halo_[s]; }

  /// Fraction of segments whose owner differs from at least one neighbor
  /// (diagnostic: how much of the network is cut surface).
  double boundary_fraction() const;

 private:
  int num_shards_ = 1;
  std::vector<uint32_t> owner_;                     // by SegmentId
  std::vector<std::vector<SegmentId>> shard_segments_;
  std::vector<std::vector<SegmentId>> boundary_;
  std::vector<std::vector<SegmentId>> halo_;
};

}  // namespace strr

#endif  // STRR_SHARD_SHARD_MAP_H_
