// SharedResultCache: one result-cache tier shared by every engine shard.
//
// The per-executor ResultCache (src/core/result_cache.h) is private to its
// executor — N shards would hold N disjoint caches, and a query routed to
// shard 2 could not reuse the answer shard 0 computed a moment ago. This
// tier sits in front of routing at the coordinator, keyed by
//
//   PlanKey::canonical + snapshot_version (8 bytes, little-endian)
//
// so the live snapshot version is *part of the key*: a publish does not
// invalidate anything, it simply makes new queries miss onto fresh entries
// while readers pinned to the old snapshot keep hitting the old ones.
// Entries are the serialized RegionResult (sorted segment list
// delta-coded), so a hit deserializes instead of re-executing — and the
// encode/decode pair doubles as the wire format a future remote-shard
// transport would ship results in.
//
// Thread-safe: the key hash picks an internal lock shard, each an
// independent mutex + LRU list, so concurrent hits on different keys never
// contend on one lock.
#ifndef STRR_SHARD_SHARED_RESULT_CACHE_H_
#define STRR_SHARD_SHARED_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/query.h"
#include "util/result.h"

namespace strr {

/// Serializes a RegionResult (segments delta-coded; all stats fields).
std::string EncodeRegionResult(const RegionResult& result);

/// Inverse of EncodeRegionResult; Corruption on malformed bytes.
StatusOr<RegionResult> DecodeRegionResult(const std::string& bytes);

/// Bounded, sharded LRU over serialized results. See file comment.
class SharedResultCache {
 public:
  /// `capacity` = max entries across all lock shards (0 caches nothing);
  /// `lock_shards` clamped to >= 1.
  SharedResultCache(size_t capacity, size_t lock_shards = 8);

  /// Composes the cache key for a canonical plan at a snapshot version.
  static std::string MakeKey(const std::string& canonical, uint64_t version);

  /// Looks up and decodes; nullopt-style via ok()==false NotFound when
  /// absent. Promotes the entry to most-recent on hit.
  StatusOr<RegionResult> Lookup(const std::string& key);

  /// Inserts (or refreshes) the serialized form of `result` under `key`,
  /// evicting the least-recently-used entries of the same lock shard
  /// beyond per-shard capacity.
  void Insert(const std::string& key, const RegionResult& result);

  /// Drops one entry if present (used when a version race makes a freshly
  /// inserted entry untrustworthy).
  void Erase(const std::string& key);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  Stats stats() const;

  size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// MRU-first list of keys; the map stores (serialized value, list
    /// position) for O(1) promote/evict.
    std::list<std::string> lru;
    std::unordered_map<std::string,
                       std::pair<std::string, std::list<std::string>::iterator>>
        entries;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key);

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace strr

#endif  // STRR_SHARD_SHARED_RESULT_CACHE_H_
