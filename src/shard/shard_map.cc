#include "shard/shard_map.h"

#include <algorithm>
#include <cmath>

namespace strr {

namespace {

/// SegmentGrid's cell key scheme: pack signed cell coordinates into one
/// sortable 64-bit key (x-major, so sorted cells sweep west-to-east in
/// column strips — contiguous runs are spatially coherent bands).
int64_t CellKeyFor(const XyPoint& p, double cell_meters) {
  int cx = static_cast<int>(std::floor(p.x / cell_meters));
  int cy = static_cast<int>(std::floor(p.y / cell_meters));
  return (static_cast<int64_t>(cx) << 32) ^ (cy & 0xffffffffLL);
}

}  // namespace

ShardMap::ShardMap(const RoadNetwork& network, int num_shards,
                   double cell_meters) {
  size_t n = network.NumSegments();
  if (cell_meters <= 0.0) cell_meters = 2000.0;
  num_shards_ = std::max(1, num_shards);
  if (n > 0 && static_cast<size_t>(num_shards_) > n) {
    num_shards_ = static_cast<int>(n);
  }
  owner_.assign(n, 0);
  shard_segments_.assign(num_shards_, {});
  boundary_.assign(num_shards_, {});
  halo_.assign(num_shards_, {});
  if (n == 0) return;

  // Bucket segments by cell key. A two-way street's twin shares the shape,
  // hence the cell, hence the shard — twins never straddle the cut.
  std::vector<std::pair<int64_t, SegmentId>> keyed;
  keyed.reserve(n);
  for (SegmentId s = 0; s < n; ++s) {
    const RoadSegment& seg = network.segment(s);
    XyPoint mid = (network.node(seg.from_node) + network.node(seg.to_node)) *
                  0.5;
    keyed.emplace_back(CellKeyFor(mid, cell_meters), s);
  }
  std::sort(keyed.begin(), keyed.end());

  // Cut the sorted run into num_shards_ spans of roughly equal segment
  // count, never splitting a cell across shards: a cell goes to the shard
  // whose span its first segment falls into.
  size_t per_shard = (n + num_shards_ - 1) / num_shards_;
  size_t i = 0;
  uint32_t shard = 0;
  while (i < n) {
    size_t cell_end = i + 1;
    while (cell_end < n && keyed[cell_end].first == keyed[i].first) {
      ++cell_end;
    }
    // Advance to the next shard when the current one is full, but keep the
    // last shard open-ended so every trailing cell lands somewhere.
    if (shard + 1 < static_cast<uint32_t>(num_shards_) &&
        shard_segments_[shard].size() >= per_shard) {
      ++shard;
    }
    for (; i < cell_end; ++i) {
      owner_[keyed[i].second] = shard;
      shard_segments_[shard].push_back(keyed[i].second);
    }
  }
  for (auto& segs : shard_segments_) std::sort(segs.begin(), segs.end());

  // Boundary + halo from the TBS neighbor relation (NeighborsOf already
  // includes the reverse twin), the exact adjacency cones expand through.
  for (SegmentId s = 0; s < n; ++s) {
    uint32_t own = owner_[s];
    bool cut = false;
    for (SegmentId nb : network.NeighborsOf(s)) {
      if (owner_[nb] != own) {
        cut = true;
        halo_[own].push_back(nb);
      }
    }
    if (cut) boundary_[own].push_back(s);
  }
  for (auto& h : halo_) {
    std::sort(h.begin(), h.end());
    h.erase(std::unique(h.begin(), h.end()), h.end());
  }
}

double ShardMap::boundary_fraction() const {
  if (owner_.empty()) return 0.0;
  size_t cut = 0;
  for (const auto& b : boundary_) cut += b.size();
  return static_cast<double>(cut) / static_cast<double>(owner_.size());
}

}  // namespace strr
