#include "shard/shared_result_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/serialize.h"

namespace strr {

namespace {

constexpr uint8_t kFormatVersion = 1;

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string EncodeRegionResult(const RegionResult& result) {
  BinaryWriter w;
  w.PutU8(kFormatVersion);
  w.PutU32List(result.segments, /*sorted=*/true);
  w.PutDouble(result.total_length_m);
  const QueryStats& s = result.stats;
  w.PutDouble(s.wall_ms);
  w.PutDouble(s.sum_wall_ms);
  w.PutVarint64(s.time_lists_read);
  w.PutVarint64(s.segments_verified);
  w.PutVarint64(s.segments_expanded);
  w.PutVarint64(s.heap_pops);
  w.PutVarint64(s.parallel_rounds);
  w.PutU64(s.snapshot_version);
  w.PutVarint64(s.io.disk_page_reads);
  w.PutVarint64(s.io.disk_page_writes);
  w.PutVarint64(s.io.cache_hits);
  w.PutVarint64(s.io.cache_misses);
  w.PutVarint64(s.io.evictions);
  w.PutVarint64(s.max_region_segments);
  w.PutVarint64(s.min_region_segments);
  w.PutVarint64(s.boundary_segments);
  return w.Release();
}

StatusOr<RegionResult> DecodeRegionResult(const std::string& bytes) {
  BinaryReader r(bytes);
  STRR_ASSIGN_OR_RETURN(uint8_t format, r.GetU8());
  if (format != kFormatVersion) {
    return Status::Corruption("region result: unknown format version");
  }
  RegionResult out;
  STRR_ASSIGN_OR_RETURN(out.segments, r.GetU32List(/*sorted=*/true));
  STRR_ASSIGN_OR_RETURN(out.total_length_m, r.GetDouble());
  QueryStats& s = out.stats;
  STRR_ASSIGN_OR_RETURN(s.wall_ms, r.GetDouble());
  STRR_ASSIGN_OR_RETURN(s.sum_wall_ms, r.GetDouble());
  STRR_ASSIGN_OR_RETURN(s.time_lists_read, r.GetVarint64());
  STRR_ASSIGN_OR_RETURN(s.segments_verified, r.GetVarint64());
  STRR_ASSIGN_OR_RETURN(s.segments_expanded, r.GetVarint64());
  STRR_ASSIGN_OR_RETURN(s.heap_pops, r.GetVarint64());
  STRR_ASSIGN_OR_RETURN(s.parallel_rounds, r.GetVarint64());
  STRR_ASSIGN_OR_RETURN(s.snapshot_version, r.GetU64());
  STRR_ASSIGN_OR_RETURN(s.io.disk_page_reads, r.GetVarint64());
  STRR_ASSIGN_OR_RETURN(s.io.disk_page_writes, r.GetVarint64());
  STRR_ASSIGN_OR_RETURN(s.io.cache_hits, r.GetVarint64());
  STRR_ASSIGN_OR_RETURN(s.io.cache_misses, r.GetVarint64());
  STRR_ASSIGN_OR_RETURN(s.io.evictions, r.GetVarint64());
  uint64_t max_region = 0, min_region = 0, boundary = 0;
  STRR_ASSIGN_OR_RETURN(max_region, r.GetVarint64());
  STRR_ASSIGN_OR_RETURN(min_region, r.GetVarint64());
  STRR_ASSIGN_OR_RETURN(boundary, r.GetVarint64());
  s.max_region_segments = static_cast<size_t>(max_region);
  s.min_region_segments = static_cast<size_t>(min_region);
  s.boundary_segments = static_cast<size_t>(boundary);
  if (!r.AtEnd()) {
    return Status::Corruption("region result: trailing bytes");
  }
  return out;
}

SharedResultCache::SharedResultCache(size_t capacity, size_t lock_shards)
    : capacity_(capacity) {
  if (lock_shards == 0) lock_shards = 1;
  lock_shards = std::min(lock_shards, std::max<size_t>(capacity, 1));
  shards_.reserve(lock_shards);
  for (size_t i = 0; i < lock_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_capacity_ = (capacity + shards_.size() - 1) / shards_.size();
}

std::string SharedResultCache::MakeKey(const std::string& canonical,
                                       uint64_t version) {
  std::string key = canonical;
  char tail[8];
  std::memcpy(tail, &version, 8);
  key.append(tail, 8);
  return key;
}

SharedResultCache::Shard& SharedResultCache::ShardFor(const std::string& key) {
  return *shards_[Fnv1a(key) % shards_.size()];
}

StatusOr<RegionResult> SharedResultCache::Lookup(const std::string& key) {
  if (capacity_ == 0) return Status::NotFound("shared cache disabled");
  Shard& shard = ShardFor(key);
  std::string bytes;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      ++shard.misses;
      return Status::NotFound("shared cache miss");
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.second);
    ++shard.hits;
    bytes = it->second.first;
  }
  // Decode outside the lock: hits on the same lock shard stay concurrent.
  return DecodeRegionResult(bytes);
}

void SharedResultCache::Insert(const std::string& key,
                               const RegionResult& result) {
  if (capacity_ == 0) return;
  std::string bytes = EncodeRegionResult(result);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    it->second.first = std::move(bytes);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.second);
    return;
  }
  shard.lru.push_front(key);
  shard.entries.emplace(key, std::make_pair(std::move(bytes),
                                            shard.lru.begin()));
  ++shard.insertions;
  while (shard.entries.size() > per_shard_capacity_) {
    shard.entries.erase(shard.lru.back());
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void SharedResultCache::Erase(const std::string& key) {
  if (capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return;
  shard.lru.erase(it->second.second);
  shard.entries.erase(it);
}

SharedResultCache::Stats SharedResultCache::stats() const {
  Stats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.entries += shard->entries.size();
  }
  return out;
}

}  // namespace strr
