// EngineShard: one partition's serving resources.
//
// A shard owns two thread pools and a private QueryExecutor over the
// SHARED global index stack:
//
//  * query pool — whole queries (and m-query legs) routed to this shard
//    by the ShardCoordinator run here; its size bounds the shard's query
//    concurrency;
//  * slice pool — per-hop cone frontier slices and TBS ring buckets that
//    OTHER shards' queries scatter to this shard run here (see
//    search/frontier_engine.h FrontierRuntime::shard_pools).
//
// Query-pool tasks wait on slice-pool futures; slice tasks are pure
// compute and never wait on anything — the wait graph is acyclic across
// any number of shards, so cross-shard scatter cannot deadlock.
//
// The executor is deliberately stripped: no cache, no admission, no
// tenancy, no live manager — the coordinator owns the front door (shared
// cache + engine-global quota) and pins one snapshot per query, passing
// the pinned surfaces through QueryExecutor::ExecuteAgainst.
//
// Optionally a shard carries its own ObservationIngestor over the shared
// LiveProfileManager, so live observation fan-in parallelizes by owning
// shard (Publish serializes internally; concurrent ingestors are safe).
#ifndef STRR_SHARD_ENGINE_SHARD_H_
#define STRR_SHARD_ENGINE_SHARD_H_

#include <cstdint>
#include <memory>
#include <span>

#include "core/query_executor.h"
#include "live/observation_ingestor.h"
#include "shard/shard_options.h"
#include "util/thread_pool.h"

namespace strr {

/// See file comment. Constructed in two phases by the ShardCoordinator:
/// pools first (every shard's slice pool must exist before any executor
/// can hold the full pool table), then BuildExecutor.
class EngineShard {
 public:
  EngineShard(uint32_t id, const ShardingOptions& options);

  /// Phase two: creates the shard's executor over the shared stack.
  /// `owners` / `slice_pools` must outlive the shard (the coordinator owns
  /// both); `slice_pools` is indexed by shard id and includes this shard.
  void BuildExecutor(const RoadNetwork& network, const StIndex& st_index,
                     const ConIndex& con_index, const SpeedProfile& profile,
                     int64_t delta_t_seconds, std::span<const uint32_t> owners,
                     std::span<ThreadPool* const> slice_pools);

  /// Attaches a per-shard live ingestor over the shared manager.
  void EnableIngestor(LiveProfileManager& live,
                      const ObservationIngestorOptions& options);

  uint32_t id() const { return id_; }
  ThreadPool& query_pool() { return query_pool_; }
  ThreadPool& slice_pool() { return slice_pool_; }
  QueryExecutor* executor() { return executor_.get(); }
  ObservationIngestor* ingestor() { return ingestor_.get(); }

 private:
  uint32_t id_;
  ShardingOptions options_;
  ThreadPool query_pool_;
  ThreadPool slice_pool_;
  std::unique_ptr<QueryExecutor> executor_;
  std::unique_ptr<ObservationIngestor> ingestor_;
};

}  // namespace strr

#endif  // STRR_SHARD_ENGINE_SHARD_H_
