// FrontierEngine: the unified frontier-search core of the whole system.
//
// Every hot path the paper describes is one of two frontier expansions
// over the directed segment graph:
//
//  * TIMED expansion — the modified Incremental Network Expansion
//    (Dijkstra over travel time) behind Con-Index table construction
//    (Algorithm: Near/Far lists per Δt), the ES baseline cone, the
//    router, and MQMB's nearest-start assignment (Algorithm 3);
//  * CONE expansion — the Δt-hop walk over Con-Index Near/Far lists
//    behind SQMB (Algorithm 1) and MQMB bounding regions.
//
// Before src/search/ these interiors lived twice (roadnet/expansion.cc
// and query/bounding_region.cc), both single-threaded and re-allocating
// per call. The engine owns both, runs them on pooled ExpansionContexts
// (zero steady-state allocation), and offers a level-synchronous parallel
// mode with a DETERMINISTIC commit order.
//
// ## Arrival oracle
//
// The per-segment cost is pluggable: a SpeedFn maps a segment to the
// speed used for its traversal (<= 0 marks the segment blocked in this
// pass). Under the parallel runtime the oracle is invoked concurrently
// from gather workers and must be thread-safe (every oracle in the tree
// reads immutable profile/network state, so this holds by construction).
//
// ## Determinism argument (parallel == sequential, bit-identical)
//
// Timed expansion: labels are completion times; every relaxation applies
// the same canonical rule in both modes — a strictly smaller time always
// wins; on an exactly equal time the smaller origin (and parent) id wins.
// Costs are non-negative, so the (label, origin, parent) fixpoint of that
// rule is unique: labels are shortest-path times (order-independent
// min-plus algebra), and tie fields are the minimum over optimal
// predecessors, well-founded because predecessors on an optimal path
// never have larger labels. Sequential Dijkstra reaches this fixpoint by
// settling in label order (equal-time tie offers re-enqueue so they
// propagate); the parallel mode reaches it by delta-stepping: the heap
// yields buckets [t0, t0 + width) of the tentative frontier, each bucket
// iterates gather -> ordered-commit rounds to its own fixpoint before
// the next bucket opens, and a settled bucket can never reopen because
// any later relaxation starts from a label >= the bucket's upper bound.
// Candidate times are computed as label[pred] + cost from *committed*
// labels, so both modes evaluate the identical float expression for the
// winning path — results are bit-identical, not merely equivalent.
//
// Cone expansion: the hop walk is already level-synchronous (members
// discovered in step k expand in step k+1). The parallel mode splits one
// step's frontier across workers that only *read* shared state and emit
// (found, owner) candidates; the commit applies them on one thread in
// (frontier position, list position) order — exactly the sequential
// discovery order — so the member sequence, owners, and the last-frontier
// shell are identical by construction.
//
// Both modes fall back to inline execution per round/bucket when the
// frontier is below `min_parallel_frontier` — a scheduling choice that,
// by the argument above, cannot change results.
#ifndef STRR_SEARCH_FRONTIER_ENGINE_H_
#define STRR_SEARCH_FRONTIER_ENGINE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "roadnet/road_network.h"
#include "search/expansion_context.h"
#include "util/thread_pool.h"

namespace strr {

/// Per-segment speed oracle, meters/second. Must return > 0 for
/// traversable segments; return <= 0 to mark a segment non-traversable in
/// this pass. Thread-safe when used with a parallel runtime.
using SpeedFn = std::function<double(SegmentId)>;

/// One expansion hit: a segment plus the earliest completion time.
struct ExpansionHit {
  SegmentId segment;
  double arrival_seconds;  ///< time at which the segment is fully traversed
};

/// How (and whether) the engine fans one search's interior across threads.
/// Default = sequential. The pool is shared infrastructure (typically the
/// executor's interior pool); gather tasks submitted to it are pure
/// compute and never block, so any pool size makes progress — the calling
/// thread always works chunk 0 itself.
struct FrontierRuntime {
  ThreadPool* pool = nullptr;  ///< null = sequential
  int workers = 1;             ///< total chunks per round (caller included)
  /// Rounds with fewer frontier members run inline — fan-out overhead
  /// would exceed the work. Purely a scheduling decision (see file
  /// comment); results are unaffected.
  size_t min_parallel_frontier = 128;
  /// Delta-stepping bucket width for parallel timed expansion; <= 0
  /// derives budget / 48.
  double bucket_width_seconds = 0.0;

  // --- Raw-speed layout knobs (results bit-identical either way) ----------
  /// Stream the network's flat CSR adjacency (offset/neighbor/length
  /// arrays) instead of per-segment std::vector hops. Same neighbor order,
  /// same float expressions — a pure layout change.
  bool flat_adjacency = false;
  /// Software-prefetch successor label slots ahead of each relaxation.
  /// A scheduling hint only; no effect on results.
  bool prefetch = false;
  /// Partition parallel gather rounds by SegmentGrid cell (spatial
  /// locality) instead of arrival order. Candidates are re-sorted to the
  /// sequential commit order before applying, so results are unchanged.
  bool locality_chunking = false;

  // --- Sharded scatter-gather (src/shard/) ---------------------------------
  /// Dense per-segment shard owner table (ShardMap::owners). When set
  /// together with shard_pools, cone gather rounds are partitioned by the
  /// owner of each frontier member and scattered to the owning shard's
  /// slice pool instead of chunked across one pool. Candidates still merge
  /// through the same ordered commit, so results are bit-identical — the
  /// shard map only decides where a slice runs.
  std::span<const uint32_t> shard_owner;
  /// One slice pool per shard, indexed by shard id. Slice tasks are pure
  /// gathers and never block, so cross-shard fan-out cannot deadlock.
  std::span<ThreadPool* const> shard_pools;
  /// The shard whose query pool is running this search; its slice of each
  /// round runs inline on the calling thread.
  uint32_t home_shard = 0;

  bool parallel() const { return pool != nullptr && workers > 1; }
  bool sharded() const {
    return shard_pools.size() > 1 && !shard_owner.empty();
  }
};

/// Work counters for one search, summed across its expansions. These feed
/// QueryStats (segments_expanded / heap_pops / parallel_rounds).
struct SearchMetrics {
  uint64_t segments_expanded = 0;  ///< frontier members expanded
  uint64_t heap_pops = 0;          ///< d-ary heap pops (timed mode)
  uint64_t parallel_rounds = 0;    ///< fanned gather/commit rounds

  void Add(const SearchMetrics& o) {
    segments_expanded += o.segments_expanded;
    heap_pops += o.heap_pops;
    parallel_rounds += o.parallel_rounds;
  }
};

/// See file comment. Cheap to construct (stores references); one engine
/// instance serves one search at a time (per context), but any number of
/// engines may run concurrently over the same network.
class FrontierEngine {
 public:
  explicit FrontierEngine(const RoadNetwork& network,
                          const FrontierRuntime& runtime = {})
      : network_(&network), runtime_(runtime) {}

  // --- Timed (Dijkstra / INE) expansion -------------------------------------

  struct TimedRequest {
    std::span<const SegmentId> sources;
    /// Completion-time budget; hits must finish within it. Infinite budget
    /// forces sequential execution (no bucket bound to step by).
    double budget = kUnreachedLabel;
    bool track_origin = false;  ///< record the winning source per segment
    bool track_parent = false;  ///< record the predecessor per segment
    /// Early exit once this segment settles (sequential only; used by
    /// point-to-point shortest path).
    SegmentId stop_at = kInvalidSegment;
  };

  /// Runs multi-source expansion into `ctx` (Begin is called internally).
  /// Afterwards ctx.reached() lists every segment whose traversal can
  /// complete within budget, with ctx.Label/Origin/Parent holding the
  /// per-segment results until the context's next Begin.
  void RunTimed(ExpansionContext& ctx, const TimedRequest& request,
                const SpeedFn& speed, SearchMetrics* metrics = nullptr) const;

  /// Materializes ctx results as hits sorted by (arrival, id).
  std::vector<ExpansionHit> HitsByArrival(const ExpansionContext& ctx) const;

  /// Materializes ctx results as segment ids sorted ascending — the form
  /// Con-Index Near/Far lists store.
  std::vector<SegmentId> ReachedSorted(const ExpansionContext& ctx) const;

  // --- Cone (Δt-hop reachability-list) expansion ----------------------------

  /// Reachability-list oracle: the segments reachable from `seg` within
  /// one Δt at the statistics slot covering `tod`. Must be thread-safe
  /// under a parallel runtime (Con-Index lazy materialization is).
  using ListFn =
      std::function<const std::vector<SegmentId>&(SegmentId seg, int64_t tod)>;

  /// MQMB elimination filter: return false to reject `found` discovered
  /// through `owner`'s cone. Must be pure/thread-safe.
  using ConeFilter =
      std::function<bool(SegmentId owner, SegmentId found)>;

  struct ConeRequest {
    std::span<const SegmentId> starts;
    int64_t start_tod = 0;
    int64_t duration_seconds = 0;
    int64_t delta_t_seconds = 300;       ///< hop width (k = ceil-ish L/Δt)
    int64_t profile_slot_seconds = 3600; ///< speed-statistics granularity
  };

  /// Runs the hop walk into `ctx`; returns the cone members sorted by id.
  /// Members carry their owning start in ctx.Origin. `last_frontier_out`
  /// (optional) receives the outermost expansion shell, sorted — the TBS
  /// seed when the cone saturates its component. Members are expanded at
  /// most once per profile slot (speeds only change across slots, so
  /// re-expansion below that granularity is provably a no-op).
  std::vector<SegmentId> RunCone(ExpansionContext& ctx,
                                 const ConeRequest& request,
                                 const ListFn& lists, const ConeFilter& filter,
                                 std::vector<SegmentId>* last_frontier_out,
                                 SearchMetrics* metrics = nullptr) const;

  const RoadNetwork& network() const { return *network_; }
  const FrontierRuntime& runtime() const { return runtime_; }

 private:
  void RunTimedSequential(ExpansionContext& ctx, const TimedRequest& request,
                          const SpeedFn& speed, SearchMetrics* metrics) const;
  void RunTimedParallel(ExpansionContext& ctx, const TimedRequest& request,
                        const SpeedFn& speed, SearchMetrics* metrics) const;

  /// Seeds sources into ctx with the canonical relax rule; pushes heap
  /// entries for reached sources.
  void SeedSources(ExpansionContext& ctx, const TimedRequest& request,
                   const SpeedFn& speed) const;

  const RoadNetwork* network_;
  FrontierRuntime runtime_;
};

}  // namespace strr

#endif  // STRR_SEARCH_FRONTIER_ENGINE_H_
