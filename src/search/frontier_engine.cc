#include "search/frontier_engine.h"

#include <algorithm>
#include <future>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "roadnet/csr_graph.h"
#include "util/time_util.h"

namespace strr {

namespace {

obs::Counter& HeapPopsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_search_heap_pops_total");
  return c;
}
obs::Counter& SegmentsExpandedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_search_segments_expanded_total");
  return c;
}
obs::Counter& ParallelRoundsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_search_parallel_rounds_total");
  return c;
}

/// Folds one search's per-call tallies into the process counters. Called
/// on the orchestrating thread only, once per search, so pool workers
/// never touch the registry from the hot gather loops.
void RecordSearchCounters(uint64_t pops, uint64_t expanded, uint64_t rounds) {
  if (pops != 0) HeapPopsCounter().Add(pops);
  if (expanded != 0) SegmentsExpandedCounter().Add(expanded);
  if (rounds != 0) ParallelRoundsCounter().Add(rounds);
}

/// Number of Δt hops for duration L: k with kΔt <= L < (k+1)Δt, at least 1.
int NumHops(int64_t duration, int64_t delta_t) {
  int k = static_cast<int>(duration / delta_t);
  return k < 1 ? 1 : k;
}

// --- Adjacency policies -----------------------------------------------------
//
// The hot loops are templated over one of these so the legacy path keeps
// its exact code shape (no per-edge branch) and the CSR path streams flat
// arrays. Both expose the same neighbor order and compute the same float
// expressions, so the choice cannot change results.

struct LegacyAdjacency {
  const RoadNetwork* net;
  const std::vector<SegmentId>& Out(SegmentId s) const {
    return net->OutgoingOf(s);
  }
  double Cost(SegmentId next, double sp) const {
    return net->segment(next).TravelTimeSeconds(sp);
  }
};

struct FlatAdjacency {
  const CsrAdjacency* csr;
  std::span<const SegmentId> Out(SegmentId s) const { return csr->Out(s); }
  // Callers check sp > 0 before Cost, so this is the identical expression
  // RoadSegment::TravelTimeSeconds evaluates on the sp > 0 branch.
  double Cost(SegmentId next, double sp) const {
    return csr->length(next) / sp;
  }
};

/// Sorts `perm` (indices into `frontier`) by spatial cell so one gather
/// chunk works road-network-close segments. Ties keep frontier order, so
/// the permutation is deterministic.
void BuildLocalityPermutation(const CsrAdjacency& csr,
                              const std::vector<SegmentId>& frontier,
                              std::vector<uint32_t>& perm) {
  perm.resize(frontier.size());
  for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    const uint32_t ra = csr.cell_rank(frontier[a]);
    const uint32_t rb = csr.cell_rank(frontier[b]);
    if (ra != rb) return ra < rb;
    return a < b;
  });
}

/// Restores the sequential commit order after a permuted gather: ascending
/// producing-frontier position. Candidates of one position are contiguous
/// in one worker's buffer (list order); stable_sort keeps them that way.
void SortCandidatesByPos(std::vector<FrontierCandidate>& cands) {
  std::stable_sort(cands.begin(), cands.end(),
                   [](const FrontierCandidate& a, const FrontierCandidate& b) {
                     return a.pos < b.pos;
                   });
}

// --- Timed expansion interiors ----------------------------------------------

template <bool kPrefetch, typename Adj>
void SequentialLoop(ExpansionContext& ctx,
                    const FrontierEngine::TimedRequest& request,
                    const SpeedFn& speed, const Adj& adj,
                    SearchMetrics* metrics) {
  uint64_t pops = 0, expanded = 0;
  double t;
  SegmentId s;
  while (ctx.HeapPop(&t, &s)) {
    ++pops;
    if (t > ctx.Label(s)) continue;  // stale entry
    ++expanded;
    if (s == request.stop_at) break;  // settled; Dijkstra guarantees optimal
    const SegmentId org =
        request.track_origin ? ctx.Origin(s) : kInvalidSegment;
    const auto& nexts = adj.Out(s);
    if constexpr (kPrefetch) {
      for (SegmentId nxt : nexts) ctx.PrefetchSlot(nxt);
    }
    for (SegmentId next : nexts) {
      double sp = speed(next);
      if (sp <= 0.0) continue;
      double t2 = t + adj.Cost(next, sp);
      if (t2 > request.budget) continue;
      double cur = ctx.Label(next);
      if (t2 < cur) {
        ctx.SetLabel(next, t2);
        if (request.track_origin) ctx.SetOrigin(next, org);
        if (request.track_parent) ctx.SetParent(next, s);
        ctx.HeapPush(t2, next);
      } else if (t2 == cur) {
        // Canonical tie rule (see header): the smaller origin/parent id
        // wins on an exactly equal completion time. Re-enqueue so the
        // improvement propagates even past already-expanded segments.
        bool improved = false;
        if (request.track_origin && org < ctx.Origin(next)) {
          ctx.SetOrigin(next, org);
          improved = true;
        }
        if (request.track_parent && s < ctx.Parent(next)) {
          ctx.SetParent(next, s);
          improved = true;
        }
        if (improved) ctx.HeapPush(t2, next);
      }
    }
  }
  if (metrics != nullptr) {
    metrics->heap_pops += pops;
    metrics->segments_expanded += expanded;
  }
  RecordSearchCounters(pops, expanded, 0);
}

/// Gathers relaxation candidates for permuted frontier slots [begin, end)
/// into `out`. Read-only against shared ctx state (commit happens between
/// phases). `perm` == nullptr walks the frontier in order.
template <bool kPrefetch, typename Adj>
void GatherTimed(const ExpansionContext& ctx,
                 const FrontierEngine::TimedRequest& request,
                 const SpeedFn& speed, const Adj& adj,
                 const std::vector<SegmentId>& frontier, const uint32_t* perm,
                 size_t begin, size_t end,
                 std::vector<FrontierCandidate>& out) {
  out.clear();
  for (size_t j = begin; j < end; ++j) {
    const uint32_t i =
        perm != nullptr ? perm[j] : static_cast<uint32_t>(j);
    SegmentId u = frontier[i];
    const double lu = ctx.Label(u);
    const SegmentId org =
        request.track_origin ? ctx.Origin(u) : kInvalidSegment;
    const auto& nexts = adj.Out(u);
    if constexpr (kPrefetch) {
      for (SegmentId nxt : nexts) ctx.PrefetchSlot(nxt);
    }
    for (SegmentId nxt : nexts) {
      double sp = speed(nxt);
      if (sp <= 0.0) continue;
      double t2 = lu + adj.Cost(nxt, sp);
      if (t2 > request.budget) continue;
      double cur = ctx.Label(nxt);
      if (t2 > cur) continue;
      if (t2 == cur) {
        bool could_improve =
            (request.track_origin && org < ctx.Origin(nxt)) ||
            (request.track_parent && u < ctx.Parent(nxt));
        if (!could_improve) continue;
      }
      out.push_back(FrontierCandidate{nxt, org, u, i, t2});
    }
  }
}

template <bool kPrefetch, typename Adj>
void ParallelLoop(ExpansionContext& ctx,
                  const FrontierEngine::TimedRequest& request,
                  const SpeedFn& speed, const Adj& adj,
                  const FrontierRuntime& runtime,
                  const CsrAdjacency* locality_csr, SearchMetrics* metrics) {
  const double width = runtime.bucket_width_seconds > 0.0
                           ? runtime.bucket_width_seconds
                           : std::max(request.budget / 48.0, 1e-9);
  const size_t workers = static_cast<size_t>(std::max(runtime.workers, 1));
  ctx.EnsureWorkerBuffers(workers);
  std::vector<SegmentId>& frontier = ctx.frontier();
  std::vector<SegmentId>& next = ctx.next_frontier();
  uint64_t pops = 0, expanded = 0, rounds = 0;
  // Monotone wave ids distinguish frontier generations in ctx.Mark for
  // O(1) dedup of frontier additions.
  int32_t wave = 0;

  double t;
  SegmentId s;
  for (;;) {
    // Open the next delta-stepping bucket: [t0, t0 + width], where t0 is
    // the smallest live tentative label remaining.
    frontier.clear();
    bool have_bucket = false;
    double t0 = 0.0;
    while (ctx.HeapPop(&t, &s)) {
      ++pops;
      if (t > ctx.Label(s)) continue;  // stale
      t0 = t;
      have_bucket = true;
      break;
    }
    if (!have_bucket) break;
    const double bucket_end = t0 + width;
    ++wave;
    ctx.SetMark(s, wave);
    frontier.push_back(s);
    while (!ctx.HeapEmpty() && ctx.HeapMinTime() <= bucket_end) {
      ctx.HeapPop(&t, &s);
      ++pops;
      if (t > ctx.Label(s)) continue;
      if (ctx.Mark(s) == wave) continue;  // duplicate live entry
      ctx.SetMark(s, wave);
      frontier.push_back(s);
    }

    // Iterate gather -> ordered-commit rounds until the bucket's labels
    // (and tie fields) reach their fixpoint.
    while (!frontier.empty()) {
      expanded += frontier.size();
      size_t chunks = 1;
      bool permuted = false;
      if (frontier.size() >= runtime.min_parallel_frontier && workers > 1) {
        ++rounds;
        chunks = std::min(workers, frontier.size());
        const uint32_t* perm = nullptr;
        if (locality_csr != nullptr) {
          BuildLocalityPermutation(*locality_csr, frontier,
                                   ctx.permutation());
          perm = ctx.permutation().data();
          permuted = true;
        }
        const size_t per = (frontier.size() + chunks - 1) / chunks;
        std::vector<std::future<int>> joins;
        joins.reserve(chunks - 1);
        for (size_t c = 1; c < chunks; ++c) {
          size_t begin = c * per;
          size_t end = std::min(begin + per, frontier.size());
          joins.push_back(runtime.pool->Submit(
              [&ctx, &request, &speed, &adj, &frontier, perm, begin, end,
               c]() -> int {
                GatherTimed<kPrefetch>(ctx, request, speed, adj, frontier,
                                       perm, begin, end,
                                       ctx.worker_buffer(c));
                return 0;
              }));
        }
        GatherTimed<kPrefetch>(ctx, request, speed, adj, frontier, perm, 0,
                               std::min(per, frontier.size()),
                               ctx.worker_buffer(0));
        for (auto& j : joins) j.get();
      } else {
        GatherTimed<kPrefetch>(ctx, request, speed, adj, frontier, nullptr,
                               0, frontier.size(), ctx.worker_buffer(0));
      }

      ++wave;
      next.clear();
      auto commit_one = [&](const FrontierCandidate& cand) {
        double cur = ctx.Label(cand.target);
        bool changed = false;
        if (cand.time < cur) {
          ctx.SetLabel(cand.target, cand.time);
          if (request.track_origin) ctx.SetOrigin(cand.target, cand.aux);
          if (request.track_parent) ctx.SetParent(cand.target, cand.parent);
          if (cand.time > bucket_end) {
            // Future bucket: hand back to the heap (the old entry, if
            // any, just went stale).
            ctx.HeapPush(cand.time, cand.target);
          } else {
            changed = true;
          }
        } else if (cand.time == cur) {
          if (request.track_origin && cand.aux < ctx.Origin(cand.target)) {
            ctx.SetOrigin(cand.target, cand.aux);
            changed = true;
          }
          if (request.track_parent &&
              cand.parent < ctx.Parent(cand.target)) {
            ctx.SetParent(cand.target, cand.parent);
            changed = true;
          }
          // A tie improvement beyond this bucket propagates when its own
          // bucket expands the segment; only in-bucket changes re-enter
          // the fixpoint now.
          if (cand.time > bucket_end) changed = false;
        }
        if (changed && ctx.Mark(cand.target) != wave) {
          ctx.SetMark(cand.target, wave);
          next.push_back(cand.target);
        }
      };
      if (permuted) {
        // Locality-chunked gathers produce candidates out of frontier
        // order; merge and restore ascending-position order so the commit
        // is exactly the sequential one.
        std::vector<FrontierCandidate>& merged = ctx.commit_buffer();
        merged.clear();
        for (size_t c = 0; c < chunks; ++c) {
          const std::vector<FrontierCandidate>& b = ctx.worker_buffer(c);
          merged.insert(merged.end(), b.begin(), b.end());
        }
        SortCandidatesByPos(merged);
        for (const FrontierCandidate& cand : merged) commit_one(cand);
      } else {
        for (size_t c = 0; c < chunks; ++c) {
          for (const FrontierCandidate& cand : ctx.worker_buffer(c)) {
            commit_one(cand);
          }
        }
      }
      frontier.swap(next);
    }
  }
  if (metrics != nullptr) {
    metrics->heap_pops += pops;
    metrics->segments_expanded += expanded;
    metrics->parallel_rounds += rounds;
  }
  RecordSearchCounters(pops, expanded, rounds);
}

}  // namespace

void FrontierEngine::SeedSources(ExpansionContext& ctx,
                                 const TimedRequest& request,
                                 const SpeedFn& speed) const {
  const size_t n = network_->NumSegments();
  for (SegmentId src : request.sources) {
    if (src >= n) continue;
    double sp = speed(src);
    if (sp <= 0.0) continue;
    double t = network_->segment(src).TravelTimeSeconds(sp);
    if (t > request.budget) continue;
    double cur = ctx.Label(src);
    if (t < cur) {
      ctx.SetLabel(src, t);
      if (request.track_origin) ctx.SetOrigin(src, src);
      if (request.track_parent) ctx.SetParent(src, kInvalidSegment);
      ctx.HeapPush(t, src);
    } else if (t == cur && request.track_origin && src < ctx.Origin(src)) {
      ctx.SetOrigin(src, src);
      ctx.HeapPush(t, src);
    }
  }
}

void FrontierEngine::RunTimed(ExpansionContext& ctx,
                              const TimedRequest& request, const SpeedFn& speed,
                              SearchMetrics* metrics) const {
  obs::TraceSpan span("frontier_expand", request.sources.size());
  ctx.Begin(network_->NumSegments());
  const bool parallel = runtime_.parallel() &&
                        request.budget < kUnreachedLabel &&
                        request.stop_at == kInvalidSegment;
  if (parallel) {
    RunTimedParallel(ctx, request, speed, metrics);
  } else {
    RunTimedSequential(ctx, request, speed, metrics);
  }
}

void FrontierEngine::RunTimedSequential(ExpansionContext& ctx,
                                        const TimedRequest& request,
                                        const SpeedFn& speed,
                                        SearchMetrics* metrics) const {
  SeedSources(ctx, request, speed);
  const CsrAdjacency* csr = network_->csr();
  if (runtime_.flat_adjacency && csr != nullptr) {
    FlatAdjacency adj{csr};
    if (runtime_.prefetch) {
      SequentialLoop<true>(ctx, request, speed, adj, metrics);
    } else {
      SequentialLoop<false>(ctx, request, speed, adj, metrics);
    }
  } else {
    LegacyAdjacency adj{network_};
    if (runtime_.prefetch) {
      SequentialLoop<true>(ctx, request, speed, adj, metrics);
    } else {
      SequentialLoop<false>(ctx, request, speed, adj, metrics);
    }
  }
}

void FrontierEngine::RunTimedParallel(ExpansionContext& ctx,
                                      const TimedRequest& request,
                                      const SpeedFn& speed,
                                      SearchMetrics* metrics) const {
  SeedSources(ctx, request, speed);
  const CsrAdjacency* csr = network_->csr();
  const CsrAdjacency* locality =
      runtime_.locality_chunking ? csr : nullptr;
  if (runtime_.flat_adjacency && csr != nullptr) {
    FlatAdjacency adj{csr};
    if (runtime_.prefetch) {
      ParallelLoop<true>(ctx, request, speed, adj, runtime_, locality,
                         metrics);
    } else {
      ParallelLoop<false>(ctx, request, speed, adj, runtime_, locality,
                          metrics);
    }
  } else {
    LegacyAdjacency adj{network_};
    if (runtime_.prefetch) {
      ParallelLoop<true>(ctx, request, speed, adj, runtime_, locality,
                         metrics);
    } else {
      ParallelLoop<false>(ctx, request, speed, adj, runtime_, locality,
                          metrics);
    }
  }
}

std::vector<ExpansionHit> FrontierEngine::HitsByArrival(
    const ExpansionContext& ctx) const {
  std::vector<ExpansionHit> hits;
  hits.reserve(ctx.reached().size());
  for (SegmentId s : ctx.reached()) {
    double label = ctx.Label(s);
    if (label < kUnreachedLabel) hits.push_back({s, label});
  }
  std::sort(hits.begin(), hits.end(),
            [](const ExpansionHit& a, const ExpansionHit& b) {
              if (a.arrival_seconds != b.arrival_seconds) {
                return a.arrival_seconds < b.arrival_seconds;
              }
              return a.segment < b.segment;
            });
  return hits;
}

std::vector<SegmentId> FrontierEngine::ReachedSorted(
    const ExpansionContext& ctx) const {
  std::vector<SegmentId> out;
  out.reserve(ctx.reached().size());
  for (SegmentId s : ctx.reached()) {
    if (ctx.Label(s) < kUnreachedLabel) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SegmentId> FrontierEngine::RunCone(
    ExpansionContext& ctx, const ConeRequest& request, const ListFn& lists,
    const ConeFilter& filter, std::vector<SegmentId>* last_frontier_out,
    SearchMetrics* metrics) const {
  obs::TraceSpan span("cone_expand", request.starts.size());
  const size_t n = network_->NumSegments();
  ctx.Begin(n);
  const size_t workers =
      runtime_.parallel() ? static_cast<size_t>(runtime_.workers) : 1;
  const size_t num_shards =
      runtime_.sharded() ? runtime_.shard_pools.size() : 0;
  ctx.EnsureWorkerBuffers(std::max(workers, num_shards));
  const CsrAdjacency* locality =
      runtime_.locality_chunking ? network_->csr() : nullptr;
  std::vector<SegmentId>& members = ctx.members();
  for (SegmentId s : request.starts) {
    if (s < n && !ctx.Seen(s)) {
      ctx.SetOrigin(s, s);  // membership = Seen; origin = owning start
      members.push_back(s);
    }
  }

  uint64_t expanded = 0, rounds = 0;
  size_t last_begin = 0;
  size_t last_end = members.size();
  std::vector<SegmentId>& frontier = ctx.frontier();
  const int hops = NumHops(request.duration_seconds, request.delta_t_seconds);

  // Gathers discoveries for permuted frontier slots [begin, end): for each
  // member, every list entry not already in the cone (pre-step state) that
  // survives the filter. Read-only against ctx; the commit rechecks
  // membership in sequential discovery order, so intra-step duplicates
  // drop exactly as they would in a fully sequential walk.
  int64_t tod = 0;
  auto gather = [&](const uint32_t* perm, size_t begin, size_t end,
                    std::vector<FrontierCandidate>& out) {
    out.clear();
    for (size_t j = begin; j < end; ++j) {
      const uint32_t i =
          perm != nullptr ? perm[j] : static_cast<uint32_t>(j);
      SegmentId r = frontier[i];
      const SegmentId owner = ctx.Origin(r);
      for (SegmentId found : lists(r, tod)) {
        if (ctx.Seen(found)) continue;
        if (filter && !filter(owner, found)) continue;
        out.push_back(
            FrontierCandidate{found, owner, kInvalidSegment, i, 0.0});
      }
    }
  };

  for (int step = 0; step < hops; ++step) {
    tod = (request.start_tod +
           static_cast<int64_t>(step) * request.delta_t_seconds) %
          kSecondsPerDay;
    const int32_t pslot =
        static_cast<int32_t>(tod / request.profile_slot_seconds);
    const size_t snapshot = members.size();
    frontier.clear();
    for (size_t i = 0; i < snapshot; ++i) {
      // Members are expanded once per profile slot; Mark remembers the
      // slot a member last expanded under.
      SegmentId r = members[i];
      if (ctx.Mark(r) == pslot) continue;
      ctx.SetMark(r, pslot);
      frontier.push_back(r);
    }
    if (frontier.empty()) continue;
    expanded += frontier.size();
    obs::TraceSpan hop_span("cone_hop", frontier.size());

    size_t chunks = 1;
    bool permuted = false;
    if (num_shards > 1 &&
        frontier.size() >= runtime_.min_parallel_frontier) {
      // Sharded scatter: bucket this round's frontier slots by owning
      // shard and run each bucket on the owner's slice pool (the home
      // shard's bucket runs inline). The buckets fill ctx.permutation()
      // with the original slot indices, so candidates keep their
      // sequential `pos` and the permuted merge below restores the exact
      // sequential commit order — bit-identity is unaffected by where a
      // bucket physically ran.
      ++rounds;
      chunks = num_shards;
      permuted = true;
      const uint32_t home =
          std::min(runtime_.home_shard,
                   static_cast<uint32_t>(num_shards - 1));
      std::vector<uint32_t>& perm = ctx.permutation();
      perm.resize(frontier.size());
      std::vector<size_t> offsets(num_shards + 1, 0);
      for (SegmentId r : frontier) {
        ++offsets[runtime_.shard_owner[r] + 1];
      }
      for (size_t s = 0; s < num_shards; ++s) offsets[s + 1] += offsets[s];
      std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
      for (size_t i = 0; i < frontier.size(); ++i) {
        perm[cursor[runtime_.shard_owner[frontier[i]]]++] =
            static_cast<uint32_t>(i);
      }
      std::vector<std::future<int>> joins;
      joins.reserve(num_shards - 1);
      for (size_t s = 0; s < num_shards; ++s) {
        if (s == home) continue;
        size_t begin = offsets[s];
        size_t end = offsets[s + 1];
        if (begin == end) {
          // A shard with no frontier members this round still contributes
          // its (cleared) buffer to the merge; stale candidates from a
          // previous round must not leak in.
          ctx.worker_buffer(s).clear();
          continue;
        }
        joins.push_back(runtime_.shard_pools[s]->Submit(
            [&gather, &ctx, &perm, begin, end, s]() -> int {
              gather(perm.data(), begin, end, ctx.worker_buffer(s));
              return 0;
            }));
      }
      gather(perm.data(), offsets[home], offsets[home + 1],
             ctx.worker_buffer(home));
      for (auto& j : joins) j.get();
    } else if (frontier.size() >= runtime_.min_parallel_frontier &&
               workers > 1) {
      ++rounds;
      chunks = std::min(workers, frontier.size());
      const uint32_t* perm = nullptr;
      if (locality != nullptr) {
        BuildLocalityPermutation(*locality, frontier, ctx.permutation());
        perm = ctx.permutation().data();
        permuted = true;
      }
      const size_t per = (frontier.size() + chunks - 1) / chunks;
      std::vector<std::future<int>> joins;
      joins.reserve(chunks - 1);
      for (size_t c = 1; c < chunks; ++c) {
        size_t begin = c * per;
        size_t end = std::min(begin + per, frontier.size());
        joins.push_back(runtime_.pool->Submit(
            [&gather, &ctx, perm, begin, end, c]() -> int {
              gather(perm, begin, end, ctx.worker_buffer(c));
              return 0;
            }));
      }
      gather(perm, 0, std::min(per, frontier.size()), ctx.worker_buffer(0));
      for (auto& j : joins) j.get();
    } else {
      gather(nullptr, 0, frontier.size(), ctx.worker_buffer(0));
    }

    // Ordered commit: (frontier position, list position) is exactly the
    // sequential discovery order, so the member sequence is identical.
    auto commit_one = [&](const FrontierCandidate& cand) {
      if (ctx.Seen(cand.target)) return;  // same-step duplicate
      ctx.SetOrigin(cand.target, cand.aux);
      members.push_back(cand.target);
    };
    if (permuted) {
      std::vector<FrontierCandidate>& merged = ctx.commit_buffer();
      merged.clear();
      for (size_t c = 0; c < chunks; ++c) {
        const std::vector<FrontierCandidate>& b = ctx.worker_buffer(c);
        merged.insert(merged.end(), b.begin(), b.end());
      }
      SortCandidatesByPos(merged);
      for (const FrontierCandidate& cand : merged) commit_one(cand);
    } else {
      for (size_t c = 0; c < chunks; ++c) {
        for (const FrontierCandidate& cand : ctx.worker_buffer(c)) {
          commit_one(cand);
        }
      }
    }
    if (members.size() > snapshot) {
      last_begin = snapshot;
      last_end = members.size();
    }
  }

  if (last_frontier_out != nullptr) {
    last_frontier_out->assign(members.begin() + last_begin,
                              members.begin() + last_end);
    std::sort(last_frontier_out->begin(), last_frontier_out->end());
  }
  if (metrics != nullptr) {
    metrics->segments_expanded += expanded;
    metrics->parallel_rounds += rounds;
  }
  RecordSearchCounters(0, expanded, rounds);
  std::vector<SegmentId> out(members.begin(), members.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace strr
