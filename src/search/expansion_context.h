// ExpansionContext: the reusable per-search scratch state every frontier
// expansion in the system runs on, plus the process-wide pool that recycles
// contexts across queries, Con-Index table builds and live rebuilds.
//
// Every hot path here — SQMB/MQMB bounding-region search, Con-Index
// construction, ES baseline cones, MQMB nearest-start maps — is a frontier
// expansion over the segment graph. Before src/search/ each call allocated
// its own O(num_segments) visited/label arrays and a fresh binary heap;
// under production query rates that is megabytes of allocation traffic per
// query. A context instead keeps:
//  * epoch-stamped per-segment state (label, origin, parent, mark): one
//    `Begin()` bumps the epoch instead of clearing arrays, so preparing a
//    search is O(1) amortized and steady-state searches allocate nothing;
//  * a reusable 4-ary min-heap (d-ary: shallower than binary, sift paths
//    touch fewer cache lines for the heavy-pop workloads here);
//  * reusable frontier/member/candidate buffers for the level-synchronous
//    parallel mode (see FrontierEngine).
//
// Contexts are NOT thread-safe: one search owns a context at a time. The
// parallel engine shares a context across workers only in read-only gather
// phases (writes happen on the committing thread between phases).
//
// ExpansionContextPool hands out contexts process-wide so all subsystems
// share one warm set sized to the network; the pool is thread-safe and
// bounded (excess contexts are discarded, not hoarded).
#ifndef STRR_SEARCH_EXPANSION_CONTEXT_H_
#define STRR_SEARCH_EXPANSION_CONTEXT_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "roadnet/segment.h"
#include "util/aligned.h"

namespace strr {

/// Label value for unreached segments.
inline constexpr double kUnreachedLabel =
    std::numeric_limits<double>::infinity();

/// One relaxation/discovery produced by a parallel gather phase, applied by
/// the (single) committing thread. `aux` carries the winning origin for
/// timed expansion or the owning start for cone expansion.
struct FrontierCandidate {
  SegmentId target = kInvalidSegment;
  SegmentId aux = kInvalidSegment;
  SegmentId parent = kInvalidSegment;
  /// Position of the producing frontier member in the round's frontier
  /// array. Locality-chunked gathers visit members out of order; the
  /// commit phase sorts candidates by `pos` to restore the exact
  /// contiguous-chunk commit order (bit-identity contract).
  uint32_t pos = 0;
  double time = 0.0;
};

/// See file comment. All per-segment state is valid only between Begin()
/// calls; reads of never-touched segments return the documented defaults.
class ExpansionContext {
 public:
  /// Prepares the context for a search over `num_segments` segments.
  /// O(1) amortized: resizes only on first use or a larger network, and
  /// clears stamps only on epoch wraparound (every ~4 billion searches).
  void Begin(size_t num_segments);

  size_t size() const { return stamp_.size(); }

  // --- Stamped per-segment state --------------------------------------------

  bool Seen(SegmentId s) const { return stamp_[s] == epoch_; }

  double Label(SegmentId s) const {
    return Seen(s) ? label_[s] : kUnreachedLabel;
  }
  SegmentId Origin(SegmentId s) const {
    return Seen(s) ? origin_[s] : kInvalidSegment;
  }
  SegmentId Parent(SegmentId s) const {
    return Seen(s) ? parent_[s] : kInvalidSegment;
  }
  /// Generic per-segment marker (-1 when unset): the cone walk stores the
  /// profile slot a member last expanded under; the parallel timed mode
  /// stores frontier-dedup round ids.
  int32_t Mark(SegmentId s) const { return Seen(s) ? mark_[s] : -1; }

  /// Prefetches the stamp and label slots for `s` — the two arrays every
  /// relaxation reads first. A pure scheduling hint (no effect on results).
  void PrefetchSlot(SegmentId s) const {
    PrefetchRead(stamp_.data() + s);
    PrefetchRead(label_.data() + s);
  }

  /// Stamps `s` (label=inf, origin/parent invalid, mark -1) if untouched.
  void Touch(SegmentId s) {
    if (!Seen(s)) {
      stamp_[s] = epoch_;
      label_[s] = kUnreachedLabel;
      origin_[s] = kInvalidSegment;
      parent_[s] = kInvalidSegment;
      mark_[s] = -1;
      reached_.push_back(s);
    }
  }

  void SetLabel(SegmentId s, double t) {
    Touch(s);
    label_[s] = t;
  }
  void SetOrigin(SegmentId s, SegmentId o) {
    Touch(s);
    origin_[s] = o;
  }
  void SetParent(SegmentId s, SegmentId p) {
    Touch(s);
    parent_[s] = p;
  }
  void SetMark(SegmentId s, int32_t m) {
    Touch(s);
    mark_[s] = m;
  }

  /// Segments touched since Begin(), in first-touch order.
  const std::vector<SegmentId>& reached() const { return reached_; }

  // --- 4-ary min-heap over (time, segment), lazy deletion -------------------

  void HeapPush(double time, SegmentId s);
  /// Pops the minimum entry; false when empty.
  bool HeapPop(double* time, SegmentId* s);
  bool HeapEmpty() const { return heap_.empty(); }
  /// Smallest key without popping; +inf when empty.
  double HeapMinTime() const {
    return heap_.empty() ? kUnreachedLabel : heap_.front().first;
  }

  // --- Reusable buffers for the engine --------------------------------------

  std::vector<SegmentId>& frontier() { return frontier_; }
  std::vector<SegmentId>& next_frontier() { return next_frontier_; }
  std::vector<SegmentId>& members() { return members_; }
  /// Per-worker candidate buffers for parallel gather phases; `workers`
  /// buffers are kept alive (and reused) across rounds.
  std::vector<FrontierCandidate>& worker_buffer(size_t worker);
  void EnsureWorkerBuffers(size_t workers);
  /// Scratch for locality-aware chunking: the cell-sorted permutation of
  /// the frontier and the merged commit buffer. Reused across rounds.
  std::vector<uint32_t>& permutation() { return permutation_; }
  std::vector<FrontierCandidate>& commit_buffer() { return commit_buffer_; }

 private:
  using HeapEntry = std::pair<double, SegmentId>;

  uint32_t epoch_ = 0;
  // Structure-of-arrays per-segment labels, each array starting on its own
  // cache line: a frontier pop touches one line per array it actually
  // reads, and the arrays never false-share with each other.
  AlignedVector<uint32_t> stamp_;
  AlignedVector<double> label_;
  AlignedVector<SegmentId> origin_;
  AlignedVector<SegmentId> parent_;
  AlignedVector<int32_t> mark_;
  std::vector<SegmentId> reached_;
  std::vector<HeapEntry> heap_;
  std::vector<SegmentId> frontier_;
  std::vector<SegmentId> next_frontier_;
  std::vector<SegmentId> members_;
  std::vector<std::vector<FrontierCandidate>> worker_buffers_;
  std::vector<uint32_t> permutation_;
  std::vector<FrontierCandidate> commit_buffer_;
};

/// Thread-safe bounded free list of contexts. All search consumers go
/// through Global() so a context warmed (sized) by one subsystem serves
/// the next — the steady state is zero allocation per search.
class ExpansionContextPool {
 public:
  explicit ExpansionContextPool(size_t max_pooled = 16)
      : max_pooled_(max_pooled) {}

  /// The process-wide pool.
  static ExpansionContextPool& Global();

  /// RAII lease: returns the context to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(ExpansionContextPool* pool, std::unique_ptr<ExpansionContext> ctx)
        : pool_(pool), ctx_(std::move(ctx)) {}
    Lease(Lease&&) = default;
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = std::exchange(other.pool_, nullptr);
        ctx_ = std::move(other.ctx_);
      }
      return *this;
    }
    ~Lease() { Release(); }

    ExpansionContext& operator*() { return *ctx_; }
    ExpansionContext* operator->() { return ctx_.get(); }
    ExpansionContext* get() { return ctx_.get(); }

   private:
    void Release();
    ExpansionContextPool* pool_ = nullptr;
    std::unique_ptr<ExpansionContext> ctx_;
  };

  /// Pops a pooled context (or allocates a fresh one). The caller still
  /// calls Begin() with its network size.
  Lease Acquire();

  /// Point-in-time counters. `reuses / acquires` is the pool hit rate
  /// surfaced in QueryExecutor::front_door_stats.
  struct Stats {
    uint64_t acquires = 0;
    uint64_t reuses = 0;    ///< served from the free list
    uint64_t created = 0;   ///< fresh allocations (cold pool / overflow)
    uint64_t discarded = 0; ///< returned while the pool was full
    size_t pooled = 0;      ///< contexts idle in the pool right now
  };
  Stats stats() const;

 private:
  friend class Lease;
  void Return(std::unique_ptr<ExpansionContext> ctx);

  const size_t max_pooled_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ExpansionContext>> free_;
  uint64_t acquires_ = 0;
  uint64_t reuses_ = 0;
  uint64_t created_ = 0;
  uint64_t discarded_ = 0;
};

}  // namespace strr

#endif  // STRR_SEARCH_EXPANSION_CONTEXT_H_
