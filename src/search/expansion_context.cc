#include "search/expansion_context.h"

#include <algorithm>

#include "obs/metrics.h"

namespace strr {

namespace {

obs::Counter& CtxAcquiresCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_ctx_pool_acquires_total");
  return c;
}
obs::Counter& CtxReusesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_ctx_pool_reuses_total");
  return c;
}

}  // namespace

void ExpansionContext::Begin(size_t num_segments) {
  if (num_segments != stamp_.size()) {
    stamp_.assign(num_segments, 0);
    label_.resize(num_segments);
    origin_.resize(num_segments);
    parent_.resize(num_segments);
    mark_.resize(num_segments);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {
    // Wraparound: stamp 0 would read as "seen" for untouched segments.
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
  reached_.clear();
  heap_.clear();
  frontier_.clear();
  next_frontier_.clear();
  members_.clear();
}

void ExpansionContext::HeapPush(double time, SegmentId s) {
  heap_.emplace_back(time, s);
  size_t i = heap_.size() - 1;
  while (i > 0) {
    size_t up = (i - 1) / 4;
    if (heap_[up].first <= heap_[i].first) break;
    std::swap(heap_[up], heap_[i]);
    i = up;
  }
}

bool ExpansionContext::HeapPop(double* time, SegmentId* s) {
  if (heap_.empty()) return false;
  *time = heap_.front().first;
  *s = heap_.front().second;
  heap_.front() = heap_.back();
  heap_.pop_back();
  size_t i = 0;
  const size_t n = heap_.size();
  for (;;) {
    size_t first = i * 4 + 1;
    if (first >= n) break;
    size_t best = first;
    size_t last = std::min(first + 4, n);
    for (size_t c = first + 1; c < last; ++c) {
      if (heap_[c].first < heap_[best].first) best = c;
    }
    if (heap_[i].first <= heap_[best].first) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return true;
}

std::vector<FrontierCandidate>& ExpansionContext::worker_buffer(
    size_t worker) {
  if (worker >= worker_buffers_.size()) {
    worker_buffers_.resize(worker + 1);
  }
  return worker_buffers_[worker];
}

void ExpansionContext::EnsureWorkerBuffers(size_t workers) {
  if (workers > worker_buffers_.size()) worker_buffers_.resize(workers);
}

ExpansionContextPool& ExpansionContextPool::Global() {
  static ExpansionContextPool* pool = new ExpansionContextPool();
  return *pool;
}

ExpansionContextPool::Lease ExpansionContextPool::Acquire() {
  std::unique_ptr<ExpansionContext> ctx;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++acquires_;
    if (!free_.empty()) {
      ctx = std::move(free_.back());
      free_.pop_back();
      ++reuses_;
      CtxReusesCounter().Add();
    } else {
      ++created_;
    }
  }
  CtxAcquiresCounter().Add();
  if (ctx == nullptr) ctx = std::make_unique<ExpansionContext>();
  return Lease(this, std::move(ctx));
}

void ExpansionContextPool::Return(std::unique_ptr<ExpansionContext> ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() >= max_pooled_) {
    ++discarded_;
    return;  // ctx destroyed outside the pool
  }
  free_.push_back(std::move(ctx));
}

void ExpansionContextPool::Lease::Release() {
  if (pool_ != nullptr && ctx_ != nullptr) {
    pool_->Return(std::move(ctx_));
  }
  pool_ = nullptr;
  ctx_.reset();
}

ExpansionContextPool::Stats ExpansionContextPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.acquires = acquires_;
  out.reuses = reuses_;
  out.created = created_;
  out.discarded = discarded_;
  out.pooled = free_.size();
  return out;
}

}  // namespace strr
