#include "live/live_profile_manager.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace strr {

namespace {

/// Fork-fold-swap latency of one snapshot publish, in µs.
obs::Histogram& PublishBuildHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "strr_live_snapshot_build_us");
  return h;
}
obs::Counter& PublishesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_live_publishes_total");
  return c;
}
obs::Counter& SlotsInvalidatedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_live_slots_invalidated_total");
  return c;
}
obs::Gauge& SnapshotVersionGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "strr_live_snapshot_version");
  return g;
}
/// Per-table prewarm rebuild latency, in µs.
obs::Histogram& PrewarmHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "strr_live_prewarm_us");
  return h;
}

}  // namespace

LiveProfileManager::LiveProfileManager(EpochManager& epochs,
                                       const SpeedProfile& base_profile,
                                       const ConIndex& base_con_index,
                                       const LiveProfileOptions& options)
    : epochs_(&epochs), options_(options) {
  base_.version = 0;
  base_.profile = &base_profile;
  base_.con_index = &base_con_index;
  current_.store(&base_);
  if (options_.prewarm) {
    prewarm_pool_ = std::make_unique<ThreadPool>(
        options_.prewarm_threads > 0 ? options_.prewarm_threads : 1);
  }
}

LiveProfileManager::~LiveProfileManager() {
  // Join prewarm tasks first: they pin epochs and read snapshots, so they
  // must drain before reclamation tears those down.
  prewarm_pool_.reset();
  // Shutdown contract: no readers pinned. Drain the grace period so every
  // superseded owned snapshot's deleter runs, then drop the current one
  // (owned unless we never published).
  epochs_->SynchronizeAndReclaim();
  const IndexSnapshot* last = current_.load();
  if (last != &base_) delete last;
}

void LiveProfileManager::WaitForPrewarm() {
  if (prewarm_pool_ != nullptr) prewarm_pool_->Wait();
}

SnapshotRef LiveProfileManager::Acquire() const {
  // Pin first, load second — the EpochManager ordering argument (see its
  // header) needs the pin visible before the pointer read.
  EpochManager::Pin pin = epochs_->Acquire();
  const IndexSnapshot* snap = current_.load();
  return SnapshotRef(std::move(pin), snap);
}

uint64_t LiveProfileManager::AddInvalidationListener(
    InvalidationListener listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  uint64_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  return id;
}

void LiveProfileManager::RemoveInvalidationListener(uint64_t id) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == id) {
      listeners_.erase(it);
      return;
    }
  }
}

uint64_t LiveProfileManager::Publish(std::span<const CoalescedUpdate> batch) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  Stopwatch publish_watch;
  const IndexSnapshot* cur = current_.load();

  // Fork the profile and fold the batch, tracking which profile slots had
  // extreme (min/max) changes — only those need new Con-Index tables or
  // cache eviction; mean/count drift publishes quietly. Cell-only changes
  // invalidate partially (tables the changed segments can actually reach);
  // a level-fallback change shifts every observation-less segment of that
  // level, so its slot invalidates fully.
  auto profile =
      std::make_unique<SpeedProfile>(cur->profile->Fork());
  const int64_t slot_sec = profile->slot_seconds();
  std::vector<SlotId> full_slots;
  std::map<SlotId, std::vector<SegmentId>> cell_changes;
  for (const CoalescedUpdate& u : batch) {
    uint8_t effect = profile->ApplyUpdate(u.segment, u.slot_tod, u.min_speed,
                                          u.max_speed, u.sum_speed, u.count);
    if (effect == SpeedProfile::kNoExtremeChange) continue;
    SlotId slot = SlotOfTimeOfDay(NormalizeTimeOfDay(u.slot_tod), slot_sec);
    if (effect & SpeedProfile::kFallbackExtremesChanged) {
      full_slots.push_back(slot);
    } else {
      cell_changes[slot].push_back(u.segment);
    }
  }
  std::sort(full_slots.begin(), full_slots.end());
  full_slots.erase(std::unique(full_slots.begin(), full_slots.end()),
                   full_slots.end());

  // Past a point, probing beats rebuilding no longer: degrade wide
  // partial hits to full invalidation. Degraded slots collect separately
  // and merge after the loop — full_slots must stay sorted while the
  // binary_search membership test below runs (a slot with both a
  // fallback and a cell change must resolve to FULL, never an overlay).
  constexpr size_t kMaxPartialChanges = 64;
  std::vector<ConIndex::PartialInvalidation> partial;
  std::vector<SlotId> degraded;
  for (auto& [slot, segments] : cell_changes) {
    if (std::binary_search(full_slots.begin(), full_slots.end(), slot)) {
      continue;  // already fully invalidated
    }
    std::sort(segments.begin(), segments.end());
    segments.erase(std::unique(segments.begin(), segments.end()),
                   segments.end());
    if (segments.size() > kMaxPartialChanges) {
      degraded.push_back(slot);
      continue;
    }
    partial.push_back(
        ConIndex::PartialInvalidation{slot, std::move(segments)});
  }
  full_slots.insert(full_slots.end(), degraded.begin(), degraded.end());
  std::sort(full_slots.begin(), full_slots.end());
  std::vector<SlotId> changed_slots = full_slots;  // for listener fan-out
  for (const auto& p : partial) changed_slots.push_back(p.slot);
  std::sort(changed_slots.begin(), changed_slots.end());

  // The rebuild list (per partial slot, the tables the overlay stopped
  // serving) is exactly what the prewarm workers should rebuild.
  std::vector<ConIndex::PartialInvalidation> rebuild;
  auto con_index = cur->con_index->CloneWithInvalidation(
      *profile, full_slots, partial,
      prewarm_pool_ != nullptr ? &rebuild : nullptr);

  auto* next = new IndexSnapshot();
  next->version = cur->version + 1;
  next->profile = profile.get();
  next->con_index = con_index.get();
  next->owned_profile = std::move(profile);
  next->owned_con_index = std::move(con_index);

  current_.store(next);
  version_.store(next->version);
  // Unpublished now; readers still pinned on `cur` keep it alive through
  // the grace period. The base snapshot aliases engine-owned indexes and
  // is never deleted.
  if (cur == &base_) {
    epochs_->Retire([] {});
  } else {
    epochs_->Retire([cur] { delete cur; });
  }

  published_.fetch_add(1);
  updates_applied_.fetch_add(batch.size());
  slots_invalidated_.fetch_add(full_slots.size());
  slots_partially_invalidated_.fetch_add(partial.size());
  if (changed_slots.empty()) publishes_quiet_.fetch_add(1);
  PublishesCounter().Add();
  SlotsInvalidatedCounter().Add(full_slots.size() + partial.size());
  SnapshotVersionGauge().Set(static_cast<int64_t>(next->version));
  if (obs::MetricsRegistry::Global().enabled()) {
    PublishBuildHistogram().Record(
        static_cast<uint64_t>(publish_watch.ElapsedMicros()));
  }

  {
    std::lock_guard<std::mutex> listeners_lock(listener_mu_);
    for (SlotId slot : changed_slots) {
      int64_t begin_tod = static_cast<int64_t>(slot) * slot_sec;
      for (const auto& [id, listener] : listeners_) {
        listener(begin_tod, begin_tod + slot_sec);
      }
    }
  }

  if (prewarm_pool_ != nullptr && !rebuild.empty()) {
    // Ingest-driven prewarm: rebuild the knocked-out tables on the new
    // snapshot before queries pay the lazy-build latency. Each task pins
    // the current snapshot; if a newer version already superseded the one
    // this batch targeted, the work list no longer describes that
    // snapshot's overlay, so the task skips (the newer publish scheduled
    // its own tasks).
    const uint64_t target_version = next->version;
    for (auto& p : rebuild) {
      prewarm_tasks_.fetch_add(1);
      prewarm_pool_->Submit(
          [this, target_version, slot = p.slot,
           segments = std::move(p.changed)] {
            SnapshotRef ref = Acquire();
            if (ref.version() != target_version) {
              prewarm_stale_skips_.fetch_add(1);
              return;
            }
            Stopwatch prewarm_watch;
            prewarm_tables_built_.fetch_add(
                ref.con_index().PrewarmSlot(slot, segments));
            if (obs::MetricsRegistry::Global().enabled()) {
              PrewarmHistogram().Record(
                  static_cast<uint64_t>(prewarm_watch.ElapsedMicros()));
            }
          });
    }
  }
  return next->version;
}

LiveProfileManager::Stats LiveProfileManager::stats() const {
  Stats out;
  out.published = published_.load();
  out.updates_applied = updates_applied_.load();
  out.slots_invalidated = slots_invalidated_.load();
  out.slots_partially_invalidated = slots_partially_invalidated_.load();
  out.publishes_quiet = publishes_quiet_.load();
  out.prewarm_tasks = prewarm_tasks_.load();
  out.prewarm_tables_built = prewarm_tables_built_.load();
  out.prewarm_stale_skips = prewarm_stale_skips_.load();
  return out;
}

}  // namespace strr
