#include "live/live_profile_manager.h"

#include <algorithm>
#include <map>
#include <utility>

namespace strr {

LiveProfileManager::LiveProfileManager(EpochManager& epochs,
                                       const SpeedProfile& base_profile,
                                       const ConIndex& base_con_index)
    : epochs_(&epochs) {
  base_.version = 0;
  base_.profile = &base_profile;
  base_.con_index = &base_con_index;
  current_.store(&base_);
}

LiveProfileManager::~LiveProfileManager() {
  // Shutdown contract: no readers pinned. Drain the grace period so every
  // superseded owned snapshot's deleter runs, then drop the current one
  // (owned unless we never published).
  epochs_->SynchronizeAndReclaim();
  const IndexSnapshot* last = current_.load();
  if (last != &base_) delete last;
}

SnapshotRef LiveProfileManager::Acquire() const {
  // Pin first, load second — the EpochManager ordering argument (see its
  // header) needs the pin visible before the pointer read.
  EpochManager::Pin pin = epochs_->Acquire();
  const IndexSnapshot* snap = current_.load();
  return SnapshotRef(std::move(pin), snap);
}

uint64_t LiveProfileManager::AddInvalidationListener(
    InvalidationListener listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  uint64_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  return id;
}

void LiveProfileManager::RemoveInvalidationListener(uint64_t id) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == id) {
      listeners_.erase(it);
      return;
    }
  }
}

uint64_t LiveProfileManager::Publish(std::span<const CoalescedUpdate> batch) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  const IndexSnapshot* cur = current_.load();

  // Fork the profile and fold the batch, tracking which profile slots had
  // extreme (min/max) changes — only those need new Con-Index tables or
  // cache eviction; mean/count drift publishes quietly. Cell-only changes
  // invalidate partially (tables the changed segments can actually reach);
  // a level-fallback change shifts every observation-less segment of that
  // level, so its slot invalidates fully.
  auto profile =
      std::make_unique<SpeedProfile>(cur->profile->Fork());
  const int64_t slot_sec = profile->slot_seconds();
  std::vector<SlotId> full_slots;
  std::map<SlotId, std::vector<SegmentId>> cell_changes;
  for (const CoalescedUpdate& u : batch) {
    uint8_t effect = profile->ApplyUpdate(u.segment, u.slot_tod, u.min_speed,
                                          u.max_speed, u.sum_speed, u.count);
    if (effect == SpeedProfile::kNoExtremeChange) continue;
    SlotId slot = SlotOfTimeOfDay(NormalizeTimeOfDay(u.slot_tod), slot_sec);
    if (effect & SpeedProfile::kFallbackExtremesChanged) {
      full_slots.push_back(slot);
    } else {
      cell_changes[slot].push_back(u.segment);
    }
  }
  std::sort(full_slots.begin(), full_slots.end());
  full_slots.erase(std::unique(full_slots.begin(), full_slots.end()),
                   full_slots.end());

  // Past a point, probing beats rebuilding no longer: degrade wide
  // partial hits to full invalidation. Degraded slots collect separately
  // and merge after the loop — full_slots must stay sorted while the
  // binary_search membership test below runs (a slot with both a
  // fallback and a cell change must resolve to FULL, never an overlay).
  constexpr size_t kMaxPartialChanges = 64;
  std::vector<ConIndex::PartialInvalidation> partial;
  std::vector<SlotId> degraded;
  for (auto& [slot, segments] : cell_changes) {
    if (std::binary_search(full_slots.begin(), full_slots.end(), slot)) {
      continue;  // already fully invalidated
    }
    std::sort(segments.begin(), segments.end());
    segments.erase(std::unique(segments.begin(), segments.end()),
                   segments.end());
    if (segments.size() > kMaxPartialChanges) {
      degraded.push_back(slot);
      continue;
    }
    partial.push_back(
        ConIndex::PartialInvalidation{slot, std::move(segments)});
  }
  full_slots.insert(full_slots.end(), degraded.begin(), degraded.end());
  std::sort(full_slots.begin(), full_slots.end());
  std::vector<SlotId> changed_slots = full_slots;  // for listener fan-out
  for (const auto& p : partial) changed_slots.push_back(p.slot);
  std::sort(changed_slots.begin(), changed_slots.end());

  auto con_index =
      cur->con_index->CloneWithInvalidation(*profile, full_slots, partial);

  auto* next = new IndexSnapshot();
  next->version = cur->version + 1;
  next->profile = profile.get();
  next->con_index = con_index.get();
  next->owned_profile = std::move(profile);
  next->owned_con_index = std::move(con_index);

  current_.store(next);
  version_.store(next->version);
  // Unpublished now; readers still pinned on `cur` keep it alive through
  // the grace period. The base snapshot aliases engine-owned indexes and
  // is never deleted.
  if (cur == &base_) {
    epochs_->Retire([] {});
  } else {
    epochs_->Retire([cur] { delete cur; });
  }

  published_.fetch_add(1);
  updates_applied_.fetch_add(batch.size());
  slots_invalidated_.fetch_add(full_slots.size());
  slots_partially_invalidated_.fetch_add(partial.size());
  if (changed_slots.empty()) publishes_quiet_.fetch_add(1);

  {
    std::lock_guard<std::mutex> listeners_lock(listener_mu_);
    for (SlotId slot : changed_slots) {
      int64_t begin_tod = static_cast<int64_t>(slot) * slot_sec;
      for (const auto& [id, listener] : listeners_) {
        listener(begin_tod, begin_tod + slot_sec);
      }
    }
  }
  return next->version;
}

LiveProfileManager::Stats LiveProfileManager::stats() const {
  Stats out;
  out.published = published_.load();
  out.updates_applied = updates_applied_.load();
  out.slots_invalidated = slots_invalidated_.load();
  out.slots_partially_invalidated = slots_partially_invalidated_.load();
  out.publishes_quiet = publishes_quiet_.load();
  return out;
}

}  // namespace strr
