#include "live/observation_journal.h"

#include <algorithm>
#include <filesystem>

#include "live/recovery_manager.h"
#include "obs/metrics.h"
#include "storage/checkpoint/compaction.h"
#include "util/logging.h"
#include "util/serialize.h"
#include "util/stopwatch.h"

namespace strr {

namespace fs = std::filesystem;

namespace {

/// WAL AddRecord latency per batch, in µs (excludes the fsync below).
obs::Histogram& WalAppendHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "strr_wal_append_us");
  return h;
}
/// WAL fdatasync latency per batch, in µs (ack = stable storage).
obs::Histogram& WalSyncHistogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("strr_wal_fsync_us");
  return h;
}
/// Memtable seal + WAL rotation latency, in µs.
obs::Histogram& SealHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "strr_wal_memtable_seal_us");
  return h;
}
obs::Counter& AppendFailuresCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_wal_append_failures_total");
  return c;
}
/// Checkpoint serialize + atomic-commit latency, in µs.
obs::Histogram& CheckpointHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "strr_checkpoint_write_us");
  return h;
}
obs::Counter& CompactionsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_storage_compactions_total");
  return c;
}
obs::Counter& TablesTruncatedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_storage_tables_truncated_total");
  return c;
}

uint64_t FileBytesOrZero(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  return ec ? 0 : size;
}

}  // namespace

std::string ObservationTableFileName(const std::string& dir,
                                     uint64_t number) {
  return dir + "/obs_" + std::to_string(number) + ".tbl";
}

std::string WalFileName(const std::string& dir, uint64_t number) {
  return dir + "/wal_" + std::to_string(number) + ".log";
}

StatusOr<std::unique_ptr<ObservationJournal>> ObservationJournal::Open(
    const ObservationJournalOptions& options, const RecoveredLog& recovered) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("observation journal dir is empty");
  }
  if (options.checkpoint_interval_batches > 0 && options.slot_seconds <= 0) {
    return Status::InvalidArgument(
        "checkpointing requires a positive slot_seconds");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("cannot create journal dir " + options.dir + ": " +
                           ec.message());
  }

  auto journal =
      std::unique_ptr<ObservationJournal>(new ObservationJournal(options));
  journal->next_seq_ = recovered.last_seq + 1;
  journal->next_file_number_ = recovered.next_file_number;
  journal->memtable_ = ObservationTableBuilder(options.bloom_bits_per_key);
  journal->checkpoint_number_ = recovered.checkpoint_number;
  journal->checkpoint_seq_ = recovered.checkpoint_seq;
  journal->truncate_below_seq_ = recovered.checkpoint_seq;

  // The live table set starts as what recovery validated.
  for (const RecoveredTableMeta& meta : recovered.tables) {
    journal->tables_.push_back(TableMeta{meta.number, meta.first_seq,
                                         meta.last_seq,
                                         FileBytesOrZero(meta.path)});
  }

  // Rebuild the checkpoint accumulator before touching any file: fold the
  // committed checkpoint, then every batch beyond it, batch by batch —
  // the same fold boundaries the original AppendBatch calls used, so a
  // later checkpoint of this state is byte-identical to one the crashed
  // process would have written.
  if (options.checkpoint_interval_batches > 0) {
    journal->ckpt_state_ =
        std::make_unique<CheckpointState>(options.slot_seconds);
    if (!recovered.checkpoint_path.empty()) {
      STRR_ASSIGN_OR_RETURN(ProfileCheckpoint ckpt,
                            ReadProfileCheckpoint(recovered.checkpoint_path));
      if (ckpt.slot_seconds != options.slot_seconds) {
        return Status::InvalidArgument(
            "checkpoint slot_seconds " + std::to_string(ckpt.slot_seconds) +
            " does not match journal slot_seconds " +
            std::to_string(options.slot_seconds) + ": " +
            recovered.checkpoint_path);
      }
      journal->ckpt_state_->FoldUpdates(ckpt.entries);
    }
    CheckpointState* state = journal->ckpt_state_.get();
    STRR_RETURN_IF_ERROR(RecoveryManager::ForEachReplayBatch(
        recovered, [state](const ObservationBatch& batch) {
          state->FoldObservations(batch.observations);
          return Status::OK();
        }));
  }

  // Startup compaction: batches that only the WAL tail held are sealed
  // into a table now, so every old WAL is fully covered and deletable.
  ObservationTableBuilder tail(options.bloom_bits_per_key);
  uint64_t tail_first_seq = 0;
  for (const ObservationBatch& batch : recovered.wal_batches) {
    if (batch.seq <= recovered.last_table_seq) continue;
    if (tail.num_batches() == 0) tail_first_seq = batch.seq;
    tail.AddBatch(batch);
  }
  if (tail.num_batches() > 0) {
    uint64_t number = journal->next_file_number_++;
    const std::string path = ObservationTableFileName(options.dir, number);
    STRR_RETURN_IF_ERROR(tail.Finish(path));
    journal->tables_.push_back(TableMeta{number, tail_first_seq,
                                         recovered.last_seq,
                                         FileBytesOrZero(path)});
  }

  // Old WALs (now redundant), files a crash window left fully covered,
  // and stray temp files from interrupted atomic writes go away before
  // the fresh log opens.
  for (const std::string& path : recovered.redundant_paths) {
    fs::remove(path, ec);
  }
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options.dir, ec)) {
    const std::string name = entry.path().filename().string();
    bool is_wal = name.rfind("wal_", 0) == 0 &&
                  name.size() > 8 &&
                  name.compare(name.size() - 4, 4, ".log") == 0;
    bool is_tmp = name.size() > 4 &&
                  name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (is_wal || is_tmp) fs::remove(entry.path(), ec);
  }

  {
    std::lock_guard<std::mutex> lock(journal->mu_);
    STRR_RETURN_IF_ERROR(journal->OpenFreshWalLocked());
  }
  if (journal->maintenance_enabled()) {
    journal->maintenance_ =
        std::thread([j = journal.get()] { j->MaintenanceLoop(); });
  }
  return journal;
}

ObservationJournal::~ObservationJournal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_maintenance_ = true;
  }
  maint_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();

  std::lock_guard<std::mutex> lock(mu_);
  if (broken_.ok() && memtable_.num_batches() > 0) {
    // Best-effort seal so a clean shutdown restarts with no WAL replay;
    // the WAL still covers these batches if the seal fails.
    Status ignored = FlushMemtableLocked();
    (void)ignored;
  }
  if (wal_file_ != nullptr) {
    Status ignored = wal_file_->Close();
    (void)ignored;
  }
}

Status ObservationJournal::OpenFreshWalLocked() {
  uint64_t number = next_file_number_++;
  STRR_ASSIGN_OR_RETURN(wal_file_,
                        AppendOnlyFile::Create(WalFileName(options_.dir,
                                                           number)));
  wal_writer_ = std::make_unique<wal::LogWriter>(wal_file_.get());
  return Status::OK();
}

Status ObservationJournal::FlushMemtableLocked() {
  if (memtable_.num_batches() == 0) return Status::OK();

  const bool obs_on = obs::MetricsRegistry::Global().enabled();
  Stopwatch seal_watch;
  const size_t sealed_batches = memtable_batches_;
  uint64_t table_number = next_file_number_++;
  const std::string table_path =
      ObservationTableFileName(options_.dir, table_number);
  STRR_RETURN_IF_ERROR(memtable_.Finish(table_path));
  // The memtable always holds the contiguous acked suffix
  // [memtable_first_seq_, next_seq_ - 1].
  tables_.push_back(TableMeta{table_number, memtable_first_seq_, next_seq_ - 1,
                              FileBytesOrZero(table_path)});
  memtable_ = ObservationTableBuilder(options_.bloom_bits_per_key);
  memtable_batches_ = 0;
  ++tables_flushed_;

  // Rotate: new log first, then drop the old one. A crash between the two
  // leaves an extra WAL whose batches the table also holds — recovery
  // deduplicates by sequence number.
  std::string old_wal = wal_file_->path();
  STRR_RETURN_IF_ERROR(wal_file_->Close());
  STRR_RETURN_IF_ERROR(OpenFreshWalLocked());
  std::error_code ec;
  fs::remove(old_wal, ec);  // redundant data; failure is not fatal
  if (obs_on) {
    SealHistogram().Record(static_cast<uint64_t>(seal_watch.ElapsedMicros()));
  }
  if (options_.compaction) maint_cv_.notify_all();
  STRR_LOG(Info) << "observation journal: sealed table " << table_number
                 << " (" << sealed_batches << " batches), rotated WAL";
  return Status::OK();
}

Status ObservationJournal::CheckpointLocked() {
  STRR_RETURN_IF_ERROR(FlushMemtableLocked());
  batches_since_checkpoint_ = 0;
  const uint64_t covered = next_seq_ - 1;
  if (covered == checkpoint_seq_) return Status::OK();  // nothing new acked

  const bool obs_on = obs::MetricsRegistry::Global().enabled();
  Stopwatch watch;
  std::vector<CoalescedUpdate> entries = ckpt_state_->Snapshot();
  const uint64_t number = next_file_number_++;
  const std::string path = CheckpointFileName(options_.dir, number);
  STRR_RETURN_IF_ERROR(WriteProfileCheckpoint(path, covered,
                                              options_.slot_seconds, entries));
  const uint64_t old_number = checkpoint_number_;
  checkpoint_number_ = number;
  checkpoint_seq_ = covered;
  ++checkpoints_written_;
  if (old_number != 0) {
    // Crash before this remove leaves two committed checkpoints; recovery
    // keeps the one covering more and marks the other redundant.
    std::error_code ec;
    fs::remove(CheckpointFileName(options_.dir, old_number), ec);
  }
  truncate_below_seq_ = covered;
  maint_cv_.notify_all();
  if (obs_on) {
    CheckpointHistogram().Record(static_cast<uint64_t>(watch.ElapsedMicros()));
  }
  STRR_LOG(Info) << "observation journal: checkpoint " << number
                 << " covers seq " << covered << " (" << entries.size()
                 << " aggregates)";
  return Status::OK();
}

StatusOr<uint64_t> ObservationJournal::AppendBatch(
    std::span<const SpeedObservation> batch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!broken_.ok()) {
    ++append_errors_;
    return broken_;
  }

  ObservationBatch record;
  record.seq = next_seq_;
  record.observations.assign(batch.begin(), batch.end());
  BinaryWriter payload;
  EncodeObservationBatch(payload, record);

  const bool obs_on = obs::MetricsRegistry::Global().enabled();
  Stopwatch append_watch;
  Status s = wal_writer_->AddRecord(payload.data());
  if (obs_on) {
    WalAppendHistogram().Record(
        static_cast<uint64_t>(append_watch.ElapsedMicros()));
  }
  if (s.ok() && options_.sync_each_batch) {
    Stopwatch sync_watch;
    s = wal_writer_->Sync();
    if (obs_on) {
      WalSyncHistogram().Record(
          static_cast<uint64_t>(sync_watch.ElapsedMicros()));
    }
    if (s.ok()) ++wal_syncs_;
  }
  if (!s.ok()) {
    // Fail-stop: the WAL may now hold a torn fragment (exactly the crash
    // shape readers tolerate at the tail); never write past it.
    broken_ = s;
    ++append_errors_;
    AppendFailuresCounter().Add();
    STRR_LOG(Error) << "observation journal: WAL append failed ("
                    << s.message() << "); journal is now fail-stopped";
    return s;
  }

  ++next_seq_;
  if (memtable_.num_batches() == 0) memtable_first_seq_ = record.seq;
  memtable_.AddBatch(record);
  ++memtable_batches_;
  ++batches_appended_;
  observations_appended_ += record.observations.size();
  wal_bytes_ = wal_file_->size();
  if (ckpt_state_ != nullptr) {
    ckpt_state_->FoldObservations(record.observations);
    ++batches_since_checkpoint_;
  }

  if (memtable_.encoded_size() >= options_.memtable_flush_bytes) {
    Status flush = FlushMemtableLocked();
    if (!flush.ok()) {
      broken_ = flush;
      return flush;
    }
  }
  if (ckpt_state_ != nullptr &&
      batches_since_checkpoint_ >= options_.checkpoint_interval_batches) {
    Status ckpt = CheckpointLocked();
    if (!ckpt.ok()) {
      broken_ = ckpt;
      return ckpt;
    }
  }
  return record.seq;
}

Status ObservationJournal::FlushMemtable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!broken_.ok()) return broken_;
  Status s = FlushMemtableLocked();
  if (!s.ok()) broken_ = s;
  return s;
}

Status ObservationJournal::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (ckpt_state_ == nullptr) {
    return Status::InvalidArgument("checkpointing is not enabled");
  }
  if (!broken_.ok()) return broken_;
  Status s = CheckpointLocked();
  if (!s.ok()) broken_ = s;
  return s;
}

bool ObservationJournal::MaintenanceWorkPendingLocked() const {
  if (!tables_.empty() && tables_.front().last_seq <= truncate_below_seq_) {
    return true;
  }
  if (options_.compaction) {
    size_t begin = 0, count = 0;
    if (FindCompactionRunLocked(&begin, &count)) return true;
  }
  return false;
}

bool ObservationJournal::FindCompactionRunLocked(size_t* begin,
                                                 size_t* count) const {
  size_t run_begin = 0;
  size_t run_len = 0;
  for (size_t i = 0; i < tables_.size(); ++i) {
    const TableMeta& t = tables_[i];
    const bool small = t.bytes < options_.compaction_small_bytes;
    const bool contiguous =
        run_len == 0 || tables_[i - 1].last_seq + 1 == t.first_seq;
    if (small && (run_len == 0 || contiguous)) {
      if (run_len == 0) run_begin = i;
      ++run_len;
      if (run_len >= options_.compaction_min_tables) {
        *begin = run_begin;
        *count = std::min(run_len, options_.compaction_max_tables);
        return true;
      }
    } else if (small) {
      run_begin = i;
      run_len = 1;
    } else {
      run_len = 0;
    }
  }
  return false;
}

void ObservationJournal::RunTruncationLocked(
    std::unique_lock<std::mutex>& lock) {
  std::vector<uint64_t> victims;
  size_t keep = 0;
  for (const TableMeta& t : tables_) {
    if (t.last_seq <= truncate_below_seq_) {
      victims.push_back(t.number);
    } else {
      tables_[keep++] = t;
    }
  }
  if (victims.empty()) return;
  tables_.resize(keep);
  tables_truncated_ += victims.size();
  const uint64_t covered = truncate_below_seq_;
  lock.unlock();
  if (obs::MetricsRegistry::Global().enabled()) {
    TablesTruncatedCounter().Add(victims.size());
  }
  std::error_code ec;
  for (uint64_t number : victims) {
    fs::remove(ObservationTableFileName(options_.dir, number), ec);
  }
  STRR_LOG(Info) << "observation journal: truncated " << victims.size()
                 << " table(s) covered by checkpoint seq " << covered;
  lock.lock();
}

void ObservationJournal::RunCompactionLocked(
    std::unique_lock<std::mutex>& lock) {
  size_t begin = 0, count = 0;
  if (!FindCompactionRunLocked(&begin, &count)) return;
  std::vector<TableMeta> inputs(tables_.begin() + begin,
                                tables_.begin() + begin + count);
  const uint64_t out_number = next_file_number_++;
  const std::string out_path =
      ObservationTableFileName(options_.dir, out_number);
  std::vector<std::string> input_paths;
  input_paths.reserve(inputs.size());
  for (const TableMeta& t : inputs) {
    input_paths.push_back(ObservationTableFileName(options_.dir, t.number));
  }
  lock.unlock();
  StatusOr<CompactionResult> merged = CompactTables(
      input_paths, out_path, options_.bloom_bits_per_key);
  lock.lock();
  if (!merged.ok()) {
    STRR_LOG(Warning) << "observation journal: compaction failed ("
                      << merged.status().message() << ")";
    lock.unlock();
    std::error_code ec;
    fs::remove(out_path, ec);
    lock.lock();
    return;
  }
  // Swap: the merged table replaces its inputs in the live set. Only this
  // thread removes tables, so the inputs are still where we left them
  // unless a checkpoint truncated past the run — then the merged output
  // is itself redundant.
  bool all_present = true;
  for (const TableMeta& in : inputs) {
    all_present =
        all_present &&
        std::any_of(tables_.begin(), tables_.end(),
                    [&](const TableMeta& t) { return t.number == in.number; });
  }
  std::vector<std::string> doomed;
  if (!all_present || merged->last_seq <= truncate_below_seq_) {
    doomed.push_back(out_path);
  } else {
    std::erase_if(tables_, [&](const TableMeta& t) {
      return std::any_of(
          inputs.begin(), inputs.end(),
          [&](const TableMeta& in) { return in.number == t.number; });
    });
    TableMeta meta{out_number, merged->first_seq, merged->last_seq,
                   merged->output_bytes};
    tables_.insert(std::lower_bound(tables_.begin(), tables_.end(), meta,
                                    [](const TableMeta& a, const TableMeta& b) {
                                      return a.first_seq < b.first_seq;
                                    }),
                   meta);
    ++compactions_;
    tables_compacted_ += inputs.size();
    for (const std::string& path : input_paths) doomed.push_back(path);
  }
  lock.unlock();
  if (obs::MetricsRegistry::Global().enabled()) CompactionsCounter().Add();
  std::error_code ec;
  for (const std::string& path : doomed) fs::remove(path, ec);
  STRR_LOG(Info) << "observation journal: compacted " << inputs.size()
                 << " table(s) into table " << out_number << " (seq "
                 << merged->first_seq << ".." << merged->last_seq << ")";
  lock.lock();
}

void ObservationJournal::MaintenanceLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    maint_cv_.wait(lock, [&] {
      return stop_maintenance_ || MaintenanceWorkPendingLocked();
    });
    if (stop_maintenance_) break;
    maintenance_busy_ = true;
    if (!tables_.empty() && tables_.front().last_seq <= truncate_below_seq_) {
      RunTruncationLocked(lock);
    } else {
      RunCompactionLocked(lock);
    }
    maintenance_busy_ = false;
    idle_cv_.notify_all();
  }
}

void ObservationJournal::WaitForMaintenance() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!maintenance_.joinable()) return;
  idle_cv_.wait(lock, [&] {
    return stop_maintenance_ ||
           (!maintenance_busy_ && !MaintenanceWorkPendingLocked());
  });
}

uint64_t ObservationJournal::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

ObservationJournal::Stats ObservationJournal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.batches_appended = batches_appended_;
  out.observations_appended = observations_appended_;
  out.wal_bytes = wal_bytes_;
  out.wal_syncs = wal_syncs_;
  out.tables_flushed = tables_flushed_;
  out.append_errors = append_errors_;
  out.memtable_bytes = memtable_.encoded_size();
  out.memtable_batches = memtable_batches_;
  out.checkpoints_written = checkpoints_written_;
  out.checkpoint_seq = checkpoint_seq_;
  out.checkpoint_entries = ckpt_state_ != nullptr ? ckpt_state_->size() : 0;
  out.compactions = compactions_;
  out.tables_compacted = tables_compacted_;
  out.tables_truncated = tables_truncated_;
  out.live_tables = tables_.size();
  return out;
}

}  // namespace strr
