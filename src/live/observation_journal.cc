#include "live/observation_journal.h"

#include <filesystem>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/serialize.h"
#include "util/stopwatch.h"

namespace strr {

namespace fs = std::filesystem;

namespace {

/// WAL AddRecord latency per batch, in µs (excludes the fsync below).
obs::Histogram& WalAppendHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "strr_wal_append_us");
  return h;
}
/// WAL fdatasync latency per batch, in µs (ack = stable storage).
obs::Histogram& WalSyncHistogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("strr_wal_fsync_us");
  return h;
}
/// Memtable seal + WAL rotation latency, in µs.
obs::Histogram& SealHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "strr_wal_memtable_seal_us");
  return h;
}
obs::Counter& AppendFailuresCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_wal_append_failures_total");
  return c;
}

}  // namespace

std::string ObservationTableFileName(const std::string& dir,
                                     uint64_t number) {
  return dir + "/obs_" + std::to_string(number) + ".tbl";
}

std::string WalFileName(const std::string& dir, uint64_t number) {
  return dir + "/wal_" + std::to_string(number) + ".log";
}

StatusOr<std::unique_ptr<ObservationJournal>> ObservationJournal::Open(
    const ObservationJournalOptions& options, const RecoveredLog& recovered) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("observation journal dir is empty");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("cannot create journal dir " + options.dir + ": " +
                           ec.message());
  }

  auto journal =
      std::unique_ptr<ObservationJournal>(new ObservationJournal(options));
  journal->next_seq_ = recovered.last_seq + 1;
  journal->next_file_number_ = recovered.next_file_number;
  journal->memtable_ = ObservationTableBuilder(options.bloom_bits_per_key);

  // Startup compaction: batches that only the WAL tail held are sealed
  // into a table now, so every old WAL is fully covered and deletable.
  ObservationTableBuilder tail(options.bloom_bits_per_key);
  for (const ObservationBatch& batch : recovered.batches) {
    if (batch.seq > recovered.last_table_seq) tail.AddBatch(batch);
  }
  if (tail.num_batches() > 0) {
    uint64_t number = journal->next_file_number_++;
    STRR_RETURN_IF_ERROR(
        tail.Finish(ObservationTableFileName(options.dir, number)));
  }

  // Old WALs (now redundant) and stray temp files from interrupted atomic
  // writes go away before the fresh log opens.
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options.dir, ec)) {
    const std::string name = entry.path().filename().string();
    bool is_wal = name.rfind("wal_", 0) == 0 &&
                  name.size() > 8 &&
                  name.compare(name.size() - 4, 4, ".log") == 0;
    bool is_tmp = name.size() > 4 &&
                  name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (is_wal || is_tmp) fs::remove(entry.path(), ec);
  }

  {
    std::lock_guard<std::mutex> lock(journal->mu_);
    STRR_RETURN_IF_ERROR(journal->OpenFreshWalLocked());
  }
  return journal;
}

ObservationJournal::~ObservationJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_.ok() && memtable_.num_batches() > 0) {
    // Best-effort seal so a clean shutdown restarts with no WAL replay;
    // the WAL still covers these batches if the seal fails.
    Status ignored = FlushMemtableLocked();
    (void)ignored;
  }
  if (wal_file_ != nullptr) {
    Status ignored = wal_file_->Close();
    (void)ignored;
  }
}

Status ObservationJournal::OpenFreshWalLocked() {
  uint64_t number = next_file_number_++;
  STRR_ASSIGN_OR_RETURN(wal_file_,
                        AppendOnlyFile::Create(WalFileName(options_.dir,
                                                           number)));
  wal_writer_ = std::make_unique<wal::LogWriter>(wal_file_.get());
  return Status::OK();
}

Status ObservationJournal::FlushMemtableLocked() {
  if (memtable_.num_batches() == 0) return Status::OK();

  const bool obs_on = obs::MetricsRegistry::Global().enabled();
  Stopwatch seal_watch;
  const size_t sealed_batches = memtable_batches_;
  uint64_t table_number = next_file_number_++;
  STRR_RETURN_IF_ERROR(
      memtable_.Finish(ObservationTableFileName(options_.dir, table_number)));
  memtable_ = ObservationTableBuilder(options_.bloom_bits_per_key);
  memtable_batches_ = 0;
  ++tables_flushed_;

  // Rotate: new log first, then drop the old one. A crash between the two
  // leaves an extra WAL whose batches the table also holds — recovery
  // deduplicates by sequence number.
  std::string old_wal = wal_file_->path();
  STRR_RETURN_IF_ERROR(wal_file_->Close());
  STRR_RETURN_IF_ERROR(OpenFreshWalLocked());
  std::error_code ec;
  fs::remove(old_wal, ec);  // redundant data; failure is not fatal
  if (obs_on) {
    SealHistogram().Record(static_cast<uint64_t>(seal_watch.ElapsedMicros()));
  }
  STRR_LOG(Info) << "observation journal: sealed table " << table_number
                 << " (" << sealed_batches << " batches), rotated WAL";
  return Status::OK();
}

StatusOr<uint64_t> ObservationJournal::AppendBatch(
    std::span<const SpeedObservation> batch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!broken_.ok()) {
    ++append_errors_;
    return broken_;
  }

  ObservationBatch record;
  record.seq = next_seq_;
  record.observations.assign(batch.begin(), batch.end());
  BinaryWriter payload;
  EncodeObservationBatch(payload, record);

  const bool obs_on = obs::MetricsRegistry::Global().enabled();
  Stopwatch append_watch;
  Status s = wal_writer_->AddRecord(payload.data());
  if (obs_on) {
    WalAppendHistogram().Record(
        static_cast<uint64_t>(append_watch.ElapsedMicros()));
  }
  if (s.ok() && options_.sync_each_batch) {
    Stopwatch sync_watch;
    s = wal_writer_->Sync();
    if (obs_on) {
      WalSyncHistogram().Record(
          static_cast<uint64_t>(sync_watch.ElapsedMicros()));
    }
    if (s.ok()) ++wal_syncs_;
  }
  if (!s.ok()) {
    // Fail-stop: the WAL may now hold a torn fragment (exactly the crash
    // shape readers tolerate at the tail); never write past it.
    broken_ = s;
    ++append_errors_;
    AppendFailuresCounter().Add();
    STRR_LOG(Error) << "observation journal: WAL append failed ("
                    << s.message() << "); journal is now fail-stopped";
    return s;
  }

  ++next_seq_;
  memtable_.AddBatch(record);
  ++memtable_batches_;
  ++batches_appended_;
  observations_appended_ += record.observations.size();
  wal_bytes_ = wal_file_->size();

  if (memtable_.encoded_size() >= options_.memtable_flush_bytes) {
    Status flush = FlushMemtableLocked();
    if (!flush.ok()) {
      broken_ = flush;
      return flush;
    }
  }
  return record.seq;
}

Status ObservationJournal::FlushMemtable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!broken_.ok()) return broken_;
  Status s = FlushMemtableLocked();
  if (!s.ok()) broken_ = s;
  return s;
}

uint64_t ObservationJournal::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

ObservationJournal::Stats ObservationJournal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.batches_appended = batches_appended_;
  out.observations_appended = observations_appended_;
  out.wal_bytes = wal_bytes_;
  out.wal_syncs = wal_syncs_;
  out.tables_flushed = tables_flushed_;
  out.append_errors = append_errors_;
  out.memtable_bytes = memtable_.encoded_size();
  out.memtable_batches = memtable_batches_;
  return out;
}

}  // namespace strr
