#include "live/observation.h"

#include <algorithm>
#include <unordered_map>

#include "util/time_util.h"

namespace strr {

std::vector<CoalescedUpdate> CoalesceObservations(
    std::span<const SpeedObservation> observations, int64_t slot_seconds) {
  // One cell-sized aggregate per (segment, profile slot), sums accumulated
  // in input order so folding the aggregate is bit-equivalent to folding
  // each observation.
  std::unordered_map<uint64_t, CoalescedUpdate> groups;
  groups.reserve(observations.size());
  for (const SpeedObservation& obs : observations) {
    int64_t tod = NormalizeTimeOfDay(obs.time_of_day_sec);
    SlotId slot = SlotOfTimeOfDay(tod, slot_seconds);
    uint64_t key = (static_cast<uint64_t>(obs.segment) << 32) |
                   static_cast<uint64_t>(static_cast<uint32_t>(slot));
    float speed = static_cast<float>(obs.speed_mps);
    auto [it, inserted] = groups.try_emplace(key);
    CoalescedUpdate& u = it->second;
    if (inserted) {
      u.segment = obs.segment;
      u.slot_tod = tod;
      u.min_speed = speed;
      u.max_speed = speed;
    } else {
      u.min_speed = std::min(u.min_speed, speed);
      u.max_speed = std::max(u.max_speed, speed);
    }
    u.sum_speed += speed;
    ++u.count;
  }
  std::vector<CoalescedUpdate> batch;
  batch.reserve(groups.size());
  for (auto& [key, update] : groups) batch.push_back(update);
  // Deterministic publish order regardless of hash iteration.
  std::sort(batch.begin(), batch.end(),
            [](const CoalescedUpdate& a, const CoalescedUpdate& b) {
              return a.segment != b.segment ? a.segment < b.segment
                                            : a.slot_tod < b.slot_tod;
            });
  return batch;
}

}  // namespace strr
