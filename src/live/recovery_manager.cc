#include "live/recovery_manager.h"

#include <algorithm>
#include <filesystem>
#include <utility>
#include <vector>

#include "storage/checkpoint/profile_checkpoint.h"
#include "storage/fs_util.h"
#include "storage/obs_table.h"
#include "storage/wal/log_reader.h"
#include "util/serialize.h"

namespace strr {

namespace fs = std::filesystem;

namespace {

bool ParseNumberedName(const std::string& name, const char* prefix,
                       const char* suffix, uint64_t* number) {
  const std::string pre(prefix), suf(suffix);
  if (name.size() <= pre.size() + suf.size()) return false;
  if (name.compare(0, pre.size(), pre) != 0) return false;
  if (name.compare(name.size() - suf.size(), suf.size(), suf) != 0) {
    return false;
  }
  uint64_t n = 0;
  size_t digits = 0;
  for (size_t i = pre.size(); i < name.size() - suf.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<uint64_t>(c - '0');
    ++digits;
  }
  if (digits == 0) return false;
  *number = n;
  return true;
}

// Appends a WAL batch to the recovered tail, skipping duplicates (the
// table/WAL crash-window overlap) and rejecting gaps.
Status FoldWalBatch(ObservationBatch&& batch, const std::string& origin,
                    RecoveredLog* out) {
  if (batch.seq <= out->last_seq) return Status::OK();  // duplicate
  if (batch.seq != out->last_seq + 1) {
    return Status::Corruption(
        "observation sequence gap: expected " +
        std::to_string(out->last_seq + 1) + ", found " +
        std::to_string(batch.seq) + " in " + origin);
  }
  out->last_seq = batch.seq;
  out->wal_batches.push_back(std::move(batch));
  return Status::OK();
}

}  // namespace

StatusOr<RecoveredLog> RecoveryManager::Recover(const std::string& dir) {
  RecoveredLog out;
  std::error_code ec;
  if (!fs::exists(dir, ec) || ec) return out;  // fresh start

  std::vector<std::pair<uint64_t, std::string>> tables;
  std::vector<std::pair<uint64_t, std::string>> wals;
  std::vector<std::pair<uint64_t, std::string>> checkpoints;
  uint64_t max_number = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t number = 0;
    if (ParseNumberedName(name, "obs_", ".tbl", &number)) {
      tables.emplace_back(number, entry.path().string());
    } else if (ParseNumberedName(name, "wal_", ".log", &number)) {
      wals.emplace_back(number, entry.path().string());
    } else if (ParseNumberedName(name, "ckpt_", ".ckpt", &number)) {
      checkpoints.emplace_back(number, entry.path().string());
    } else {
      continue;  // .tmp leftovers etc.; Open() cleans them up
    }
    max_number = std::max(max_number, number);
  }
  if (ec) {
    return Status::IoError("cannot list journal dir " + dir + ": " +
                           ec.message());
  }
  out.next_file_number = max_number + 1;
  std::sort(wals.begin(), wals.end());

  // Checkpoints: strict (committed via atomic rename — a crash mid-write
  // leaves only a .tmp). The crash window between committing a new
  // checkpoint and deleting the old one leaves two; the one covering more
  // wins and the other is redundant.
  for (const auto& [number, path] : checkpoints) {
    STRR_ASSIGN_OR_RETURN(ProfileCheckpoint ckpt, ReadProfileCheckpoint(path));
    const bool newer = ckpt.covered_seq > out.checkpoint_seq ||
                       (ckpt.covered_seq == out.checkpoint_seq &&
                        number > out.checkpoint_number);
    if (out.checkpoint_path.empty()) {
      out.checkpoint_path = path;
      out.checkpoint_number = number;
      out.checkpoint_seq = ckpt.covered_seq;
    } else if (newer) {
      out.redundant_paths.push_back(out.checkpoint_path);
      out.checkpoint_path = path;
      out.checkpoint_number = number;
      out.checkpoint_seq = ckpt.covered_seq;
    } else {
      out.redundant_paths.push_back(path);
    }
  }
  out.last_seq = out.checkpoint_seq;

  // Sealed tables: strict — they were published atomically, so any damage
  // is real corruption, not a crash artifact. Validate every file (CRC +
  // per-table sequence contiguity), keep only footer metadata, and order
  // by coverage instead of file number: a compaction crash window leaves
  // a merged table (higher number, wider range) beside surviving inputs,
  // and widest-range-first makes those inputs fully-covered duplicates.
  std::vector<RecoveredTableMeta> metas;
  metas.reserve(tables.size());
  for (const auto& [number, path] : tables) {
    STRR_ASSIGN_OR_RETURN(ObservationTable table, ObservationTable::Open(path));
    const std::vector<ObservationBatch>& batches = table.batches();
    for (size_t i = 0; i < batches.size(); ++i) {
      if (batches[i].seq != table.first_seq() + i) {
        return Status::Corruption("sequence gap inside table " + path);
      }
    }
    metas.push_back(RecoveredTableMeta{number, path, table.first_seq(),
                                       table.last_seq(),
                                       table.num_observations()});
  }
  std::sort(metas.begin(), metas.end(),
            [](const RecoveredTableMeta& a, const RecoveredTableMeta& b) {
              if (a.first_seq != b.first_seq) return a.first_seq < b.first_seq;
              if (a.last_seq != b.last_seq) return a.last_seq > b.last_seq;
              return a.number < b.number;
            });
  for (RecoveredTableMeta& meta : metas) {
    if (meta.last_seq <= out.last_seq) {
      // Whole range already covered by the checkpoint, a merged table, or
      // an earlier duplicate — a crash-window leftover.
      out.redundant_paths.push_back(meta.path);
      continue;
    }
    if (meta.first_seq > out.last_seq + 1) {
      return Status::Corruption(
          "observation sequence gap: expected " +
          std::to_string(out.last_seq + 1) + ", found " +
          std::to_string(meta.first_seq) + " in " + meta.path);
    }
    out.last_seq = meta.last_seq;
    ++out.tables_loaded;
    out.tables.push_back(std::move(meta));
  }
  out.last_table_seq = out.last_seq;

  // WAL tail: torn records at end of file are the expected crash shape and
  // terminate replay cleanly; inconsistent bytes are Corruption.
  for (const auto& [number, path] : wals) {
    STRR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
    wal::LogReader reader(bytes);
    std::string record;
    while (reader.ReadRecord(&record)) {
      BinaryReader r(record);
      ObservationBatch batch;
      Status s = DecodeObservationBatch(r, &batch);
      if (s.ok() && !r.AtEnd()) {
        s = Status::Corruption("trailing bytes in WAL batch record");
      }
      if (!s.ok()) {
        return Status::Corruption(s.message() + " in " + path);
      }
      STRR_RETURN_IF_ERROR(FoldWalBatch(std::move(batch), path, &out));
    }
    if (!reader.status().ok()) {
      return Status::Corruption(reader.status().message() + " in " + path);
    }
    if (reader.torn_tail()) out.wal_tail_torn = true;
    ++out.wal_files_loaded;
  }
  return out;
}

Status RecoveryManager::ForEachReplayBatch(const RecoveredLog& recovered,
                                           const BatchFn& fn) {
  uint64_t last = recovered.checkpoint_seq;
  for (const RecoveredTableMeta& meta : recovered.tables) {
    STRR_ASSIGN_OR_RETURN(ObservationTable table,
                          ObservationTable::Open(meta.path));
    for (ObservationBatch& batch : table.TakeBatches()) {
      if (batch.seq <= last) continue;  // overlap with previous coverage
      if (batch.seq != last + 1) {
        return Status::Corruption("sequence gap inside table " + meta.path);
      }
      last = batch.seq;
      STRR_RETURN_IF_ERROR(fn(batch));
    }
  }
  for (const ObservationBatch& batch : recovered.wal_batches) {
    if (batch.seq <= last) continue;
    if (batch.seq != last + 1) {
      return Status::Corruption("sequence gap in recovered WAL tail");
    }
    last = batch.seq;
    STRR_RETURN_IF_ERROR(fn(batch));
  }
  return Status::OK();
}

StatusOr<size_t> RecoveryManager::Replay(const RecoveredLog& recovered,
                                         LiveProfileManager& manager) {
  return Replay(recovered, manager, ReplayOptions{});
}

StatusOr<size_t> RecoveryManager::Replay(const RecoveredLog& recovered,
                                         LiveProfileManager& manager,
                                         const ReplayOptions& options) {
  const size_t chunk_cap = std::max<size_t>(1, options.chunk_observations);
  size_t publishes = 0;

  // Checkpoint first: its aggregates are already coalesced per (segment,
  // slot), so publish them directly in bounded slices.
  if (!recovered.checkpoint_path.empty()) {
    STRR_ASSIGN_OR_RETURN(ProfileCheckpoint ckpt,
                          ReadProfileCheckpoint(recovered.checkpoint_path));
    const int64_t slot_seconds = manager.Acquire().profile().slot_seconds();
    if (ckpt.slot_seconds != slot_seconds) {
      return Status::InvalidArgument(
          "checkpoint slot_seconds " + std::to_string(ckpt.slot_seconds) +
          " does not match profile slot_seconds " +
          std::to_string(slot_seconds) + ": " + recovered.checkpoint_path);
    }
    for (size_t i = 0; i < ckpt.entries.size(); i += chunk_cap) {
      const size_t n = std::min(chunk_cap, ckpt.entries.size() - i);
      manager.Publish(
          std::span<const CoalescedUpdate>(ckpt.entries.data() + i, n));
      ++publishes;
    }
  }

  if (recovered.replay_batches() == 0) return publishes;
  const int64_t slot_seconds = manager.Acquire().profile().slot_seconds();

  std::vector<SpeedObservation> chunk;
  chunk.reserve(chunk_cap);
  auto flush = [&] {
    if (chunk.empty()) return;
    std::vector<CoalescedUpdate> updates =
        CoalesceObservations(chunk, slot_seconds);
    manager.Publish(updates);
    ++publishes;
    chunk.clear();
  };
  STRR_RETURN_IF_ERROR(
      ForEachReplayBatch(recovered, [&](const ObservationBatch& batch) {
        chunk.insert(chunk.end(), batch.observations.begin(),
                     batch.observations.end());
        if (chunk.size() >= chunk_cap) flush();
        return Status::OK();
      }));
  flush();
  return publishes;
}

StatusOr<std::vector<ObservationBatch>> RecoveryManager::CollectBatches(
    const RecoveredLog& recovered) {
  std::vector<ObservationBatch> out;
  out.reserve(recovered.replay_batches());
  STRR_RETURN_IF_ERROR(
      ForEachReplayBatch(recovered, [&](const ObservationBatch& batch) {
        out.push_back(batch);
        return Status::OK();
      }));
  return out;
}

}  // namespace strr
