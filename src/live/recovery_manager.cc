#include "live/recovery_manager.h"

#include <algorithm>
#include <filesystem>
#include <utility>
#include <vector>

#include "storage/fs_util.h"
#include "storage/obs_table.h"
#include "storage/wal/log_reader.h"
#include "util/serialize.h"

namespace strr {

namespace fs = std::filesystem;

namespace {

// Observations per Publish during replay. Large enough that replaying a
// long history costs few snapshot forks, small enough to bound the
// coalescing map; correctness does not depend on the value (see header).
constexpr size_t kReplayChunk = 4096;

bool ParseNumberedName(const std::string& name, const char* prefix,
                       const char* suffix, uint64_t* number) {
  const std::string pre(prefix), suf(suffix);
  if (name.size() <= pre.size() + suf.size()) return false;
  if (name.compare(0, pre.size(), pre) != 0) return false;
  if (name.compare(name.size() - suf.size(), suf.size(), suf) != 0) {
    return false;
  }
  uint64_t n = 0;
  size_t digits = 0;
  for (size_t i = pre.size(); i < name.size() - suf.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<uint64_t>(c - '0');
    ++digits;
  }
  if (digits == 0) return false;
  *number = n;
  return true;
}

// Appends `batch` to the recovered stream, skipping duplicates (the
// table/WAL crash-window overlap) and rejecting gaps.
Status FoldBatch(ObservationBatch&& batch, const std::string& origin,
                 RecoveredLog* out) {
  if (batch.seq <= out->last_seq) return Status::OK();  // duplicate
  if (batch.seq != out->last_seq + 1) {
    return Status::Corruption(
        "observation sequence gap: expected " +
        std::to_string(out->last_seq + 1) + ", found " +
        std::to_string(batch.seq) + " in " + origin);
  }
  out->last_seq = batch.seq;
  out->batches.push_back(std::move(batch));
  return Status::OK();
}

}  // namespace

StatusOr<RecoveredLog> RecoveryManager::Recover(const std::string& dir) {
  RecoveredLog out;
  std::error_code ec;
  if (!fs::exists(dir, ec) || ec) return out;  // fresh start

  std::vector<std::pair<uint64_t, std::string>> tables;
  std::vector<std::pair<uint64_t, std::string>> wals;
  uint64_t max_number = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t number = 0;
    if (ParseNumberedName(name, "obs_", ".tbl", &number)) {
      tables.emplace_back(number, entry.path().string());
    } else if (ParseNumberedName(name, "wal_", ".log", &number)) {
      wals.emplace_back(number, entry.path().string());
    } else {
      continue;  // .tmp leftovers etc.; Open() cleans them up
    }
    max_number = std::max(max_number, number);
  }
  if (ec) {
    return Status::IoError("cannot list journal dir " + dir + ": " +
                           ec.message());
  }
  out.next_file_number = max_number + 1;
  std::sort(tables.begin(), tables.end());
  std::sort(wals.begin(), wals.end());

  // Sealed tables: strict. They were published atomically, so any damage
  // is real corruption, not a crash artifact.
  for (const auto& [number, path] : tables) {
    STRR_ASSIGN_OR_RETURN(ObservationTable table, ObservationTable::Open(path));
    for (ObservationBatch& batch : table.TakeBatches()) {
      STRR_RETURN_IF_ERROR(FoldBatch(std::move(batch), path, &out));
    }
    ++out.tables_loaded;
  }
  out.last_table_seq = out.last_seq;

  // WAL tail: torn records at end of file are the expected crash shape and
  // terminate replay cleanly; inconsistent bytes are Corruption.
  for (const auto& [number, path] : wals) {
    STRR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
    wal::LogReader reader(bytes);
    std::string record;
    while (reader.ReadRecord(&record)) {
      BinaryReader r(record);
      ObservationBatch batch;
      Status s = DecodeObservationBatch(r, &batch);
      if (s.ok() && !r.AtEnd()) {
        s = Status::Corruption("trailing bytes in WAL batch record");
      }
      if (!s.ok()) {
        return Status::Corruption(s.message() + " in " + path);
      }
      STRR_RETURN_IF_ERROR(FoldBatch(std::move(batch), path, &out));
    }
    if (!reader.status().ok()) {
      return Status::Corruption(reader.status().message() + " in " + path);
    }
    if (reader.torn_tail()) out.wal_tail_torn = true;
    ++out.wal_files_loaded;
  }
  return out;
}

size_t RecoveryManager::Replay(const RecoveredLog& recovered,
                               LiveProfileManager& manager) {
  if (recovered.batches.empty()) return 0;
  const int64_t slot_seconds = manager.Acquire().profile().slot_seconds();

  size_t publishes = 0;
  std::vector<SpeedObservation> chunk;
  chunk.reserve(kReplayChunk);
  auto flush = [&] {
    if (chunk.empty()) return;
    std::vector<CoalescedUpdate> updates =
        CoalesceObservations(chunk, slot_seconds);
    manager.Publish(updates);
    ++publishes;
    chunk.clear();
  };
  for (const ObservationBatch& batch : recovered.batches) {
    chunk.insert(chunk.end(), batch.observations.begin(),
                 batch.observations.end());
    if (chunk.size() >= kReplayChunk) flush();
  }
  flush();
  return publishes;
}

}  // namespace strr
