// ObservationJournal: the durability spine of the live tier. Every
// accepted observation batch is appended to a checksummed WAL record (and
// optionally fdatasync'd) *before* it is published — the append is the ack
// point. Acked batches also accumulate in an in-memory memtable (a table
// builder) that is sealed into an immutable, bloom-filtered observation
// table once it crosses a byte threshold, after which the WAL rotates and
// the fully-covered old log is deleted.
//
// On-disk layout inside the journal directory (one shared file-number
// space, so recovery can order everything by number):
//
//   obs_<N>.tbl   sealed observation tables (atomic rename publish)
//   wal_<N>.log   the single active WAL (older ones exist only in the
//                 crash window between table seal and log delete)
//
// Startup (Open) compacts any WAL-tail batches recovered by the
// RecoveryManager into a fresh table first, so every old WAL can be
// deleted and the journal always restarts with an empty active log.
#ifndef STRR_LIVE_OBSERVATION_JOURNAL_H_
#define STRR_LIVE_OBSERVATION_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "live/observation.h"
#include "storage/fs_util.h"
#include "storage/obs_table.h"
#include "storage/wal/log_writer.h"
#include "util/result.h"
#include "util/status.h"

namespace strr {

struct ObservationJournalOptions {
  std::string dir;
  /// Seal the memtable into a table once its encoded batches reach this
  /// many bytes (then rotate the WAL).
  size_t memtable_flush_bytes = 1 << 20;
  /// fdatasync the WAL after every batch append. On: the ack point is
  /// stable storage. Off: the ack point is the OS page cache (process
  /// crashes keep everything, power loss may cost the unsynced tail).
  bool sync_each_batch = true;
  int bloom_bits_per_key = 10;
};

/// What RecoveryManager reconstructed from a journal directory; feeds both
/// the replay into the live profile manager and ObservationJournal::Open.
struct RecoveredLog {
  /// Every recovered batch (tables first, then the WAL tail), seq-ordered
  /// and deduplicated.
  std::vector<ObservationBatch> batches;
  uint64_t last_seq = 0;        ///< highest recovered batch seq (0 if none)
  uint64_t last_table_seq = 0;  ///< highest seq already sealed in a table
  uint64_t next_file_number = 1;
  bool wal_tail_torn = false;   ///< a crash tore the final WAL record
  size_t tables_loaded = 0;
  size_t wal_files_loaded = 0;
};

/// File-name helpers shared with RecoveryManager.
std::string ObservationTableFileName(const std::string& dir, uint64_t number);
std::string WalFileName(const std::string& dir, uint64_t number);

class ObservationJournal {
 public:
  struct Stats {
    uint64_t batches_appended = 0;
    uint64_t observations_appended = 0;
    uint64_t wal_bytes = 0;
    uint64_t wal_syncs = 0;
    uint64_t tables_flushed = 0;
    uint64_t append_errors = 0;
    size_t memtable_bytes = 0;
    uint64_t memtable_batches = 0;
  };

  /// Opens the journal over a recovered directory: compacts the recovered
  /// WAL tail into a table, deletes every old WAL (and stray .tmp), and
  /// starts a fresh active log. `recovered` must come from
  /// RecoveryManager::Recover over the same directory.
  static StatusOr<std::unique_ptr<ObservationJournal>> Open(
      const ObservationJournalOptions& options, const RecoveredLog& recovered);

  ~ObservationJournal();

  ObservationJournal(const ObservationJournal&) = delete;
  ObservationJournal& operator=(const ObservationJournal&) = delete;

  /// Assigns the next sequence number, appends the batch to the WAL (the
  /// ack point), and feeds the memtable — flushing/rotating when full.
  /// Thread-safe. After the first failure the journal is fail-stop: the
  /// sticky error is returned and nothing further is written (a failed
  /// append may leave a torn WAL tail, which recovery tolerates).
  StatusOr<uint64_t> AppendBatch(std::span<const SpeedObservation> batch);

  /// Seals the current memtable (if non-empty) and rotates the WAL.
  Status FlushMemtable();

  /// Highest sequence number acked so far (0 if none).
  uint64_t last_seq() const;

  Stats stats() const;
  const std::string& dir() const { return options_.dir; }

 private:
  explicit ObservationJournal(const ObservationJournalOptions& options)
      : options_(options) {}

  Status OpenFreshWalLocked();
  Status FlushMemtableLocked();

  ObservationJournalOptions options_;

  mutable std::mutex mu_;
  std::unique_ptr<AppendOnlyFile> wal_file_;
  std::unique_ptr<wal::LogWriter> wal_writer_;
  ObservationTableBuilder memtable_{10};
  uint64_t memtable_batches_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t next_file_number_ = 1;
  Status broken_;  // sticky first failure; OK while healthy

  uint64_t batches_appended_ = 0;
  uint64_t observations_appended_ = 0;
  uint64_t wal_bytes_ = 0;
  uint64_t wal_syncs_ = 0;
  uint64_t tables_flushed_ = 0;
  uint64_t append_errors_ = 0;
};

}  // namespace strr

#endif  // STRR_LIVE_OBSERVATION_JOURNAL_H_
