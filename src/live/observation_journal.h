// ObservationJournal: the durability spine of the live tier. Every
// accepted observation batch is appended to a checksummed WAL record (and
// optionally fdatasync'd) *before* it is published — the append is the ack
// point. Acked batches also accumulate in an in-memory memtable (a table
// builder) that is sealed into an immutable, bloom-filtered observation
// table once it crosses a byte threshold, after which the WAL rotates and
// the fully-covered old log is deleted.
//
// On-disk layout inside the journal directory (one shared file-number
// space, so recovery can order everything by number):
//
//   obs_<N>.tbl   sealed observation tables (atomic rename publish)
//   wal_<N>.log   the single active WAL (older ones exist only in the
//                 crash window between table seal and log delete)
//   ckpt_<N>.ckpt the newest profile checkpoint (older ones exist only in
//                 the crash window between commit and delete)
//
// Startup (Open) compacts any WAL-tail batches recovered by the
// RecoveryManager into a fresh table first, so every old WAL can be
// deleted and the journal always restarts with an empty active log.
//
// With `checkpoint_interval_batches` > 0 the journal additionally folds
// every acked batch into a CheckpointState and periodically commits it as
// a profile checkpoint covering the acked high-water sequence, then hands
// the tables that checkpoint covers to a low-priority maintenance thread
// for deletion — bounding on-disk history and making restart O(delta).
// With `compaction` on, the same maintenance thread merges runs of small
// sealed tables into larger seq-deduplicated tables with rebuilt bloom
// filters, swapped into the live table set atomically under the journal
// mutex. Every crash window (checkpoint committed but tables not yet
// truncated, merged table committed but inputs not yet deleted) leaves
// only *redundant* files, which recovery detects and deduplicates.
#ifndef STRR_LIVE_OBSERVATION_JOURNAL_H_
#define STRR_LIVE_OBSERVATION_JOURNAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "live/observation.h"
#include "storage/checkpoint/profile_checkpoint.h"
#include "storage/fs_util.h"
#include "storage/obs_table.h"
#include "storage/wal/log_writer.h"
#include "util/result.h"
#include "util/status.h"

namespace strr {

struct ObservationJournalOptions {
  std::string dir;
  /// Seal the memtable into a table once its encoded batches reach this
  /// many bytes (then rotate the WAL).
  size_t memtable_flush_bytes = 1 << 20;
  /// fdatasync the WAL after every batch append. On: the ack point is
  /// stable storage. Off: the ack point is the OS page cache (process
  /// crashes keep everything, power loss may cost the unsynced tail).
  bool sync_each_batch = true;
  int bloom_bits_per_key = 10;

  /// Profile slot width the checkpoint aggregates use; must match the
  /// serving profile's slot_seconds. Only read when checkpointing is on.
  int64_t slot_seconds = 3600;
  /// Commit a profile checkpoint (then truncate the tables and WAL it
  /// covers) every N acked batches. 0 disables checkpointing.
  uint64_t checkpoint_interval_batches = 0;
  /// Background-merge runs of small sealed tables into larger ones.
  bool compaction = false;
  /// A sealed table smaller than this many bytes is a merge candidate.
  size_t compaction_small_bytes = 4 << 20;
  /// Merge once a contiguous run of at least this many candidates exists.
  size_t compaction_min_tables = 4;
  /// Upper bound on inputs merged per compaction.
  size_t compaction_max_tables = 8;
};

/// Footer metadata of one sealed table that contributes to replay; the
/// RecoveryManager validates the file fully, then keeps only this so
/// recovery memory stays bounded (Replay re-reads tables one at a time).
struct RecoveredTableMeta {
  uint64_t number = 0;
  std::string path;
  uint64_t first_seq = 0;
  uint64_t last_seq = 0;
  uint64_t num_observations = 0;
};

/// What RecoveryManager reconstructed from a journal directory; feeds both
/// the replay into the live profile manager and ObservationJournal::Open.
struct RecoveredLog {
  /// Newest committed profile checkpoint ("" = none): replay loads it
  /// first and only batches with seq > checkpoint_seq are replayed.
  std::string checkpoint_path;
  uint64_t checkpoint_number = 0;
  uint64_t checkpoint_seq = 0;
  /// Sealed tables contributing batches beyond the checkpoint, in replay
  /// order (ascending first_seq; overlaps deduplicate by sequence).
  std::vector<RecoveredTableMeta> tables;
  /// Batches only the WAL tail held (seq > last_table_seq), seq-ordered
  /// and deduplicated.
  std::vector<ObservationBatch> wal_batches;
  uint64_t last_seq = 0;        ///< highest recovered batch seq (0 if none)
  uint64_t last_table_seq = 0;  ///< covered by checkpoint + sealed tables
  uint64_t next_file_number = 1;
  bool wal_tail_torn = false;   ///< a crash tore the final WAL record
  size_t tables_loaded = 0;
  size_t wal_files_loaded = 0;
  /// Files a crash window left behind that newer files fully cover
  /// (superseded checkpoints, tables whose range a merged table or the
  /// checkpoint already holds); ObservationJournal::Open deletes them.
  std::vector<std::string> redundant_paths;

  /// Batches Replay will fold beyond the checkpoint.
  uint64_t replay_batches() const { return last_seq - checkpoint_seq; }
};

/// File-name helpers shared with RecoveryManager.
std::string ObservationTableFileName(const std::string& dir, uint64_t number);
std::string WalFileName(const std::string& dir, uint64_t number);

class ObservationJournal {
 public:
  struct Stats {
    uint64_t batches_appended = 0;
    uint64_t observations_appended = 0;
    uint64_t wal_bytes = 0;
    uint64_t wal_syncs = 0;
    uint64_t tables_flushed = 0;
    uint64_t append_errors = 0;
    size_t memtable_bytes = 0;
    uint64_t memtable_batches = 0;
    // Storage-engine maintenance (zero unless the knobs are on).
    uint64_t checkpoints_written = 0;
    uint64_t checkpoint_seq = 0;      ///< acked seq the newest ckpt covers
    uint64_t checkpoint_entries = 0;  ///< live (segment, slot) aggregates
    uint64_t compactions = 0;
    uint64_t tables_compacted = 0;    ///< inputs consumed by merges
    uint64_t tables_truncated = 0;    ///< tables deleted under a checkpoint
    uint64_t live_tables = 0;         ///< sealed tables currently on disk
  };

  /// Opens the journal over a recovered directory: compacts the recovered
  /// WAL tail into a table, deletes every old WAL (and stray .tmp and
  /// crash-redundant files), and starts a fresh active log. `recovered`
  /// must come from RecoveryManager::Recover over the same directory.
  /// When checkpointing is enabled this also rebuilds the checkpoint
  /// accumulator (checkpoint entries + recovered batches) and starts the
  /// maintenance thread.
  static StatusOr<std::unique_ptr<ObservationJournal>> Open(
      const ObservationJournalOptions& options, const RecoveredLog& recovered);

  ~ObservationJournal();

  ObservationJournal(const ObservationJournal&) = delete;
  ObservationJournal& operator=(const ObservationJournal&) = delete;

  /// Assigns the next sequence number, appends the batch to the WAL (the
  /// ack point), and feeds the memtable — flushing/rotating when full.
  /// Thread-safe. After the first failure the journal is fail-stop: the
  /// sticky error is returned and nothing further is written (a failed
  /// append may leave a torn WAL tail, which recovery tolerates).
  StatusOr<uint64_t> AppendBatch(std::span<const SpeedObservation> batch);

  /// Seals the current memtable (if non-empty) and rotates the WAL.
  Status FlushMemtable();

  /// Commits a profile checkpoint covering every acked batch now (flushes
  /// the memtable first) and schedules truncation of the covered tables.
  /// InvalidArgument unless checkpointing is enabled.
  Status Checkpoint();

  /// Blocks until the maintenance thread has no pending truncation or
  /// compaction work (no-op when maintenance is off). Test/bench hook —
  /// production callers never need to wait.
  void WaitForMaintenance();

  /// Highest sequence number acked so far (0 if none).
  uint64_t last_seq() const;

  Stats stats() const;
  const std::string& dir() const { return options_.dir; }

 private:
  /// A sealed table on disk (the journal's authoritative live file set;
  /// maintenance swaps entries under mu_, recovery derives the same set
  /// from the directory). Kept sorted by first_seq.
  struct TableMeta {
    uint64_t number = 0;
    uint64_t first_seq = 0;
    uint64_t last_seq = 0;
    uint64_t bytes = 0;
  };

  explicit ObservationJournal(const ObservationJournalOptions& options)
      : options_(options) {}

  Status OpenFreshWalLocked();
  Status FlushMemtableLocked();
  Status CheckpointLocked();
  bool MaintenanceWorkPendingLocked() const;
  bool FindCompactionRunLocked(size_t* begin, size_t* count) const;
  void MaintenanceLoop();
  void RunTruncationLocked(std::unique_lock<std::mutex>& lock);
  void RunCompactionLocked(std::unique_lock<std::mutex>& lock);

  bool maintenance_enabled() const {
    return options_.checkpoint_interval_batches > 0 || options_.compaction;
  }

  ObservationJournalOptions options_;

  mutable std::mutex mu_;
  std::unique_ptr<AppendOnlyFile> wal_file_;
  std::unique_ptr<wal::LogWriter> wal_writer_;
  ObservationTableBuilder memtable_{10};
  uint64_t memtable_batches_ = 0;
  uint64_t memtable_first_seq_ = 0;  // first seq in the open memtable
  uint64_t next_seq_ = 1;
  uint64_t next_file_number_ = 1;
  Status broken_;  // sticky first failure; OK while healthy

  std::vector<TableMeta> tables_;  // sorted by first_seq
  std::unique_ptr<CheckpointState> ckpt_state_;  // non-null iff enabled
  uint64_t batches_since_checkpoint_ = 0;
  uint64_t checkpoint_number_ = 0;  // 0 = no committed checkpoint
  uint64_t checkpoint_seq_ = 0;

  // Maintenance thread state (all guarded by mu_).
  std::thread maintenance_;
  std::condition_variable maint_cv_;   // work arrived / stop requested
  std::condition_variable idle_cv_;    // work drained (WaitForMaintenance)
  bool stop_maintenance_ = false;
  bool maintenance_busy_ = false;
  uint64_t truncate_below_seq_ = 0;  // tables with last_seq <= this die

  uint64_t batches_appended_ = 0;
  uint64_t observations_appended_ = 0;
  uint64_t wal_bytes_ = 0;
  uint64_t wal_syncs_ = 0;
  uint64_t tables_flushed_ = 0;
  uint64_t append_errors_ = 0;
  uint64_t checkpoints_written_ = 0;
  uint64_t compactions_ = 0;
  uint64_t tables_compacted_ = 0;
  uint64_t tables_truncated_ = 0;
};

}  // namespace strr

#endif  // STRR_LIVE_OBSERVATION_JOURNAL_H_
