#include "live/epoch_manager.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace strr {

EpochManager::EpochManager(const EpochManagerOptions& options)
    : max_retained_(std::max<size_t>(options.max_retained, 1)) {
  size_t n = options.reader_slots;
  if (n == 0) {
    n = std::max<size_t>(4 * std::thread::hardware_concurrency(), 64);
  }
  slots_ = std::vector<std::atomic<uint64_t>>(n);
  for (auto& slot : slots_) slot.store(kIdle);
}

EpochManager::~EpochManager() {
  // Shutdown contract: no pins, no concurrent Retire. Everything in limbo
  // is therefore reclaimable.
  std::vector<std::function<void()>> ripe;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Retired& r : limbo_) ripe.push_back(std::move(r.deleter));
    limbo_.clear();
  }
  for (auto& d : ripe) d();
  reclaimed_.fetch_add(ripe.size());
}

EpochManager::Pin EpochManager::Acquire() {
  pins_.fetch_add(1);
  for (;;) {
    uint64_t e = epoch_.load();
    for (auto& slot : slots_) {
      uint64_t expected = kIdle;
      if (slot.compare_exchange_strong(expected, e)) {
        return Pin(&slot);
      }
    }
    // Every slot taken: more pinned readers than slots. Pins are
    // query-scoped, so one will free shortly.
    std::this_thread::yield();
  }
}

uint64_t EpochManager::MinPinnedEpoch() const {
  uint64_t min_pinned = kIdle;
  for (const auto& slot : slots_) {
    min_pinned = std::min(min_pinned, slot.load());
  }
  return min_pinned;
}

std::vector<std::function<void()>> EpochManager::DrainRipeLocked(
    uint64_t min_pinned) {
  // Full scan, not front-only: concurrent Retire calls can enqueue stamps
  // slightly out of order, and a newer entry must not hold a ripe older
  // one hostage. The list is bounded by max_retained, so this is cheap.
  std::vector<std::function<void()>> ripe;
  for (auto it = limbo_.begin(); it != limbo_.end();) {
    if (it->epoch < min_pinned) {
      ripe.push_back(std::move(it->deleter));
      it = limbo_.erase(it);
    } else {
      ++it;
    }
  }
  return ripe;
}

size_t EpochManager::TryReclaim() {
  std::vector<std::function<void()>> ripe;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ripe = DrainRipeLocked(MinPinnedEpoch());
  }
  for (auto& d : ripe) d();
  reclaimed_.fetch_add(ripe.size());
  return ripe.size();
}

void EpochManager::Retire(std::function<void()> deleter) {
  // Stamp with the pre-increment epoch: any reader pinned at or below it
  // may still hold the retired object; readers pinning the new epoch
  // cannot (the caller unpublished it before calling Retire).
  retired_.fetch_add(1);
  uint64_t stamp = epoch_.fetch_add(1);
  bool waited = false;
  for (;;) {
    std::vector<std::function<void()>> ripe;
    size_t in_limbo;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (deleter) {
        limbo_.push_back(Retired{stamp, std::move(deleter)});
        deleter = nullptr;
      }
      ripe = DrainRipeLocked(MinPinnedEpoch());
      in_limbo = limbo_.size();
    }
    for (auto& d : ripe) d();
    reclaimed_.fetch_add(ripe.size());
    if (in_limbo <= max_retained_) break;
    // Memory pressure: too many superseded versions alive. Wait out the
    // grace period (readers are query-scoped, so this is short).
    if (!waited) {
      waited = true;
      grace_waits_.fetch_add(1);
    }
    std::this_thread::yield();
  }
}

void EpochManager::SynchronizeAndReclaim() {
  // Readers pinned strictly before this call hold epochs < target; once
  // the minimum pinned epoch reaches the target they have all drained.
  uint64_t target = epoch_.fetch_add(1) + 1;
  while (MinPinnedEpoch() < target) std::this_thread::yield();
  TryReclaim();
}

EpochManager::Stats EpochManager::stats() const {
  Stats out;
  out.pins = pins_.load();
  out.retired = retired_.load();
  out.reclaimed = reclaimed_.load();
  out.grace_waits = grace_waits_.load();
  std::lock_guard<std::mutex> lock(mu_);
  out.in_limbo = limbo_.size();
  return out;
}

}  // namespace strr
