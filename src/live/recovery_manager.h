// RecoveryManager: rebuilds the live tier's acked observation stream from
// a journal directory after a restart or crash.
//
// Recover() loads every sealed observation table (strict: any checksum or
// structural failure is typed Corruption — sealed files are never torn)
// and then the WAL(s) through a torn-tail-tolerant LogReader: bytes
// missing at the end of a log are the expected crash artifact and mark a
// clean recovery point, while bytes present but inconsistent are
// Corruption. Batches are deduplicated by sequence number (tables and the
// WAL overlap in one crash window) and checked for gaps, so the result is
// exactly the contiguous prefix of acked batches.
//
// Replay() folds the recovered stream back into a LiveProfileManager in
// chunks. Chunking is safe because a profile cell's min/max/count are
// order- and batching-independent; the float sum is the only
// order-sensitive field and nothing on the query path reads it (regions
// derive from extremes only).
#ifndef STRR_LIVE_RECOVERY_MANAGER_H_
#define STRR_LIVE_RECOVERY_MANAGER_H_

#include <cstddef>
#include <string>

#include "live/live_profile_manager.h"
#include "live/observation_journal.h"
#include "util/result.h"

namespace strr {

class RecoveryManager {
 public:
  /// Reconstructs the acked batch stream from `dir`. A missing directory
  /// yields an empty RecoveredLog (fresh start), never an error.
  static StatusOr<RecoveredLog> Recover(const std::string& dir);

  /// Publishes the recovered observations into `manager` in seq order.
  /// Returns the number of snapshot publishes performed.
  static size_t Replay(const RecoveredLog& recovered,
                       LiveProfileManager& manager);
};

}  // namespace strr

#endif  // STRR_LIVE_RECOVERY_MANAGER_H_
