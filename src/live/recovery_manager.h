// RecoveryManager: rebuilds the live tier's acked observation stream from
// a journal directory after a restart or crash.
//
// Recover() finds the newest committed profile checkpoint (strictly
// validated; crashes mid-write leave only ignored `.tmp` files), then
// every sealed observation table (strict: any checksum or structural
// failure is typed Corruption — sealed files are never torn), and then
// the WAL(s) through a torn-tail-tolerant LogReader: bytes missing at the
// end of a log are the expected crash artifact and mark a clean recovery
// point, while bytes present but inconsistent are Corruption.
//
// Tables are ordered by (first_seq asc, last_seq desc) rather than file
// number: a compaction crash window can leave a merged table (higher file
// number, wider range) beside surviving inputs, and a checkpoint crash
// window can leave tables the checkpoint already covers. Files whose
// whole range is already covered are reported as redundant (the journal
// deletes them at Open); overlaps deduplicate by sequence number and a
// residual gap is Corruption — so the result is exactly the contiguous
// prefix of acked batches, for every crash point.
//
// Recover() holds only table *metadata* plus the WAL-tail batches;
// Replay() re-reads tables one at a time and publishes in bounded chunks,
// so recovering an arbitrarily large backlog uses O(chunk + largest
// table) memory. Chunking is safe because a profile cell's min/max/count
// are order- and batching-independent; the float sum is the only
// order-sensitive field and nothing on the query path reads it (regions
// derive from extremes only) — the same argument that makes publishing
// checkpoint aggregates bit-identical to replaying the covered stream.
#ifndef STRR_LIVE_RECOVERY_MANAGER_H_
#define STRR_LIVE_RECOVERY_MANAGER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "live/live_profile_manager.h"
#include "live/observation_journal.h"
#include "util/result.h"

namespace strr {

class RecoveryManager {
 public:
  struct ReplayOptions {
    /// Observations buffered per snapshot publish — the bound on both the
    /// replay buffer and the re-coalesce map. Correctness does not depend
    /// on the value (see header); tests force it small.
    size_t chunk_observations = 4096;
  };

  /// Reconstructs the acked batch stream from `dir`. A missing directory
  /// yields an empty RecoveredLog (fresh start), never an error.
  static StatusOr<RecoveredLog> Recover(const std::string& dir);

  /// Publishes the recovered state into `manager` in order: checkpoint
  /// aggregates first, then every batch beyond the checkpoint. Returns
  /// the number of snapshot publishes performed.
  static StatusOr<size_t> Replay(const RecoveredLog& recovered,
                                 LiveProfileManager& manager);
  static StatusOr<size_t> Replay(const RecoveredLog& recovered,
                                 LiveProfileManager& manager,
                                 const ReplayOptions& options);

  /// Streams every batch beyond the checkpoint in sequence order,
  /// re-reading tables one at a time (bounded memory), then the WAL tail.
  /// Stops and propagates the first non-OK status `fn` returns.
  using BatchFn = std::function<Status(const ObservationBatch&)>;
  static Status ForEachReplayBatch(const RecoveredLog& recovered,
                                   const BatchFn& fn);

  /// Materializes every batch beyond the checkpoint. Unbounded memory —
  /// a convenience for tests and tools over small streams; production
  /// paths use Replay/ForEachReplayBatch.
  static StatusOr<std::vector<ObservationBatch>> CollectBatches(
      const RecoveredLog& recovered);
};

}  // namespace strr

#endif  // STRR_LIVE_RECOVERY_MANAGER_H_
