// ObservationIngestor: the write side of the live ingestion subsystem.
//
// Producers (congestion feeds, the FleetSimulator's live source, RPC
// handlers) Offer() speed observations from any thread into a bounded
// MPSC queue; a single batcher thread drains it on a batch window,
// coalesces observations per (segment, profile slot) into the exact cell
// statistics a SpeedProfile stores, and hands the batch to
// LiveProfileManager::Publish — one profile fork + pointer swap per
// window, no matter how many observations arrived.
//
// Backpressure is explicit, never blocking: when the queue is full,
// Offer() drops the observation and says so (a lost speed sample costs a
// little freshness; a blocked producer thread costs a feed). The queue
// bound and batch window are the two knobs trading freshness against
// publish rate.
//
// The batcher thread runs under its own ScopedIoCounters, so storage
// traffic caused by refresh work is attributed to the writer (visible in
// Stats::publish_io), never to whatever query happens to be running —
// the same per-thread attribution discipline the query path uses.
#ifndef STRR_LIVE_OBSERVATION_INGESTOR_H_
#define STRR_LIVE_OBSERVATION_INGESTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "live/live_profile_manager.h"
#include "live/observation.h"
#include "storage/page.h"

namespace strr {

class ObservationJournal;

/// Ingestor construction knobs.
struct ObservationIngestorOptions {
  /// Queue capacity; Offer drops (and counts) beyond it.
  size_t queue_bound = 4096;
  /// How long the batcher waits to coalesce before publishing. Smaller =
  /// fresher snapshots, more publishes (each is a profile fork).
  int64_t batch_window_ms = 20;
  /// Hard cap on observations drained into one publish.
  size_t max_batch = 8192;
  /// When true, no batcher thread is started: observations queue up until
  /// Flush() publishes them. Deterministic mode for tests.
  bool manual = false;
  /// Optional durability: every drained batch is appended to this journal
  /// (the WAL ack point) *before* it is published, in publish order. The
  /// journal must outlive the ingestor. Null = no durability (seed
  /// behavior). Append failures are counted, never block publishing.
  ObservationJournal* journal = nullptr;
};

/// Bounded-queue batcher in front of a LiveProfileManager. Offer is
/// thread-safe (MPSC: many producers, one internal consumer); Flush/Stop
/// are thread-safe but typically owner-called. The manager must outlive
/// the ingestor.
class ObservationIngestor {
 public:
  ObservationIngestor(LiveProfileManager& manager,
                      const ObservationIngestorOptions& options = {});

  /// Stops the batcher; anything still queued is published.
  ~ObservationIngestor();

  ObservationIngestor(const ObservationIngestor&) = delete;
  ObservationIngestor& operator=(const ObservationIngestor&) = delete;

  /// Enqueues one observation. Returns false when it was rejected: invalid
  /// (non-finite or below the profile's min-speed floor, mirroring
  /// SpeedProfile::ApplyObservation) or dropped because the queue is full.
  bool Offer(const SpeedObservation& observation);

  /// Drains and publishes everything queued right now, synchronously on
  /// the calling thread. Returns the number of observations published.
  /// The deterministic path tests and `manual` mode use; safe alongside
  /// the batcher thread too (publishes serialize in the manager).
  size_t Flush();

  /// Stops the batcher thread after a final flush. Idempotent; the
  /// destructor calls it.
  void Stop();

  /// Point-in-time counters.
  struct Stats {
    uint64_t offered = 0;           ///< Offer calls
    uint64_t accepted = 0;          ///< enqueued
    uint64_t rejected_invalid = 0;  ///< non-finite / sub-floor speed
    uint64_t dropped_full = 0;      ///< queue at bound (backpressure)
    uint64_t dropped_stopped = 0;   ///< offered after Stop()
    uint64_t published = 0;         ///< observations folded into snapshots
    uint64_t coalesced_updates = 0;  ///< (segment, slot) cells written
    uint64_t batches = 0;           ///< publishes
    uint64_t wal_batches = 0;       ///< batches acked by the journal
    uint64_t wal_append_failures = 0;  ///< journal appends that failed
    size_t queue_depth = 0;         ///< queued right now
    size_t max_queue_depth = 0;     ///< high-water mark
    /// Mean milliseconds an observation waited between Offer and its
    /// snapshot publish — the ingest-side freshness (staleness) measure.
    double mean_staleness_ms = 0.0;
    /// Storage traffic attributed to the writer (publish/invalidation
    /// work), kept out of every query's per-thread counters.
    StorageStats publish_io;
  };
  Stats stats() const;

 private:
  struct Queued {
    SpeedObservation obs;
    std::chrono::steady_clock::time_point enqueued;
  };

  void BatcherLoop();
  /// Drains up to max_batch entries, coalesces, publishes. Returns the
  /// number of observations published.
  size_t DrainAndPublish();

  LiveProfileManager* manager_;
  ObservationIngestorOptions options_;
  double min_speed_floor_;
  int64_t profile_slot_seconds_;

  mutable std::mutex mu_;
  /// Serializes journal-append + Publish so the WAL's batch order is the
  /// publish order (concurrent Flush callers cannot interleave the two).
  std::mutex publish_order_mu_;
  std::condition_variable cv_;
  std::deque<Queued> queue_;
  bool stopped_ = false;
  size_t max_queue_depth_ = 0;
  StorageStats publish_io_;
  double staleness_sum_ms_ = 0.0;
  uint64_t staleness_count_ = 0;

  std::atomic<uint64_t> offered_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_invalid_{0};
  std::atomic<uint64_t> dropped_full_{0};
  std::atomic<uint64_t> dropped_stopped_{0};
  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> coalesced_updates_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> wal_batches_{0};
  std::atomic<uint64_t> wal_append_failures_{0};

  std::thread batcher_;  // last member: joins before the rest tears down
};

}  // namespace strr

#endif  // STRR_LIVE_OBSERVATION_INGESTOR_H_
