// Live speed-observation types shared by the ingestion subsystem and the
// sources that feed it (FleetSimulator's LiveObservationSource, congestion
// feeds, tests).
//
// Deliberately a leaf header (depends only on segment ids) so producers in
// traj/ can emit observations without pulling in the index stack.
#ifndef STRR_LIVE_OBSERVATION_H_
#define STRR_LIVE_OBSERVATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "roadnet/segment.h"

namespace strr {

/// One fresh speed sample from a live feed: "a vehicle traversed `segment`
/// around `time_of_day_sec` at `speed_mps`". The same triple
/// SpeedProfile::ApplyObservation folds; the ingestor batches these instead.
struct SpeedObservation {
  SegmentId segment = 0;
  int64_t time_of_day_sec = 0;
  double speed_mps = 0.0;
};

/// A batch-coalesced update: every observation for one (segment, profile
/// slot) inside one batch window, pre-aggregated to the statistics a
/// SpeedProfile cell stores. Folding one CoalescedUpdate yields exactly
/// the min/max/count that folding its `count` source observations one by
/// one would; the float sum (hence the mean) can differ from the
/// one-by-one order in the last rounding bit, which nothing on the query
/// path reads (regions derive from extremes only).
struct CoalescedUpdate {
  SegmentId segment = 0;
  int64_t slot_tod = 0;  ///< any time-of-day second inside the profile slot
  float min_speed = 0.0f;
  float max_speed = 0.0f;
  float sum_speed = 0.0f;
  uint32_t count = 0;
};

/// Coalesces observations per (segment, profile slot of `slot_seconds`)
/// into cell-sized aggregates, sums accumulated in input order, sorted by
/// (segment, slot_tod) for a deterministic publish order. This is the one
/// grouping used by both the live ingest path and WAL replay, so recovery
/// folds the same aggregates the ingestor originally published.
std::vector<CoalescedUpdate> CoalesceObservations(
    std::span<const SpeedObservation> observations, int64_t slot_seconds);

}  // namespace strr

#endif  // STRR_LIVE_OBSERVATION_H_
