// LiveProfileManager: versioned, immutable index snapshots published by
// atomic pointer swap — the read side of the live ingestion subsystem.
//
// A snapshot bundles one SpeedProfile with the ConIndex derived from it.
// Queries Acquire() a snapshot (an epoch pin + pointer load, no locks on
// the read path) and execute entirely against it, so a refresh landing
// mid-query can never tear a profile read or dangle a Con-Index table
// reference: the query finishes on the version it started on, and the
// superseded version is reclaimed only after every pinned reader drains
// (EpochManager grace period). This replaces the old "quiesce all queries
// before ApplySpeedObservation" contract.
//
// Publication is cheap and precise:
//  * the profile is forked (one flat cell-array copy) and the coalesced
//    batch folded in;
//  * only profile slots whose *extreme* statistics changed invalidate
//    anything — min/max are all the Con-Index expansion and bounding
//    regions read, so a batch that only shifts means/counts publishes a
//    fresh profile with zero table or cache invalidation;
//  * the new ConIndex shares every unaffected slot bucket with its
//    predecessor (shared_ptr alias, see ConIndex::CloneWithInvalidation),
//    so no table data is copied and tables lazily built by any generation
//    serve all generations;
//  * registered invalidation listeners (the ResultCache Δt-slot hook) fire
//    for exactly the changed slot ranges.
#ifndef STRR_LIVE_LIVE_PROFILE_MANAGER_H_
#define STRR_LIVE_LIVE_PROFILE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "index/con_index.h"
#include "index/speed_profile.h"
#include "live/epoch_manager.h"
#include "live/observation.h"
#include "util/thread_pool.h"

namespace strr {

/// Manager construction knobs.
struct LiveProfileOptions {
  /// Ingest-driven Con-Index prewarm: after a publish that partially
  /// invalidates a slot, background tasks rebuild exactly the tables the
  /// invalidation knocked out (the lazy-rebuild work list from
  /// ConIndex::CloneWithInvalidation) on the new snapshot, so queries stop
  /// paying the lazy-build latency spike (the p99 gap at high observation
  /// rates). Tasks pin the target version and skip (cheaply) when a newer
  /// snapshot superseded it before they ran. Off by default.
  bool prewarm = false;
  /// Background prewarm worker threads.
  int prewarm_threads = 1;
};

/// One immutable published version of the index stack's mutable half.
/// Version 0 aliases the engine-built base profile/index (not owned);
/// published versions own their forked copies.
struct IndexSnapshot {
  uint64_t version = 0;
  const SpeedProfile* profile = nullptr;
  const ConIndex* con_index = nullptr;
  std::unique_ptr<const SpeedProfile> owned_profile;
  std::unique_ptr<const ConIndex> owned_con_index;
};

/// RAII read handle: an epoch pin plus the snapshot pointer it protects.
/// Hold for the duration of one query; the indexes it exposes are
/// guaranteed alive and immutable until release. Movable; cheap.
class SnapshotRef {
 public:
  SnapshotRef() = default;
  SnapshotRef(EpochManager::Pin pin, const IndexSnapshot* snapshot)
      : pin_(std::move(pin)), snapshot_(snapshot) {}

  bool valid() const { return snapshot_ != nullptr; }
  uint64_t version() const { return snapshot_->version; }
  const SpeedProfile& profile() const { return *snapshot_->profile; }
  const ConIndex& con_index() const { return *snapshot_->con_index; }

 private:
  EpochManager::Pin pin_;
  const IndexSnapshot* snapshot_ = nullptr;
};

/// Publishes and reclaims snapshots. Readers (Acquire, version) are
/// wait-free against writers; writers (Publish) serialize among
/// themselves. The base profile/index, the network behind them, and the
/// EpochManager must outlive the manager.
class LiveProfileManager {
 public:
  /// Wraps the engine-built `base_profile` + `base_con_index` as version 0.
  LiveProfileManager(EpochManager& epochs, const SpeedProfile& base_profile,
                     const ConIndex& base_con_index,
                     const LiveProfileOptions& options = {});

  /// Reclaims every superseded snapshot and the current one. No reader may
  /// hold a SnapshotRef at destruction (same lifetime contract as the
  /// executor over its indexes).
  ~LiveProfileManager();

  LiveProfileManager(const LiveProfileManager&) = delete;
  LiveProfileManager& operator=(const LiveProfileManager&) = delete;

  /// Pins and returns the current snapshot. Lock-free; call once per query
  /// and hold the ref until the result is fully materialized.
  SnapshotRef Acquire() const;

  /// Version of the snapshot Acquire would return right now.
  uint64_t version() const { return version_.load(); }

  /// Called after a publish whose batch changed extreme statistics, once
  /// per affected profile-slot time range [begin_tod, end_tod) — the
  /// ResultCache's Δt-slot eviction hook (every QueryExecutor built over
  /// this manager with a cache registers itself). Fired on the publisher
  /// thread. Registration/removal is thread-safe at any time; a listener
  /// must be removed before whatever it captures dies.
  using InvalidationListener =
      std::function<void(int64_t begin_tod, int64_t end_tod)>;
  uint64_t AddInvalidationListener(InvalidationListener listener);
  void RemoveInvalidationListener(uint64_t id);

  /// Folds `batch` into a fork of the current profile, derives the new
  /// ConIndex (sharing unaffected slots), publishes the result as the next
  /// version, retires the old version to the epoch manager, and fires
  /// invalidation listeners for slots whose extremes changed. Returns the
  /// new version. Thread-safe against readers and other publishers.
  uint64_t Publish(std::span<const CoalescedUpdate> batch);

  /// Point-in-time counters.
  struct Stats {
    uint64_t published = 0;          ///< Publish calls
    uint64_t updates_applied = 0;    ///< coalesced updates folded
    uint64_t slots_invalidated = 0;  ///< slots fully dropped (fallback hit)
    /// Slots given a partial-invalidation overlay instead of a full drop
    /// (cell-only extreme changes — the common case once extremes
    /// saturate; unaffected tables keep serving).
    uint64_t slots_partially_invalidated = 0;
    uint64_t publishes_quiet = 0;    ///< publishes invalidating nothing
    // --- Prewarm (all zero when LiveProfileOptions::prewarm is off) ----------
    uint64_t prewarm_tasks = 0;          ///< background tasks scheduled
    uint64_t prewarm_tables_built = 0;   ///< tables rebuilt ahead of queries
    uint64_t prewarm_stale_skips = 0;    ///< tasks outrun by a newer version
  };
  Stats stats() const;

  /// Blocks until every prewarm task scheduled so far has finished (no-op
  /// when prewarm is off). Deterministic-test hook.
  void WaitForPrewarm();

  EpochManager& epoch_manager() { return *epochs_; }

 private:
  EpochManager* epochs_;
  LiveProfileOptions options_;
  /// Prewarm workers (null when off). Declared before the snapshot state
  /// it reads and reset first in the destructor, so no task can outlive a
  /// snapshot: each task holds an epoch pin only while running, and the
  /// destructor joins the pool before reclaiming.
  std::unique_ptr<ThreadPool> prewarm_pool_;
  std::atomic<const IndexSnapshot*> current_;
  std::atomic<uint64_t> version_{0};
  IndexSnapshot base_;  // version 0 (aliases the engine-built indexes)

  std::mutex publish_mu_;  // serializes publishers
  // Listener registry: mutated by executor construction/destruction while
  // the publisher fires entries, so guarded by its own mutex (held while
  // firing — eviction work is brief and publishers are already serial).
  mutable std::mutex listener_mu_;
  uint64_t next_listener_id_ = 1;
  std::vector<std::pair<uint64_t, InvalidationListener>> listeners_;

  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> slots_invalidated_{0};
  std::atomic<uint64_t> slots_partially_invalidated_{0};
  std::atomic<uint64_t> publishes_quiet_{0};
  std::atomic<uint64_t> prewarm_tasks_{0};
  std::atomic<uint64_t> prewarm_tables_built_{0};
  std::atomic<uint64_t> prewarm_stale_skips_{0};
};

}  // namespace strr

#endif  // STRR_LIVE_LIVE_PROFILE_MANAGER_H_
