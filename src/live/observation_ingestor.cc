#include "live/observation_ingestor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "live/observation_journal.h"
#include "obs/metrics.h"
#include "storage/io_context.h"
#include "util/logging.h"
#include "util/time_util.h"

namespace strr {

namespace {

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "strr_live_ingest_queue_depth");
  return g;
}
obs::Counter& DroppedFullCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_live_ingest_dropped_total");
  return c;
}
obs::Counter& PublishedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_live_observations_published_total");
  return c;
}
/// Mean enqueue-to-publish staleness of the most recent batch, in ms.
obs::Gauge& StalenessGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("strr_live_staleness_ms");
  return g;
}
/// WAL-append + snapshot-publish latency per batch, in µs.
obs::Histogram& PublishHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "strr_live_publish_us");
  return h;
}

}  // namespace

ObservationIngestor::ObservationIngestor(
    LiveProfileManager& manager, const ObservationIngestorOptions& options)
    : manager_(&manager), options_(options) {
  // Validation mirrors the profile the snapshots fork from; the base
  // profile's layout is immutable, so caching these is safe.
  SnapshotRef snap = manager_->Acquire();
  min_speed_floor_ = snap.profile().min_speed_floor();
  profile_slot_seconds_ = snap.profile().slot_seconds();
  if (options_.queue_bound == 0) options_.queue_bound = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (!options_.manual) {
    batcher_ = std::thread([this] { BatcherLoop(); });
  }
}

ObservationIngestor::~ObservationIngestor() { Stop(); }

bool ObservationIngestor::Offer(const SpeedObservation& observation) {
  offered_.fetch_add(1);
  if (!std::isfinite(observation.speed_mps) ||
      observation.speed_mps < min_speed_floor_) {
    rejected_invalid_.fetch_add(1);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      // Shutdown, not backpressure: keep it out of dropped_full so queue
      // tuning isn't misled by teardown-window offers.
      dropped_stopped_.fetch_add(1);
      return false;
    }
    if (queue_.size() >= options_.queue_bound) {
      dropped_full_.fetch_add(1);
      DroppedFullCounter().Add();
      return false;
    }
    queue_.push_back(Queued{observation, std::chrono::steady_clock::now()});
    max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
    QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
  }
  accepted_.fetch_add(1);
  cv_.notify_one();
  return true;
}

size_t ObservationIngestor::DrainAndPublish() {
  std::vector<Queued> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = std::min(queue_.size(), options_.max_batch);
    drained.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      drained.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
  }
  if (drained.empty()) return 0;

  std::vector<SpeedObservation> observations;
  observations.reserve(drained.size());
  for (const Queued& q : drained) observations.push_back(q.obs);

  // Coalesce per (segment, profile slot): the shared helper WAL replay
  // also uses, so recovery folds the same aggregates this publish does.
  std::vector<CoalescedUpdate> batch =
      CoalesceObservations(observations, profile_slot_seconds_);

  // Writer-side attribution: refresh work (profile fork, table
  // invalidation, cache eviction listeners) counts against this scope,
  // never against a concurrently running query's thread-local counters.
  ScopedIoCounters writer_scope;
  auto publish_start = std::chrono::steady_clock::now();
  {
    // WAL-append then Publish under one lock: the journal's batch order
    // must be the publish order for replay to reproduce this stream.
    std::lock_guard<std::mutex> order(publish_order_mu_);
    if (options_.journal != nullptr) {
      StatusOr<uint64_t> acked = options_.journal->AppendBatch(observations);
      if (acked.ok()) {
        wal_batches_.fetch_add(1);
      } else {
        // Durability degraded, availability kept: count it and publish
        // anyway so live queries stay fresh.
        wal_append_failures_.fetch_add(1);
        STRR_LOG(Error) << "live ingest: WAL append failed ("
                        << acked.status().message()
                        << "); publishing batch of " << observations.size()
                        << " without durability";
      }
    }
    manager_->Publish(batch);
  }
  auto done = std::chrono::steady_clock::now();
  if (obs::MetricsRegistry::Global().enabled()) {
    PublishHistogram().Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            done - publish_start)
            .count()));
  }

  double staleness_ms = 0.0;
  for (const Queued& q : drained) {
    staleness_ms += std::chrono::duration<double, std::milli>(
                        done - q.enqueued)
                        .count();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    publish_io_ += writer_scope.stats();
    staleness_sum_ms_ += staleness_ms;
    staleness_count_ += drained.size();
  }
  published_.fetch_add(drained.size());
  coalesced_updates_.fetch_add(batch.size());
  batches_.fetch_add(1);
  PublishedCounter().Add(drained.size());
  StalenessGauge().Set(static_cast<int64_t>(
      staleness_ms / static_cast<double>(drained.size())));
  return drained.size();
}

size_t ObservationIngestor::Flush() {
  size_t total = 0;
  for (;;) {
    size_t n = DrainAndPublish();
    total += n;
    if (n == 0) break;
  }
  return total;
}

void ObservationIngestor::BatcherLoop() {
  const auto window = std::chrono::milliseconds(options_.batch_window_ms);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
    if (stopped_) return;  // final flush happens in Stop()
    // Let the window fill so one publish absorbs a burst. wait_for (not
    // sleep) so Stop() can interrupt a long window promptly.
    cv_.wait_for(lock, window, [this] {
      return stopped_ || queue_.size() >= options_.max_batch;
    });
    if (stopped_) return;
    lock.unlock();
    DrainAndPublish();
    lock.lock();
  }
}

void ObservationIngestor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  // Publish the tail so no accepted observation is lost on shutdown.
  // stopped_ only gates Offer and the batcher; Flush still drains.
  Flush();
}

ObservationIngestor::Stats ObservationIngestor::stats() const {
  Stats out;
  out.offered = offered_.load();
  out.accepted = accepted_.load();
  out.rejected_invalid = rejected_invalid_.load();
  out.dropped_full = dropped_full_.load();
  out.dropped_stopped = dropped_stopped_.load();
  out.published = published_.load();
  out.coalesced_updates = coalesced_updates_.load();
  out.batches = batches_.load();
  out.wal_batches = wal_batches_.load();
  out.wal_append_failures = wal_append_failures_.load();
  std::lock_guard<std::mutex> lock(mu_);
  out.queue_depth = queue_.size();
  out.max_queue_depth = max_queue_depth_;
  out.mean_staleness_ms =
      staleness_count_ > 0 ? staleness_sum_ms_ / staleness_count_ : 0.0;
  out.publish_io = publish_io_;
  return out;
}

}  // namespace strr
