// EpochManager: epoch-based (RCU-style) grace-period reclamation.
//
// The live ingestion subsystem publishes immutable index snapshots by
// atomic pointer swap; queries that loaded the previous snapshot may still
// be reading it. The EpochManager answers the only hard question in that
// scheme: when is it safe to delete a superseded snapshot?
//
//  * Readers call Acquire() before loading the shared pointer and hold the
//    returned Pin for the duration of the read (one query). Pinning
//    publishes the reader's observed epoch in a slot the writer scans.
//  * Writers swap in the new version first, then Retire() the old one.
//    Retiring stamps the object with the current global epoch and advances
//    the epoch; the object is destroyed only once every pinned reader's
//    epoch is newer than the stamp — i.e. no reader can still hold a
//    pointer obtained before the swap.
//
// Correctness argument (all operations seq_cst): a reader pins epoch e
// *before* loading the snapshot pointer; a writer stores the new pointer
// *before* fetching-and-incrementing the epoch to stamp the retired one
// with e_r. If the reader loaded the old pointer, its pointer load
// preceded the writer's store in the total order, hence its pin preceded
// the writer's increment, hence e <= e_r and the writer's slot scan (after
// the increment) observes the pin — the old snapshot stays alive. If the
// scan misses the pin, the pin happened after the scan, so the reader's
// pointer load happened after the writer's store and it holds the *new*
// snapshot; reclaiming the old one is safe.
//
// Reclamation is deferred, never blocking readers: retired objects wait on
// a limbo list that the writer drains opportunistically. When the list
// exceeds max_retained, Retire() waits for the grace period (readers are
// query-scoped, so this terminates quickly) — bounding memory under
// publish storms.
#ifndef STRR_LIVE_EPOCH_MANAGER_H_
#define STRR_LIVE_EPOCH_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace strr {

/// EpochManager construction knobs.
struct EpochManagerOptions {
  /// Reader pin slots (concurrent pins). 0 = 4x hardware threads, min 64.
  /// Acquire spins (yielding) when every slot is taken, so size this above
  /// the peak number of in-flight pinned queries.
  size_t reader_slots = 0;
  /// Retired-but-unreclaimed versions tolerated before Retire() waits for
  /// the grace period. Bounds memory held by superseded snapshots.
  size_t max_retained = 8;
};

/// Grace-period reclamation for read-mostly shared objects. Thread-safe:
/// any number of concurrent readers; writers (Retire/TryReclaim) may also
/// be concurrent with readers and each other.
class EpochManager {
 public:
  explicit EpochManager(const EpochManagerOptions& options = {});

  /// Destroys everything still in limbo. No reader may hold a Pin and no
  /// writer may be inside Retire() when the manager is destroyed.
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII reader pin. Movable; the empty (moved-from / default) state is
  /// unpinned. Release on destruction may happen on any thread, as long as
  /// it happens after the last access to the protected object.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept : slot_(other.slot_) { other.slot_ = nullptr; }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        slot_ = other.slot_;
        other.slot_ = nullptr;
      }
      return *this;
    }
    ~Pin() { Release(); }

    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    bool pinned() const { return slot_ != nullptr; }
    /// The epoch this pin protects (meaningless when unpinned).
    uint64_t epoch() const { return slot_ ? slot_->load() : 0; }

    void Release() {
      if (slot_ != nullptr) {
        slot_->store(kIdle);
        slot_ = nullptr;
      }
    }

   private:
    friend class EpochManager;
    explicit Pin(std::atomic<uint64_t>* slot) : slot_(slot) {}
    std::atomic<uint64_t>* slot_ = nullptr;
  };

  /// Pins the current epoch. Call before loading the protected pointer.
  /// Lock-free in the common case; yields while every slot is occupied.
  Pin Acquire();

  /// Hands `deleter` (which destroys one superseded object) to the limbo
  /// list, stamped with the current epoch, and advances the epoch. Runs
  /// ripe deleters inline; waits for the grace period when more than
  /// max_retained versions are in limbo. Call *after* unpublishing the
  /// object (readers acquiring now must not be able to reach it).
  void Retire(std::function<void()> deleter);

  /// Runs every deleter whose grace period has elapsed. Returns how many
  /// ran. Writers call this opportunistically; tests call it directly.
  size_t TryReclaim();

  /// Blocks until every pin taken before the call is released, then
  /// reclaims everything reclaimable. Used on shutdown paths.
  void SynchronizeAndReclaim();

  uint64_t current_epoch() const { return epoch_.load(); }

  /// Point-in-time counters.
  struct Stats {
    uint64_t pins = 0;       ///< Acquire calls
    uint64_t retired = 0;    ///< objects handed to Retire
    uint64_t reclaimed = 0;  ///< deleters run
    size_t in_limbo = 0;     ///< retired, not yet reclaimed
    uint64_t grace_waits = 0;  ///< Retire calls that had to wait for readers
  };
  Stats stats() const;

 private:
  static constexpr uint64_t kIdle = ~uint64_t{0};

  struct Retired {
    uint64_t epoch;  ///< reclaimable once every pin is newer than this
    std::function<void()> deleter;
  };

  /// Smallest epoch any reader currently pins (kIdle when none).
  uint64_t MinPinnedEpoch() const;

  /// Pops ripe limbo entries under mu_; returns their deleters so they run
  /// outside the lock.
  std::vector<std::function<void()>> DrainRipeLocked(uint64_t min_pinned);

  std::atomic<uint64_t> epoch_{1};
  std::vector<std::atomic<uint64_t>> slots_;

  mutable std::mutex mu_;
  std::deque<Retired> limbo_;  // near-epoch-ordered; drained by full scan
  size_t max_retained_;

  std::atomic<uint64_t> pins_{0};
  std::atomic<uint64_t> retired_{0};
  std::atomic<uint64_t> reclaimed_{0};
  std::atomic<uint64_t> grace_waits_{0};
};

}  // namespace strr

#endif  // STRR_LIVE_EPOCH_MANAGER_H_
