#include "roadnet/road_network.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "roadnet/csr_graph.h"

namespace strr {

NodeId AddNodeImpl(std::vector<XyPoint>& nodes, const XyPoint& pos) {
  nodes.push_back(pos);
  return static_cast<NodeId>(nodes.size() - 1);
}

NodeId RoadNetwork::AddNode(const XyPoint& pos) {
  finalized_ = false;
  return AddNodeImpl(nodes_, pos);
}

StatusOr<SegmentId> RoadNetwork::AddSegment(NodeId from, NodeId to,
                                            RoadLevel level, Polyline shape) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("AddSegment: unknown node id");
  }
  if (shape.NumPoints() < 2) {
    return Status::InvalidArgument("AddSegment: shape needs >= 2 points");
  }
  finalized_ = false;
  RoadSegment seg;
  seg.id = static_cast<SegmentId>(segments_.size());
  seg.from_node = from;
  seg.to_node = to;
  seg.level = level;
  seg.length = shape.Length();
  seg.shape = std::move(shape);
  segments_.push_back(std::move(seg));
  return segments_.back().id;
}

StatusOr<SegmentId> RoadNetwork::AddTwoWaySegment(NodeId from, NodeId to,
                                                  RoadLevel level,
                                                  Polyline shape) {
  std::vector<XyPoint> reversed(shape.points().rbegin(),
                                shape.points().rend());
  STRR_ASSIGN_OR_RETURN(SegmentId fwd,
                        AddSegment(from, to, level, std::move(shape)));
  STRR_ASSIGN_OR_RETURN(
      SegmentId bwd,
      AddSegment(to, from, level, Polyline(std::move(reversed))));
  segments_[fwd].two_way = true;
  segments_[fwd].reverse_id = bwd;
  segments_[bwd].two_way = true;
  segments_[bwd].reverse_id = fwd;
  return fwd;
}

Status RoadNetwork::LinkTwins(SegmentId forward, SegmentId backward) {
  if (forward >= segments_.size() || backward >= segments_.size()) {
    return Status::InvalidArgument("LinkTwins: unknown segment id");
  }
  RoadSegment& f = segments_[forward];
  RoadSegment& b = segments_[backward];
  if (f.from_node != b.to_node || f.to_node != b.from_node) {
    return Status::InvalidArgument(
        "LinkTwins: segments are not opposite directions of one street");
  }
  f.two_way = true;
  f.reverse_id = backward;
  b.two_way = true;
  b.reverse_id = forward;
  finalized_ = false;
  return Status::OK();
}

Status RoadNetwork::Finalize() {
  const size_t n_seg = segments_.size();
  const size_t n_node = nodes_.size();
  node_out_.assign(n_node, {});
  std::vector<std::vector<SegmentId>> node_in(n_node);
  for (const RoadSegment& s : segments_) {
    node_out_[s.from_node].push_back(s.id);
    node_in[s.to_node].push_back(s.id);
  }

  outgoing_.assign(n_seg, {});
  incoming_.assign(n_seg, {});
  neighbors_.assign(n_seg, {});
  for (const RoadSegment& s : segments_) {
    for (SegmentId next : node_out_[s.to_node]) {
      if (next == s.reverse_id) continue;  // forbid immediate U-turns
      outgoing_[s.id].push_back(next);
    }
    for (SegmentId prev : node_in[s.from_node]) {
      if (prev == s.reverse_id) continue;
      incoming_[s.id].push_back(prev);
    }
    // Undirected neighbourhood for trace-back: anything sharing an endpoint.
    std::unordered_set<SegmentId> nb;
    for (NodeId node : {s.from_node, s.to_node}) {
      for (SegmentId other : node_out_[node]) {
        if (other != s.id) nb.insert(other);
      }
      for (SegmentId other : node_in[node]) {
        if (other != s.id) nb.insert(other);
      }
    }
    if (s.reverse_id != kInvalidSegment) nb.insert(s.reverse_id);
    neighbors_[s.id].assign(nb.begin(), nb.end());
    std::sort(neighbors_[s.id].begin(), neighbors_[s.id].end());
  }
  finalized_ = true;
  csr_ = std::make_shared<const CsrAdjacency>(*this);
  return Status::OK();
}

double RoadNetwork::TotalLengthMeters() const {
  double total = 0.0;
  for (const RoadSegment& s : segments_) {
    // Count a two-way street once: only the twin with the lower id reports.
    if (s.two_way && s.reverse_id < s.id) continue;
    total += s.length;
  }
  return total;
}

double RoadNetwork::LengthOfSegments(const std::vector<SegmentId>& segs) const {
  double total = 0.0;
  for (SegmentId id : segs) {
    if (id < segments_.size()) total += segments_[id].length;
  }
  return total;
}

Mbr RoadNetwork::BoundingBox() const {
  Mbr box;
  for (const RoadSegment& s : segments_) box.Extend(s.bounding_box());
  return box;
}

StatusOr<SegmentId> RoadNetwork::NearestSegmentBruteForce(
    const XyPoint& p) const {
  if (segments_.empty()) return Status::NotFound("empty road network");
  SegmentId best = kInvalidSegment;
  double best_dist = std::numeric_limits<double>::max();
  for (const RoadSegment& s : segments_) {
    double d = s.shape.Project(p).distance;
    if (d < best_dist) {
      best_dist = d;
      best = s.id;
    }
  }
  return best;
}

std::vector<size_t> RoadNetwork::CountByLevel() const {
  std::vector<size_t> counts(3, 0);
  for (const RoadSegment& s : segments_) {
    counts[static_cast<size_t>(s.level)]++;
  }
  return counts;
}

}  // namespace strr
