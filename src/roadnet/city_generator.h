// CityGenerator: deterministic synthetic metropolis.
//
// Substitute for the Shenzhen road map (see DESIGN.md §2). Produces a road
// network with the topological features the paper's evaluation depends on:
//   * a dense grid of arterial and local streets,
//   * a ring highway plus radial highways into the centre,
//   * three speed classes, a mix of one-way and two-way streets,
//   * irregular jitter so geometry is not degenerate.
// The output is georeferenced near the paper's study area (Shenzhen,
// 22.53N 114.05E) so GeoJSON dumps look plausible on a real map.
#ifndef STRR_ROADNET_CITY_GENERATOR_H_
#define STRR_ROADNET_CITY_GENERATOR_H_

#include <cstdint>

#include "geo/point.h"
#include "roadnet/road_network.h"
#include "util/result.h"

namespace strr {

/// Parameters of the synthetic city.
struct CityOptions {
  int grid_cols = 24;            ///< arterial grid columns
  int grid_rows = 16;            ///< arterial grid rows
  double block_meters = 900.0;   ///< arterial block edge length
  double jitter_meters = 60.0;   ///< node position noise
  double one_way_fraction = 0.15;  ///< local/arterial streets made one-way
  int radial_highways = 4;       ///< highways from ring to centre
  bool ring_highway = true;      ///< perimeter expressway
  uint64_t seed = 7;             ///< determinism knob
  /// Every `local_every`-th grid line is local class instead of arterial.
  int local_every = 2;
  GeoPoint geo_origin{22.53, 114.05};  ///< anchor for the projection
};

/// Generated city: network plus the projection used to georeference it.
struct City {
  RoadNetwork network;
  Projection projection;
  XyPoint center;  ///< projected city centre
};

/// Builds and finalizes the synthetic city network.
StatusOr<City> GenerateCity(const CityOptions& options);

}  // namespace strr

#endif  // STRR_ROADNET_CITY_GENERATOR_H_
