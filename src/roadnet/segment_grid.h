// SegmentGrid: uniform spatial hash over segment geometry.
//
// Supports fixed-radius candidate queries ("segments within d meters of a
// GPS point"), the map-matcher's inner need. The R-tree in src/index is the
// paper's ST-Index spatial component; this grid exists so the trajectory
// layer does not depend on the index layer.
#ifndef STRR_ROADNET_SEGMENT_GRID_H_
#define STRR_ROADNET_SEGMENT_GRID_H_

#include <span>
#include <vector>

#include "roadnet/road_network.h"

namespace strr {

/// Buckets segment ids by the grid cells their MBRs overlap.
class SegmentGrid {
 public:
  /// Builds the grid with the given cell size (meters). A cell size near
  /// the typical query radius keeps candidate lists short.
  SegmentGrid(const RoadNetwork& network, double cell_meters = 250.0);

  /// Returns segments whose shape lies within `radius` meters of `p`,
  /// sorted by distance (nearest first).
  std::vector<SegmentId> WithinRadius(const XyPoint& p, double radius) const;

  /// Nearest segment to `p`, searching outward ring by ring.
  /// Returns kInvalidSegment for an empty network.
  SegmentId Nearest(const XyPoint& p) const;

  double cell_meters() const { return cell_; }

 private:
  using CellKey = int64_t;
  CellKey KeyFor(int cx, int cy) const {
    return (static_cast<int64_t>(cx) << 32) ^ (cy & 0xffffffffLL);
  }
  int CellX(double x) const { return static_cast<int>(std::floor(x / cell_)); }
  int CellY(double y) const { return static_cast<int>(std::floor(y / cell_)); }

  /// The segments bucketed into cell (cx, cy); empty when the cell holds
  /// none.
  std::span<const SegmentId> CellSegments(CellKey key) const;

  const RoadNetwork& network_;
  double cell_;
  /// Frozen CSR cell directory (the grid is build-once): occupied cell
  /// keys sorted ascending, with cell_offsets_[i] .. cell_offsets_[i+1]
  /// delimiting cell i's segment ids in cell_segments_. A lookup is one
  /// binary search over a contiguous key array — no bucket chains, no
  /// per-cell vector headers.
  std::vector<CellKey> cell_keys_;
  std::vector<uint32_t> cell_offsets_;
  std::vector<SegmentId> cell_segments_;
};

}  // namespace strr

#endif  // STRR_ROADNET_SEGMENT_GRID_H_
