#include "roadnet/city_generator.h"

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace strr {

namespace {

/// Straight two-point shape between node positions.
Polyline Straight(const XyPoint& a, const XyPoint& b) {
  return Polyline(std::vector<XyPoint>{a, b});
}

}  // namespace

StatusOr<City> GenerateCity(const CityOptions& opt) {
  if (opt.grid_cols < 2 || opt.grid_rows < 2) {
    return Status::InvalidArgument("GenerateCity: grid must be >= 2x2");
  }
  if (opt.block_meters <= 0.0) {
    return Status::InvalidArgument("GenerateCity: block size must be > 0");
  }

  Rng rng(opt.seed);
  City city;
  city.projection = Projection(opt.geo_origin);
  RoadNetwork& net = city.network;

  const int cols = opt.grid_cols;
  const int rows = opt.grid_rows;
  const double width = (cols - 1) * opt.block_meters;
  const double height = (rows - 1) * opt.block_meters;
  city.center = {width / 2.0, height / 2.0};

  // --- Grid nodes with jitter (border nodes kept straight so the ring
  // highway hugs the perimeter cleanly).
  std::vector<std::vector<NodeId>> grid(rows, std::vector<NodeId>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      bool border = r == 0 || c == 0 || r == rows - 1 || c == cols - 1;
      double jx = border ? 0.0 : rng.Gaussian(0.0, opt.jitter_meters);
      double jy = border ? 0.0 : rng.Gaussian(0.0, opt.jitter_meters);
      grid[r][c] =
          net.AddNode({c * opt.block_meters + jx, r * opt.block_meters + jy});
    }
  }

  auto line_level = [&](int index) {
    return (opt.local_every > 1 && index % opt.local_every != 0)
               ? RoadLevel::kLocal
               : RoadLevel::kArterial;
  };

  // --- Grid streets. Horizontal lines take the row's class, vertical the
  // column's, so arterials form a coarser super-grid over local streets.
  auto add_street = [&](NodeId a, NodeId b, RoadLevel level) -> Status {
    Polyline shape = Straight(net.node(a), net.node(b));
    if (rng.Chance(opt.one_way_fraction)) {
      // One-way direction chosen by coin flip.
      if (rng.Chance(0.5)) std::swap(a, b);
      Polyline s = rng.Chance(1.0) ? Straight(net.node(a), net.node(b)) : shape;
      STRR_ASSIGN_OR_RETURN(SegmentId id, net.AddSegment(a, b, level, s));
      (void)id;
    } else {
      STRR_ASSIGN_OR_RETURN(SegmentId id,
                            net.AddTwoWaySegment(a, b, level, shape));
      (void)id;
    }
    return Status::OK();
  };

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c + 1 < cols; ++c) {
      STRR_RETURN_IF_ERROR(
          add_street(grid[r][c], grid[r][c + 1], line_level(r)));
    }
  }
  for (int c = 0; c < cols; ++c) {
    for (int r = 0; r + 1 < rows; ++r) {
      STRR_RETURN_IF_ERROR(
          add_street(grid[r][c], grid[r + 1][c], line_level(c)));
    }
  }

  // --- Ring highway along the perimeter, offset slightly outward, with
  // on/off connections at the grid corners and edge midpoints.
  if (opt.ring_highway) {
    const double off = opt.block_meters * 0.35;
    std::vector<XyPoint> ring_pts;
    // Collect perimeter grid nodes clockwise: top row, right col, bottom
    // row reversed, left col reversed.
    std::vector<NodeId> perimeter;
    for (int c = 0; c < cols; ++c) perimeter.push_back(grid[0][c]);
    for (int r = 1; r < rows; ++r) perimeter.push_back(grid[r][cols - 1]);
    for (int c = cols - 2; c >= 0; --c) perimeter.push_back(grid[rows - 1][c]);
    for (int r = rows - 2; r >= 1; --r) perimeter.push_back(grid[r][0]);

    // Ring nodes sit outward of every second perimeter node.
    std::vector<NodeId> ring_nodes;
    std::vector<NodeId> anchor_nodes;
    for (size_t i = 0; i < perimeter.size(); i += 2) {
      const XyPoint p = net.node(perimeter[i]);
      XyPoint dir{0.0, 0.0};
      if (p.y <= 0.0) dir.y = -1.0;
      if (p.y >= height) dir.y = 1.0;
      if (p.x <= 0.0) dir.x = -1.0;
      if (p.x >= width) dir.x = 1.0;
      NodeId rn = net.AddNode({p.x + dir.x * off, p.y + dir.y * off});
      ring_nodes.push_back(rn);
      anchor_nodes.push_back(perimeter[i]);
    }
    for (size_t i = 0; i < ring_nodes.size(); ++i) {
      NodeId a = ring_nodes[i];
      NodeId b = ring_nodes[(i + 1) % ring_nodes.size()];
      STRR_ASSIGN_OR_RETURN(
          SegmentId id,
          net.AddTwoWaySegment(a, b, RoadLevel::kHighway,
                               Straight(net.node(a), net.node(b))));
      (void)id;
      // Ramp connecting the ring to the grid.
      STRR_ASSIGN_OR_RETURN(
          SegmentId ramp,
          net.AddTwoWaySegment(ring_nodes[i], anchor_nodes[i],
                               RoadLevel::kArterial,
                               Straight(net.node(ring_nodes[i]),
                                        net.node(anchor_nodes[i]))));
      (void)ramp;
    }
  }

  // --- Radial highways from border midpoints to the centre node, riding
  // over dedicated elevated nodes with ramps every few blocks.
  if (opt.radial_highways > 0) {
    int cr = rows / 2;
    int cc = cols / 2;
    NodeId center_node = grid[cr][cc];
    struct Radial {
      int r, c, dr, dc;
    };
    std::vector<Radial> starts = {{0, cc, 1, 0},
                                  {rows - 1, cc, -1, 0},
                                  {cr, 0, 0, 1},
                                  {cr, cols - 1, 0, -1}};
    int n_radials = std::min<int>(opt.radial_highways, starts.size());
    for (int k = 0; k < n_radials; ++k) {
      Radial rad = starts[k];
      NodeId prev_elev = kInvalidNode;
      int r = rad.r, c = rad.c;
      int step = 0;
      while (true) {
        NodeId grid_node = grid[r][c];
        bool is_center = (grid_node == center_node);
        // Elevated node runs alongside the grid node, offset like a real
        // viaduct (also keeps its geometry distinguishable from the
        // surface street for point-to-segment matching).
        XyPoint elev_pos = net.node(grid_node);
        elev_pos.x += 28.0;
        elev_pos.y += 22.0;
        NodeId elev = net.AddNode(elev_pos);
        if (prev_elev != kInvalidNode) {
          STRR_ASSIGN_OR_RETURN(
              SegmentId id,
              net.AddTwoWaySegment(prev_elev, elev, RoadLevel::kHighway,
                                   Straight(net.node(prev_elev),
                                            net.node(elev))));
          (void)id;
        }
        // Ramp to the surface grid every 3rd stop, plus endpoints.
        if (step % 3 == 0 || is_center) {
          std::vector<XyPoint> ramp_shape{net.node(elev), net.node(grid_node)};
          // Tiny offset so the ramp has positive length.
          ramp_shape[0].x += 15.0;
          ramp_shape[0].y += 15.0;
          STRR_ASSIGN_OR_RETURN(
              SegmentId ramp,
              net.AddTwoWaySegment(elev, grid_node, RoadLevel::kLocal,
                                   Polyline(ramp_shape)));
          (void)ramp;
        }
        if (is_center) break;
        prev_elev = elev;
        r += rad.dr;
        c += rad.dc;
        ++step;
        if (r < 0 || r >= rows || c < 0 || c >= cols) break;
      }
    }
  }

  STRR_RETURN_IF_ERROR(net.Finalize());
  return city;
}

}  // namespace strr
