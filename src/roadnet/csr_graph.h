// CsrAdjacency: flat compressed-sparse-row view of a finalized RoadNetwork,
// the cache-conscious layout the frontier interior streams instead of
// chasing per-segment std::vector adjacency.
//
// Layout (all arrays cache-line aligned, see util/aligned.h):
//   out_offsets_[n+1] / out_neighbors_   — directed hops (OutgoingOf)
//   nb_offsets_[n+1]  / nb_neighbors_    — undirected hops (NeighborsOf,
//                                          the Trace Back Search relation)
//   lengths_[n]                          — static segment lengths, so the
//                                          hot loop's travel-time divide
//                                          reads one flat double instead of
//                                          the whole 100+-byte RoadSegment
//   cell_rank_[n]                        — spatial-locality rank (dense id
//                                          of the segment's 250 m grid
//                                          cell) for locality-aware gather
//                                          chunking in parallel rounds
//
// Neighbor order is copied verbatim from the RoadNetwork vectors, and
// lengths_[s] == segment(s).length exactly, so `lengths_[next] / speed` is
// the identical floating-point expression the legacy path computes via
// RoadSegment::TravelTimeSeconds — the bit-identity contract holds by
// construction, only the memory layout changes.
#ifndef STRR_ROADNET_CSR_GRAPH_H_
#define STRR_ROADNET_CSR_GRAPH_H_

#include <cstdint>
#include <span>

#include "roadnet/segment.h"
#include "util/aligned.h"

namespace strr {

class RoadNetwork;

/// See file comment. Immutable after construction; safe to share across
/// threads by const reference.
class CsrAdjacency {
 public:
  /// Flattens `net` (which must be finalized). Called once from
  /// RoadNetwork::Finalize().
  explicit CsrAdjacency(const RoadNetwork& net);

  size_t num_segments() const { return lengths_.size(); }

  /// Directed successors of `s`, same order as RoadNetwork::OutgoingOf.
  std::span<const SegmentId> Out(SegmentId s) const {
    return {out_neighbors_.data() + out_offsets_[s],
            out_neighbors_.data() + out_offsets_[s + 1]};
  }

  /// Undirected neighborhood of `s`, same order as RoadNetwork::NeighborsOf.
  std::span<const SegmentId> Neighbors(SegmentId s) const {
    return {nb_neighbors_.data() + nb_offsets_[s],
            nb_neighbors_.data() + nb_offsets_[s + 1]};
  }

  /// Static length of `s`, meters (== RoadSegment::length, bit-exact).
  double length(SegmentId s) const { return lengths_[s]; }
  const double* lengths() const { return lengths_.data(); }

  /// Dense id of the 250 m spatial cell holding `s`'s midpoint; segments
  /// with equal ranks are road-network-close. Used only for scheduling
  /// (chunk assignment), never for results.
  uint32_t cell_rank(SegmentId s) const { return cell_rank_[s]; }
  uint32_t num_cells() const { return num_cells_; }

 private:
  AlignedVector<uint32_t> out_offsets_;
  AlignedVector<SegmentId> out_neighbors_;
  AlignedVector<uint32_t> nb_offsets_;
  AlignedVector<SegmentId> nb_neighbors_;
  AlignedVector<double> lengths_;
  AlignedVector<uint32_t> cell_rank_;
  uint32_t num_cells_ = 0;
};

}  // namespace strr

#endif  // STRR_ROADNET_CSR_GRAPH_H_
