#include "roadnet/subnetwork.h"

#include <utility>

namespace strr {

StatusOr<Subnetwork> ExtractSubnetwork(const RoadNetwork& parent,
                                       std::span<const SegmentId> segments) {
  if (!parent.finalized()) {
    return Status::InvalidArgument("subnetwork: parent not finalized");
  }
  Subnetwork out;
  std::unordered_map<NodeId, NodeId> node_map;
  auto import_node = [&](NodeId global) {
    auto [it, inserted] = node_map.try_emplace(global, 0);
    if (inserted) {
      it->second = out.network.AddNode(parent.node(global));
      out.node_to_global.push_back(global);
    }
    return it->second;
  };
  for (SegmentId global : segments) {
    if (global >= parent.NumSegments()) {
      return Status::InvalidArgument("subnetwork: segment out of range");
    }
    if (out.to_local.count(global) > 0) continue;  // duplicate input
    const RoadSegment& seg = parent.segment(global);
    NodeId from = import_node(seg.from_node);
    NodeId to = import_node(seg.to_node);
    auto local = out.network.AddSegment(from, to, seg.level, seg.shape);
    if (!local.ok()) return local.status();
    out.to_local.emplace(global, *local);
    out.to_global.push_back(global);
  }
  // Re-link two-way twins where both directions made it into the subset.
  // Link from the forward direction only so each pair is linked once.
  for (SegmentId global : out.to_global) {
    const RoadSegment& seg = parent.segment(global);
    if (!seg.two_way || seg.reverse_id == kInvalidSegment) continue;
    if (global > seg.reverse_id) continue;
    auto twin = out.to_local.find(seg.reverse_id);
    if (twin == out.to_local.end()) continue;
    Status linked =
        out.network.LinkTwins(out.to_local.at(global), twin->second);
    if (!linked.ok()) return linked;
  }
  Status finalized = out.network.Finalize();
  if (!finalized.ok()) return finalized;
  return out;
}

}  // namespace strr
