// RoadNetwork: the directed segment graph G(V, E).
//
// V = intersections (nodes), E = directed road segments. The network owns
// the segment table and precomputed adjacency in both directions:
//   * OutgoingOf(seg)  — segments whose tail is seg's head (forward moves)
//   * IncomingOf(seg)  — segments whose head is seg's tail
//   * NeighborsOf(seg) — union of both plus the reverse twin; this is the
//     `neighbor(r)` relation the Trace Back Search expands through.
#ifndef STRR_ROADNET_ROAD_NETWORK_H_
#define STRR_ROADNET_ROAD_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "geo/point.h"
#include "roadnet/segment.h"
#include "util/result.h"
#include "util/status.h"

namespace strr {

class CsrAdjacency;

/// Immutable-after-Finalize directed road graph.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  /// Adds an intersection at `pos`; returns its id.
  NodeId AddNode(const XyPoint& pos);

  /// Adds a one-way directed segment between existing nodes with explicit
  /// shape. Returns the new segment id, or InvalidArgument when the nodes
  /// are unknown or the shape has fewer than 2 points.
  StatusOr<SegmentId> AddSegment(NodeId from, NodeId to, RoadLevel level,
                                 Polyline shape);

  /// Adds a pair of twin segments (forward + reverse) sharing the shape.
  /// Returns the forward segment id; its twin is reachable via reverse_id.
  StatusOr<SegmentId> AddTwoWaySegment(NodeId from, NodeId to, RoadLevel level,
                                       Polyline shape);

  /// Marks two existing segments as each other's two-way twins (used when
  /// reconstructing a persisted network). The segments must run between
  /// the same nodes in opposite directions.
  Status LinkTwins(SegmentId forward, SegmentId backward);

  /// Builds the adjacency tables; must be called once after the last
  /// AddNode/AddSegment and before any topology query.
  Status Finalize();

  bool finalized() const { return finalized_; }

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumSegments() const { return segments_.size(); }

  const RoadSegment& segment(SegmentId id) const { return segments_[id]; }
  const XyPoint& node(NodeId id) const { return nodes_[id]; }
  const std::vector<RoadSegment>& segments() const { return segments_; }

  /// Segments departing from `seg`'s head node (excluding the U-turn onto
  /// seg's own reverse twin).
  const std::vector<SegmentId>& OutgoingOf(SegmentId seg) const {
    return outgoing_[seg];
  }

  /// Segments arriving at `seg`'s tail node.
  const std::vector<SegmentId>& IncomingOf(SegmentId seg) const {
    return incoming_[seg];
  }

  /// Undirected road-network neighbourhood used by Trace Back Search:
  /// everything adjacent through either endpoint plus the reverse twin.
  const std::vector<SegmentId>& NeighborsOf(SegmentId seg) const {
    return neighbors_[seg];
  }

  /// Segments departing from node `n`.
  const std::vector<SegmentId>& OutgoingOfNode(NodeId n) const {
    return node_out_[n];
  }

  /// Flat CSR view of the adjacency (built by Finalize); null before
  /// finalization. Shared so engines can hold it across network copies.
  const CsrAdjacency* csr() const { return csr_.get(); }

  /// Total length of all segments, meters (each direction counted once).
  double TotalLengthMeters() const;

  /// Sum of lengths of the given segments, meters.
  double LengthOfSegments(const std::vector<SegmentId>& segs) const;

  /// Tight bounding box of the whole network.
  Mbr BoundingBox() const;

  /// Linear scan for the segment whose shape is closest to `p`; the indexed
  /// variant lives in StIndex (R-tree). Returns NotFound on empty networks.
  StatusOr<SegmentId> NearestSegmentBruteForce(const XyPoint& p) const;

  /// Counts segments per road level, indexed by static_cast<int>(level).
  std::vector<size_t> CountByLevel() const;

 private:
  std::vector<XyPoint> nodes_;
  std::vector<RoadSegment> segments_;
  std::vector<std::vector<SegmentId>> outgoing_;
  std::vector<std::vector<SegmentId>> incoming_;
  std::vector<std::vector<SegmentId>> neighbors_;
  std::vector<std::vector<SegmentId>> node_out_;
  std::shared_ptr<const CsrAdjacency> csr_;
  bool finalized_ = false;
};

}  // namespace strr

#endif  // STRR_ROADNET_ROAD_NETWORK_H_
