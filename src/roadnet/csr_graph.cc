#include "roadnet/csr_graph.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "roadnet/road_network.h"

namespace strr {
namespace {

/// Cell edge for the locality ranking. Matches SegmentGrid's default: a few
/// city blocks — big enough that a chunk's segments share lines in the
/// label arrays, small enough to split a city into many chunks.
constexpr double kLocalityCellMeters = 250.0;

}  // namespace

CsrAdjacency::CsrAdjacency(const RoadNetwork& net) {
  const size_t n = net.NumSegments();
  lengths_.resize(n);
  cell_rank_.assign(n, 0);
  out_offsets_.resize(n + 1);
  nb_offsets_.resize(n + 1);

  size_t out_total = 0;
  size_t nb_total = 0;
  for (SegmentId s = 0; s < n; ++s) {
    out_total += net.OutgoingOf(s).size();
    nb_total += net.NeighborsOf(s).size();
  }
  out_neighbors_.reserve(out_total);
  nb_neighbors_.reserve(nb_total);

  std::vector<int64_t> cell_keys(n, 0);
  for (SegmentId s = 0; s < n; ++s) {
    out_offsets_[s] = static_cast<uint32_t>(out_neighbors_.size());
    for (SegmentId next : net.OutgoingOf(s)) out_neighbors_.push_back(next);
    nb_offsets_[s] = static_cast<uint32_t>(nb_neighbors_.size());
    for (SegmentId nb : net.NeighborsOf(s)) nb_neighbors_.push_back(nb);

    const RoadSegment& seg = net.segment(s);
    lengths_[s] = seg.length;
    const XyPoint mid = seg.bounding_box().Center();
    const double mx = mid.x;
    const double my = mid.y;
    const int64_t cx =
        static_cast<int64_t>(std::floor(mx / kLocalityCellMeters));
    const int64_t cy =
        static_cast<int64_t>(std::floor(my / kLocalityCellMeters));
    cell_keys[s] = (cx << 32) ^ (cy & 0xffffffffLL);
  }
  out_offsets_[n] = static_cast<uint32_t>(out_neighbors_.size());
  nb_offsets_[n] = static_cast<uint32_t>(nb_neighbors_.size());

  // Densify cell keys into ranks: sort the distinct keys, then each
  // segment's rank is its key's position. Equal rank <=> same 250 m cell.
  std::vector<int64_t> distinct = cell_keys;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  num_cells_ = static_cast<uint32_t>(distinct.size());
  for (SegmentId s = 0; s < n; ++s) {
    cell_rank_[s] = static_cast<uint32_t>(
        std::lower_bound(distinct.begin(), distinct.end(), cell_keys[s]) -
        distinct.begin());
  }
}

}  // namespace strr
