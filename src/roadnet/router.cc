#include "roadnet/router.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace strr {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

struct AStarEntry {
  double f;
  SegmentId segment;
  bool operator>(const AStarEntry& o) const { return f > o.f; }
};
}  // namespace

Router::Router(const RoadNetwork& network, SpeedFn speed_fn,
               double max_speed_mps)
    : network_(network),
      speed_fn_(std::move(speed_fn)),
      max_speed_(max_speed_mps > 0 ? max_speed_mps : 1.0) {
  size_t n = network.NumSegments();
  g_score_.assign(n, kInf);
  parent_.assign(n, kInvalidSegment);
  touched_gen_.assign(n, 0);
}

double Router::Heuristic(SegmentId from, SegmentId target) const {
  // Straight-line distance between segment head and target tail, at the
  // global maximum speed: admissible since no path can do better.
  const XyPoint a = network_.node(network_.segment(from).to_node);
  const XyPoint b = network_.node(network_.segment(target).from_node);
  return Distance(a, b) / max_speed_;
}

std::vector<SegmentId> Router::Route(SegmentId source, SegmentId target) {
  const size_t n = network_.NumSegments();
  if (source >= n || target >= n) return {};
  ++generation_;
  auto touch = [&](SegmentId id) {
    if (touched_gen_[id] != generation_) {
      touched_gen_[id] = generation_;
      g_score_[id] = kInf;
      parent_[id] = kInvalidSegment;
    }
  };

  std::priority_queue<AStarEntry, std::vector<AStarEntry>, std::greater<>> open;
  double src_speed = speed_fn_(source);
  if (src_speed <= 0.0) return {};
  touch(source);
  g_score_[source] = network_.segment(source).TravelTimeSeconds(src_speed);
  open.push({g_score_[source] + Heuristic(source, target), source});

  while (!open.empty()) {
    AStarEntry top = open.top();
    open.pop();
    SegmentId cur = top.segment;
    touch(cur);
    if (cur == target) break;
    if (top.f > g_score_[cur] + Heuristic(cur, target) + 1e-9) continue;
    for (SegmentId next : network_.OutgoingOf(cur)) {
      double speed = speed_fn_(next);
      if (speed <= 0.0) continue;
      touch(next);
      double g =
          g_score_[cur] + network_.segment(next).TravelTimeSeconds(speed);
      if (g < g_score_[next]) {
        g_score_[next] = g;
        parent_[next] = cur;
        open.push({g + Heuristic(next, target), next});
      }
    }
  }

  touch(target);
  if (g_score_[target] == kInf) return {};
  std::vector<SegmentId> path;
  for (SegmentId cur = target; cur != kInvalidSegment; cur = parent_[cur]) {
    path.push_back(cur);
    if (cur == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != source) return {};
  return path;
}

const std::vector<SegmentId>& Router::RouteCached(SegmentId source,
                                                  SegmentId target) {
  uint64_t key = (static_cast<uint64_t>(source) << 32) | target;
  if (const std::vector<SegmentId>* hit = cache_.Find(key)) {
    ++cache_hits_;
    return *hit;
  }
  ++cache_misses_;
  return *cache_.Emplace(key, Route(source, target)).first;
}

}  // namespace strr
