// RoadSegment: the unit of space in the whole system.
//
// Matches the paper's road-network model: each segment has a unique ID, an
// adjacency list (kept in RoadNetwork), a shape polyline with two terminal
// points, a length, a direction indicator, a road-class level, and an MBR.
// Segments are *directed*: a two-way street contributes two segments that
// reference each other via `reverse_id`.
#ifndef STRR_ROADNET_SEGMENT_H_
#define STRR_ROADNET_SEGMENT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "geo/mbr.h"
#include "geo/polyline.h"

namespace strr {

using SegmentId = uint32_t;
using NodeId = uint32_t;

inline constexpr SegmentId kInvalidSegment =
    std::numeric_limits<SegmentId>::max();
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Road class; determines free-flow speed and congestion sensitivity.
enum class RoadLevel : uint8_t {
  kHighway = 0,    ///< limited-access expressway
  kArterial = 1,   ///< primary urban road
  kLocal = 2,      ///< secondary / residential street
};

const char* RoadLevelName(RoadLevel level);

/// Free-flow design speed for a road class, meters/second.
double FreeFlowSpeed(RoadLevel level);

/// One directed road segment.
struct RoadSegment {
  SegmentId id = kInvalidSegment;
  NodeId from_node = kInvalidNode;  ///< tail intersection
  NodeId to_node = kInvalidNode;    ///< head intersection
  RoadLevel level = RoadLevel::kLocal;
  bool two_way = false;             ///< true when a reverse twin exists
  SegmentId reverse_id = kInvalidSegment;  ///< twin segment, if two_way
  Polyline shape;                   ///< geometry from tail to head
  double length = 0.0;              ///< meters (cached shape.Length())

  const Mbr& bounding_box() const { return shape.BoundingBox(); }

  /// Travel time along the whole segment at `speed_mps`.
  double TravelTimeSeconds(double speed_mps) const {
    return speed_mps > 0.0 ? length / speed_mps : 0.0;
  }
};

}  // namespace strr

#endif  // STRR_ROADNET_SEGMENT_H_
