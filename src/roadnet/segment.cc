#include "roadnet/segment.h"

namespace strr {

const char* RoadLevelName(RoadLevel level) {
  switch (level) {
    case RoadLevel::kHighway:
      return "highway";
    case RoadLevel::kArterial:
      return "arterial";
    case RoadLevel::kLocal:
      return "local";
  }
  return "?";
}

double FreeFlowSpeed(RoadLevel level) {
  switch (level) {
    case RoadLevel::kHighway:
      return 25.0;  // 90 km/h
    case RoadLevel::kArterial:
      return 13.9;  // 50 km/h
    case RoadLevel::kLocal:
      return 8.3;  // 30 km/h
  }
  return 8.3;
}

}  // namespace strr
