// Subnetwork extraction: a standalone RoadNetwork induced by a segment
// subset of a parent network, with id maps in both directions.
//
// The sharded serving tier uses this for per-partition views (a shard's
// owned segments plus its boundary halo): diagnostics, balance audits and
// the future process-per-shard transport all want a self-contained graph
// per shard. Extraction is *not* on the query path — sharded execution
// runs against the shared global network, which is what keeps it
// bit-identical — so a subnetwork is a faithful copy, not an authority.
#ifndef STRR_ROADNET_SUBNETWORK_H_
#define STRR_ROADNET_SUBNETWORK_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "roadnet/road_network.h"

namespace strr {

/// A finalized induced subgraph plus the id translation tables.
struct Subnetwork {
  RoadNetwork network;
  /// to_global[local_seg] = parent segment id. Local ids are assigned in
  /// the order segments appear in the extraction input.
  std::vector<SegmentId> to_global;
  /// Parent segment id -> local segment id (only selected segments).
  std::unordered_map<SegmentId, SegmentId> to_local;
  /// node_to_global[local_node] = parent node id.
  std::vector<NodeId> node_to_global;
};

/// Builds the subgraph induced by `segments` (parent segment ids; must be
/// valid, duplicates ignored). Endpoint nodes are imported on demand;
/// geometry, level and length are copied verbatim; twin links are
/// reconstructed when both directions of a two-way street are selected.
/// The result is finalized.
StatusOr<Subnetwork> ExtractSubnetwork(const RoadNetwork& parent,
                                       std::span<const SegmentId> segments);

}  // namespace strr

#endif  // STRR_ROADNET_SUBNETWORK_H_
