// Incremental Network Expansion (INE) — the bounded Dijkstra over travel
// time that the paper adapts from Papadias et al. [21].
//
// Two uses:
//  * Con-Index construction: expand from every segment with per-segment
//    min/max speeds to produce Near/Far reachable lists within one Δt.
//  * ES baseline: expand from the query segment verifying each reached
//    segment against the trajectory store.
//
// Expansion is over *segments*: the travel-time label of a segment is the
// earliest time its head node can be reached after departing the tail of
// the source segment at time 0 (source traversal included). A segment is
// "reached within budget" when the time to finish traversing it is within
// the budget. Speeds are supplied per segment by a callback so callers can
// plug historical min/mean/max profiles.
//
// These are convenience wrappers over the unified frontier-search core in
// src/search/ (FrontierEngine + pooled ExpansionContexts — see
// search/frontier_engine.h for the interior and its determinism
// contract); SpeedFn and ExpansionHit live there and are re-exported
// here. Callers that run many expansions or want the parallel interior
// use the engine directly.
#ifndef STRR_ROADNET_EXPANSION_H_
#define STRR_ROADNET_EXPANSION_H_

#include <vector>

#include "roadnet/road_network.h"
#include "search/frontier_engine.h"

namespace strr {

/// Runs bounded network expansion from `source` with the given time budget.
///
/// Returns every segment whose traversal can complete within
/// `budget_seconds`, including the source itself (at its own traversal
/// time, 0 budget yields empty). Results are sorted by arrival time.
std::vector<ExpansionHit> ExpandFrom(const RoadNetwork& network,
                                     SegmentId source, double budget_seconds,
                                     const SpeedFn& speed_fn);

/// Multi-source variant used by MQMB distance computations: expands from all
/// sources simultaneously; `out_source` (optional, segment-indexed,
/// kInvalidSegment = unreached) receives the winning source per segment.
/// On an exactly equal travel-time tie the smaller source id wins (the
/// engine's canonical rule).
std::vector<ExpansionHit> ExpandFromMany(const RoadNetwork& network,
                                         const std::vector<SegmentId>& sources,
                                         double budget_seconds,
                                         const SpeedFn& speed_fn,
                                         std::vector<SegmentId>* out_source);

/// Unbounded single-source shortest travel times from `source` to every
/// segment (seconds to *finish* each segment). Unreachable = +inf.
/// Used by MQMB's nearest-start rule and by the fleet simulator's router.
std::vector<double> ShortestTravelTimes(const RoadNetwork& network,
                                        SegmentId source,
                                        const SpeedFn& speed_fn);

/// Shortest path as a segment sequence from `source` to `target`
/// (inclusive of both). Empty when unreachable. Cost = travel time.
std::vector<SegmentId> ShortestPath(const RoadNetwork& network,
                                    SegmentId source, SegmentId target,
                                    const SpeedFn& speed_fn);

/// Convenience speed oracle: free-flow speed of each segment's road class.
SpeedFn FreeFlowSpeeds(const RoadNetwork& network);

}  // namespace strr

#endif  // STRR_ROADNET_EXPANSION_H_
