#include "roadnet/segment_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace strr {

SegmentGrid::SegmentGrid(const RoadNetwork& network, double cell_meters)
    : network_(network), cell_(cell_meters > 0 ? cell_meters : 250.0) {
  for (const RoadSegment& seg : network.segments()) {
    const Mbr& box = seg.bounding_box();
    int x0 = CellX(box.min_x());
    int x1 = CellX(box.max_x());
    int y0 = CellY(box.min_y());
    int y1 = CellY(box.max_y());
    for (int cx = x0; cx <= x1; ++cx) {
      for (int cy = y0; cy <= y1; ++cy) {
        cells_[KeyFor(cx, cy)].push_back(seg.id);
      }
    }
  }
}

std::vector<SegmentId> SegmentGrid::WithinRadius(const XyPoint& p,
                                                 double radius) const {
  std::vector<std::pair<double, SegmentId>> found;
  std::unordered_set<SegmentId> seen;
  int x0 = CellX(p.x - radius);
  int x1 = CellX(p.x + radius);
  int y0 = CellY(p.y - radius);
  int y1 = CellY(p.y + radius);
  for (int cx = x0; cx <= x1; ++cx) {
    for (int cy = y0; cy <= y1; ++cy) {
      auto it = cells_.find(KeyFor(cx, cy));
      if (it == cells_.end()) continue;
      for (SegmentId id : it->second) {
        if (!seen.insert(id).second) continue;
        double d = network_.segment(id).shape.Project(p).distance;
        if (d <= radius) found.emplace_back(d, id);
      }
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<SegmentId> out;
  out.reserve(found.size());
  for (const auto& [d, id] : found) out.push_back(id);
  return out;
}

SegmentId SegmentGrid::Nearest(const XyPoint& p) const {
  if (network_.NumSegments() == 0) return kInvalidSegment;
  double radius = cell_;
  for (int attempt = 0; attempt < 24; ++attempt) {
    std::vector<SegmentId> hits = WithinRadius(p, radius);
    if (!hits.empty()) return hits.front();
    radius *= 2.0;
  }
  // Degenerate fallback: brute force (covers points absurdly far away).
  auto result = network_.NearestSegmentBruteForce(p);
  return result.ok() ? result.value() : kInvalidSegment;
}

}  // namespace strr
