#include "roadnet/segment_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace strr {

SegmentGrid::SegmentGrid(const RoadNetwork& network, double cell_meters)
    : network_(network), cell_(cell_meters > 0 ? cell_meters : 250.0) {
  // Collect (cell, segment) pairs, then freeze them into a sorted CSR
  // directory: the grid is build-once, so paying one sort here buys every
  // later lookup a binary search over contiguous keys.
  std::vector<std::pair<CellKey, SegmentId>> pairs;
  for (const RoadSegment& seg : network.segments()) {
    const Mbr& box = seg.bounding_box();
    int x0 = CellX(box.min_x());
    int x1 = CellX(box.max_x());
    int y0 = CellY(box.min_y());
    int y1 = CellY(box.max_y());
    for (int cx = x0; cx <= x1; ++cx) {
      for (int cy = y0; cy <= y1; ++cy) {
        pairs.emplace_back(KeyFor(cx, cy), seg.id);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  cell_segments_.reserve(pairs.size());
  for (const auto& [key, id] : pairs) {
    if (cell_keys_.empty() || cell_keys_.back() != key) {
      cell_keys_.push_back(key);
      cell_offsets_.push_back(static_cast<uint32_t>(cell_segments_.size()));
    }
    cell_segments_.push_back(id);
  }
  cell_offsets_.push_back(static_cast<uint32_t>(cell_segments_.size()));
}

std::span<const SegmentId> SegmentGrid::CellSegments(CellKey key) const {
  auto it = std::lower_bound(cell_keys_.begin(), cell_keys_.end(), key);
  if (it == cell_keys_.end() || *it != key) return {};
  size_t i = static_cast<size_t>(it - cell_keys_.begin());
  return {cell_segments_.data() + cell_offsets_[i],
          cell_offsets_[i + 1] - cell_offsets_[i]};
}

std::vector<SegmentId> SegmentGrid::WithinRadius(const XyPoint& p,
                                                 double radius) const {
  std::vector<std::pair<double, SegmentId>> found;
  std::unordered_set<SegmentId> seen;
  int x0 = CellX(p.x - radius);
  int x1 = CellX(p.x + radius);
  int y0 = CellY(p.y - radius);
  int y1 = CellY(p.y + radius);
  for (int cx = x0; cx <= x1; ++cx) {
    for (int cy = y0; cy <= y1; ++cy) {
      for (SegmentId id : CellSegments(KeyFor(cx, cy))) {
        if (!seen.insert(id).second) continue;
        double d = network_.segment(id).shape.Project(p).distance;
        if (d <= radius) found.emplace_back(d, id);
      }
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<SegmentId> out;
  out.reserve(found.size());
  for (const auto& [d, id] : found) out.push_back(id);
  return out;
}

SegmentId SegmentGrid::Nearest(const XyPoint& p) const {
  if (network_.NumSegments() == 0) return kInvalidSegment;
  double radius = cell_;
  for (int attempt = 0; attempt < 24; ++attempt) {
    std::vector<SegmentId> hits = WithinRadius(p, radius);
    if (!hits.empty()) return hits.front();
    radius *= 2.0;
  }
  // Degenerate fallback: brute force (covers points absurdly far away).
  auto result = network_.NearestSegmentBruteForce(p);
  return result.ok() ? result.value() : kInvalidSegment;
}

}  // namespace strr
