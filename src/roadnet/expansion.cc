#include "roadnet/expansion.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace strr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double time;
  SegmentId segment;
  bool operator>(const QueueEntry& o) const { return time > o.time; }
};

using MinQueue =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

/// Shared Dijkstra core. `budget` of +inf gives full shortest-path trees.
/// Labels are completion times of segments. Returns the label array;
/// `origin` (optional) tracks the winning source for multi-source runs.
std::vector<double> RunDijkstra(const RoadNetwork& network,
                                const std::vector<SegmentId>& sources,
                                double budget, const SpeedFn& speed_fn,
                                std::vector<SegmentId>* origin) {
  const size_t n = network.NumSegments();
  std::vector<double> label(n, kInf);
  if (origin != nullptr) origin->assign(n, kInvalidSegment);

  MinQueue queue;
  for (SegmentId src : sources) {
    if (src >= n) continue;
    double speed = speed_fn(src);
    if (speed <= 0.0) continue;
    double t = network.segment(src).TravelTimeSeconds(speed);
    if (t > budget) continue;
    if (t < label[src]) {
      label[src] = t;
      if (origin != nullptr) (*origin)[src] = src;
      queue.push({t, src});
    }
  }

  while (!queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    if (top.time > label[top.segment]) continue;  // stale entry
    for (SegmentId next : network.OutgoingOf(top.segment)) {
      double speed = speed_fn(next);
      if (speed <= 0.0) continue;
      double t = top.time + network.segment(next).TravelTimeSeconds(speed);
      if (t > budget) continue;
      if (t < label[next]) {
        label[next] = t;
        if (origin != nullptr) (*origin)[next] = (*origin)[top.segment];
        queue.push({t, next});
      }
    }
  }
  return label;
}

std::vector<ExpansionHit> LabelsToHits(const std::vector<double>& label) {
  std::vector<ExpansionHit> hits;
  for (SegmentId id = 0; id < label.size(); ++id) {
    if (label[id] < kInf) hits.push_back({id, label[id]});
  }
  std::sort(hits.begin(), hits.end(),
            [](const ExpansionHit& a, const ExpansionHit& b) {
              if (a.arrival_seconds != b.arrival_seconds) {
                return a.arrival_seconds < b.arrival_seconds;
              }
              return a.segment < b.segment;
            });
  return hits;
}

}  // namespace

std::vector<ExpansionHit> ExpandFrom(const RoadNetwork& network,
                                     SegmentId source, double budget_seconds,
                                     const SpeedFn& speed_fn) {
  std::vector<SegmentId> sources{source};
  return LabelsToHits(
      RunDijkstra(network, sources, budget_seconds, speed_fn, nullptr));
}

std::vector<ExpansionHit> ExpandFromMany(const RoadNetwork& network,
                                         const std::vector<SegmentId>& sources,
                                         double budget_seconds,
                                         const SpeedFn& speed_fn,
                                         std::vector<SegmentId>* out_source) {
  return LabelsToHits(
      RunDijkstra(network, sources, budget_seconds, speed_fn, out_source));
}

std::vector<double> ShortestTravelTimes(const RoadNetwork& network,
                                        SegmentId source,
                                        const SpeedFn& speed_fn) {
  std::vector<SegmentId> sources{source};
  return RunDijkstra(network, sources, kInf, speed_fn, nullptr);
}

std::vector<SegmentId> ShortestPath(const RoadNetwork& network,
                                    SegmentId source, SegmentId target,
                                    const SpeedFn& speed_fn) {
  const size_t n = network.NumSegments();
  if (source >= n || target >= n) return {};

  std::vector<double> label(n, kInf);
  std::vector<SegmentId> parent(n, kInvalidSegment);
  MinQueue queue;

  double src_speed = speed_fn(source);
  if (src_speed <= 0.0) return {};
  label[source] = network.segment(source).TravelTimeSeconds(src_speed);
  queue.push({label[source], source});

  while (!queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    if (top.time > label[top.segment]) continue;
    if (top.segment == target) break;  // settled; Dijkstra guarantees optimal
    for (SegmentId next : network.OutgoingOf(top.segment)) {
      double speed = speed_fn(next);
      if (speed <= 0.0) continue;
      double t = top.time + network.segment(next).TravelTimeSeconds(speed);
      if (t < label[next]) {
        label[next] = t;
        parent[next] = top.segment;
        queue.push({t, next});
      }
    }
  }

  if (label[target] == kInf) return {};
  std::vector<SegmentId> path;
  for (SegmentId cur = target; cur != kInvalidSegment; cur = parent[cur]) {
    path.push_back(cur);
    if (cur == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != source) return {};
  return path;
}

SpeedFn FreeFlowSpeeds(const RoadNetwork& network) {
  return [&network](SegmentId id) {
    return FreeFlowSpeed(network.segment(id).level);
  };
}

}  // namespace strr
