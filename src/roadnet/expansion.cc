#include "roadnet/expansion.h"

#include <algorithm>
#include <limits>

#include "search/expansion_context.h"
#include "search/frontier_engine.h"

namespace strr {

std::vector<ExpansionHit> ExpandFrom(const RoadNetwork& network,
                                     SegmentId source, double budget_seconds,
                                     const SpeedFn& speed_fn) {
  FrontierEngine engine(network);
  auto ctx = ExpansionContextPool::Global().Acquire();
  FrontierEngine::TimedRequest request;
  request.sources = std::span<const SegmentId>(&source, 1);
  request.budget = budget_seconds;
  engine.RunTimed(*ctx, request, speed_fn);
  return engine.HitsByArrival(*ctx);
}

std::vector<ExpansionHit> ExpandFromMany(const RoadNetwork& network,
                                         const std::vector<SegmentId>& sources,
                                         double budget_seconds,
                                         const SpeedFn& speed_fn,
                                         std::vector<SegmentId>* out_source) {
  FrontierEngine engine(network);
  auto ctx = ExpansionContextPool::Global().Acquire();
  FrontierEngine::TimedRequest request;
  request.sources = sources;
  request.budget = budget_seconds;
  request.track_origin = out_source != nullptr;
  engine.RunTimed(*ctx, request, speed_fn);
  if (out_source != nullptr) {
    out_source->assign(network.NumSegments(), kInvalidSegment);
    for (SegmentId s : ctx->reached()) {
      if (ctx->Label(s) < kUnreachedLabel) (*out_source)[s] = ctx->Origin(s);
    }
  }
  return engine.HitsByArrival(*ctx);
}

std::vector<double> ShortestTravelTimes(const RoadNetwork& network,
                                        SegmentId source,
                                        const SpeedFn& speed_fn) {
  FrontierEngine engine(network);
  auto ctx = ExpansionContextPool::Global().Acquire();
  FrontierEngine::TimedRequest request;
  request.sources = std::span<const SegmentId>(&source, 1);
  engine.RunTimed(*ctx, request, speed_fn);
  std::vector<double> label(network.NumSegments(),
                            std::numeric_limits<double>::infinity());
  for (SegmentId s : ctx->reached()) label[s] = ctx->Label(s);
  return label;
}

std::vector<SegmentId> ShortestPath(const RoadNetwork& network,
                                    SegmentId source, SegmentId target,
                                    const SpeedFn& speed_fn) {
  const size_t n = network.NumSegments();
  if (source >= n || target >= n) return {};
  FrontierEngine engine(network);
  auto ctx = ExpansionContextPool::Global().Acquire();
  FrontierEngine::TimedRequest request;
  request.sources = std::span<const SegmentId>(&source, 1);
  request.track_parent = true;
  request.stop_at = target;
  engine.RunTimed(*ctx, request, speed_fn);

  if (ctx->Label(target) >= kUnreachedLabel) return {};
  std::vector<SegmentId> path;
  for (SegmentId cur = target; cur != kInvalidSegment;
       cur = ctx->Parent(cur)) {
    path.push_back(cur);
    if (cur == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != source) return {};
  return path;
}

SpeedFn FreeFlowSpeeds(const RoadNetwork& network) {
  return [&network](SegmentId id) {
    return FreeFlowSpeed(network.segment(id).level);
  };
}

}  // namespace strr
