// Router: point-to-point A* routing with an LRU-less memo cache.
//
// The fleet simulator routes hundreds of thousands of trips; A* with an
// admissible straight-line/v_max heuristic plus caching of (origin,
// destination) pairs keeps dataset generation fast. Costs are travel
// times under the supplied speed oracle (typically free-flow).
#ifndef STRR_ROADNET_ROUTER_H_
#define STRR_ROADNET_ROUTER_H_

#include <vector>

#include "roadnet/expansion.h"
#include "roadnet/road_network.h"
#include "util/flat_hash.h"

namespace strr {

/// A* router over segments. Not thread-safe (per-thread instances are
/// cheap; the scratch arrays dominate and are reused across calls).
class Router {
 public:
  /// `max_speed_mps` must upper-bound every speed the oracle returns, or
  /// the heuristic stops being admissible and paths may be suboptimal.
  Router(const RoadNetwork& network, SpeedFn speed_fn, double max_speed_mps);

  /// Shortest (travel-time) segment path from `source` to `target`,
  /// inclusive. Empty when unreachable.
  std::vector<SegmentId> Route(SegmentId source, SegmentId target);

  /// Route with memoization; identical queries return the cached path.
  const std::vector<SegmentId>& RouteCached(SegmentId source,
                                            SegmentId target);

  size_t CacheSize() const { return cache_.size(); }
  uint64_t CacheHits() const { return cache_hits_; }
  uint64_t CacheMisses() const { return cache_misses_; }

 private:
  double Heuristic(SegmentId from, SegmentId target) const;

  const RoadNetwork& network_;
  SpeedFn speed_fn_;
  double max_speed_;

  // Scratch arrays with a generation counter so reuse is O(1).
  std::vector<double> g_score_;
  std::vector<SegmentId> parent_;
  std::vector<uint32_t> touched_gen_;
  uint32_t generation_ = 0;

  /// Grow-only (src, dst) -> path memo. Flat open addressing: a lookup
  /// probes one contiguous key array instead of chasing bucket nodes —
  /// see util/flat_hash.h and bench_micro_components.
  FlatU64Map<std::vector<SegmentId>> cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace strr

#endif  // STRR_ROADNET_ROUTER_H_
