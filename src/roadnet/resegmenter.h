// Road re-segmentation (paper §3.1, "Pre-Processing").
//
// Long roads (highways especially) would make the reachable-region result
// set too coarse, so the pre-processing step chops every segment longer
// than a spatial granularity (default 500 m) into near-equal pieces,
// inserting new intersection nodes at the cut points. Twin (two-way)
// segments are cut at mirrored offsets so the twin relationship survives.
#ifndef STRR_ROADNET_RESEGMENTER_H_
#define STRR_ROADNET_RESEGMENTER_H_

#include <vector>

#include "roadnet/road_network.h"
#include "util/result.h"

namespace strr {

/// Options for the re-segmentation pass.
struct ResegmentOptions {
  /// Target maximum segment length, meters. Pieces are equal-length
  /// subdivisions, so every output segment is <= granularity_meters.
  double granularity_meters = 500.0;
};

/// Result of re-segmentation: the new network plus a mapping from each new
/// segment back to the original segment it came from.
struct ResegmentResult {
  RoadNetwork network;
  /// parent_of[new_segment_id] == original segment id.
  std::vector<SegmentId> parent_of;
};

/// Produces a finalized copy of `input` in which no segment exceeds the
/// configured granularity. The input must be finalized.
StatusOr<ResegmentResult> Resegment(const RoadNetwork& input,
                                    const ResegmentOptions& options);

}  // namespace strr

#endif  // STRR_ROADNET_RESEGMENTER_H_
