#include "roadnet/resegmenter.h"

#include <cmath>

namespace strr {

namespace {

/// Equal-length cut offsets for a segment of `length` at `granularity`.
std::vector<double> CutOffsets(double length, double granularity) {
  std::vector<double> cuts;
  if (length <= granularity || granularity <= 0.0) return cuts;
  int pieces = static_cast<int>(std::ceil(length / granularity));
  double piece_len = length / pieces;
  cuts.reserve(pieces - 1);
  for (int i = 1; i < pieces; ++i) cuts.push_back(i * piece_len);
  return cuts;
}

}  // namespace

StatusOr<ResegmentResult> Resegment(const RoadNetwork& input,
                                    const ResegmentOptions& options) {
  if (!input.finalized()) {
    return Status::FailedPrecondition("Resegment: input not finalized");
  }
  if (options.granularity_meters <= 0.0) {
    return Status::InvalidArgument("Resegment: granularity must be positive");
  }

  ResegmentResult result;
  RoadNetwork& out = result.network;

  // Copy nodes; original node ids are preserved so the loop below can use
  // them directly.
  for (size_t i = 0; i < input.NumNodes(); ++i) {
    out.AddNode(input.node(static_cast<NodeId>(i)));
  }

  // Process two-way pairs once (via the lower-id twin) so that cut nodes are
  // shared between the two directions; one-way segments individually.
  std::vector<SegmentId> done(input.NumSegments(), 0);
  for (const RoadSegment& seg : input.segments()) {
    if (done[seg.id]) continue;
    done[seg.id] = 1;
    bool paired = seg.two_way && seg.reverse_id != kInvalidSegment;
    if (paired) done[seg.reverse_id] = 1;

    std::vector<double> cuts =
        CutOffsets(seg.length, options.granularity_meters);
    std::vector<Polyline> pieces = seg.shape.SplitAt(cuts);

    // Create intermediate nodes at the cut points.
    std::vector<NodeId> chain;
    chain.push_back(seg.from_node);
    for (size_t i = 0; i + 1 < pieces.size(); ++i) {
      chain.push_back(out.AddNode(pieces[i].points().back()));
    }
    chain.push_back(seg.to_node);

    for (size_t i = 0; i < pieces.size(); ++i) {
      if (paired) {
        STRR_ASSIGN_OR_RETURN(
            SegmentId fwd, out.AddTwoWaySegment(chain[i], chain[i + 1],
                                                seg.level, pieces[i]));
        result.parent_of.push_back(seg.id);          // forward piece
        result.parent_of.push_back(seg.reverse_id);  // its twin
        (void)fwd;
      } else {
        STRR_ASSIGN_OR_RETURN(
            SegmentId id,
            out.AddSegment(chain[i], chain[i + 1], seg.level, pieces[i]));
        result.parent_of.push_back(seg.id);
        (void)id;
      }
    }
  }

  STRR_RETURN_IF_ERROR(out.Finalize());
  return result;
}

}  // namespace strr
