// FrequencySketch: a 4-bit counting-Bloom (count-min) frequency estimator —
// the TinyLFU "doorkeeper" behind ResultCache admission.
//
// An LRU alone is defenseless against one-shot scans: a stream of
// never-repeated cold-location queries evicts the hot downtown entries the
// cache exists for. The sketch tracks approximate access frequency in a
// few bits per counter so the cache can refuse to evict a proven-hot
// victim for a never-seen-before candidate.
//
//  * 4 hash rows over one power-of-two counter array; an estimate is the
//    minimum across rows (count-min: overestimates only, never under).
//  * 4-bit saturating counters; when the effective increment count
//    reaches half the table size (~2 increments per counter on average,
//    4 rows per sample) every counter halves ("aging"), so frequency
//    reflects the recent window rather than all time — yesterday's hot
//    key does not squat forever.
//
// Not thread-safe: callers (ResultCache shards) hold their own lock.
#ifndef STRR_CORE_FREQUENCY_SKETCH_H_
#define STRR_CORE_FREQUENCY_SKETCH_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace strr {

class FrequencySketch {
 public:
  /// `counters` is rounded up to a power of two, minimum 64.
  explicit FrequencySketch(size_t counters) {
    size_t n = std::bit_ceil(std::max<size_t>(counters, 64));
    words_.assign(n / 16, 0);  // 16 4-bit counters per word
    mask_ = n - 1;
    // Age when the average counter has absorbed ~2 increments (4 rows per
    // sample): frequent-enough decay that 4-bit counters stay far from
    // saturation at the ~8-counters-per-cached-entry densities the
    // ResultCache provisions.
    sample_limit_ = std::max<size_t>(n / 2, 64);
  }

  /// Bumps the frequency of `hash` (saturating at 15 per row).
  void Increment(uint64_t hash) {
    bool any = false;
    for (int row = 0; row < 4; ++row) any |= IncrementAt(IndexOf(hash, row));
    if (any && ++samples_ >= sample_limit_) Age();
  }

  /// Approximate access count of `hash` in the recent window (<= 15).
  uint32_t Estimate(uint64_t hash) const {
    uint32_t best = 15;
    for (int row = 0; row < 4; ++row) {
      best = std::min(best, CounterAt(IndexOf(hash, row)));
    }
    return best;
  }

  size_t num_counters() const { return (mask_ + 1); }

  /// Halves every counter (and the sample count) — the aging window.
  /// Runs automatically every `sample_limit_` effective increments; public
  /// so callers/tests can force a decay point deterministically.
  void Age() {
    for (uint64_t& word : words_) {
      word = (word >> 1) & 0x7777777777777777ull;
    }
    samples_ /= 2;
  }

 private:
  /// Independent row index: remix the hash with a distinct odd constant
  /// per row (the classic multiply-shift family).
  size_t IndexOf(uint64_t hash, int row) const {
    static constexpr uint64_t kSeeds[4] = {
        0x9e3779b97f4a7c15ull, 0xc2b2ae3d27d4eb4full,
        0x165667b19e3779f9ull, 0xd6e8feb86659fd93ull};
    uint64_t h = (hash + static_cast<uint64_t>(row)) * kSeeds[row];
    h ^= h >> 32;
    return static_cast<size_t>(h) & mask_;
  }

  uint32_t CounterAt(size_t i) const {
    return static_cast<uint32_t>(words_[i >> 4] >> ((i & 15) * 4)) & 0xF;
  }

  /// Returns true when the counter actually incremented (not saturated).
  bool IncrementAt(size_t i) {
    const int shift = static_cast<int>(i & 15) * 4;
    uint64_t& word = words_[i >> 4];
    if (((word >> shift) & 0xF) == 0xF) return false;
    word += 1ull << shift;
    return true;
  }

  std::vector<uint64_t> words_;
  size_t mask_ = 0;
  size_t sample_limit_ = 0;
  size_t samples_ = 0;
};

}  // namespace strr

#endif  // STRR_CORE_FREQUENCY_SKETCH_H_
