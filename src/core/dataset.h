// Dataset: the end-to-end pre-processing pipeline (paper §3.1).
//
// Generates the synthetic city, runs the 500 m road re-segmentation, and
// simulates the taxi fleet, producing the cleaned (map-matched) trajectory
// database the indexes are built from. Everything is deterministic in the
// seeds carried by the options.
#ifndef STRR_CORE_DATASET_H_
#define STRR_CORE_DATASET_H_

#include <memory>

#include "roadnet/city_generator.h"
#include "roadnet/resegmenter.h"
#include "traj/fleet_simulator.h"
#include "traj/trajectory_store.h"
#include "util/result.h"

namespace strr {

/// Pipeline knobs: city -> re-segmentation -> fleet.
struct DatasetOptions {
  CityOptions city;
  ResegmentOptions reseg;
  FleetOptions fleet;
  int raw_gps_days = 0;  ///< materialize raw GPS for the first N days
};

/// A ready-to-index dataset.
struct Dataset {
  RoadNetwork network;          ///< re-segmented road network
  Projection projection;        ///< geo <-> local meters
  XyPoint center;               ///< city centre (projected)
  std::unique_ptr<TrajectoryStore> store;  ///< matched trajectories
  std::vector<RawTrajectory> raw_sample;   ///< raw GPS (if requested)
  uint64_t num_trips = 0;
  uint64_t approx_gps_points = 0;
};

/// Runs the full pre-processing pipeline.
StatusOr<Dataset> BuildDataset(const DatasetOptions& options);

/// Options for a small dataset suitable for unit/integration tests
/// (seconds to build).
DatasetOptions TestDatasetOptions();

/// Options for the benchmark-scale dataset (the Table 4.1 stand-in).
DatasetOptions BenchDatasetOptions();

}  // namespace strr

#endif  // STRR_CORE_DATASET_H_
