// ResultCache: plan-keyed (PlanKey -> RegionResult) cache with Δt-slot
// invalidation — the memory half of the query front door.
//
// The paper's motivating workloads (taxi dispatch, location-based
// advertising) hammer a handful of downtown start points with identical
// queries; PR 1's executor recomputes every one from scratch. This cache
// absorbs that hot-spot traffic: results are keyed by a canonical byte
// encoding of the resolved plan (strategy, start segments per location,
// raw locations, T, L, Prob), so two plans that would execute identically
// hit the same entry, and execution is deterministic, so a cached region
// is bit-identical to a recompute.
//
// Invalidation is Δt-slot-aware: every entry records the slot range
// [T/Δt, (T+L-1)/Δt] its result was computed from (queries read time
// lists and speed/connection tables only inside their own window, see
// QueryExecutor), so a congestion or speed-profile refresh covering some
// time range evicts exactly the entries whose windows intersect it and
// leaves the rest serving.
//
// Thread-safe: the table is sharded by key hash; each shard's LRU list
// and map are guarded by the shard mutex, and Lookup copies the result
// out under that mutex, so readers can never observe a torn RegionResult
// while another thread inserts, evicts, or invalidates.
#ifndef STRR_CORE_RESULT_CACHE_H_
#define STRR_CORE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/frequency_sketch.h"
#include "query/query.h"
#include "query/query_plan.h"
#include "util/time_util.h"

namespace strr {

/// Canonical identity of one executable plan. Two plans with equal keys
/// execute to bit-identical results; two plans that could diverge (any
/// field differs) never collide on `canonical`.
struct PlanKey {
  uint64_t hash = 0;        ///< FNV-1a over `canonical` (shard + bucket pick)
  int64_t start_tod = 0;    ///< copied out for Δt-slot range computation
  int64_t duration = 0;
  /// Full serialized identity (equality check). The tenant scope is part
  /// of these bytes (see MakePlanKey) — there is deliberately no separate
  /// tenant field, so the canonical encoding stays the single source of
  /// key identity.
  std::string canonical;
};

/// Derives the canonical key for `plan`. Cheap (one small buffer); safe on
/// unvalidated plans (a malformed plan gets a key that simply never hits).
/// With `tenant_scoped` (the default) the plan's tenant is part of the
/// identity, so two tenants issuing the same query get separate entries —
/// cached bytes never leak across tenants. Passing false collapses the
/// tenant to kDefaultTenant, deriving the shared key the executor's
/// tenant_shared_cache knob opts into (results are bit-identical across
/// tenants by construction, so sharing is safe when the deployment allows
/// cross-tenant timing visibility).
PlanKey MakePlanKey(const QueryPlan& plan, bool tenant_scoped = true);

/// Cache construction knobs.
struct ResultCacheOptions {
  /// Total entries across all shards; 0 behaves as 1 per shard.
  size_t capacity = 4096;
  /// Shard count (locks). More shards = less contention, coarser LRU.
  size_t shards = 8;
  /// TinyLFU doorkeeper: total counting-Bloom counters across shards
  /// (0 = off). When on, every Lookup bumps the key's frequency sketch,
  /// and an insert that would evict only goes through when the candidate's
  /// estimated frequency exceeds the LRU victim's — a one-shot scan of
  /// cold locations (each key seen once) can no longer churn hot entries
  /// out. Inserts into non-full shards are always admitted, so the
  /// doorkeeper changes nothing until the cache is under pressure.
  size_t doorkeeper_counters = 0;
  /// Segmented LRU (full TinyLFU): fraction of each shard reserved for a
  /// protected segment, in [0, 1); 0 = off (plain LRU). New entries land
  /// in probation; a probation hit promotes to protected (demoting the
  /// protected tail when full); eviction always takes the probation tail
  /// first. A scan burst larger than the doorkeeper's reach then churns
  /// only probation — entries with a second access survive in protected.
  double protected_share = 0.0;
  /// Per-tenant capacity envelope: the max fraction of each shard one
  /// tenant's entries may occupy, in (0, 1]; 0 = off. A tenant at its
  /// envelope evicts its own LRU entry on insert — even into a non-full
  /// shard — so a hot tenant's flood can never push out a cold tenant.
  double tenant_capacity_share = 0.0;
};

/// Sharded LRU cache of query results. See file comment for contracts.
class ResultCache {
 public:
  /// `delta_t_seconds` is the executor's Δt: it defines the slot bucketing
  /// used for invalidation and must match the index stack the cached
  /// results were computed over.
  ResultCache(int64_t delta_t_seconds, const ResultCacheOptions& options);

  /// Returns a copy of the cached result for `key` (stats.cache_hit set),
  /// or nullopt on miss. Refreshes the entry's LRU position.
  std::optional<RegionResult> Lookup(const PlanKey& key);

  /// Inserts (or refreshes) `result` under `key`, evicting the shard's LRU
  /// tail when over capacity. The stored copy has stats.cache_hit false;
  /// Lookup flips it on the way out. `tenant` attributes the entry for the
  /// per-tenant capacity envelope (ignored when the envelope is off).
  void Insert(const PlanKey& key, const RegionResult& result,
              TenantId tenant = kDefaultTenant);

  /// Evicts every entry whose Δt-slot window intersects the Δt slots
  /// covering [begin_tod, end_tod) — the hook congestion / speed-profile
  /// refreshes call so only affected slots recompute.
  void InvalidateTimeRange(int64_t begin_tod, int64_t end_tod);

  /// Evicts every entry whose slot window intersects [begin, end]
  /// (inclusive, Δt slot ids).
  void InvalidateSlotRange(SlotId begin, SlotId end);

  /// Drops the entry for `key` if present (counted under `invalidated`).
  /// The live read path uses this to undo an insert that raced a snapshot
  /// publish (see QueryExecutor::MaybeCacheInsert).
  void Erase(const PlanKey& key);

  /// Drops everything (counted under `invalidated`).
  void InvalidateAll();

  /// Point-in-time counters, summed across shards.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;    ///< LRU capacity evictions
    uint64_t invalidated = 0;  ///< entries dropped by invalidation
    /// Inserts the doorkeeper refused (candidate not hotter than the
    /// victim it would have evicted). 0 when the doorkeeper is off.
    uint64_t doorkeeper_rejected = 0;
    /// Protected-segment promotions / tail demotions (segmented LRU only).
    uint64_t promotions = 0;
    uint64_t demotions = 0;
    /// Evictions forced by a tenant hitting its capacity envelope.
    uint64_t tenant_evictions = 0;
  };
  Stats stats() const;

  /// Live entries across all shards.
  size_t size() const;

  /// Live entries attributed to `tenant` (0 unless the envelope is on).
  size_t TenantSize(TenantId tenant) const;

  size_t capacity() const { return shard_capacity_ * shards_.size(); }
  int64_t delta_t_seconds() const { return delta_t_seconds_; }

 private:
  struct Entry {
    std::string canonical;
    uint64_t hash = 0;  ///< PlanKey hash (victim sketch probes)
    TenantId tenant = kDefaultTenant;
    SlotId first_slot = 0;
    SlotId last_slot = 0;
    bool in_protected = false;  ///< which segment's list holds the entry
    /// Immutable once stored (refreshes swap the pointer), so Lookup can
    /// copy the pointed-to result outside the shard lock — hot-spot hits
    /// hold the mutex for O(1) pointer work, not a vector copy.
    std::shared_ptr<const RegionResult> result;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Probation segment (the whole cache when segmentation is off);
    /// front = most recently used.
    std::list<Entry> lru;
    /// Protected segment (empty when protected_capacity_ == 0). Entries
    /// move between the lists by splice, so index iterators stay valid.
    std::list<Entry> hot;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    /// Live entries per tenant (maintained only when the envelope is on).
    std::unordered_map<TenantId, size_t> tenant_count;
    /// Doorkeeper frequency sketch (null when off); guarded by mu.
    std::unique_ptr<FrequencySketch> sketch;
    Stats stats;
  };

  Shard& ShardFor(const PlanKey& key) {
    return *shards_[key.hash % shards_.size()];
  }

  /// The entry next in line for eviction: probation tail, else protected
  /// tail. Caller holds the shard mutex; shard must be non-empty.
  static Entry& VictimLocked(Shard& shard) {
    return shard.lru.empty() ? shard.hot.back() : shard.lru.back();
  }

  /// Promotes a probation hit into protected, demoting the protected tail
  /// when the segment is full. Caller holds the shard mutex.
  void PromoteLocked(Shard& shard, std::list<Entry>::iterator it);

  /// Removes the current victim (see VictimLocked). Caller holds mu.
  void EvictOneLocked(Shard& shard);

  /// Drops `tenant`'s LRU entry (probation tail first, then protected).
  /// Caller holds mu; no-op when the tenant holds nothing.
  void EvictTenantOneLocked(Shard& shard, TenantId tenant);

  void CountInsertLocked(Shard& shard, TenantId tenant);
  void CountEraseLocked(Shard& shard, TenantId tenant);

  int64_t delta_t_seconds_;
  size_t shard_capacity_;
  size_t protected_capacity_ = 0;  ///< per shard; 0 = segmentation off
  size_t tenant_envelope_ = 0;     ///< per shard per tenant; 0 = off
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace strr

#endif  // STRR_CORE_RESULT_CACHE_H_
