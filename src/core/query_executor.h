// QueryExecutor: the query front door plus the "execute" half of the
// plan -> execute pipeline.
//
// Owns a ThreadPool shared by every query it runs and executes QueryPlans
// produced by the QueryPlanner:
//  * Execute()      — one plan, on the calling thread;
//  * ExecuteBatch() — fans independent plans across the pool and returns
//    one StatusOr per plan (a failing plan never poisons its neighbours);
//  * inside one kRepeatedS m-query, the per-location SQMB+TBS legs can run
//    in parallel on the same pool.
//
// Front door (both opt-in via options, off by default so the facade
// reproduces the paper's measurements exactly):
//  * ResultCache — plans are keyed canonically (MakePlanKey) and identical
//    plans are served from cache bit-identically, with Δt-slot
//    invalidation wired to speed-profile/congestion refreshes through
//    InvalidateCachedTimeRange;
//  * AdmissionController — bounded outstanding work with typed
//    ResourceExhausted shedding; batch plans shed instead of queueing
//    unboundedly, and batches keep at most a configured share of the
//    tickets so they cannot starve single queries. Work already running
//    on this executor's own pool (m-query legs, nested batches) is never
//    re-admitted: the enclosing query was admitted as one unit.
//
// Concurrency contract: every index read path underneath (ST-Index
// time-list reads through the BufferPool, lazy Con-Index materialization,
// speed-profile lookups) is concurrent-read-safe, so one executor over one
// engine's indexes can run arbitrarily many plans at once. Results are
// bit-identical to sequential execution — threading only changes the
// schedule, never the region (lazy Con-Index build races keep the first
// deterministic result; batch/leg merges happen in submission order).
// Per-query stats.io is attributed through a thread-local ScopedIoCounters
// in the storage layer, so concurrent queries never contaminate each
// other's I/O deltas.
#ifndef STRR_CORE_QUERY_EXECUTOR_H_
#define STRR_CORE_QUERY_EXECUTOR_H_

#include <memory>
#include <span>
#include <vector>

#include "core/admission_controller.h"
#include "core/result_cache.h"
#include "index/con_index.h"
#include "index/speed_profile.h"
#include "index/st_index.h"
#include "query/bounding_region.h"
#include "query/query.h"
#include "query/query_plan.h"
#include "roadnet/road_network.h"
#include "storage/io_context.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace strr {

/// Executor construction knobs.
struct QueryExecutorOptions {
  /// Worker threads for batches and parallel m-query legs. 0 = one per
  /// hardware thread.
  int num_threads = 0;
  /// Run the per-location legs of a kRepeatedS plan on the pool (when not
  /// already on a pool worker). Off = legs run sequentially, reproducing
  /// the paper's single-threaded m-query baseline timings.
  bool parallel_mquery_legs = true;
  /// Result-cache capacity in entries; 0 disables caching. Off by default:
  /// cached results replay the original execution's stats, which would
  /// skew the paper-reproduction measurements.
  size_t result_cache_entries = 0;
  /// Result-cache shard count (locks); only meaningful when caching is on.
  size_t result_cache_shards = 8;
  /// Max admitted-and-outstanding queries; 0 disables admission control.
  size_t max_inflight = 0;
  /// Max single-query callers blocked waiting for admission.
  size_t max_queued = 64;
  /// Share of max_inflight all batch work combined may hold, in (0, 1].
  double batch_share = 0.5;
};

/// Runs query plans over one engine's index stack. Thread-safe: Execute
/// and ExecuteBatch may be called concurrently from any thread.
class QueryExecutor {
 public:
  /// All referenced structures must outlive the executor.
  QueryExecutor(const RoadNetwork& network, const StIndex& st_index,
                const ConIndex& con_index, const SpeedProfile& profile,
                int64_t delta_t_seconds,
                const QueryExecutorOptions& options = {});

  /// Executes one plan on the calling thread (kRepeatedS legs may still
  /// fan out, see QueryExecutorOptions::parallel_mquery_legs), routed
  /// through the front door: cache lookup first, then admission (which
  /// may block in the bounded queue or shed with ResourceExhausted).
  StatusOr<RegionResult> Execute(const QueryPlan& plan);

  /// Executes independent plans concurrently across the pool; result i
  /// corresponds to plan i. Per-plan errors are reported in place — the
  /// rest of the batch still runs. Cache hits are served inline; the rest
  /// admit at submission time and plans that exceed capacity are shed in
  /// place with ResourceExhausted (never queued unboundedly). Safe to call
  /// from a pool worker (runs inline sequentially rather than deadlocking
  /// the pool on itself).
  std::vector<StatusOr<RegionResult>> ExecuteBatch(
      std::span<const QueryPlan> plans);

  // --- Front door ------------------------------------------------------------

  /// The plan-keyed result cache, or nullptr when disabled.
  ResultCache* result_cache() { return cache_.get(); }

  /// The admission controller, or nullptr when disabled.
  AdmissionController* admission_controller() { return admission_.get(); }

  /// Evicts cached results whose Δt-slot window intersects
  /// [begin_tod, end_tod) — call after a congestion / speed-profile
  /// refresh of that time range. No-op when caching is off.
  void InvalidateCachedTimeRange(int64_t begin_tod, int64_t end_tod);

  /// Snapshot of the front-door counters (zeroes when the corresponding
  /// feature is disabled).
  struct FrontDoorStats {
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_insertions = 0;
    uint64_t cache_evictions = 0;
    uint64_t cache_invalidated = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
  };
  FrontDoorStats front_door_stats() const;

  ThreadPool& thread_pool() { return pool_; }
  int64_t delta_t_seconds() const { return delta_t_seconds_; }

 private:
  /// Validates and dispatches one plan (no front door). Runs on the
  /// calling thread; used for admitted work and for m-query legs.
  StatusOr<RegionResult> ExecutePlan(const QueryPlan& plan);

  /// The front door for one plan on the calling thread: cache lookup,
  /// admission (batch semantics = take-or-shed, single = bounded wait),
  /// execute, release, cache insert.
  StatusOr<RegionResult> ExecuteFrontDoor(const QueryPlan& plan, bool batch);

  /// Shared tail of the front-door paths: run, release the admission
  /// ticket (when held), insert into the cache on success.
  StatusOr<RegionResult> RunAdmitted(const QueryPlan& plan,
                                     const PlanKey* key, bool batch_ticket);

  /// Executes `plans` with no admission or caching — the raw fan-out PR 1
  /// shipped, kept for m-query legs (already admitted as one unit).
  std::vector<StatusOr<RegionResult>> ExecuteRaw(
      std::span<const QueryPlan> plans);

  StatusOr<RegionResult> ExecuteIndexed(const QueryPlan& plan);
  StatusOr<RegionResult> ExecuteExhaustive(const QueryPlan& plan);
  StatusOr<RegionResult> ExecuteRepeatedS(const QueryPlan& plan);

  /// Shared tail of the indexed paths: probability oracle, TBS, stats.
  /// `io_scope` is the attribution scope covering this query's execution.
  StatusOr<RegionResult> RunTraceBack(const BoundingRegions& regions,
                                      int64_t start_tod, int64_t duration,
                                      double prob, double setup_ms,
                                      const ScopedIoCounters& io_scope);

  const RoadNetwork* network_;
  const StIndex* st_index_;
  const ConIndex* con_index_;
  const SpeedProfile* profile_;
  int64_t delta_t_seconds_;
  QueryExecutorOptions options_;
  std::unique_ptr<ResultCache> cache_;          // null = caching off
  std::unique_ptr<AdmissionController> admission_;  // null = admission off
  ThreadPool pool_;
};

}  // namespace strr

#endif  // STRR_CORE_QUERY_EXECUTOR_H_
