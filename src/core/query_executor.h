// QueryExecutor: the "execute" half of the plan -> execute pipeline.
//
// Owns a ThreadPool shared by every query it runs and executes QueryPlans
// produced by the QueryPlanner:
//  * Execute()      — one plan, on the calling thread;
//  * ExecuteBatch() — fans independent plans across the pool and returns
//    one StatusOr per plan (a failing plan never poisons its neighbours);
//  * inside one kRepeatedS m-query, the per-location SQMB+TBS legs can run
//    in parallel on the same pool.
//
// Concurrency contract: every index read path underneath (ST-Index
// time-list reads through the BufferPool, lazy Con-Index materialization,
// speed-profile lookups) is concurrent-read-safe, so one executor over one
// engine's indexes can run arbitrarily many plans at once. Results are
// bit-identical to sequential execution — threading only changes the
// schedule, never the region (lazy Con-Index build races keep the first
// deterministic result; batch/leg merges happen in submission order).
#ifndef STRR_CORE_QUERY_EXECUTOR_H_
#define STRR_CORE_QUERY_EXECUTOR_H_

#include <span>
#include <vector>

#include "index/con_index.h"
#include "index/speed_profile.h"
#include "index/st_index.h"
#include "query/bounding_region.h"
#include "query/query.h"
#include "query/query_plan.h"
#include "roadnet/road_network.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace strr {

/// Executor construction knobs.
struct QueryExecutorOptions {
  /// Worker threads for batches and parallel m-query legs. 0 = one per
  /// hardware thread.
  int num_threads = 0;
  /// Run the per-location legs of a kRepeatedS plan on the pool (when not
  /// already on a pool worker). Off = legs run sequentially, reproducing
  /// the paper's single-threaded m-query baseline timings.
  bool parallel_mquery_legs = true;
};

/// Runs query plans over one engine's index stack. Thread-safe: Execute
/// and ExecuteBatch may be called concurrently from any thread.
class QueryExecutor {
 public:
  /// All referenced structures must outlive the executor.
  QueryExecutor(const RoadNetwork& network, const StIndex& st_index,
                const ConIndex& con_index, const SpeedProfile& profile,
                int64_t delta_t_seconds,
                const QueryExecutorOptions& options = {});

  /// Executes one plan on the calling thread (kRepeatedS legs may still
  /// fan out, see QueryExecutorOptions::parallel_mquery_legs).
  StatusOr<RegionResult> Execute(const QueryPlan& plan);

  /// Executes independent plans concurrently across the pool; result i
  /// corresponds to plan i. Per-plan errors are reported in place — the
  /// rest of the batch still runs. Safe to call from a pool worker (runs
  /// inline sequentially rather than deadlocking the pool on itself).
  std::vector<StatusOr<RegionResult>> ExecuteBatch(
      std::span<const QueryPlan> plans);

  ThreadPool& thread_pool() { return pool_; }
  int64_t delta_t_seconds() const { return delta_t_seconds_; }

 private:
  StatusOr<RegionResult> ExecuteIndexed(const QueryPlan& plan);
  StatusOr<RegionResult> ExecuteExhaustive(const QueryPlan& plan);
  StatusOr<RegionResult> ExecuteRepeatedS(const QueryPlan& plan);

  /// Shared tail of the indexed paths: probability oracle, TBS, stats.
  StatusOr<RegionResult> RunTraceBack(const BoundingRegions& regions,
                                      int64_t start_tod, int64_t duration,
                                      double prob, double setup_ms,
                                      const StorageStats& io_before);

  const RoadNetwork* network_;
  const StIndex* st_index_;
  const ConIndex* con_index_;
  const SpeedProfile* profile_;
  int64_t delta_t_seconds_;
  QueryExecutorOptions options_;
  ThreadPool pool_;
};

}  // namespace strr

#endif  // STRR_CORE_QUERY_EXECUTOR_H_
