// QueryExecutor: the query front door plus the "execute" half of the
// plan -> execute pipeline.
//
// Owns a ThreadPool shared by every query it runs and executes QueryPlans
// produced by the QueryPlanner:
//  * Execute()      — one plan, on the calling thread;
//  * ExecuteBatch() — fans independent plans across the pool and returns
//    one StatusOr per plan (a failing plan never poisons its neighbours);
//  * inside one kRepeatedS m-query, the per-location SQMB+TBS legs can run
//    in parallel on the same pool.
//
// Front door (both opt-in via options, off by default so the facade
// reproduces the paper's measurements exactly):
//  * ResultCache — plans are keyed canonically (MakePlanKey) and identical
//    plans are served from cache bit-identically, with Δt-slot
//    invalidation wired to speed-profile/congestion refreshes through
//    InvalidateCachedTimeRange;
//  * AdmissionController — bounded outstanding work with typed
//    ResourceExhausted shedding; batch plans shed instead of queueing
//    unboundedly, and batches keep at most a configured share of the
//    tickets so they cannot starve single queries. Work already running
//    on this executor's own pool (m-query legs, nested batches) is never
//    re-admitted: the enclosing query was admitted as one unit.
//  * Multi-tenant fairness (tenant_fairness, off by default) — admission
//    becomes tenant-aware: per-tenant quotas with typed per-tenant
//    shedding and deficit-round-robin weighted fair dispatch
//    (core/wfq_admission.h), cache entries are tenant-scoped (or
//    explicitly shared via tenant_shared_cache), and front_door_stats()
//    carries per-tenant hit/shed/in-flight/io counters from the shared
//    TenantRegistry. Tenancy never changes a computed region — only who
//    waits, who sheds, and how counters are attributed.
//
// Concurrency contract: every index read path underneath (ST-Index
// time-list reads through the BufferPool, lazy Con-Index materialization,
// speed-profile lookups) is concurrent-read-safe, so one executor over one
// engine's indexes can run arbitrarily many plans at once. Results are
// bit-identical to sequential execution — threading only changes the
// schedule, never the region (lazy Con-Index build races keep the first
// deterministic result; batch/leg merges happen in submission order).
// Per-query stats.io is attributed through a thread-local ScopedIoCounters
// in the storage layer, so concurrent queries never contaminate each
// other's I/O deltas.
//
// Live ingestion: when constructed with a LiveProfileManager, every query
// pins one immutable index snapshot (epoch pin + pointer load) at its
// front door and executes entirely against that version — profile reads
// and Con-Index tables can neither tear nor dangle while ingestion
// publishes refreshes concurrently, and stats.snapshot_version records
// exactly which version answered. An m-query's legs share their enclosing
// query's snapshot, so a composite result is never stitched from two
// versions. Without a manager, queries read the engine-built indexes
// directly (snapshot_version 0) with zero overhead.
#ifndef STRR_CORE_QUERY_EXECUTOR_H_
#define STRR_CORE_QUERY_EXECUTOR_H_

#include <memory>
#include <span>
#include <vector>

#include "core/admission_controller.h"
#include "core/result_cache.h"
#include "core/tenant_registry.h"
#include "core/wfq_admission.h"
#include "index/con_index.h"
#include "index/speed_profile.h"
#include "index/st_index.h"
#include "live/live_profile_manager.h"
#include "query/bounding_region.h"
#include "query/query.h"
#include "query/query_plan.h"
#include "roadnet/road_network.h"
#include "storage/io_context.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace strr {

/// Executor construction knobs.
struct QueryExecutorOptions {
  /// Worker threads for batches and parallel m-query legs. 0 = one per
  /// hardware thread.
  int num_threads = 0;
  /// Run the per-location legs of a kRepeatedS plan on the pool (when not
  /// already on a pool worker). Off = legs run sequentially, reproducing
  /// the paper's single-threaded m-query baseline timings.
  bool parallel_mquery_legs = true;
  /// Parallel SQMB/MQMB interior: fan each bounding-region expansion's
  /// frontier across this many workers (caller included) on a dedicated
  /// interior pool. Results are bit-identical to sequential (see
  /// search/frontier_engine.h); <= 1 keeps the interior sequential,
  /// reproducing the paper's timings. The interior pool is separate from
  /// the batch pool so a query running *on* a batch worker can still fan
  /// its interior without risking pool-against-itself starvation (interior
  /// tasks are pure compute and never block).
  int interior_workers = 1;
  // --- Raw-speed interior layout (results bit-identical either way; see
  // search/frontier_engine.h) ------------------------------------------------
  /// Expand over the RoadNetwork's flat CSR adjacency view instead of the
  /// per-segment vectors: one contiguous offsets+neighbors array walk per
  /// expansion, no pointer chase per segment.
  bool interior_flat_adjacency = false;
  /// Software-prefetch successor label slots one edge ahead during gather.
  /// Only meaningful on top of interior_flat_adjacency.
  bool interior_prefetch = false;
  /// Order parallel gather rounds by spatial cell so each worker's chunk
  /// touches a contiguous label range (commit order is restored by stable
  /// candidate tagging). Only affects interior_workers > 1.
  bool interior_locality_chunking = false;
  /// Fan TBS ring verification across the interior pool (ring-order
  /// commit keeps results bit-identical; see query/trace_back.h). Only
  /// effective when interior_workers > 1.
  bool parallel_tbs = false;
  /// Result-cache capacity in entries; 0 disables caching. Off by default:
  /// cached results replay the original execution's stats, which would
  /// skew the paper-reproduction measurements.
  size_t result_cache_entries = 0;
  /// Result-cache shard count (locks); only meaningful when caching is on.
  size_t result_cache_shards = 8;
  /// TinyLFU-style doorkeeper for the result cache: a counting-Bloom
  /// frequency sketch gates evictions so one-shot cold-location scans
  /// cannot churn hot entries out (see ResultCacheOptions). Off by
  /// default.
  bool result_cache_doorkeeper = false;
  /// Segmented-LRU (full TinyLFU) protected share of each cache shard, in
  /// [0, 1); 0 keeps plain LRU. See ResultCacheOptions::protected_share.
  double result_cache_protected_share = 0.0;
  /// Per-tenant cache capacity envelope, in (0, 1]; 0 = off. See
  /// ResultCacheOptions::tenant_capacity_share.
  double result_cache_tenant_share = 0.0;
  /// Max admitted-and-outstanding queries; 0 disables admission control.
  size_t max_inflight = 0;
  /// Max single-query callers blocked waiting for admission. With
  /// tenant_fairness on, this caps the *default* per-tenant waiting
  /// bound (explicitly configured tenants may exceed it).
  size_t max_queued = 64;
  /// Share of max_inflight all batch work combined may hold, in (0, 1].
  double batch_share = 0.5;
  // --- Multi-tenant front door (off by default: single-tenant behavior is
  // bit-identical to the plain admission path) -------------------------------
  /// Tenant-aware admission: per-tenant in-flight quotas and
  /// deficit-round-robin weighted fair queueing over plan.tenant, layered
  /// where the global AdmissionController would sit (requires
  /// max_inflight > 0 to actually gate; see core/wfq_admission.h). Also
  /// turns on per-tenant hit/shed/in-flight/io counters in
  /// front_door_stats() via the TenantRegistry.
  bool tenant_fairness = false;
  /// Cost-based DRR: charge each WFQ grant the tenant's measured average
  /// query cost in microseconds instead of one count, so fairness holds in
  /// CPU time (see WfqOptions::cost_based). Requires tenant_fairness and
  /// max_inflight > 0.
  bool wfq_cost_based = false;
  /// Serve cache entries across tenants from one shared key space instead
  /// of tenant-scoped entries. Results are bit-identical across tenants by
  /// construction, so sharing only changes isolation (cross-tenant timing
  /// visibility), never answers.
  bool tenant_shared_cache = false;
  /// Defaults for tenants never Configure()d in the registry (weight,
  /// quota, queue bound). Only meaningful when tenant_fairness is on and
  /// the executor creates its own registry (an engine-provided registry
  /// carries its own defaults).
  TenantConfig tenant_defaults;
  // --- Sharded scatter-gather (set by src/shard/ EngineShard) ---------------
  /// Dense per-segment shard owner table (ShardMap::owners). Together with
  /// shard_pools this scatters cone gather rounds and TBS ring slices to
  /// the owning shard's slice pool (see search/frontier_engine.h and
  /// query/trace_back.h). The spans must outlive the executor; results
  /// stay bit-identical.
  std::span<const uint32_t> shard_owner;
  /// One slice pool per shard, indexed by shard id.
  std::span<ThreadPool* const> shard_pools;
  /// The shard this executor serves (its slices run inline).
  uint32_t home_shard = 0;
  /// Minimum frontier size before a cone gather round fans out (parallel
  /// or sharded); below it the round runs sequentially on the caller.
  size_t min_parallel_frontier = 128;
  /// Minimum TBS ring size before ring verification fans out.
  size_t min_parallel_ring = 16;
};

/// Runs query plans over one engine's index stack. Thread-safe: Execute
/// and ExecuteBatch may be called concurrently from any thread.
class QueryExecutor {
 public:
  /// All referenced structures must outlive the executor. When `live` is
  /// non-null, queries pin snapshots from it instead of reading `con_index`
  /// / `profile` directly (those still serve as the version-0 base).
  /// `tenants` (optional) is the shared per-tenant config/stats registry
  /// — pass one registry to every executor over an engine so quotas and
  /// counters aggregate across them. Null + tenant_fairness on = the
  /// executor creates a private registry from options.tenant_defaults.
  QueryExecutor(const RoadNetwork& network, const StIndex& st_index,
                const ConIndex& con_index, const SpeedProfile& profile,
                int64_t delta_t_seconds,
                const QueryExecutorOptions& options = {},
                LiveProfileManager* live = nullptr,
                TenantRegistry* tenants = nullptr);

  /// Unregisters this executor's cache from the live manager's
  /// invalidation fan-out (registered automatically at construction when
  /// both live mode and caching are on — every executor's cache sees
  /// publishes, including MakeExecutor-created ones). The manager must
  /// outlive the executor.
  ~QueryExecutor();

  /// Executes one plan on the calling thread (kRepeatedS legs may still
  /// fan out, see QueryExecutorOptions::parallel_mquery_legs), routed
  /// through the front door: cache lookup first, then admission (which
  /// may block in the bounded queue or shed with ResourceExhausted).
  StatusOr<RegionResult> Execute(const QueryPlan& plan);

  /// Executes independent plans concurrently across the pool; result i
  /// corresponds to plan i. Per-plan errors are reported in place — the
  /// rest of the batch still runs. Cache hits are served inline; the rest
  /// admit at submission time and plans that exceed capacity are shed in
  /// place with ResourceExhausted (never queued unboundedly). Safe to call
  /// from a pool worker (runs inline sequentially rather than deadlocking
  /// the pool on itself).
  std::vector<StatusOr<RegionResult>> ExecuteBatch(
      std::span<const QueryPlan> plans);

  /// Executes one plan against an explicit index surface with NO front
  /// door (no cache, no admission, no snapshot pin): the sharded serving
  /// tier pins one snapshot at its coordinator and runs the plan on the
  /// owning shard's executor against exactly that version. Null con_index
  /// selects the engine-built statics (version-0 view).
  StatusOr<RegionResult> ExecuteAgainst(const QueryPlan& plan,
                                        const ConIndex* con_index,
                                        const SpeedProfile* profile,
                                        uint64_t snapshot_version);

  // --- Front door ------------------------------------------------------------

  /// The plan-keyed result cache, or nullptr when disabled.
  ResultCache* result_cache() { return cache_.get(); }

  /// The admission controller, or nullptr when disabled (or when the
  /// tenant-aware scheduler replaced it — see wfq_admission()).
  AdmissionController* admission_controller() { return admission_.get(); }

  /// The tenant-aware WFQ admission scheduler, or nullptr when
  /// tenant_fairness is off (or admission is unbounded).
  WfqAdmissionController* wfq_admission() { return wfq_.get(); }

  /// The per-tenant config/stats registry this executor attributes to, or
  /// nullptr when tenancy is off.
  TenantRegistry* tenant_registry() { return tenants_; }

  /// Evicts cached results whose Δt-slot window intersects
  /// [begin_tod, end_tod) — call after a congestion / speed-profile
  /// refresh of that time range. No-op when caching is off.
  void InvalidateCachedTimeRange(int64_t begin_tod, int64_t end_tod);

  /// Snapshot of the front-door counters (zeroes when the corresponding
  /// feature is disabled). Pool counters are always live: together with
  /// the cache/admission numbers they answer "where is the latency" —
  /// queued behind workers (pool_queue_depth), shed at the door, or
  /// absorbed by the cache.
  struct FrontDoorStats {
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_insertions = 0;
    uint64_t cache_evictions = 0;
    uint64_t cache_invalidated = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t pool_submitted = 0;
    uint64_t pool_completed = 0;
    size_t pool_queue_depth = 0;
    /// Current live snapshot version (0 when live ingestion is off).
    uint64_t snapshot_version = 0;
    /// ExpansionContext pool counters (process-global — the pool is shared
    /// by queries, Con-Index builds and live rebuilds; reuses / acquires
    /// is the steady-state "no allocation per search" hit rate).
    uint64_t ctx_pool_acquires = 0;
    uint64_t ctx_pool_reuses = 0;
    /// Entries the result-cache doorkeeper refused to admit (0 when off).
    uint64_t cache_doorkeeper_rejects = 0;
    /// Per-tenant breakdown (empty when tenancy is off), snapshotted
    /// from the TenantRegistry this executor attributes to. With a
    /// private registry (standalone executor) the per-tenant
    /// admitted/shed sum to the global counters above and
    /// cache_hits/cache_misses to the global cache counters; with the
    /// engine-shared registry the breakdown is REGISTRY-wide — it
    /// aggregates every executor sharing it, while the scalar counters
    /// above remain this executor's own, so the sums only match when one
    /// executor serves the engine. io is the per-tenant slice of the
    /// ScopedIoCounters attribution (exact and disjoint either way).
    std::vector<TenantCounters> tenants;
  };
  FrontDoorStats front_door_stats() const;

  ThreadPool& thread_pool() { return pool_; }
  int64_t delta_t_seconds() const { return delta_t_seconds_; }

 private:
  /// The index surfaces one query reads: either the engine-built statics
  /// (version 0) or one pinned live snapshot. Plain pointers — the pin
  /// that keeps a snapshot alive is held in the enclosing query's frame
  /// (ExecuteFrontDoor / RunAdmitted) and outlives every view use,
  /// including m-query legs running on pool workers.
  struct IndexView {
    const ConIndex* con_index = nullptr;
    const SpeedProfile* profile = nullptr;
    uint64_t version = 0;
  };

  /// The engine-built indexes (used when live ingestion is off).
  IndexView StaticView() const { return {con_index_, profile_, 0}; }

  /// Validates and dispatches one plan against `view` (no front door).
  /// Runs on the calling thread; used for admitted work and m-query legs.
  StatusOr<RegionResult> ExecutePlan(const QueryPlan& plan,
                                     const IndexView& view);

  /// The front door for one plan on the calling thread: cache lookup,
  /// admission (batch semantics = take-or-shed, single = bounded wait),
  /// snapshot pin, execute, release, cache insert.
  StatusOr<RegionResult> ExecuteFrontDoor(const QueryPlan& plan, bool batch);

  // One admission surface over the two controllers (at most one of
  // wfq_/admission_ is active; the plain controller ignores the tenant).
  // Every front-door site goes through these so the tenant-aware and
  // plain paths can never diverge per call site.
  bool AdmissionEnabled() const {
    return wfq_ != nullptr || admission_ != nullptr;
  }
  Status AdmitSingle(TenantId tenant);
  Status TryAdmitBatchTicket(TenantId tenant);
  /// `cost_us` (>= 0) is the query's measured execution wall time; it
  /// feeds the tenant's cost EWMA under cost-based DRR (ignored by the
  /// plain controller). Negative = unmeasured.
  void ReleaseTicket(TenantId tenant, bool batch, double cost_us = -1.0);

  /// Shared tail of the front-door paths: pin a snapshot, run, release the
  /// admission ticket (when held), insert into the cache on success.
  StatusOr<RegionResult> RunAdmitted(const QueryPlan& plan,
                                     const PlanKey* key, bool batch_ticket);

  /// Pins one snapshot (when live) and executes the plan against it; the
  /// pin spans the whole execution, m-query legs included.
  StatusOr<RegionResult> ExecutePinned(const QueryPlan& plan);

  /// Inserts `result` under `key` unless a newer snapshot was published
  /// while it executed (a stale insert could serve a superseded version
  /// after its Δt-slots were already invalidated).
  void MaybeCacheInsert(const PlanKey& key, const RegionResult& result,
                        TenantId tenant);

  /// Executes `plans` against one shared `view` with no admission or
  /// caching — the raw fan-out PR 1 shipped, kept for m-query legs
  /// (admitted, and snapshot-pinned, as one unit with their m-query).
  std::vector<StatusOr<RegionResult>> ExecuteRaw(
      std::span<const QueryPlan> plans, const IndexView& view);

  StatusOr<RegionResult> ExecuteIndexed(const QueryPlan& plan,
                                        const IndexView& view);
  StatusOr<RegionResult> ExecuteExhaustive(const QueryPlan& plan,
                                           const IndexView& view);
  StatusOr<RegionResult> ExecuteRepeatedS(const QueryPlan& plan,
                                          const IndexView& view);

  /// Shared tail of the indexed paths: probability oracle, TBS, stats.
  /// `io_scope` is the attribution scope covering this query's execution.
  StatusOr<RegionResult> RunTraceBack(const BoundingRegions& regions,
                                      int64_t start_tod, int64_t duration,
                                      double prob, double setup_ms,
                                      const ScopedIoCounters& io_scope);

  const RoadNetwork* network_;
  const StIndex* st_index_;
  const ConIndex* con_index_;
  const SpeedProfile* profile_;
  int64_t delta_t_seconds_;
  QueryExecutorOptions options_;
  LiveProfileManager* live_;                    // null = live ingestion off
  uint64_t live_listener_id_ = 0;               // 0 = not registered
  std::unique_ptr<ResultCache> cache_;          // null = caching off
  std::unique_ptr<AdmissionController> admission_;  // null = admission off
  /// Tenant-aware admission (replaces admission_ when tenant_fairness is
  /// on); null = plain/global admission or none.
  std::unique_ptr<WfqAdmissionController> wfq_;
  /// Shared registry (engine-owned), or owned_tenants_.get(), or null
  /// when tenancy is off. Used for per-tenant cache/io attribution even
  /// when admission itself is unbounded.
  TenantRegistry* tenants_ = nullptr;
  std::unique_ptr<TenantRegistry> owned_tenants_;
  /// Dedicated pool for the parallel search interior (null = sequential
  /// interior). Sized interior_workers - 1: the querying thread always
  /// works the first chunk itself, so progress never depends on pool
  /// capacity.
  std::unique_ptr<ThreadPool> interior_pool_;
  ThreadPool pool_;
};

}  // namespace strr

#endif  // STRR_CORE_QUERY_EXECUTOR_H_
