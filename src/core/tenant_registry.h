// TenantRegistry: identity, configuration and accounting for the
// multi-tenant query front door.
//
// A production front door serving millions of users is never one client:
// it is many tenants (apps, fleets, API keys) with very different
// traffic shapes, and PR 2's AdmissionController treats them all as one
// global ticket pool — one aggressive client can monopolize the executor
// and starve everyone else. The registry is the shared source of truth
// the tenant-aware pieces hang off:
//
//  * configuration — per-tenant WFQ weight, in-flight quota and waiting
//    bound, with a default config for tenants that never registered
//    explicitly (open admission: unknown tenants are served under the
//    defaults, not rejected);
//  * accounting — per-tenant admitted / shed / completed / cache
//    hit-miss / in-flight / storage-I/O counters, bumped by the
//    WfqAdmissionController (admission outcomes) and the QueryExecutor
//    (cache and completion attribution), surfaced through
//    QueryExecutor::front_door_stats().
//
// Thread-safe, and built for the hot path: per-tenant state lives behind
// stable pointers in a grow-only map guarded by a shared_mutex (shared
// lock for lookups, exclusive only for first-contact inserts, Configure
// and snapshots), and every counter is an atomic — concurrent bumps from
// many executors touch no exclusive lock, so attribution never
// serializes the cache-hit path. The registry never calls out, so
// callers may bump counters while holding their own locks.
#ifndef STRR_CORE_TENANT_REGISTRY_H_
#define STRR_CORE_TENANT_REGISTRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "query/query.h"
#include "storage/page.h"
#include "util/status.h"

namespace strr {

/// Per-tenant front-door configuration.
struct TenantConfig {
  /// Weighted-fair-queueing weight: under saturation a weight-2 tenant
  /// drains ~2x the completions of a weight-1 tenant. Treated as >= 1.
  uint32_t weight = 1;
  /// Per-tenant quota on admitted-and-outstanding queries; 0 = bounded
  /// only by the scheduler's global cap. A tenant at its quota sheds (or
  /// queues) without touching any other tenant's tickets.
  size_t max_inflight = 0;
  /// Per-tenant bound on single-query callers waiting for admission;
  /// beyond it the tenant's own queries shed typed, other tenants
  /// unaffected.
  size_t max_queued = 64;
};

/// Point-in-time counters for one tenant (monotonic except inflight).
struct TenantCounters {
  TenantId tenant = kDefaultTenant;
  /// Admission tickets granted (singles + batch plans).
  uint64_t admitted = 0;
  /// Typed ResourceExhausted rejections charged to this tenant.
  uint64_t shed = 0;
  /// Queries executed to completion for this tenant (cache hits are
  /// served without executing and counted under cache_hits instead, so
  /// "queries served" = completed + cache_hits).
  uint64_t completed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Currently admitted-and-outstanding queries (0 when the WFQ
  /// scheduler is off — plain admission does not track tenants).
  size_t inflight = 0;
  /// Storage traffic attributed to this tenant's completed queries, from
  /// the per-query ScopedIoCounters attribution — exact and disjoint
  /// across tenants even under concurrent execution.
  StorageStats io;
};

/// See file comment. All methods are thread-safe.
class TenantRegistry {
 public:
  /// `defaults` applies to every tenant that was never Configure()d.
  explicit TenantRegistry(const TenantConfig& defaults = {});

  /// Stops the config-file watcher, if one is running.
  ~TenantRegistry();

  /// Sets (or replaces) one tenant's configuration. Counters survive
  /// reconfiguration.
  void Configure(TenantId tenant, const TenantConfig& config);

  /// The tenant's configuration, or the registry defaults when it never
  /// registered.
  TenantConfig config(TenantId tenant) const;

  // --- Dynamic configuration -------------------------------------------------

  /// Replaces tenant configs from a text file: one whitespace-separated
  /// `tenant weight max_inflight max_queued` line per tenant, '#' starts
  /// a comment, blank lines ignored. The whole file parses before any
  /// tenant is touched — a malformed line rejects the load and leaves
  /// every config as it was (counters always survive).
  Status LoadFromFile(const std::string& path);

  /// Starts a background thread that re-runs LoadFromFile whenever the
  /// file's mtime changes (polled every poll_ms). Loads the file once
  /// synchronously and fails if that load fails. One watcher per
  /// registry; call StopFileWatch (or destroy the registry) to stop.
  Status StartFileWatch(const std::string& path, int64_t poll_ms = 200);
  void StopFileWatch();

  /// Successful config loads (initial + reloads) since construction.
  uint64_t reloads() const { return reloads_.load(std::memory_order_relaxed); }

  // --- Shared quota arbitration ---------------------------------------------

  /// Atomically claims one in-flight slot for the tenant iff its current
  /// in-flight count is below `max_inflight` (0 = unlimited). On success
  /// bumps admitted + inflight (one admission ticket); on failure changes
  /// nothing. CAS on the shared counter makes the quota engine-global:
  /// every shard arbitrates against the same count instead of N separate
  /// per-executor tallies.
  bool TryClaimInflight(TenantId tenant, size_t max_inflight);

  /// Returns a claim taken with TryClaimInflight (decrements inflight).
  void ReleaseClaim(TenantId tenant);

  // --- Counter bumps (lock-free once the tenant exists) ----------------------

  /// One ticket granted: bumps admitted and inflight together.
  void RecordAdmission(TenantId tenant);
  /// One ticket returned: decrements inflight.
  void RecordRelease(TenantId tenant);
  void RecordShed(TenantId tenant);
  void RecordCacheHit(TenantId tenant);
  void RecordCacheMiss(TenantId tenant);
  /// One query executed to completion; `io` is its attributed traffic.
  void RecordCompletion(TenantId tenant, const StorageStats& io);

  /// Counters for one tenant (zeroes if it was never seen).
  TenantCounters counters(TenantId tenant) const;

  /// Counters for every tenant ever seen (configured or counted),
  /// sorted by tenant id for stable output.
  std::vector<TenantCounters> Snapshot() const;

 private:
  struct State {
    /// Guarded by mu_ (shared read / exclusive write in Configure).
    TenantConfig config;
    bool configured = false;  ///< false = serving under defaults_

    // Counters: independent atomics, relaxed — each is a standalone
    // monotonic statistic; snapshots are per-counter consistent, which
    // is all the stats surface promises.
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> inflight{0};
    std::atomic<uint64_t> io_disk_page_reads{0};
    std::atomic<uint64_t> io_disk_page_writes{0};
    std::atomic<uint64_t> io_cache_hits{0};
    std::atomic<uint64_t> io_cache_misses{0};
    std::atomic<uint64_t> io_evictions{0};
  };

  /// Stable pointer to the tenant's state, creating it on first contact.
  /// Shared-lock fast path; exclusive lock only on the first sighting of
  /// a tenant (entries are never erased, so returned pointers stay valid
  /// for the registry's lifetime and bumps happen outside any lock).
  State* GetOrCreate(TenantId tenant);

  /// Loads one state's counters into the plain snapshot form.
  static TenantCounters Load(TenantId tenant, const State& state);

  TenantConfig defaults_;
  mutable std::shared_mutex mu_;  ///< guards the map and config fields
  std::unordered_map<TenantId, std::unique_ptr<State>> tenants_;

  // Config-file watcher (StartFileWatch).
  std::atomic<uint64_t> reloads_{0};
  std::mutex watch_mu_;  ///< guards watch_* below and pairs with watch_cv_
  std::condition_variable watch_cv_;
  std::thread watch_thread_;
  bool watch_stop_ = false;
  std::string watch_path_;
  std::filesystem::file_time_type watch_mtime_{};
};

}  // namespace strr

#endif  // STRR_CORE_TENANT_REGISTRY_H_
