#include "core/reachability_engine.h"

#include <algorithm>
#include <filesystem>

#include "query/es_baseline.h"
#include "query/probability.h"
#include "query/trace_back.h"
#include "util/stopwatch.h"

namespace strr {

StatusOr<std::unique_ptr<ReachabilityEngine>> ReachabilityEngine::Build(
    const RoadNetwork& network, const TrajectoryStore& store,
    const EngineOptions& options) {
  if (options.work_dir.empty()) {
    return Status::InvalidArgument("EngineOptions.work_dir is required");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.work_dir, ec);
  if (ec) {
    return Status::IoError("cannot create work_dir " + options.work_dir +
                           ": " + ec.message());
  }
  auto engine = std::unique_ptr<ReachabilityEngine>(
      new ReachabilityEngine(network, options));

  SpeedProfileOptions profile_opt;
  profile_opt.slot_seconds = options.profile_slot_seconds;
  STRR_ASSIGN_OR_RETURN(SpeedProfile profile,
                        SpeedProfile::Build(network, store, profile_opt));
  engine->profile_ = std::make_unique<SpeedProfile>(std::move(profile));

  StIndexOptions st_opt;
  st_opt.slot_seconds = options.delta_t_seconds;
  st_opt.posting_path = options.work_dir + "/st_index_postings.bin";
  st_opt.cache_pages = options.cache_pages;
  st_opt.page_size = options.page_size;
  STRR_ASSIGN_OR_RETURN(engine->st_index_,
                        StIndex::Build(network, store, st_opt));

  ConIndexOptions con_opt;
  con_opt.delta_t_seconds = options.delta_t_seconds;
  con_opt.num_build_threads = options.build_threads;
  STRR_ASSIGN_OR_RETURN(
      engine->con_index_,
      ConIndex::Create(network, *engine->profile_, con_opt));
  if (options.precompute_con_index) {
    STRR_RETURN_IF_ERROR(engine->con_index_->BuildAll());
  }
  return engine;
}

StatusOr<RegionResult> ReachabilityEngine::RunTraceBack(
    const BoundingRegions& regions, int64_t start_tod, int64_t duration,
    double prob, double setup_ms, const StorageStats& io_before) {
  Stopwatch watch;
  STRR_ASSIGN_OR_RETURN(
      ReachabilityProbability oracle,
      ReachabilityProbability::Create(*st_index_, regions.start_segments,
                                      start_tod, options_.delta_t_seconds,
                                      duration));

  RegionResult result;
  if (oracle.StartHasNoTraffic()) {
    // No trajectory ever left the start window on any day: every segment's
    // probability is identically zero, so the Prob-region is empty. (The
    // bounding regions come from speed *statistics* and can be non-empty
    // even then; trusting them here would fabricate reachability.)
    result.segments.clear();
  } else {
    STRR_ASSIGN_OR_RETURN(TbsOutcome tbs,
                          TraceBackSearch(*network_, regions, prob, oracle));
    result.segments = std::move(tbs.region);
  }
  result.total_length_m = network_->LengthOfSegments(result.segments);
  result.stats.wall_ms = setup_ms + watch.ElapsedMillis();
  result.stats.segments_verified = oracle.verifications();
  result.stats.time_lists_read = oracle.time_lists_read();
  result.stats.io = st_index_->storage_stats() - io_before;
  result.stats.max_region_segments = regions.max_region.size();
  result.stats.min_region_segments = regions.min_region.size();
  result.stats.boundary_segments = regions.boundary.size();
  return result;
}

StatusOr<RegionResult> ReachabilityEngine::SQueryIndexed(const SQuery& query) {
  if (query.prob <= 0.0 || query.prob > 1.0) {
    return Status::InvalidArgument("SQuery: Prob must be in (0, 1]");
  }
  Stopwatch watch;
  StorageStats io_before = st_index_->storage_stats();
  STRR_ASSIGN_OR_RETURN(SegmentId r0,
                        st_index_->LocateSegment(query.location));
  // A location on a two-way street denotes both directed twins.
  STRR_ASSIGN_OR_RETURN(
      BoundingRegions regions,
      SqmbSearchSet(*network_, *con_index_, LocationSegmentSet(*network_, r0),
                    query.start_tod, query.duration));
  return RunTraceBack(regions, query.start_tod, query.duration, query.prob,
                      watch.ElapsedMillis(), io_before);
}

StatusOr<RegionResult> ReachabilityEngine::SQueryExhaustive(
    const SQuery& query) {
  return ExhaustiveSearch(*st_index_, *profile_, query,
                          options_.delta_t_seconds);
}

StatusOr<RegionResult> ReachabilityEngine::MQueryIndexed(const MQuery& query) {
  if (query.locations.empty()) {
    return Status::InvalidArgument("MQuery: no locations");
  }
  if (query.prob <= 0.0 || query.prob > 1.0) {
    return Status::InvalidArgument("MQuery: Prob must be in (0, 1]");
  }
  Stopwatch watch;
  StorageStats io_before = st_index_->storage_stats();
  std::vector<SegmentId> starts;
  starts.reserve(query.locations.size() * 2);
  for (const XyPoint& p : query.locations) {
    STRR_ASSIGN_OR_RETURN(SegmentId r0, st_index_->LocateSegment(p));
    for (SegmentId s : LocationSegmentSet(*network_, r0)) starts.push_back(s);
  }
  STRR_ASSIGN_OR_RETURN(
      BoundingRegions regions,
      MqmbSearch(*network_, *con_index_, *profile_, starts, query.start_tod,
                 query.duration));
  return RunTraceBack(regions, query.start_tod, query.duration, query.prob,
                      watch.ElapsedMillis(), io_before);
}

StatusOr<RegionResult> ReachabilityEngine::MQueryRepeatedSQuery(
    const MQuery& query) {
  if (query.locations.empty()) {
    return Status::InvalidArgument("MQuery: no locations");
  }
  Stopwatch watch;
  StorageStats io_before = st_index_->storage_stats();
  RegionResult merged;
  std::vector<SegmentId> all;
  for (const XyPoint& p : query.locations) {
    SQuery sub{p, query.start_tod, query.duration, query.prob};
    STRR_ASSIGN_OR_RETURN(RegionResult r, SQueryIndexed(sub));
    all.insert(all.end(), r.segments.begin(), r.segments.end());
    merged.stats.segments_verified += r.stats.segments_verified;
    merged.stats.time_lists_read += r.stats.time_lists_read;
    merged.stats.max_region_segments += r.stats.max_region_segments;
    merged.stats.min_region_segments += r.stats.min_region_segments;
    merged.stats.boundary_segments += r.stats.boundary_segments;
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  merged.segments = std::move(all);
  merged.total_length_m = network_->LengthOfSegments(merged.segments);
  merged.stats.wall_ms = watch.ElapsedMillis();
  merged.stats.io = st_index_->storage_stats() - io_before;
  return merged;
}

void ReachabilityEngine::ResetIoStats(bool drop_cache) {
  st_index_->ResetStorageStats();
  if (drop_cache) st_index_->DropCache();
}

}  // namespace strr
