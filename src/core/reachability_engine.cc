#include "core/reachability_engine.h"

#include <filesystem>

namespace strr {

StatusOr<std::unique_ptr<ReachabilityEngine>> ReachabilityEngine::Build(
    const RoadNetwork& network, const TrajectoryStore& store,
    const EngineOptions& options) {
  if (options.work_dir.empty()) {
    return Status::InvalidArgument("EngineOptions.work_dir is required");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.work_dir, ec);
  if (ec) {
    return Status::IoError("cannot create work_dir " + options.work_dir +
                           ": " + ec.message());
  }
  auto engine = std::unique_ptr<ReachabilityEngine>(
      new ReachabilityEngine(network, options));

  SpeedProfileOptions profile_opt;
  profile_opt.slot_seconds = options.profile_slot_seconds;
  STRR_ASSIGN_OR_RETURN(SpeedProfile profile,
                        SpeedProfile::Build(network, store, profile_opt));
  engine->profile_ = std::make_unique<SpeedProfile>(std::move(profile));

  StIndexOptions st_opt;
  st_opt.slot_seconds = options.delta_t_seconds;
  st_opt.posting_path = options.work_dir + "/st_index_postings.bin";
  st_opt.cache_pages = options.cache_pages;
  st_opt.page_size = options.page_size;
  STRR_ASSIGN_OR_RETURN(engine->st_index_,
                        StIndex::Build(network, store, st_opt));

  ConIndexOptions con_opt;
  con_opt.delta_t_seconds = options.delta_t_seconds;
  con_opt.num_build_threads = options.build_threads;
  STRR_ASSIGN_OR_RETURN(
      engine->con_index_,
      ConIndex::Create(network, *engine->profile_, con_opt));
  if (options.precompute_con_index) {
    STRR_RETURN_IF_ERROR(engine->con_index_->BuildAll());
  }

  engine->planner_ =
      std::make_unique<QueryPlanner>(network, *engine->st_index_);
  QueryExecutorOptions exec_opt;
  exec_opt.num_threads = options.query_threads;
  exec_opt.parallel_mquery_legs = options.parallel_mquery_legs;
  exec_opt.result_cache_entries = options.result_cache_entries;
  exec_opt.result_cache_shards = options.result_cache_shards;
  exec_opt.max_inflight = options.max_inflight_queries;
  exec_opt.max_queued = options.max_queued_queries;
  exec_opt.batch_share = options.batch_share;
  engine->executor_ = engine->MakeExecutor(exec_opt);

  // Invalidation fan-out: a speed-profile refresh drops the Con-Index
  // tables and the default executor's cached results for exactly the
  // covered time range. The captured pointers are owned by the engine and
  // outlive the profile that holds the listener.
  ConIndex* con_index = engine->con_index_.get();
  QueryExecutor* executor = engine->executor_.get();
  engine->profile_->AddUpdateListener(
      [con_index, executor](int64_t begin_tod, int64_t end_tod) {
        con_index->InvalidateTimeRange(begin_tod, end_tod);
        executor->InvalidateCachedTimeRange(begin_tod, end_tod);
      });
  return engine;
}

std::unique_ptr<QueryExecutor> ReachabilityEngine::MakeExecutor(
    const QueryExecutorOptions& options) const {
  return std::make_unique<QueryExecutor>(*network_, *st_index_, *con_index_,
                                         *profile_, options_.delta_t_seconds,
                                         options);
}

StatusOr<RegionResult> ReachabilityEngine::SQueryIndexed(const SQuery& query) {
  STRR_ASSIGN_OR_RETURN(QueryPlan plan,
                        planner_->PlanSQuery(query, QueryStrategy::kIndexed));
  return executor_->Execute(plan);
}

StatusOr<RegionResult> ReachabilityEngine::SQueryExhaustive(
    const SQuery& query) {
  STRR_ASSIGN_OR_RETURN(
      QueryPlan plan, planner_->PlanSQuery(query, QueryStrategy::kExhaustive));
  return executor_->Execute(plan);
}

StatusOr<RegionResult> ReachabilityEngine::MQueryIndexed(const MQuery& query) {
  STRR_ASSIGN_OR_RETURN(QueryPlan plan,
                        planner_->PlanMQuery(query, QueryStrategy::kIndexed));
  return executor_->Execute(plan);
}

StatusOr<RegionResult> ReachabilityEngine::MQueryRepeatedSQuery(
    const MQuery& query) {
  STRR_ASSIGN_OR_RETURN(
      QueryPlan plan, planner_->PlanMQuery(query, QueryStrategy::kRepeatedS));
  return executor_->Execute(plan);
}

void ReachabilityEngine::ResetIoStats(bool drop_cache) {
  st_index_->ResetStorageStats();
  if (drop_cache) st_index_->DropCache();
}

void ReachabilityEngine::ApplySpeedObservation(SegmentId seg,
                                               int64_t time_of_day_sec,
                                               double speed_mps) {
  // The profile notifies its update listeners (registered in Build), which
  // invalidate the Con-Index slot tables and the cached query results.
  profile_->ApplyObservation(seg, time_of_day_sec, speed_mps);
}

}  // namespace strr
