#include "core/reachability_engine.h"

#include <cstring>
#include <filesystem>

#include "live/recovery_manager.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/shard_coordinator.h"
#include "util/logging.h"

namespace strr {

// Out of line: the header only forward-declares ShardCoordinator, so
// everything that needs its destructor lives here.
ReachabilityEngine::ReachabilityEngine(const RoadNetwork& network,
                                       EngineOptions options)
    : network_(&network), options_(std::move(options)) {}

ReachabilityEngine::~ReachabilityEngine() = default;

StatusOr<std::unique_ptr<ReachabilityEngine>> ReachabilityEngine::Build(
    const RoadNetwork& network, const TrajectoryStore& store,
    const EngineOptions& options) {
  if (options.work_dir.empty()) {
    return Status::InvalidArgument("EngineOptions.work_dir is required");
  }
  if (options.live_durability && !options.live_ingestion) {
    return Status::InvalidArgument(
        "EngineOptions.live_durability requires live_ingestion");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.work_dir, ec);
  if (ec) {
    return Status::IoError("cannot create work_dir " + options.work_dir +
                           ": " + ec.message());
  }
  auto engine = std::unique_ptr<ReachabilityEngine>(
      new ReachabilityEngine(network, options));

  // Observability is process-global (one scrape surface per process), so
  // the knobs configure the shared registry/tracer rather than an
  // engine-owned object. Deliberately one-way for metrics: building a
  // second engine without the knob must not disable a first engine's
  // scrape surface mid-flight.
  if (options.metrics) {
    obs::MetricsRegistry::Global().set_enabled(true);
  }
  if (options.trace_sample_n > 0 || options.slow_query_ms > 0.0) {
    obs::TracerOptions trace_opt;
    trace_opt.sample_n = options.trace_sample_n;
    trace_opt.flight_recorder_events = options.flight_recorder_events;
    trace_opt.slow_query_ms = options.slow_query_ms;
    obs::Tracer::Global().Configure(trace_opt);
  }

  SpeedProfileOptions profile_opt;
  profile_opt.slot_seconds = options.profile_slot_seconds;
  STRR_ASSIGN_OR_RETURN(SpeedProfile profile,
                        SpeedProfile::Build(network, store, profile_opt));
  engine->profile_ = std::make_unique<SpeedProfile>(std::move(profile));

  StIndexOptions st_opt;
  st_opt.slot_seconds = options.delta_t_seconds;
  st_opt.posting_path = options.work_dir + "/st_index_postings.bin";
  st_opt.cache_pages = options.cache_pages;
  st_opt.page_size = options.page_size;
  st_opt.max_locate_distance_m = options.max_locate_distance_m;
  st_opt.cache_policy = options.block_cache_tinylfu ? CachePolicy::kTinyLfu
                                                    : CachePolicy::kLru;
  st_opt.cache_protected_share = options.block_cache_protected_share;
  st_opt.posting_bloom_bits_per_key = options.posting_bloom_bits_per_key;
  STRR_ASSIGN_OR_RETURN(engine->st_index_,
                        StIndex::Build(network, store, st_opt));

  ConIndexOptions con_opt;
  con_opt.delta_t_seconds = options.delta_t_seconds;
  con_opt.num_build_threads = options.build_threads;
  con_opt.flat_interior = options.interior_flat_adjacency;
  STRR_ASSIGN_OR_RETURN(
      engine->con_index_,
      ConIndex::Create(network, *engine->profile_, con_opt));
  if (options.precompute_con_index) {
    STRR_RETURN_IF_ERROR(engine->con_index_->BuildAll());
  }

  if (options.live_ingestion) {
    // Live ingestion stack: epochs reclaim superseded snapshots, the
    // manager publishes them over the engine-built base (version 0), and
    // the ingestor batches the observation stream into publishes.
    EpochManagerOptions epoch_opt;
    epoch_opt.max_retained = options.live_max_retained_epochs;
    engine->epochs_ = std::make_unique<EpochManager>(epoch_opt);
    LiveProfileOptions live_opt;
    live_opt.prewarm = options.live_prewarm;
    live_opt.prewarm_threads = options.live_prewarm_threads;
    engine->live_manager_ = std::make_unique<LiveProfileManager>(
        *engine->epochs_, *engine->profile_, *engine->con_index_, live_opt);
  }

  if (options.negative_cache_entries > 0) {
    NegativeCacheOptions neg_opt;
    neg_opt.capacity = options.negative_cache_entries;
    neg_opt.ttl_ms = options.negative_cache_ttl_ms;
    engine->negative_cache_ = std::make_unique<NegativeCache>(neg_opt);
  }

  if (options.tenant_fairness) {
    // One registry for the whole engine: the default executor and every
    // MakeExecutor-created one share tenant configs, quotas and counters.
    // max_queued_queries caps the default per-tenant waiting bound, so
    // the knob keeps meaning what it meant on the plain admission path.
    TenantConfig defaults = options.tenant_defaults;
    defaults.max_queued =
        std::min(defaults.max_queued, options.max_queued_queries);
    engine->tenants_ = std::make_unique<TenantRegistry>(defaults);
  }

  engine->planner_ =
      std::make_unique<QueryPlanner>(network, *engine->st_index_);
  QueryExecutorOptions exec_opt;
  exec_opt.num_threads = options.query_threads;
  exec_opt.parallel_mquery_legs = options.parallel_mquery_legs;
  exec_opt.interior_workers = options.interior_workers;
  exec_opt.interior_flat_adjacency = options.interior_flat_adjacency;
  exec_opt.interior_prefetch = options.interior_prefetch;
  exec_opt.interior_locality_chunking = options.interior_locality_chunking;
  exec_opt.parallel_tbs = options.parallel_tbs;
  exec_opt.result_cache_entries = options.result_cache_entries;
  exec_opt.result_cache_shards = options.result_cache_shards;
  exec_opt.result_cache_doorkeeper = options.result_cache_doorkeeper;
  exec_opt.result_cache_protected_share = options.result_cache_protected_share;
  exec_opt.result_cache_tenant_share = options.result_cache_tenant_share;
  exec_opt.max_inflight = options.max_inflight_queries;
  exec_opt.max_queued = options.max_queued_queries;
  exec_opt.batch_share = options.batch_share;
  exec_opt.tenant_fairness = options.tenant_fairness;
  exec_opt.wfq_cost_based = options.wfq_cost_based;
  exec_opt.tenant_shared_cache = options.tenant_shared_cache;
  exec_opt.tenant_defaults = options.tenant_defaults;
  engine->executor_ = engine->MakeExecutor(exec_opt);

  if (options.live_ingestion) {
    // Refresh fan-out for the live path needs no wiring here: every
    // cached executor over the live manager (the default one above and
    // any MakeExecutor-created one) registered its own Δt-slot eviction
    // listener at construction. Con-Index tables need no hook either —
    // every publish carries its own copy-on-invalidate index.
    if (options.live_durability) {
      // Durability bring-up happens before the ingestor exists, so no new
      // observations race the replay: recover the acked stream, fold it
      // into the serving snapshots, then open the journal for appends.
      ObservationJournalOptions journal_opt;
      journal_opt.dir = options.live_durability_dir.empty()
                            ? options.work_dir + "/obs_wal"
                            : options.live_durability_dir;
      journal_opt.memtable_flush_bytes = options.live_memtable_flush_bytes;
      journal_opt.sync_each_batch = options.live_wal_sync_each_batch;
      journal_opt.slot_seconds = options.profile_slot_seconds;
      journal_opt.checkpoint_interval_batches =
          options.live_checkpoint_interval_batches;
      journal_opt.compaction = options.live_compaction;
      journal_opt.compaction_small_bytes = options.live_compaction_small_bytes;
      journal_opt.compaction_min_tables = options.live_compaction_min_tables;
      STRR_ASSIGN_OR_RETURN(RecoveredLog recovered,
                            RecoveryManager::Recover(journal_opt.dir));
      engine->live_recovery_.recovered_batches = recovered.replay_batches();
      engine->live_recovery_.last_seq = recovered.last_seq;
      engine->live_recovery_.checkpoint_seq = recovered.checkpoint_seq;
      engine->live_recovery_.wal_tail_torn = recovered.wal_tail_torn;
      engine->live_recovery_.tables_loaded = recovered.tables_loaded;
      engine->live_recovery_.wal_files_loaded = recovered.wal_files_loaded;
      RecoveryManager::ReplayOptions replay_opt;
      replay_opt.chunk_observations = options.live_replay_chunk;
      STRR_ASSIGN_OR_RETURN(
          engine->live_recovery_.replay_publishes,
          RecoveryManager::Replay(recovered, *engine->live_manager_,
                                  replay_opt));
      if (recovered.wal_tail_torn) {
        STRR_LOG(Warning)
            << "live recovery: WAL tail torn (crash mid-append); "
               "replayed through the last intact record, seq "
            << recovered.last_seq;
      }
      STRR_LOG(Info) << "live recovery: replayed "
                     << recovered.replay_batches() << " acked batches (seq "
                     << recovered.last_seq << ", checkpoint covers "
                     << recovered.checkpoint_seq << ") from "
                     << recovered.tables_loaded << " tables + "
                     << recovered.wal_files_loaded << " WAL files, "
                     << engine->live_recovery_.replay_publishes
                     << " snapshot publishes";
      STRR_ASSIGN_OR_RETURN(engine->journal_,
                            ObservationJournal::Open(journal_opt, recovered));
    }
    ObservationIngestorOptions ingest_opt;
    ingest_opt.queue_bound = options.live_queue_bound;
    ingest_opt.batch_window_ms = options.live_batch_window_ms;
    ingest_opt.journal = engine->journal_.get();
    engine->ingestor_ = std::make_unique<ObservationIngestor>(
        *engine->live_manager_, ingest_opt);
  } else {
    // Legacy direct-mutation fan-out: a profile refresh drops the
    // Con-Index tables and the default executor's cached results for the
    // covered time range. Requires external serialization against queries
    // (the reason live deployments enable live_ingestion instead). The
    // captured pointers are owned by the engine and outlive the profile
    // that holds the listener.
    ConIndex* con_index = engine->con_index_.get();
    QueryExecutor* executor = engine->executor_.get();
    engine->profile_->AddUpdateListener(
        [con_index, executor](int64_t begin_tod, int64_t end_tod) {
          con_index->InvalidateTimeRange(begin_tod, end_tod);
          executor->InvalidateCachedTimeRange(begin_tod, end_tod);
        });
  }

  if (!options.tenant_config_path.empty()) {
    if (engine->tenants_ == nullptr) {
      return Status::InvalidArgument(
          "EngineOptions.tenant_config_path requires tenant_fairness");
    }
    STRR_RETURN_IF_ERROR(engine->tenants_->StartFileWatch(
        options.tenant_config_path, options.tenant_config_poll_ms));
  }

  if (options.sharding.enabled()) {
    engine->coordinator_ = engine->MakeShardCoordinator(options.sharding);
    if (options.live_ingestion && !options.live_durability) {
      // Per-shard live fan-in. Skipped under durability: the journal is
      // single-writer, so the engine's single journaled ingestor stays
      // authoritative and observations keep flowing through it.
      ObservationIngestorOptions shard_ingest;
      shard_ingest.queue_bound = options.live_queue_bound;
      shard_ingest.batch_window_ms = options.live_batch_window_ms;
      STRR_RETURN_IF_ERROR(
          engine->coordinator_->EnableLiveIngestors(shard_ingest));
    }
  }
  return engine;
}

std::unique_ptr<QueryExecutor> ReachabilityEngine::MakeExecutor(
    const QueryExecutorOptions& options) const {
  // Executors share the engine's tenant registry (when tenancy is on) so
  // quotas and per-tenant counters stay consistent across all of them.
  return std::make_unique<QueryExecutor>(*network_, *st_index_, *con_index_,
                                         *profile_, options_.delta_t_seconds,
                                         options, live_manager_.get(),
                                         tenants_.get());
}

std::unique_ptr<ShardCoordinator> ReachabilityEngine::MakeShardCoordinator(
    const ShardingOptions& options) const {
  return std::make_unique<ShardCoordinator>(
      *network_, *st_index_, *con_index_, *profile_,
      options_.delta_t_seconds, options, live_manager_.get(), tenants_.get());
}

std::string ReachabilityEngine::NegativeKey(const XyPoint* locations,
                                            size_t n) {
  std::string key;
  key.resize(n * 2 * sizeof(double));
  char* out = key.data();
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(out, &locations[i].x, sizeof(double));
    out += sizeof(double);
    std::memcpy(out, &locations[i].y, sizeof(double));
    out += sizeof(double);
  }
  return key;
}

template <typename PlanFn>
StatusOr<RegionResult> ReachabilityEngine::PlanAndExecute(
    const XyPoint* locations, size_t n, PlanFn&& plan_fn) {
  // Root the span tree at the facade so planning is part of the query's
  // trace; the executor's own root below degrades to a child span.
  obs::QueryTrace trace("request");
  std::string neg_key;
  if (negative_cache_ != nullptr) {
    neg_key = NegativeKey(locations, n);
    if (std::optional<Status> cached = negative_cache_->Lookup(neg_key)) {
      return *std::move(cached);
    }
  }
  StatusOr<QueryPlan> plan = [&] {
    obs::TraceSpan span("plan", n);
    return plan_fn();
  }();
  if (!plan.ok()) {
    // Only NotFound is cacheable: it depends on the locations alone.
    // InvalidArgument (bad Prob/duration) is parameter-specific and cheap
    // to recompute, and transient errors must not be pinned for a TTL.
    if (negative_cache_ != nullptr && plan.status().IsNotFound()) {
      negative_cache_->Insert(neg_key, plan.status());
    }
    return plan.status();
  }
  // Sharded tier when enabled (bit-identical results; see src/shard/);
  // the single executor otherwise.
  if (coordinator_ != nullptr) return coordinator_->Execute(*plan);
  return executor_->Execute(*plan);
}

StatusOr<RegionResult> ReachabilityEngine::SQueryIndexed(const SQuery& query) {
  return PlanAndExecute(&query.location, 1, [&] {
    return planner_->PlanSQuery(query, QueryStrategy::kIndexed);
  });
}

StatusOr<RegionResult> ReachabilityEngine::SQueryExhaustive(
    const SQuery& query) {
  return PlanAndExecute(&query.location, 1, [&] {
    return planner_->PlanSQuery(query, QueryStrategy::kExhaustive);
  });
}

StatusOr<RegionResult> ReachabilityEngine::MQueryIndexed(const MQuery& query) {
  return PlanAndExecute(query.locations.data(), query.locations.size(), [&] {
    return planner_->PlanMQuery(query, QueryStrategy::kIndexed);
  });
}

StatusOr<RegionResult> ReachabilityEngine::MQueryRepeatedSQuery(
    const MQuery& query) {
  return PlanAndExecute(query.locations.data(), query.locations.size(), [&] {
    return planner_->PlanMQuery(query, QueryStrategy::kRepeatedS);
  });
}

Status ReachabilityEngine::DumpTrace(const std::string& path) const {
  return obs::Tracer::Global().WriteChromeTrace(path);
}

void ReachabilityEngine::DumpMetricsPrometheus(std::string* out) const {
  obs::MetricsRegistry::Global().DumpPrometheus(out);
}

void ReachabilityEngine::ResetIoStats(bool drop_cache) {
  st_index_->ResetStorageStats();
  if (drop_cache) st_index_->DropCache();
}

void ReachabilityEngine::ApplySpeedObservation(SegmentId seg,
                                               int64_t time_of_day_sec,
                                               double speed_mps) {
  if (coordinator_ != nullptr && coordinator_->has_ingestors()) {
    coordinator_->OfferObservation(
        SpeedObservation{seg, time_of_day_sec, speed_mps});
    return;
  }
  if (ingestor_ != nullptr) {
    // Live path: enqueue for the batcher; the refresh lands as the next
    // published snapshot version, safe under concurrent queries.
    ingestor_->Offer(SpeedObservation{seg, time_of_day_sec, speed_mps});
    return;
  }
  // Legacy path: the profile notifies its update listeners (registered in
  // Build), which invalidate the Con-Index slot tables and the cached
  // query results. Caller serializes against queries.
  profile_->ApplyObservation(seg, time_of_day_sec, speed_mps);
}

bool ReachabilityEngine::OfferObservation(
    const SpeedObservation& observation) {
  if (coordinator_ != nullptr && coordinator_->has_ingestors()) {
    return coordinator_->OfferObservation(observation);
  }
  if (ingestor_ == nullptr) return false;
  return ingestor_->Offer(observation);
}

}  // namespace strr
