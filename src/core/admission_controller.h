// AdmissionController: bounded admission + load shedding for the query
// front door.
//
// A production engine fed by millions of clients cannot accept unbounded
// work: PR 1's ExecuteBatch would happily queue a 100k-plan batch and let
// every caller discover the overload as tail latency. This controller
// makes overload explicit and typed instead:
//
//  * at most `max_inflight` admitted queries are outstanding at once
//    (executing, or fanned out to the executor pool);
//  * single queries over that limit wait in a bounded FIFO-ish queue of at
//    most `max_queued` callers; when the queue is full they are shed with
//    Status::ResourceExhausted;
//  * batch plans never wait: each plan either takes a free ticket at
//    submission time or is shed immediately — an over-capacity
//    ExecuteBatch degrades to "serve what fits, reject the rest" instead
//    of queueing unboundedly;
//  * batches collectively hold at most `batch_share` of max_inflight
//    (min 1), so a saturating batch always leaves tickets that only
//    single queries can claim — one big batch cannot starve singles.
//
// Shedding happens only at admission: a query that holds a ticket always
// runs to completion. Waiting happens only on caller threads, never on
// executor pool workers (QueryExecutor skips admission for work already
// on its own pool), so admission can never deadlock the pool against
// itself.
#ifndef STRR_CORE_ADMISSION_CONTROLLER_H_
#define STRR_CORE_ADMISSION_CONTROLLER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/status.h"

namespace strr {

/// Admission knobs. Defaults keep admission disabled (unbounded), matching
/// the paper-reproduction benches; servers opt in.
struct AdmissionOptions {
  /// Max admitted-and-outstanding queries. 0 disables admission control.
  size_t max_inflight = 0;
  /// Max single-query callers blocked waiting for a ticket.
  size_t max_queued = 64;
  /// Fraction of max_inflight all batch work combined may hold, in (0, 1];
  /// clamped so batches always get at least one ticket.
  double batch_share = 0.5;
};

/// See file comment. All methods are thread-safe.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  bool enabled() const { return max_inflight_ > 0; }

  /// Admits a single query: takes a ticket immediately, waits in the
  /// bounded queue for one, or sheds with ResourceExhausted. On OK the
  /// caller must eventually call Release() exactly once.
  Status Admit();

  /// Admits one batch plan without blocking: ticket or ResourceExhausted.
  /// On OK the caller must eventually call ReleaseBatch() exactly once.
  Status TryAdmitBatch();

  void Release();
  void ReleaseBatch();

  /// Counters (monotonic; disabled controllers count nothing).
  struct Stats {
    uint64_t admitted = 0;
    uint64_t shed = 0;
  };
  Stats stats() const;

  size_t inflight() const;
  size_t queued() const;
  size_t max_inflight() const { return max_inflight_; }
  size_t batch_cap() const { return batch_cap_; }

 private:
  size_t max_inflight_;
  size_t max_queued_;
  size_t batch_cap_;

  mutable std::mutex mu_;
  std::condition_variable ticket_free_;
  size_t inflight_ = 0;        // all outstanding tickets
  size_t batch_inflight_ = 0;  // tickets held by batch plans
  size_t waiting_ = 0;         // single callers blocked in Admit
  Stats stats_;
};

}  // namespace strr

#endif  // STRR_CORE_ADMISSION_CONTROLLER_H_
