#include "core/persist.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "storage/fs_util.h"
#include "util/crc32c.h"
#include "util/serialize.h"

namespace strr {

namespace {

namespace fs = std::filesystem;

constexpr uint64_t kNetworkMagic = 0x5354525f4e455431ULL;   // "STR_NET1"
constexpr uint64_t kTrajMagic = 0x5354525f54524a31ULL;      // "STR_TRJ1"
constexpr uint64_t kMetaMagic = 0x5354525f4d455431ULL;      // "STR_MET1"
constexpr uint64_t kManifestMagic = 0x5354525f4d414e31ULL;  // "STR_MAN1"
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kManifestVersion = 1;

constexpr char kManifestName[] = "MANIFEST.strr";

// Speeds are stored at cm/s resolution. The clamp bounds make the varint
// encoding total (negative/NaN inputs cannot wrap to garbage) and give the
// loader a tight validity check: nothing on a road moves at > 1 km/s.
constexpr double kMaxSpeedMps = 1000.0;
constexpr uint32_t kMaxSpeedCms = 100000;

constexpr int32_t kMaxDays = 100000;

// Dataset file roles, in manifest order.
enum class FileRole : uint8_t { kNetwork = 0, kTrajectories = 1, kMeta = 2 };

const char* RoleBaseName(FileRole role) {
  switch (role) {
    case FileRole::kNetwork: return "network";
    case FileRole::kTrajectories: return "trajectories";
    case FileRole::kMeta: return "meta";
  }
  return "unknown";
}

std::string VersionedName(FileRole role, uint64_t revision) {
  return std::string(RoleBaseName(role)) + "." + std::to_string(revision) +
         ".strr";
}

std::string LegacyName(FileRole role) {
  return std::string(RoleBaseName(role)) + ".strr";
}

uint32_t EncodeSpeedCms(float speed_mps) {
  double s = static_cast<double>(speed_mps);
  if (!std::isfinite(s) || s < 0.0) s = 0.0;
  if (s > kMaxSpeedMps) s = kMaxSpeedMps;
  return static_cast<uint32_t>(s * 100.0 + 0.5);
}

std::string SerializeTrajectories(const Dataset& dataset) {
  BinaryWriter t;
  t.PutU64(kTrajMagic);
  t.PutU32(kFormatVersion);
  t.PutU32(static_cast<uint32_t>(dataset.store->num_days()));
  t.PutU64(dataset.store->NumTrajectories());
  dataset.store->ForEach([&](const MatchedTrajectory& traj) {
    t.PutU32(traj.id);
    t.PutU32(traj.taxi);
    t.PutU32(static_cast<uint32_t>(traj.day));
    t.PutVarint32(static_cast<uint32_t>(traj.samples.size()));
    Timestamp prev = MakeTimestamp(traj.day, 0);
    for (const MatchedSample& s : traj.samples) {
      t.PutVarint32(s.segment);
      t.PutVarint64(static_cast<uint64_t>(s.timestamp - prev));
      prev = s.timestamp;
      // Speed at cm/s resolution keeps the file compact.
      t.PutVarint32(EncodeSpeedCms(s.speed_mps));
    }
  });
  return t.Release();
}

std::string SerializeMeta(const Dataset& dataset) {
  BinaryWriter m;
  m.PutU64(kMetaMagic);
  m.PutU32(kFormatVersion);
  m.PutDouble(dataset.projection.origin().lat);
  m.PutDouble(dataset.projection.origin().lon);
  m.PutDouble(dataset.center.x);
  m.PutDouble(dataset.center.y);
  m.PutU64(dataset.num_trips);
  m.PutU64(dataset.approx_gps_points);
  return m.Release();
}

Status ParseTrajectories(const std::string& bytes, Dataset* dataset) {
  BinaryReader r(bytes);
  STRR_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
  if (magic != kTrajMagic) return Status::Corruption("bad trajectory magic");
  STRR_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported trajectory format version");
  }
  STRR_ASSIGN_OR_RETURN(uint32_t num_days, r.GetU32());
  if (num_days > static_cast<uint32_t>(kMaxDays)) {
    return Status::Corruption("implausible day count " +
                              std::to_string(num_days));
  }
  STRR_ASSIGN_OR_RETURN(uint64_t num_trajs, r.GetU64());
  // A trajectory costs >= 13 bytes (id, taxi, day, sample count); reject
  // impossible counts before allocating anything proportional to them.
  if (num_trajs > r.RemainingBytes() / 13) {
    return Status::Corruption("trajectory count exceeds remaining bytes");
  }
  dataset->store =
      std::make_unique<TrajectoryStore>(static_cast<int32_t>(num_days));
  for (uint64_t i = 0; i < num_trajs; ++i) {
    MatchedTrajectory traj;
    STRR_ASSIGN_OR_RETURN(traj.id, r.GetU32());
    STRR_ASSIGN_OR_RETURN(traj.taxi, r.GetU32());
    STRR_ASSIGN_OR_RETURN(uint32_t day, r.GetU32());
    traj.day = static_cast<DayIndex>(day);
    STRR_ASSIGN_OR_RETURN(uint32_t num_samples, r.GetVarint32());
    // A sample costs >= 3 bytes (segment, delta, speed varints).
    if (num_samples > r.RemainingBytes() / 3) {
      return Status::Corruption("sample count exceeds remaining bytes");
    }
    traj.samples.reserve(num_samples);
    Timestamp prev = MakeTimestamp(traj.day, 0);
    for (uint32_t k = 0; k < num_samples; ++k) {
      MatchedSample s;
      STRR_ASSIGN_OR_RETURN(s.segment, r.GetVarint32());
      STRR_ASSIGN_OR_RETURN(uint64_t delta, r.GetVarint64());
      s.timestamp = prev + static_cast<Timestamp>(delta);
      prev = s.timestamp;
      STRR_ASSIGN_OR_RETURN(uint32_t speed_cms, r.GetVarint32());
      if (speed_cms > kMaxSpeedCms) {
        return Status::Corruption("sample speed out of range: " +
                                  std::to_string(speed_cms) + " cm/s");
      }
      s.speed_mps = speed_cms / 100.0f;
      traj.samples.push_back(s);
    }
    STRR_RETURN_IF_ERROR(dataset->store->Add(std::move(traj)));
  }
  return Status::OK();
}

Status ParseMeta(const std::string& bytes, Dataset* dataset) {
  BinaryReader r(bytes);
  STRR_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
  if (magic != kMetaMagic) return Status::Corruption("bad meta magic");
  STRR_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported meta format version");
  }
  STRR_ASSIGN_OR_RETURN(double lat, r.GetDouble());
  STRR_ASSIGN_OR_RETURN(double lon, r.GetDouble());
  dataset->projection = Projection({lat, lon});
  STRR_ASSIGN_OR_RETURN(dataset->center.x, r.GetDouble());
  STRR_ASSIGN_OR_RETURN(dataset->center.y, r.GetDouble());
  STRR_ASSIGN_OR_RETURN(dataset->num_trips, r.GetU64());
  STRR_ASSIGN_OR_RETURN(dataset->approx_gps_points, r.GetU64());
  return Status::OK();
}

struct ManifestEntry {
  FileRole role;
  std::string filename;
  uint64_t size = 0;
  uint32_t crc = 0;
};

struct Manifest {
  uint64_t revision = 0;
  std::vector<ManifestEntry> entries;
};

std::string SerializeManifest(const Manifest& manifest) {
  BinaryWriter w;
  w.PutU64(kManifestMagic);
  w.PutU32(kManifestVersion);
  w.PutU64(manifest.revision);
  w.PutVarint32(static_cast<uint32_t>(manifest.entries.size()));
  for (const ManifestEntry& e : manifest.entries) {
    w.PutU8(static_cast<uint8_t>(e.role));
    w.PutString(e.filename);
    w.PutU64(e.size);
    w.PutU32(e.crc);
  }
  // Self-checksum: a torn or bit-flipped manifest is detected before any
  // entry is trusted.
  w.PutU32(Crc32c(w.data()));
  return w.Release();
}

StatusOr<Manifest> ParseManifest(const std::string& bytes) {
  if (bytes.size() < 4) return Status::Corruption("manifest too short");
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32c(bytes.data(), bytes.size() - 4) != stored_crc) {
    return Status::Corruption("manifest checksum mismatch");
  }
  BinaryReader r(bytes.data(), bytes.size() - 4);
  STRR_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
  if (magic != kManifestMagic) return Status::Corruption("bad manifest magic");
  STRR_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kManifestVersion) {
    return Status::Corruption("unsupported manifest version " +
                              std::to_string(version));
  }
  Manifest manifest;
  STRR_ASSIGN_OR_RETURN(manifest.revision, r.GetU64());
  STRR_ASSIGN_OR_RETURN(uint32_t num_entries, r.GetVarint32());
  // An entry costs >= 14 bytes (role, empty name, size, crc).
  if (num_entries > r.RemainingBytes() / 14) {
    return Status::Corruption("manifest entry count exceeds remaining bytes");
  }
  manifest.entries.reserve(num_entries);
  for (uint32_t i = 0; i < num_entries; ++i) {
    ManifestEntry e;
    STRR_ASSIGN_OR_RETURN(uint8_t role, r.GetU8());
    if (role > static_cast<uint8_t>(FileRole::kMeta)) {
      return Status::Corruption("unknown manifest file role " +
                                std::to_string(role));
    }
    e.role = static_cast<FileRole>(role);
    STRR_ASSIGN_OR_RETURN(e.filename, r.GetString());
    if (e.filename.empty() ||
        e.filename.find('/') != std::string::npos ||
        e.filename.find("..") != std::string::npos) {
      return Status::Corruption("manifest filename escapes dataset dir");
    }
    STRR_ASSIGN_OR_RETURN(e.size, r.GetU64());
    STRR_ASSIGN_OR_RETURN(e.crc, r.GetU32());
    manifest.entries.push_back(std::move(e));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in manifest");
  return manifest;
}

/// Reads a manifest entry's file and verifies size + checksum against the
/// manifest before handing the bytes to a parser.
StatusOr<std::string> ReadVerifiedFile(const std::string& dir,
                                       const ManifestEntry& entry) {
  STRR_ASSIGN_OR_RETURN(std::string bytes,
                        ReadFileToString(dir + "/" + entry.filename));
  if (bytes.size() != entry.size) {
    return Status::Corruption("size mismatch for " + entry.filename +
                              ": manifest says " + std::to_string(entry.size) +
                              ", file has " + std::to_string(bytes.size()));
  }
  if (Crc32c(bytes) != entry.crc) {
    return Status::Corruption("checksum mismatch for " + entry.filename);
  }
  return bytes;
}

// Largest revision number visible in versioned dataset filenames
// ("<base>.<N>.strr"), so a save never reuses a revision even when the
// manifest is missing or unreadable.
uint64_t MaxRevisionOnDisk(const std::string& dir) {
  uint64_t max_rev = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    size_t first = name.find('.');
    size_t last = name.rfind(".strr");
    if (first == std::string::npos || last == std::string::npos ||
        first + 1 >= last || last + 5 != name.size()) {
      continue;
    }
    uint64_t rev = 0;
    bool numeric = true;
    for (size_t i = first + 1; i < last; ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      rev = rev * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    if (numeric) max_rev = std::max(max_rev, rev);
  }
  return max_rev;
}

// Deletes every .strr file that is not the manifest and not part of the
// current revision (stale revisions, legacy plain names) plus leftover
// .tmp files. Best-effort: the new revision is already committed.
void GarbageCollect(const std::string& dir, const Manifest& current) {
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    bool is_tmp = name.size() > 4 &&
                  name.compare(name.size() - 4, 4, ".tmp") == 0;
    bool is_strr = name.size() > 5 &&
                   name.compare(name.size() - 5, 5, ".strr") == 0;
    if (!is_tmp && !is_strr) continue;
    if (name == kManifestName) continue;
    bool current_file = false;
    for (const ManifestEntry& e : current.entries) {
      if (name == e.filename) {
        current_file = true;
        break;
      }
    }
    if (!current_file) fs::remove(entry.path(), ec);
  }
}

}  // namespace

std::string SerializeNetwork(const RoadNetwork& network) {
  BinaryWriter w;
  w.PutU64(kNetworkMagic);
  w.PutU32(kFormatVersion);
  w.PutU64(network.NumNodes());
  for (size_t i = 0; i < network.NumNodes(); ++i) {
    const XyPoint& p = network.node(static_cast<NodeId>(i));
    w.PutDouble(p.x);
    w.PutDouble(p.y);
  }
  w.PutU64(network.NumSegments());
  for (const RoadSegment& seg : network.segments()) {
    w.PutU32(seg.from_node);
    w.PutU32(seg.to_node);
    w.PutU8(static_cast<uint8_t>(seg.level));
    w.PutU8(seg.two_way ? 1 : 0);
    w.PutU32(seg.reverse_id);
    w.PutVarint32(static_cast<uint32_t>(seg.shape.NumPoints()));
    for (const XyPoint& p : seg.shape.points()) {
      w.PutDouble(p.x);
      w.PutDouble(p.y);
    }
  }
  return w.Release();
}

StatusOr<RoadNetwork> DeserializeNetwork(const std::string& bytes) {
  BinaryReader r(bytes);
  STRR_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
  if (magic != kNetworkMagic) {
    return Status::Corruption("bad network magic");
  }
  STRR_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported network format version " +
                              std::to_string(version));
  }
  RoadNetwork net;
  STRR_ASSIGN_OR_RETURN(uint64_t num_nodes, r.GetU64());
  // Each node costs 16 bytes; reject impossible counts up front so a
  // corrupted header fails fast instead of looping gigabytes away.
  if (num_nodes > r.RemainingBytes() / 16) {
    return Status::Corruption("node count exceeds remaining bytes");
  }
  for (uint64_t i = 0; i < num_nodes; ++i) {
    STRR_ASSIGN_OR_RETURN(double x, r.GetDouble());
    STRR_ASSIGN_OR_RETURN(double y, r.GetDouble());
    net.AddNode({x, y});
  }
  STRR_ASSIGN_OR_RETURN(uint64_t num_segments, r.GetU64());
  // Each segment costs >= 15 bytes (endpoints, level, two_way, reverse,
  // shape count); clamps the twins reserve below.
  if (num_segments > r.RemainingBytes() / 15) {
    return Status::Corruption("segment count exceeds remaining bytes");
  }
  std::vector<std::pair<bool, SegmentId>> twins;  // (two_way, reverse)
  twins.reserve(num_segments);
  for (uint64_t i = 0; i < num_segments; ++i) {
    STRR_ASSIGN_OR_RETURN(uint32_t from, r.GetU32());
    STRR_ASSIGN_OR_RETURN(uint32_t to, r.GetU32());
    STRR_ASSIGN_OR_RETURN(uint8_t level, r.GetU8());
    if (level > 2) return Status::Corruption("bad road level");
    STRR_ASSIGN_OR_RETURN(uint8_t two_way, r.GetU8());
    STRR_ASSIGN_OR_RETURN(uint32_t reverse, r.GetU32());
    STRR_ASSIGN_OR_RETURN(uint32_t num_points, r.GetVarint32());
    if (num_points < 2) return Status::Corruption("segment shape too short");
    if (num_points > r.RemainingBytes() / 16) {
      return Status::Corruption("shape point count exceeds remaining bytes");
    }
    std::vector<XyPoint> points;
    points.reserve(num_points);
    for (uint32_t k = 0; k < num_points; ++k) {
      STRR_ASSIGN_OR_RETURN(double x, r.GetDouble());
      STRR_ASSIGN_OR_RETURN(double y, r.GetDouble());
      points.push_back({x, y});
    }
    STRR_ASSIGN_OR_RETURN(
        SegmentId id, net.AddSegment(from, to, static_cast<RoadLevel>(level),
                                     Polyline(std::move(points))));
    (void)id;
    twins.emplace_back(two_way != 0, reverse);
  }
  // Restore twin links after all segments exist (link each pair once).
  for (SegmentId i = 0; i < twins.size(); ++i) {
    if (!twins[i].first || twins[i].second < i) continue;
    if (twins[i].second >= num_segments) {
      return Status::Corruption("twin id out of range");
    }
    STRR_RETURN_IF_ERROR(net.LinkTwins(i, twins[i].second));
  }
  STRR_RETURN_IF_ERROR(net.Finalize());
  return net;
}

Status SaveDataset(const Dataset& dataset, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create dir " + dir);

  // A save is a new revision: payloads land under versioned names, then
  // the manifest rename is the single atomic commit point. A crash at any
  // earlier step leaves the previous revision fully intact.
  uint64_t revision = MaxRevisionOnDisk(dir);
  {
    auto bytes = ReadFileToString(dir + "/" + kManifestName);
    if (bytes.ok()) {
      auto previous = ParseManifest(*bytes);
      if (previous.ok()) revision = std::max(revision, previous->revision);
    }
  }
  ++revision;

  Manifest manifest;
  manifest.revision = revision;
  const std::pair<FileRole, std::string> payloads[] = {
      {FileRole::kNetwork, SerializeNetwork(dataset.network)},
      {FileRole::kTrajectories, SerializeTrajectories(dataset)},
      {FileRole::kMeta, SerializeMeta(dataset)},
  };
  for (const auto& [role, bytes] : payloads) {
    ManifestEntry e;
    e.role = role;
    e.filename = VersionedName(role, revision);
    e.size = bytes.size();
    e.crc = Crc32c(bytes);
    STRR_RETURN_IF_ERROR(AtomicWriteFile(dir + "/" + e.filename, bytes));
    manifest.entries.push_back(std::move(e));
  }
  STRR_RETURN_IF_ERROR(
      AtomicWriteFile(dir + "/" + kManifestName, SerializeManifest(manifest)));

  GarbageCollect(dir, manifest);
  return Status::OK();
}

StatusOr<Dataset> LoadDataset(const std::string& dir) {
  Dataset dataset;

  auto manifest_bytes = ReadFileToString(dir + "/" + kManifestName);
  if (manifest_bytes.ok()) {
    STRR_ASSIGN_OR_RETURN(Manifest manifest, ParseManifest(*manifest_bytes));
    bool have[3] = {false, false, false};
    for (const ManifestEntry& entry : manifest.entries) {
      STRR_ASSIGN_OR_RETURN(std::string bytes, ReadVerifiedFile(dir, entry));
      switch (entry.role) {
        case FileRole::kNetwork: {
          STRR_ASSIGN_OR_RETURN(dataset.network, DeserializeNetwork(bytes));
          break;
        }
        case FileRole::kTrajectories: {
          STRR_RETURN_IF_ERROR(ParseTrajectories(bytes, &dataset));
          break;
        }
        case FileRole::kMeta: {
          STRR_RETURN_IF_ERROR(ParseMeta(bytes, &dataset));
          break;
        }
      }
      have[static_cast<uint8_t>(entry.role)] = true;
    }
    if (!have[0] || !have[1] || !have[2]) {
      return Status::Corruption("manifest missing a dataset file role");
    }
    return dataset;
  }

  // Legacy layout (pre-manifest): plain filenames, no checksums.
  {
    STRR_ASSIGN_OR_RETURN(
        std::string bytes,
        ReadFileToString(dir + "/" + LegacyName(FileRole::kNetwork)));
    STRR_ASSIGN_OR_RETURN(dataset.network, DeserializeNetwork(bytes));
  }
  {
    STRR_ASSIGN_OR_RETURN(
        std::string bytes,
        ReadFileToString(dir + "/" + LegacyName(FileRole::kTrajectories)));
    STRR_RETURN_IF_ERROR(ParseTrajectories(bytes, &dataset));
  }
  {
    STRR_ASSIGN_OR_RETURN(
        std::string bytes,
        ReadFileToString(dir + "/" + LegacyName(FileRole::kMeta)));
    STRR_RETURN_IF_ERROR(ParseMeta(bytes, &dataset));
  }
  return dataset;
}

bool DatasetExists(const std::string& dir) {
  std::error_code ec;
  return fs::exists(dir + "/" + kManifestName, ec) ||
         fs::exists(dir + "/" + LegacyName(FileRole::kMeta), ec);
}

}  // namespace strr
