#include "core/persist.h"

#include <filesystem>
#include <fstream>

#include "util/serialize.h"

namespace strr {

namespace {

constexpr uint64_t kNetworkMagic = 0x5354525f4e455431ULL;   // "STR_NET1"
constexpr uint64_t kTrajMagic = 0x5354525f54524a31ULL;      // "STR_TRJ1"
constexpr uint64_t kMetaMagic = 0x5354525f4d455431ULL;      // "STR_MET1"
constexpr uint32_t kFormatVersion = 1;

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("short write: " + path);
  return Status::OK();
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::string bytes(static_cast<size_t>(size), '\0');
  in.read(bytes.data(), size);
  if (!in) return Status::IoError("short read: " + path);
  return bytes;
}

}  // namespace

std::string SerializeNetwork(const RoadNetwork& network) {
  BinaryWriter w;
  w.PutU64(kNetworkMagic);
  w.PutU32(kFormatVersion);
  w.PutU64(network.NumNodes());
  for (size_t i = 0; i < network.NumNodes(); ++i) {
    const XyPoint& p = network.node(static_cast<NodeId>(i));
    w.PutDouble(p.x);
    w.PutDouble(p.y);
  }
  w.PutU64(network.NumSegments());
  for (const RoadSegment& seg : network.segments()) {
    w.PutU32(seg.from_node);
    w.PutU32(seg.to_node);
    w.PutU8(static_cast<uint8_t>(seg.level));
    w.PutU8(seg.two_way ? 1 : 0);
    w.PutU32(seg.reverse_id);
    w.PutVarint32(static_cast<uint32_t>(seg.shape.NumPoints()));
    for (const XyPoint& p : seg.shape.points()) {
      w.PutDouble(p.x);
      w.PutDouble(p.y);
    }
  }
  return w.Release();
}

StatusOr<RoadNetwork> DeserializeNetwork(const std::string& bytes) {
  BinaryReader r(bytes);
  STRR_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
  if (magic != kNetworkMagic) {
    return Status::Corruption("bad network magic");
  }
  STRR_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported network format version " +
                              std::to_string(version));
  }
  RoadNetwork net;
  STRR_ASSIGN_OR_RETURN(uint64_t num_nodes, r.GetU64());
  for (uint64_t i = 0; i < num_nodes; ++i) {
    STRR_ASSIGN_OR_RETURN(double x, r.GetDouble());
    STRR_ASSIGN_OR_RETURN(double y, r.GetDouble());
    net.AddNode({x, y});
  }
  STRR_ASSIGN_OR_RETURN(uint64_t num_segments, r.GetU64());
  std::vector<std::pair<bool, SegmentId>> twins;  // (two_way, reverse)
  twins.reserve(num_segments);
  for (uint64_t i = 0; i < num_segments; ++i) {
    STRR_ASSIGN_OR_RETURN(uint32_t from, r.GetU32());
    STRR_ASSIGN_OR_RETURN(uint32_t to, r.GetU32());
    STRR_ASSIGN_OR_RETURN(uint8_t level, r.GetU8());
    if (level > 2) return Status::Corruption("bad road level");
    STRR_ASSIGN_OR_RETURN(uint8_t two_way, r.GetU8());
    STRR_ASSIGN_OR_RETURN(uint32_t reverse, r.GetU32());
    STRR_ASSIGN_OR_RETURN(uint32_t num_points, r.GetVarint32());
    if (num_points < 2) return Status::Corruption("segment shape too short");
    std::vector<XyPoint> points;
    points.reserve(num_points);
    for (uint32_t k = 0; k < num_points; ++k) {
      STRR_ASSIGN_OR_RETURN(double x, r.GetDouble());
      STRR_ASSIGN_OR_RETURN(double y, r.GetDouble());
      points.push_back({x, y});
    }
    STRR_ASSIGN_OR_RETURN(
        SegmentId id, net.AddSegment(from, to, static_cast<RoadLevel>(level),
                                     Polyline(std::move(points))));
    (void)id;
    twins.emplace_back(two_way != 0, reverse);
  }
  // Restore twin links after all segments exist (link each pair once).
  for (SegmentId i = 0; i < twins.size(); ++i) {
    if (!twins[i].first || twins[i].second < i) continue;
    if (twins[i].second >= num_segments) {
      return Status::Corruption("twin id out of range");
    }
    STRR_RETURN_IF_ERROR(net.LinkTwins(i, twins[i].second));
  }
  STRR_RETURN_IF_ERROR(net.Finalize());
  return net;
}

Status SaveDataset(const Dataset& dataset, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create dir " + dir);

  STRR_RETURN_IF_ERROR(
      WriteFileBytes(dir + "/network.strr", SerializeNetwork(dataset.network)));

  BinaryWriter t;
  t.PutU64(kTrajMagic);
  t.PutU32(kFormatVersion);
  t.PutU32(static_cast<uint32_t>(dataset.store->num_days()));
  t.PutU64(dataset.store->NumTrajectories());
  dataset.store->ForEach([&](const MatchedTrajectory& traj) {
    t.PutU32(traj.id);
    t.PutU32(traj.taxi);
    t.PutU32(static_cast<uint32_t>(traj.day));
    t.PutVarint32(static_cast<uint32_t>(traj.samples.size()));
    Timestamp prev = MakeTimestamp(traj.day, 0);
    for (const MatchedSample& s : traj.samples) {
      t.PutVarint32(s.segment);
      t.PutVarint64(static_cast<uint64_t>(s.timestamp - prev));
      prev = s.timestamp;
      // Speed at cm/s resolution keeps the file compact.
      t.PutVarint32(static_cast<uint32_t>(s.speed_mps * 100.0f + 0.5f));
    }
  });
  STRR_RETURN_IF_ERROR(WriteFileBytes(dir + "/trajectories.strr", t.data()));

  BinaryWriter m;
  m.PutU64(kMetaMagic);
  m.PutU32(kFormatVersion);
  m.PutDouble(dataset.projection.origin().lat);
  m.PutDouble(dataset.projection.origin().lon);
  m.PutDouble(dataset.center.x);
  m.PutDouble(dataset.center.y);
  m.PutU64(dataset.num_trips);
  m.PutU64(dataset.approx_gps_points);
  STRR_RETURN_IF_ERROR(WriteFileBytes(dir + "/meta.strr", m.data()));
  return Status::OK();
}

StatusOr<Dataset> LoadDataset(const std::string& dir) {
  Dataset dataset;
  {
    STRR_ASSIGN_OR_RETURN(std::string bytes,
                          ReadFileBytes(dir + "/network.strr"));
    STRR_ASSIGN_OR_RETURN(dataset.network, DeserializeNetwork(bytes));
  }
  {
    STRR_ASSIGN_OR_RETURN(std::string bytes,
                          ReadFileBytes(dir + "/trajectories.strr"));
    BinaryReader r(bytes);
    STRR_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
    if (magic != kTrajMagic) return Status::Corruption("bad trajectory magic");
    STRR_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
    if (version != kFormatVersion) {
      return Status::Corruption("unsupported trajectory format version");
    }
    STRR_ASSIGN_OR_RETURN(uint32_t num_days, r.GetU32());
    STRR_ASSIGN_OR_RETURN(uint64_t num_trajs, r.GetU64());
    dataset.store = std::make_unique<TrajectoryStore>(
        static_cast<int32_t>(num_days));
    for (uint64_t i = 0; i < num_trajs; ++i) {
      MatchedTrajectory traj;
      STRR_ASSIGN_OR_RETURN(traj.id, r.GetU32());
      STRR_ASSIGN_OR_RETURN(traj.taxi, r.GetU32());
      STRR_ASSIGN_OR_RETURN(uint32_t day, r.GetU32());
      traj.day = static_cast<DayIndex>(day);
      STRR_ASSIGN_OR_RETURN(uint32_t num_samples, r.GetVarint32());
      traj.samples.reserve(num_samples);
      Timestamp prev = MakeTimestamp(traj.day, 0);
      for (uint32_t k = 0; k < num_samples; ++k) {
        MatchedSample s;
        STRR_ASSIGN_OR_RETURN(s.segment, r.GetVarint32());
        STRR_ASSIGN_OR_RETURN(uint64_t delta, r.GetVarint64());
        s.timestamp = prev + static_cast<Timestamp>(delta);
        prev = s.timestamp;
        STRR_ASSIGN_OR_RETURN(uint32_t speed_cms, r.GetVarint32());
        s.speed_mps = speed_cms / 100.0f;
        traj.samples.push_back(s);
      }
      STRR_RETURN_IF_ERROR(dataset.store->Add(std::move(traj)));
    }
  }
  {
    STRR_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(dir + "/meta.strr"));
    BinaryReader r(bytes);
    STRR_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
    if (magic != kMetaMagic) return Status::Corruption("bad meta magic");
    STRR_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
    if (version != kFormatVersion) {
      return Status::Corruption("unsupported meta format version");
    }
    STRR_ASSIGN_OR_RETURN(double lat, r.GetDouble());
    STRR_ASSIGN_OR_RETURN(double lon, r.GetDouble());
    dataset.projection = Projection({lat, lon});
    STRR_ASSIGN_OR_RETURN(dataset.center.x, r.GetDouble());
    STRR_ASSIGN_OR_RETURN(dataset.center.y, r.GetDouble());
    STRR_ASSIGN_OR_RETURN(dataset.num_trips, r.GetU64());
    STRR_ASSIGN_OR_RETURN(dataset.approx_gps_points, r.GetU64());
  }
  return dataset;
}

}  // namespace strr
