#include "core/result_cache.h"

#include <algorithm>
#include <bit>

#include "util/hashing.h"
#include "util/serialize.h"

namespace strr {

namespace {

/// Δt slot of the first second a query window [start_tod, start_tod + L)
/// touches. Windows are within-day by construction (queries take a
/// time-of-day), so no day clamping is applied.
SlotId FirstSlot(int64_t start_tod, int64_t delta_t) {
  return static_cast<SlotId>(start_tod / delta_t);
}

/// Δt slot of the last second the window touches (inclusive).
SlotId LastSlot(int64_t start_tod, int64_t duration, int64_t delta_t) {
  int64_t last_second = start_tod + std::max<int64_t>(duration, 1) - 1;
  return static_cast<SlotId>(last_second / delta_t);
}

}  // namespace

PlanKey MakePlanKey(const QueryPlan& plan, bool tenant_scoped) {
  TenantId tenant = tenant_scoped ? plan.tenant : kDefaultTenant;
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(plan.strategy));
  w.PutVarint32(tenant);
  w.PutI64(plan.start_tod);
  w.PutI64(plan.duration);
  // Bit pattern, not value: -0.0 vs 0.0 or NaN payloads must not collide
  // with each other under a value comparison that disagrees with what the
  // execution paths actually consume.
  w.PutU64(std::bit_cast<uint64_t>(plan.prob));
  w.PutVarint32(static_cast<uint32_t>(plan.locations.size()));
  for (const XyPoint& p : plan.locations) {
    w.PutU64(std::bit_cast<uint64_t>(p.x));
    w.PutU64(std::bit_cast<uint64_t>(p.y));
  }
  w.PutVarint32(static_cast<uint32_t>(plan.location_starts.size()));
  for (const std::vector<SegmentId>& starts : plan.location_starts) {
    w.PutVarint32(static_cast<uint32_t>(starts.size()));
    for (SegmentId seg : starts) w.PutVarint32(seg);
  }
  PlanKey key;
  key.start_tod = plan.start_tod;
  key.duration = plan.duration;
  key.canonical = w.data();
  key.hash = Fnv1a64(key.canonical);
  return key;
}

ResultCache::ResultCache(int64_t delta_t_seconds,
                         const ResultCacheOptions& options)
    : delta_t_seconds_(delta_t_seconds > 0 ? delta_t_seconds : 1) {
  size_t shards = std::max<size_t>(options.shards, 1);
  shard_capacity_ = std::max<size_t>(options.capacity / shards, 1);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    if (options.doorkeeper_counters > 0) {
      shards_.back()->sketch = std::make_unique<FrequencySketch>(
          std::max<size_t>(options.doorkeeper_counters / shards, 64));
    }
  }
}

std::optional<RegionResult> ResultCache::Lookup(const PlanKey& key) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const RegionResult> stored;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Every access (hit or miss) feeds the doorkeeper's frequency window,
    // so both cached hot keys and repeat-missing keys accrue heat.
    if (shard.sketch != nullptr) shard.sketch->Increment(key.hash);
    auto it = shard.index.find(key.canonical);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return std::nullopt;
    }
    ++shard.stats.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    stored = it->second->result;  // O(1) pointer copy under the lock
  }
  // The stored object is immutable; copying it out here (outside the
  // lock) cannot tear even if the entry is concurrently evicted.
  RegionResult out = *stored;
  out.stats.cache_hit = true;
  return out;
}

void ResultCache::Insert(const PlanKey& key, const RegionResult& result) {
  // Copy the (potentially large) result outside the shard lock.
  auto stored = std::make_shared<RegionResult>(result);
  stored->stats.cache_hit = false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.canonical);
  if (it != shard.index.end()) {
    // Deterministic execution makes re-inserts value-identical; just
    // refresh the stored pointer and the LRU position.
    it->second->result = std::move(stored);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  // Doorkeeper admission: when inserting would evict, the candidate must
  // be hotter than the LRU victim it displaces. Under-capacity inserts
  // always go through (an empty slot costs nothing to fill).
  if (shard.sketch != nullptr && shard.index.size() >= shard_capacity_ &&
      !shard.lru.empty()) {
    uint32_t candidate_freq = shard.sketch->Estimate(key.hash);
    uint32_t victim_freq = shard.sketch->Estimate(shard.lru.back().hash);
    if (candidate_freq <= victim_freq) {
      ++shard.stats.doorkeeper_rejected;
      return;
    }
  }
  Entry entry;
  entry.canonical = key.canonical;
  entry.hash = key.hash;
  entry.first_slot = FirstSlot(key.start_tod, delta_t_seconds_);
  entry.last_slot = LastSlot(key.start_tod, key.duration, delta_t_seconds_);
  // The execution paths normalize time-of-day modulo one day, so a window
  // crossing midnight actually reads early-morning slots too. Recording
  // the raw (unwrapped) range would let an invalidation of those morning
  // slots miss this entry; cover the whole day instead — conservative
  // over-eviction, never a stale serve.
  if (entry.last_slot >= SlotsPerDay(delta_t_seconds_)) {
    entry.first_slot = 0;
    entry.last_slot = SlotsPerDay(delta_t_seconds_) - 1;
  }
  entry.result = std::move(stored);
  shard.lru.push_front(std::move(entry));
  shard.index[key.canonical] = shard.lru.begin();
  ++shard.stats.insertions;
  while (shard.index.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().canonical);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

void ResultCache::InvalidateTimeRange(int64_t begin_tod, int64_t end_tod) {
  if (end_tod <= begin_tod) return;
  InvalidateSlotRange(FirstSlot(begin_tod, delta_t_seconds_),
                      LastSlot(begin_tod, end_tod - begin_tod,
                               delta_t_seconds_));
}

void ResultCache::InvalidateSlotRange(SlotId begin, SlotId end) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.lru.empty()) continue;
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      bool overlaps = it->first_slot <= end && begin <= it->last_slot;
      if (overlaps) {
        shard.index.erase(it->canonical);
        it = shard.lru.erase(it);
        ++shard.stats.invalidated;
      } else {
        ++it;
      }
    }
  }
}

void ResultCache::Erase(const PlanKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.canonical);
  if (it == shard.index.end()) return;
  shard.lru.erase(it->second);
  shard.index.erase(it);
  ++shard.stats.invalidated;
}

void ResultCache::InvalidateAll() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.stats.invalidated += shard.lru.size();
    shard.lru.clear();
    shard.index.clear();
  }
}

ResultCache::Stats ResultCache::stats() const {
  Stats total;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
    total.hits += shard_ptr->stats.hits;
    total.misses += shard_ptr->stats.misses;
    total.insertions += shard_ptr->stats.insertions;
    total.evictions += shard_ptr->stats.evictions;
    total.invalidated += shard_ptr->stats.invalidated;
    total.doorkeeper_rejected += shard_ptr->stats.doorkeeper_rejected;
  }
  return total;
}

size_t ResultCache::size() const {
  size_t n = 0;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
    n += shard_ptr->index.size();
  }
  return n;
}

}  // namespace strr
