#include "core/result_cache.h"

#include <algorithm>
#include <bit>

#include "obs/metrics.h"
#include "util/hashing.h"
#include "util/serialize.h"

namespace strr {

namespace {

// Process-global mirrors of the per-instance Stats fields (no-ops until
// the registry is enabled). The per-instance struct stays authoritative
// for front_door_stats(); these aggregate every cache in the process for
// the scrape surface.
obs::Counter& HitsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("strr_cache_hits_total");
  return c;
}
obs::Counter& MissesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("strr_cache_misses_total");
  return c;
}
obs::Counter& InsertionsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_cache_insertions_total");
  return c;
}
obs::Counter& EvictionsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_cache_evictions_total");
  return c;
}
obs::Counter& InvalidatedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_cache_invalidated_total");
  return c;
}
obs::Counter& DoorkeeperRejectsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_cache_doorkeeper_rejects_total");
  return c;
}

/// Δt slot of the first second a query window [start_tod, start_tod + L)
/// touches. Windows are within-day by construction (queries take a
/// time-of-day), so no day clamping is applied.
SlotId FirstSlot(int64_t start_tod, int64_t delta_t) {
  return static_cast<SlotId>(start_tod / delta_t);
}

/// Δt slot of the last second the window touches (inclusive).
SlotId LastSlot(int64_t start_tod, int64_t duration, int64_t delta_t) {
  int64_t last_second = start_tod + std::max<int64_t>(duration, 1) - 1;
  return static_cast<SlotId>(last_second / delta_t);
}

}  // namespace

PlanKey MakePlanKey(const QueryPlan& plan, bool tenant_scoped) {
  TenantId tenant = tenant_scoped ? plan.tenant : kDefaultTenant;
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(plan.strategy));
  w.PutVarint32(tenant);
  w.PutI64(plan.start_tod);
  w.PutI64(plan.duration);
  // Bit pattern, not value: -0.0 vs 0.0 or NaN payloads must not collide
  // with each other under a value comparison that disagrees with what the
  // execution paths actually consume.
  w.PutU64(std::bit_cast<uint64_t>(plan.prob));
  w.PutVarint32(static_cast<uint32_t>(plan.locations.size()));
  for (const XyPoint& p : plan.locations) {
    w.PutU64(std::bit_cast<uint64_t>(p.x));
    w.PutU64(std::bit_cast<uint64_t>(p.y));
  }
  w.PutVarint32(static_cast<uint32_t>(plan.location_starts.size()));
  for (const std::vector<SegmentId>& starts : plan.location_starts) {
    w.PutVarint32(static_cast<uint32_t>(starts.size()));
    for (SegmentId seg : starts) w.PutVarint32(seg);
  }
  PlanKey key;
  key.start_tod = plan.start_tod;
  key.duration = plan.duration;
  key.canonical = w.data();
  key.hash = Fnv1a64(key.canonical);
  return key;
}

ResultCache::ResultCache(int64_t delta_t_seconds,
                         const ResultCacheOptions& options)
    : delta_t_seconds_(delta_t_seconds > 0 ? delta_t_seconds : 1) {
  size_t shards = std::max<size_t>(options.shards, 1);
  shard_capacity_ = std::max<size_t>(options.capacity / shards, 1);
  if (options.protected_share > 0.0 && shard_capacity_ > 1) {
    // Keep at least one probation slot so new entries always have a
    // landing spot (protected is reachable only by promotion).
    protected_capacity_ = std::min(
        static_cast<size_t>(static_cast<double>(shard_capacity_) *
                            std::min(options.protected_share, 1.0)),
        shard_capacity_ - 1);
  }
  if (options.tenant_capacity_share > 0.0) {
    tenant_envelope_ = std::max<size_t>(
        static_cast<size_t>(static_cast<double>(shard_capacity_) *
                            std::min(options.tenant_capacity_share, 1.0)),
        1);
  }
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    if (options.doorkeeper_counters > 0) {
      shards_.back()->sketch = std::make_unique<FrequencySketch>(
          std::max<size_t>(options.doorkeeper_counters / shards, 64));
    }
  }
}

void ResultCache::PromoteLocked(Shard& shard,
                                std::list<Entry>::iterator it) {
  // Splice keeps `it` (and the index entry pointing at it) valid; it now
  // lives in the protected list.
  shard.hot.splice(shard.hot.begin(), shard.lru, it);
  it->in_protected = true;
  ++shard.stats.promotions;
  while (shard.hot.size() > protected_capacity_) {
    auto tail = std::prev(shard.hot.end());
    tail->in_protected = false;
    shard.lru.splice(shard.lru.begin(), shard.hot, tail);
    ++shard.stats.demotions;
  }
}

void ResultCache::CountInsertLocked(Shard& shard, TenantId tenant) {
  if (tenant_envelope_ == 0) return;
  ++shard.tenant_count[tenant];
}

void ResultCache::CountEraseLocked(Shard& shard, TenantId tenant) {
  if (tenant_envelope_ == 0) return;
  auto it = shard.tenant_count.find(tenant);
  if (it == shard.tenant_count.end()) return;
  if (--it->second == 0) shard.tenant_count.erase(it);
}

void ResultCache::EvictOneLocked(Shard& shard) {
  std::list<Entry>& seg = shard.lru.empty() ? shard.hot : shard.lru;
  Entry& victim = seg.back();
  CountEraseLocked(shard, victim.tenant);
  shard.index.erase(victim.canonical);
  seg.pop_back();
  ++shard.stats.evictions;
  EvictionsCounter().Add();
}

void ResultCache::EvictTenantOneLocked(Shard& shard, TenantId tenant) {
  for (std::list<Entry>* seg : {&shard.lru, &shard.hot}) {
    for (auto it = seg->rbegin(); it != seg->rend(); ++it) {
      if (it->tenant != tenant) continue;
      CountEraseLocked(shard, tenant);
      shard.index.erase(it->canonical);
      seg->erase(std::prev(it.base()));
      ++shard.stats.tenant_evictions;
      return;
    }
  }
}

std::optional<RegionResult> ResultCache::Lookup(const PlanKey& key) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const RegionResult> stored;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Every access (hit or miss) feeds the doorkeeper's frequency window,
    // so both cached hot keys and repeat-missing keys accrue heat.
    if (shard.sketch != nullptr) shard.sketch->Increment(key.hash);
    auto it = shard.index.find(key.canonical);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      MissesCounter().Add();
      return std::nullopt;
    }
    ++shard.stats.hits;
    HitsCounter().Add();
    if (it->second->in_protected) {
      shard.hot.splice(shard.hot.begin(), shard.hot, it->second);
    } else if (protected_capacity_ > 0) {
      // Second access observed: graduate from probation to protected.
      PromoteLocked(shard, it->second);
    } else {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    }
    stored = it->second->result;  // O(1) pointer copy under the lock
  }
  // The stored object is immutable; copying it out here (outside the
  // lock) cannot tear even if the entry is concurrently evicted.
  RegionResult out = *stored;
  out.stats.cache_hit = true;
  return out;
}

void ResultCache::Insert(const PlanKey& key, const RegionResult& result,
                         TenantId tenant) {
  // Copy the (potentially large) result outside the shard lock.
  auto stored = std::make_shared<RegionResult>(result);
  stored->stats.cache_hit = false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.canonical);
  if (it != shard.index.end()) {
    // Deterministic execution makes re-inserts value-identical; just
    // refresh the stored pointer and the LRU position. A refresh is a
    // repeat access, so under segmentation it promotes like a hit.
    it->second->result = std::move(stored);
    if (it->second->in_protected) {
      shard.hot.splice(shard.hot.begin(), shard.hot, it->second);
    } else if (protected_capacity_ > 0) {
      PromoteLocked(shard, it->second);
    } else {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    }
    return;
  }
  // Doorkeeper admission: when inserting would evict, the candidate must
  // be hotter than the victim it displaces. Under-capacity inserts
  // always go through (an empty slot costs nothing to fill).
  if (shard.sketch != nullptr && shard.index.size() >= shard_capacity_ &&
      shard.index.size() > 0) {
    uint32_t candidate_freq = shard.sketch->Estimate(key.hash);
    uint32_t victim_freq = shard.sketch->Estimate(VictimLocked(shard).hash);
    if (candidate_freq <= victim_freq) {
      ++shard.stats.doorkeeper_rejected;
      DoorkeeperRejectsCounter().Add();
      return;
    }
  }
  // Tenant envelope: a tenant at its share replaces its own LRU entry —
  // even in a non-full shard — so other tenants' entries are untouched.
  if (tenant_envelope_ > 0) {
    auto cnt = shard.tenant_count.find(tenant);
    if (cnt != shard.tenant_count.end() && cnt->second >= tenant_envelope_) {
      EvictTenantOneLocked(shard, tenant);
    }
  }
  Entry entry;
  entry.canonical = key.canonical;
  entry.hash = key.hash;
  entry.tenant = tenant;
  entry.first_slot = FirstSlot(key.start_tod, delta_t_seconds_);
  entry.last_slot = LastSlot(key.start_tod, key.duration, delta_t_seconds_);
  // The execution paths normalize time-of-day modulo one day, so a window
  // crossing midnight actually reads early-morning slots too. Recording
  // the raw (unwrapped) range would let an invalidation of those morning
  // slots miss this entry; cover the whole day instead — conservative
  // over-eviction, never a stale serve.
  if (entry.last_slot >= SlotsPerDay(delta_t_seconds_)) {
    entry.first_slot = 0;
    entry.last_slot = SlotsPerDay(delta_t_seconds_) - 1;
  }
  entry.result = std::move(stored);
  shard.lru.push_front(std::move(entry));
  shard.index[key.canonical] = shard.lru.begin();
  CountInsertLocked(shard, tenant);
  ++shard.stats.insertions;
  InsertionsCounter().Add();
  while (shard.index.size() > shard_capacity_) EvictOneLocked(shard);
}

void ResultCache::InvalidateTimeRange(int64_t begin_tod, int64_t end_tod) {
  if (end_tod <= begin_tod) return;
  InvalidateSlotRange(FirstSlot(begin_tod, delta_t_seconds_),
                      LastSlot(begin_tod, end_tod - begin_tod,
                               delta_t_seconds_));
}

void ResultCache::InvalidateSlotRange(SlotId begin, SlotId end) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (std::list<Entry>* seg : {&shard.lru, &shard.hot}) {
      for (auto it = seg->begin(); it != seg->end();) {
        bool overlaps = it->first_slot <= end && begin <= it->last_slot;
        if (overlaps) {
          CountEraseLocked(shard, it->tenant);
          shard.index.erase(it->canonical);
          it = seg->erase(it);
          ++shard.stats.invalidated;
          InvalidatedCounter().Add();
        } else {
          ++it;
        }
      }
    }
  }
}

void ResultCache::Erase(const PlanKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.canonical);
  if (it == shard.index.end()) return;
  CountEraseLocked(shard, it->second->tenant);
  (it->second->in_protected ? shard.hot : shard.lru).erase(it->second);
  shard.index.erase(it);
  ++shard.stats.invalidated;
  InvalidatedCounter().Add();
}

void ResultCache::InvalidateAll() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.stats.invalidated += shard.index.size();
    InvalidatedCounter().Add(shard.index.size());
    shard.lru.clear();
    shard.hot.clear();
    shard.index.clear();
    shard.tenant_count.clear();
  }
}

ResultCache::Stats ResultCache::stats() const {
  Stats total;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
    total.hits += shard_ptr->stats.hits;
    total.misses += shard_ptr->stats.misses;
    total.insertions += shard_ptr->stats.insertions;
    total.evictions += shard_ptr->stats.evictions;
    total.invalidated += shard_ptr->stats.invalidated;
    total.doorkeeper_rejected += shard_ptr->stats.doorkeeper_rejected;
    total.promotions += shard_ptr->stats.promotions;
    total.demotions += shard_ptr->stats.demotions;
    total.tenant_evictions += shard_ptr->stats.tenant_evictions;
  }
  return total;
}

size_t ResultCache::TenantSize(TenantId tenant) const {
  size_t n = 0;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
    auto it = shard_ptr->tenant_count.find(tenant);
    if (it != shard_ptr->tenant_count.end()) n += it->second;
  }
  return n;
}

size_t ResultCache::size() const {
  size_t n = 0;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
    n += shard_ptr->index.size();
  }
  return n;
}

}  // namespace strr
