#include "core/tenant_registry.h"

#include <algorithm>

namespace strr {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

TenantRegistry::TenantRegistry(const TenantConfig& defaults)
    : defaults_(defaults) {
  if (defaults_.weight == 0) defaults_.weight = 1;
}

TenantRegistry::State* TenantRegistry::GetOrCreate(TenantId tenant) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    it->second = std::make_unique<State>();
    it->second->config = defaults_;
  }
  return it->second.get();
}

void TenantRegistry::Configure(TenantId tenant, const TenantConfig& config) {
  GetOrCreate(tenant);  // ensure the entry exists
  std::unique_lock<std::shared_mutex> lock(mu_);
  State& state = *tenants_.at(tenant);
  state.config = config;
  if (state.config.weight == 0) state.config.weight = 1;
  state.configured = true;
}

TenantConfig TenantRegistry::config(TenantId tenant) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second->configured) return defaults_;
  return it->second->config;
}

void TenantRegistry::RecordAdmission(TenantId tenant) {
  State* state = GetOrCreate(tenant);
  state->admitted.fetch_add(1, kRelaxed);
  state->inflight.fetch_add(1, kRelaxed);
}

void TenantRegistry::RecordRelease(TenantId tenant) {
  State* state = GetOrCreate(tenant);
  // Floor at zero defensively; callers pair releases with grants.
  uint64_t current = state->inflight.load(kRelaxed);
  while (current > 0 &&
         !state->inflight.compare_exchange_weak(current, current - 1,
                                                kRelaxed, kRelaxed)) {
  }
}

void TenantRegistry::RecordShed(TenantId tenant) {
  GetOrCreate(tenant)->shed.fetch_add(1, kRelaxed);
}

void TenantRegistry::RecordCacheHit(TenantId tenant) {
  GetOrCreate(tenant)->cache_hits.fetch_add(1, kRelaxed);
}

void TenantRegistry::RecordCacheMiss(TenantId tenant) {
  GetOrCreate(tenant)->cache_misses.fetch_add(1, kRelaxed);
}

void TenantRegistry::RecordCompletion(TenantId tenant,
                                      const StorageStats& io) {
  State* state = GetOrCreate(tenant);
  state->completed.fetch_add(1, kRelaxed);
  state->io_disk_page_reads.fetch_add(io.disk_page_reads, kRelaxed);
  state->io_disk_page_writes.fetch_add(io.disk_page_writes, kRelaxed);
  state->io_cache_hits.fetch_add(io.cache_hits, kRelaxed);
  state->io_cache_misses.fetch_add(io.cache_misses, kRelaxed);
  state->io_evictions.fetch_add(io.evictions, kRelaxed);
}

TenantCounters TenantRegistry::Load(TenantId tenant, const State& state) {
  TenantCounters out;
  out.tenant = tenant;
  out.admitted = state.admitted.load(kRelaxed);
  out.shed = state.shed.load(kRelaxed);
  out.completed = state.completed.load(kRelaxed);
  out.cache_hits = state.cache_hits.load(kRelaxed);
  out.cache_misses = state.cache_misses.load(kRelaxed);
  out.inflight = static_cast<size_t>(state.inflight.load(kRelaxed));
  out.io.disk_page_reads = state.io_disk_page_reads.load(kRelaxed);
  out.io.disk_page_writes = state.io_disk_page_writes.load(kRelaxed);
  out.io.cache_hits = state.io_cache_hits.load(kRelaxed);
  out.io.cache_misses = state.io_cache_misses.load(kRelaxed);
  out.io.evictions = state.io_evictions.load(kRelaxed);
  return out;
}

TenantCounters TenantRegistry::counters(TenantId tenant) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    TenantCounters empty;
    empty.tenant = tenant;
    return empty;
  }
  return Load(tenant, *it->second);
}

std::vector<TenantCounters> TenantRegistry::Snapshot() const {
  std::vector<TenantCounters> out;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.reserve(tenants_.size());
    for (const auto& [id, state] : tenants_) {
      out.push_back(Load(id, *state));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TenantCounters& a, const TenantCounters& b) {
              return a.tenant < b.tenant;
            });
  return out;
}

}  // namespace strr
