#include "core/tenant_registry.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

namespace strr {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

TenantRegistry::TenantRegistry(const TenantConfig& defaults)
    : defaults_(defaults) {
  if (defaults_.weight == 0) defaults_.weight = 1;
}

TenantRegistry::~TenantRegistry() { StopFileWatch(); }

TenantRegistry::State* TenantRegistry::GetOrCreate(TenantId tenant) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    it->second = std::make_unique<State>();
    it->second->config = defaults_;
  }
  return it->second.get();
}

void TenantRegistry::Configure(TenantId tenant, const TenantConfig& config) {
  GetOrCreate(tenant);  // ensure the entry exists
  std::unique_lock<std::shared_mutex> lock(mu_);
  State& state = *tenants_.at(tenant);
  state.config = config;
  if (state.config.weight == 0) state.config.weight = 1;
  state.configured = true;
}

TenantConfig TenantRegistry::config(TenantId tenant) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second->configured) return defaults_;
  return it->second->config;
}

Status TenantRegistry::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("tenant config: cannot open " + path);
  }
  // Parse everything before applying anything: a bad line must not leave
  // the registry half-reconfigured.
  std::vector<std::pair<TenantId, TenantConfig>> parsed;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    uint64_t tenant = 0;
    uint64_t weight = 0;
    uint64_t max_inflight = 0;
    uint64_t max_queued = 0;
    if (!(fields >> tenant)) {
      // Only genuinely empty lines skip; junk must reject, or a typoed
      // tenant id silently serves under defaults.
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      return Status::InvalidArgument("tenant config: " + path + ":" +
                                     std::to_string(line_no) +
                                     ": non-numeric tenant id");
    }
    if (!(fields >> weight >> max_inflight >> max_queued)) {
      return Status::InvalidArgument("tenant config: " + path + ":" +
                                     std::to_string(line_no) +
                                     ": want `tenant weight max_inflight "
                                     "max_queued`");
    }
    std::string extra;
    if (fields >> extra) {
      return Status::InvalidArgument("tenant config: " + path + ":" +
                                     std::to_string(line_no) +
                                     ": trailing field `" + extra + "`");
    }
    TenantConfig config;
    config.weight = weight == 0 ? 1 : static_cast<uint32_t>(weight);
    config.max_inflight = static_cast<size_t>(max_inflight);
    config.max_queued = static_cast<size_t>(max_queued);
    parsed.emplace_back(static_cast<TenantId>(tenant), config);
  }
  for (const auto& [tenant, config] : parsed) {
    Configure(tenant, config);
  }
  reloads_.fetch_add(1, kRelaxed);
  return Status::OK();
}

Status TenantRegistry::StartFileWatch(const std::string& path,
                                      int64_t poll_ms) {
  StopFileWatch();
  Status initial = LoadFromFile(path);
  if (!initial.ok()) return initial;
  std::error_code ec;
  std::filesystem::file_time_type mtime =
      std::filesystem::last_write_time(path, ec);
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watch_stop_ = false;
    watch_path_ = path;
    watch_mtime_ = ec ? std::filesystem::file_time_type{} : mtime;
  }
  if (poll_ms < 1) poll_ms = 1;
  watch_thread_ = std::thread([this, poll_ms] {
    std::unique_lock<std::mutex> lock(watch_mu_);
    for (;;) {
      watch_cv_.wait_for(lock, std::chrono::milliseconds(poll_ms),
                         [this] { return watch_stop_; });
      if (watch_stop_) return;
      std::error_code poll_ec;
      std::filesystem::file_time_type now =
          std::filesystem::last_write_time(watch_path_, poll_ec);
      if (poll_ec || now == watch_mtime_) continue;
      watch_mtime_ = now;
      std::string path_copy = watch_path_;
      lock.unlock();
      // A mid-write read may parse garbage; the parse-then-apply contract
      // makes that a harmless skipped reload, retried next poll via the
      // writer's final mtime bump.
      (void)LoadFromFile(path_copy);
      lock.lock();
    }
  });
  return Status::OK();
}

void TenantRegistry::StopFileWatch() {
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watch_stop_ = true;
  }
  watch_cv_.notify_all();
  if (watch_thread_.joinable()) watch_thread_.join();
}

bool TenantRegistry::TryClaimInflight(TenantId tenant, size_t max_inflight) {
  State* state = GetOrCreate(tenant);
  if (max_inflight == 0) {
    state->admitted.fetch_add(1, kRelaxed);
    state->inflight.fetch_add(1, kRelaxed);
    return true;
  }
  uint64_t current = state->inflight.load(kRelaxed);
  while (current < max_inflight) {
    if (state->inflight.compare_exchange_weak(current, current + 1, kRelaxed,
                                              kRelaxed)) {
      state->admitted.fetch_add(1, kRelaxed);
      return true;
    }
  }
  return false;
}

void TenantRegistry::ReleaseClaim(TenantId tenant) { RecordRelease(tenant); }

void TenantRegistry::RecordAdmission(TenantId tenant) {
  State* state = GetOrCreate(tenant);
  state->admitted.fetch_add(1, kRelaxed);
  state->inflight.fetch_add(1, kRelaxed);
}

void TenantRegistry::RecordRelease(TenantId tenant) {
  State* state = GetOrCreate(tenant);
  // Floor at zero defensively; callers pair releases with grants.
  uint64_t current = state->inflight.load(kRelaxed);
  while (current > 0 &&
         !state->inflight.compare_exchange_weak(current, current - 1,
                                                kRelaxed, kRelaxed)) {
  }
}

void TenantRegistry::RecordShed(TenantId tenant) {
  GetOrCreate(tenant)->shed.fetch_add(1, kRelaxed);
}

void TenantRegistry::RecordCacheHit(TenantId tenant) {
  GetOrCreate(tenant)->cache_hits.fetch_add(1, kRelaxed);
}

void TenantRegistry::RecordCacheMiss(TenantId tenant) {
  GetOrCreate(tenant)->cache_misses.fetch_add(1, kRelaxed);
}

void TenantRegistry::RecordCompletion(TenantId tenant,
                                      const StorageStats& io) {
  State* state = GetOrCreate(tenant);
  state->completed.fetch_add(1, kRelaxed);
  state->io_disk_page_reads.fetch_add(io.disk_page_reads, kRelaxed);
  state->io_disk_page_writes.fetch_add(io.disk_page_writes, kRelaxed);
  state->io_cache_hits.fetch_add(io.cache_hits, kRelaxed);
  state->io_cache_misses.fetch_add(io.cache_misses, kRelaxed);
  state->io_evictions.fetch_add(io.evictions, kRelaxed);
}

TenantCounters TenantRegistry::Load(TenantId tenant, const State& state) {
  TenantCounters out;
  out.tenant = tenant;
  out.admitted = state.admitted.load(kRelaxed);
  out.shed = state.shed.load(kRelaxed);
  out.completed = state.completed.load(kRelaxed);
  out.cache_hits = state.cache_hits.load(kRelaxed);
  out.cache_misses = state.cache_misses.load(kRelaxed);
  out.inflight = static_cast<size_t>(state.inflight.load(kRelaxed));
  out.io.disk_page_reads = state.io_disk_page_reads.load(kRelaxed);
  out.io.disk_page_writes = state.io_disk_page_writes.load(kRelaxed);
  out.io.cache_hits = state.io_cache_hits.load(kRelaxed);
  out.io.cache_misses = state.io_cache_misses.load(kRelaxed);
  out.io.evictions = state.io_evictions.load(kRelaxed);
  return out;
}

TenantCounters TenantRegistry::counters(TenantId tenant) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    TenantCounters empty;
    empty.tenant = tenant;
    return empty;
  }
  return Load(tenant, *it->second);
}

std::vector<TenantCounters> TenantRegistry::Snapshot() const {
  std::vector<TenantCounters> out;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.reserve(tenants_.size());
    for (const auto& [id, state] : tenants_) {
      out.push_back(Load(id, *state));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TenantCounters& a, const TenantCounters& b) {
              return a.tenant < b.tenant;
            });
  return out;
}

}  // namespace strr
