#include "core/negative_cache.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace strr {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

NegativeCache::NegativeCache(const NegativeCacheOptions& options)
    : capacity_(std::max<size_t>(options.capacity, 1)),
      ttl_ms_(std::max<int64_t>(options.ttl_ms, 1)),
      now_ms_(options.now_ms ? options.now_ms : SteadyNowMs) {}

std::optional<Status> NegativeCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (now_ms_() >= it->second->expires_ms) {
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.expired;
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->status;
}

void NegativeCache::Insert(const std::string& key, const Status& status) {
  if (status.ok()) return;  // only failures belong here
  std::lock_guard<std::mutex> lock(mu_);
  int64_t expires = now_ms_() + ttl_ms_;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->status = status;
    it->second->expires_ms = expires;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, status, expires});
  index_[key] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

NegativeCache::Stats NegativeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t NegativeCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace strr
