// NegativeCache: bounded TTL cache of failed lookups — the front door's
// answer to junk-location floods.
//
// Planner NotFound errors (a query location that matches no road segment)
// are recomputed from scratch on every attempt: an R-tree descent plus
// candidate scan, repeated unboundedly when a misbehaving client hammers
// the same bogus coordinate. The ResultCache cannot help — it keys
// *plans*, and these queries never produce one. This cache remembers the
// failure itself, keyed by the raw query identity, and serves it back
// until the entry expires.
//
// Entries carry a TTL (unlike positive results, a NotFound can become
// stale the moment the road network or index grows) and the capacity is
// small and LRU-bounded: one flood cannot evict another tenant's
// well-behaved entries, and memory stays O(capacity) no matter how many
// distinct junk keys arrive.
//
// Thread-safe behind one mutex: every operation is O(1) hash + list work,
// and the cache sits on the *failure* path plus one lookup per facade
// query, far from the execution hot loop.
#ifndef STRR_CORE_NEGATIVE_CACHE_H_
#define STRR_CORE_NEGATIVE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/status.h"

namespace strr {

/// Negative-cache construction knobs.
struct NegativeCacheOptions {
  size_t capacity = 256;   ///< max entries (LRU-evicted beyond this)
  int64_t ttl_ms = 1000;   ///< entry lifetime
  /// Clock override for tests; defaults to steady_clock milliseconds.
  std::function<int64_t()> now_ms;
};

/// Bounded TTL+LRU map from request key to the Status that failed it.
class NegativeCache {
 public:
  explicit NegativeCache(const NegativeCacheOptions& options = {});

  /// Returns the cached failure for `key`, or nullopt when absent or
  /// expired (expired entries are dropped on the way). Refreshes LRU.
  std::optional<Status> Lookup(const std::string& key);

  /// Remembers `status` (must be !ok) for `key` with a fresh TTL.
  void Insert(const std::string& key, const Status& status);

  /// Point-in-time counters.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;  ///< LRU capacity evictions
    uint64_t expired = 0;    ///< entries dropped past their TTL
  };
  Stats stats() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    Status status;
    int64_t expires_ms = 0;
  };

  size_t capacity_;
  int64_t ttl_ms_;
  std::function<int64_t()> now_ms_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace strr

#endif  // STRR_CORE_NEGATIVE_CACHE_H_
