#include "core/wfq_admission.h"

#include <algorithm>
#include <string>

namespace strr {

WfqAdmissionController::WfqAdmissionController(const WfqOptions& options,
                                               TenantRegistry* registry)
    : max_inflight_(options.max_inflight),
      batch_share_(std::clamp(options.batch_share, 0.0, 1.0)),
      registry_(registry) {
  global_batch_cap_ = std::max<size_t>(
      static_cast<size_t>(static_cast<double>(max_inflight_) * batch_share_),
      1);
  global_batch_cap_ =
      std::min(global_batch_cap_, std::max<size_t>(max_inflight_, 1));
}

size_t WfqAdmissionController::QuotaForLocked(
    TenantId /*tenant*/, const TenantConfig& config) const {
  if (config.max_inflight == 0) return max_inflight_;
  return std::min(config.max_inflight, max_inflight_);
}

size_t WfqAdmissionController::QuotaFor(TenantId tenant) const {
  return QuotaForLocked(tenant, registry_->config(tenant));
}

WfqAdmissionController::TenantQueue& WfqAdmissionController::QueueForLocked(
    TenantId tenant) {
  auto [it, inserted] = queues_.try_emplace(tenant);
  if (inserted) it->second = std::make_unique<TenantQueue>();
  return *it->second;
}

Status WfqAdmissionController::Admit(TenantId tenant) {
  if (!enabled()) return Status::OK();
  TenantConfig config = registry_->config(tenant);
  std::unique_lock<std::mutex> lock(mu_);
  TenantQueue& q = QueueForLocked(tenant);
  size_t quota = QuotaForLocked(tenant, config);
  // Fast path: a free ticket under both caps with no queued neighbours
  // from this tenant (FIFO within a tenant). Waiters of OTHER tenants can
  // only be quota-parked when global tickets are free (DispatchLocked
  // drains every grantable waiter before returning), so taking a ticket
  // here never jumps a dispatchable queue.
  if (q.waiters.empty() && inflight_ < max_inflight_ && q.inflight < quota) {
    ++inflight_;
    ++q.inflight;
    ++stats_.admitted;
    registry_->RecordAdmission(tenant);
    return Status::OK();
  }
  if (q.waiters.size() >= config.max_queued) {
    ++stats_.shed;
    registry_->RecordShed(tenant);
    return Status::ResourceExhausted(
        "tenant " + std::to_string(tenant) + " admission queue full: " +
        std::to_string(q.inflight) + " in flight (quota " +
        std::to_string(quota) + "), " + std::to_string(q.waiters.size()) +
        " waiting (bound " + std::to_string(config.max_queued) +
        "), global " + std::to_string(inflight_) + "/" +
        std::to_string(max_inflight_));
  }
  Waiter waiter;
  q.waiters.push_back(&waiter);
  ++waiting_;
  if (!q.in_ring) {
    q.in_ring = true;
    ring_.push_back(tenant);
  }
  // Granted by DispatchLocked (which also does all the accounting); the
  // dispatcher never touches the node again after setting granted, so the
  // stack frame is safe to unwind once this returns.
  waiter.cv.wait(lock, [&] { return waiter.granted; });
  return Status::OK();
}

Status WfqAdmissionController::TryAdmitBatch(TenantId tenant) {
  if (!enabled()) return Status::OK();
  TenantConfig config = registry_->config(tenant);
  std::lock_guard<std::mutex> lock(mu_);
  TenantQueue& q = QueueForLocked(tenant);
  size_t quota = QuotaForLocked(tenant, config);
  // Batch fair share composed per-tenant: batches are capped against the
  // global pool AND against the tenant's own quota, so one tenant's
  // batches can starve neither other tenants nor its own singles.
  size_t tenant_batch_cap = std::max<size_t>(
      static_cast<size_t>(static_cast<double>(quota) * batch_share_), 1);
  tenant_batch_cap = std::min(tenant_batch_cap, std::max<size_t>(quota, 1));
  if (inflight_ >= max_inflight_ || batch_inflight_ >= global_batch_cap_ ||
      q.inflight >= quota || q.batch_inflight >= tenant_batch_cap) {
    ++stats_.shed;
    registry_->RecordShed(tenant);
    return Status::ResourceExhausted(
        "tenant " + std::to_string(tenant) + " batch over capacity: " +
        std::to_string(q.inflight) + " in flight (" +
        std::to_string(q.batch_inflight) + " batch, tenant caps " +
        std::to_string(quota) + "/" + std::to_string(tenant_batch_cap) +
        "), global " + std::to_string(inflight_) + "/" +
        std::to_string(max_inflight_) + " (" +
        std::to_string(batch_inflight_) + " batch, cap " +
        std::to_string(global_batch_cap_) + ")");
  }
  ++inflight_;
  ++batch_inflight_;
  ++q.inflight;
  ++q.batch_inflight;
  ++stats_.admitted;
  registry_->RecordAdmission(tenant);
  return Status::OK();
}

void WfqAdmissionController::Release(TenantId tenant) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  TenantQueue& q = QueueForLocked(tenant);
  if (inflight_ > 0) --inflight_;
  if (q.inflight > 0) --q.inflight;
  registry_->RecordRelease(tenant);
  DispatchLocked();
}

void WfqAdmissionController::ReleaseBatch(TenantId tenant) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  TenantQueue& q = QueueForLocked(tenant);
  if (inflight_ > 0) --inflight_;
  if (batch_inflight_ > 0) --batch_inflight_;
  if (q.inflight > 0) --q.inflight;
  if (q.batch_inflight > 0) --q.batch_inflight;
  registry_->RecordRelease(tenant);
  DispatchLocked();
}

void WfqAdmissionController::RemoveFromRingLocked() {
  queues_[ring_[rr_pos_]]->in_ring = false;
  ring_.erase(ring_.begin() + static_cast<ptrdiff_t>(rr_pos_));
  // rr_pos_ now points at the element that slid into the removed slot
  // (or past the end, which the dispatch loop wraps) — no advance, so the
  // slid-in tenant is not skipped.
}

void WfqAdmissionController::DispatchLocked() {
  // Deficit round robin over the tenants with waiters. The ring position
  // and per-tenant deficits persist across calls: a tenant whose turn was
  // cut short by the global cap resumes its remaining credit on the next
  // free ticket, which is exactly what makes completion ratios track
  // weights under saturation.
  bool progress = true;
  while (progress && inflight_ < max_inflight_ && !ring_.empty()) {
    progress = false;
    const size_t visits = ring_.size();
    for (size_t v = 0; v < visits; ++v) {
      if (ring_.empty() || inflight_ >= max_inflight_) break;
      if (rr_pos_ >= ring_.size()) rr_pos_ = 0;
      TenantId tenant = ring_[rr_pos_];
      TenantQueue& q = *queues_[tenant];
      if (q.waiters.empty()) {
        // Drained tenants leave the ring at grant time; defensive only.
        q.deficit = 0;
        RemoveFromRingLocked();
        continue;
      }
      TenantConfig config = registry_->config(tenant);
      size_t quota = QuotaForLocked(tenant, config);
      if (q.inflight >= quota) {
        // Quota-parked: forfeit this visit without banking credit
        // (accruing deficit while unable to spend it would burst when the
        // quota frees) and advance so the ring never livelocks behind a
        // full tenant.
        q.deficit = 0;
        ++rr_pos_;
        continue;
      }
      if (q.deficit == 0) q.deficit = std::max<uint32_t>(config.weight, 1);
      while (q.deficit > 0 && !q.waiters.empty() &&
             inflight_ < max_inflight_ && q.inflight < quota) {
        Waiter* waiter = q.waiters.front();
        q.waiters.pop_front();
        --waiting_;
        waiter->granted = true;
        waiter->cv.notify_one();
        ++inflight_;
        ++q.inflight;
        --q.deficit;
        ++stats_.admitted;
        registry_->RecordAdmission(tenant);
        progress = true;
      }
      if (q.waiters.empty()) {
        q.deficit = 0;
        RemoveFromRingLocked();
        continue;
      }
      if (q.deficit == 0) {
        ++rr_pos_;  // visit fully spent; next tenant's turn
      } else {
        // The global cap (or this tenant's quota mid-drain) cut the turn
        // short. Keep the position and the remaining credit: the next
        // release resumes here. (If it was the quota, the next pass takes
        // the quota-parked branch and moves on.)
        break;
      }
    }
  }
}

WfqAdmissionController::Stats WfqAdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t WfqAdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

size_t WfqAdmissionController::inflight(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(tenant);
  return it == queues_.end() ? 0 : it->second->inflight;
}

size_t WfqAdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

size_t WfqAdmissionController::queued(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(tenant);
  return it == queues_.end() ? 0 : it->second->waiters.size();
}

}  // namespace strr
