#include "core/wfq_admission.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace strr {

namespace {

// Shared with the plain controller: both report parked callers into the
// one strr_admission_queued gauge (at most one controller is active per
// executor).
obs::Gauge& QueuedGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("strr_admission_queued");
  return g;
}

obs::Counter& WaitsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_admission_waits_total");
  return c;
}

}  // namespace

WfqAdmissionController::WfqAdmissionController(const WfqOptions& options,
                                               TenantRegistry* registry)
    : max_inflight_(options.max_inflight),
      batch_share_(std::clamp(options.batch_share, 0.0, 1.0)),
      cost_based_(options.cost_based),
      cost_quantum_us_(std::max(options.cost_quantum_us, 1.0)),
      registry_(registry) {
  global_batch_cap_ = std::max<size_t>(
      static_cast<size_t>(static_cast<double>(max_inflight_) * batch_share_),
      1);
  global_batch_cap_ =
      std::min(global_batch_cap_, std::max<size_t>(max_inflight_, 1));
}

size_t WfqAdmissionController::QuotaForLocked(
    TenantId /*tenant*/, const TenantConfig& config) const {
  if (config.max_inflight == 0) return max_inflight_;
  return std::min(config.max_inflight, max_inflight_);
}

size_t WfqAdmissionController::QuotaFor(TenantId tenant) const {
  return QuotaForLocked(tenant, registry_->config(tenant));
}

WfqAdmissionController::TenantQueue& WfqAdmissionController::QueueForLocked(
    TenantId tenant) {
  auto [it, inserted] = queues_.try_emplace(tenant);
  if (inserted) it->second = std::make_unique<TenantQueue>();
  return *it->second;
}

Status WfqAdmissionController::Admit(TenantId tenant) {
  if (!enabled()) return Status::OK();
  TenantConfig config = registry_->config(tenant);
  std::unique_lock<std::mutex> lock(mu_);
  TenantQueue& q = QueueForLocked(tenant);
  size_t quota = QuotaForLocked(tenant, config);
  // Fast path: a free ticket under both caps with no queued neighbours
  // from this tenant (FIFO within a tenant). Waiters of OTHER tenants can
  // only be quota-parked when global tickets are free (DispatchLocked
  // drains every grantable waiter before returning), so taking a ticket
  // here never jumps a dispatchable queue.
  if (q.waiters.empty() && inflight_ < max_inflight_ && q.inflight < quota) {
    ++inflight_;
    ++q.inflight;
    ++stats_.admitted;
    registry_->RecordAdmission(tenant);
    return Status::OK();
  }
  if (q.waiters.size() >= config.max_queued) {
    ++stats_.shed;
    registry_->RecordShed(tenant);
    return Status::ResourceExhausted(
        "tenant " + std::to_string(tenant) + " admission queue full: " +
        std::to_string(q.inflight) + " in flight (quota " +
        std::to_string(quota) + "), " + std::to_string(q.waiters.size()) +
        " waiting (bound " + std::to_string(config.max_queued) +
        "), global " + std::to_string(inflight_) + "/" +
        std::to_string(max_inflight_));
  }
  Waiter waiter;
  q.waiters.push_back(&waiter);
  ++waiting_;
  if (!q.in_ring) {
    q.in_ring = true;
    ring_.push_back(tenant);
  }
  // Granted by DispatchLocked (which also does all the accounting); the
  // dispatcher never touches the node again after setting granted, so the
  // stack frame is safe to unwind once this returns.
  WaitsCounter().Add();
  QueuedGauge().Add(1);
  waiter.cv.wait(lock, [&] { return waiter.granted; });
  QueuedGauge().Add(-1);
  return Status::OK();
}

Status WfqAdmissionController::TryAdmitBatch(TenantId tenant) {
  if (!enabled()) return Status::OK();
  TenantConfig config = registry_->config(tenant);
  std::lock_guard<std::mutex> lock(mu_);
  TenantQueue& q = QueueForLocked(tenant);
  size_t quota = QuotaForLocked(tenant, config);
  // Batch fair share composed per-tenant: batches are capped against the
  // global pool AND against the tenant's own quota, so one tenant's
  // batches can starve neither other tenants nor its own singles.
  size_t tenant_batch_cap = std::max<size_t>(
      static_cast<size_t>(static_cast<double>(quota) * batch_share_), 1);
  tenant_batch_cap = std::min(tenant_batch_cap, std::max<size_t>(quota, 1));
  if (inflight_ >= max_inflight_ || batch_inflight_ >= global_batch_cap_ ||
      q.inflight >= quota || q.batch_inflight >= tenant_batch_cap) {
    ++stats_.shed;
    registry_->RecordShed(tenant);
    return Status::ResourceExhausted(
        "tenant " + std::to_string(tenant) + " batch over capacity: " +
        std::to_string(q.inflight) + " in flight (" +
        std::to_string(q.batch_inflight) + " batch, tenant caps " +
        std::to_string(quota) + "/" + std::to_string(tenant_batch_cap) +
        "), global " + std::to_string(inflight_) + "/" +
        std::to_string(max_inflight_) + " (" +
        std::to_string(batch_inflight_) + " batch, cap " +
        std::to_string(global_batch_cap_) + ")");
  }
  ++inflight_;
  ++batch_inflight_;
  ++q.inflight;
  ++q.batch_inflight;
  ++stats_.admitted;
  registry_->RecordAdmission(tenant);
  return Status::OK();
}

void WfqAdmissionController::RecordCostLocked(TenantQueue& q,
                                              double cost_us) {
  if (!cost_based_ || cost_us < 0.0) return;
  // Floor at 1us so a timer-resolution zero doesn't read as "no sample".
  cost_us = std::max(cost_us, 1.0);
  q.avg_cost_us = q.avg_cost_us == 0.0
                      ? cost_us
                      : 0.75 * q.avg_cost_us + 0.25 * cost_us;
}

void WfqAdmissionController::Release(TenantId tenant, double cost_us) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  TenantQueue& q = QueueForLocked(tenant);
  if (inflight_ > 0) --inflight_;
  if (q.inflight > 0) --q.inflight;
  RecordCostLocked(q, cost_us);
  registry_->RecordRelease(tenant);
  DispatchLocked();
}

void WfqAdmissionController::ReleaseBatch(TenantId tenant, double cost_us) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  TenantQueue& q = QueueForLocked(tenant);
  if (inflight_ > 0) --inflight_;
  if (batch_inflight_ > 0) --batch_inflight_;
  if (q.inflight > 0) --q.inflight;
  if (q.batch_inflight > 0) --q.batch_inflight;
  RecordCostLocked(q, cost_us);
  registry_->RecordRelease(tenant);
  DispatchLocked();
}

double WfqAdmissionController::AvgCostUs(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(tenant);
  return it == queues_.end() ? 0.0 : it->second->avg_cost_us;
}

void WfqAdmissionController::RemoveFromRingLocked() {
  queues_[ring_[rr_pos_]]->in_ring = false;
  ring_.erase(ring_.begin() + static_cast<ptrdiff_t>(rr_pos_));
  // rr_pos_ now points at the element that slid into the removed slot
  // (or past the end, which the dispatch loop wraps) — no advance, so the
  // slid-in tenant is not skipped.
}

void WfqAdmissionController::GrantFrontLocked(TenantId tenant,
                                              TenantQueue& q) {
  Waiter* waiter = q.waiters.front();
  q.waiters.pop_front();
  --waiting_;
  waiter->granted = true;
  waiter->cv.notify_one();
  ++inflight_;
  ++q.inflight;
  ++stats_.admitted;
  registry_->RecordAdmission(tenant);
}

void WfqAdmissionController::DispatchLocked() {
  // Deficit round robin over the tenants with waiters. The ring position
  // and per-tenant deficits persist across calls: a tenant whose turn was
  // cut short by the global cap resumes its remaining credit on the next
  // free ticket, which is exactly what makes completion ratios track
  // weights under saturation. In cost-based mode the deficit is a budget
  // of measured microseconds instead of a grant count, so the ratios that
  // track weights are CPU-time shares.
  bool progress = true;
  while (progress && inflight_ < max_inflight_ && !ring_.empty()) {
    progress = false;
    const size_t visits = ring_.size();
    for (size_t v = 0; v < visits; ++v) {
      if (ring_.empty() || inflight_ >= max_inflight_) break;
      if (rr_pos_ >= ring_.size()) rr_pos_ = 0;
      TenantId tenant = ring_[rr_pos_];
      TenantQueue& q = *queues_[tenant];
      if (q.waiters.empty()) {
        // Drained tenants leave the ring at grant time; defensive only.
        q.deficit = 0;
        q.deficit_us = 0.0;
        RemoveFromRingLocked();
        continue;
      }
      TenantConfig config = registry_->config(tenant);
      size_t quota = QuotaForLocked(tenant, config);
      if (q.inflight >= quota) {
        // Quota-parked: forfeit this visit without banking credit
        // (accruing deficit while unable to spend it would burst when the
        // quota frees) and advance so the ring never livelocks behind a
        // full tenant.
        q.deficit = 0;
        q.deficit_us = 0.0;
        ++rr_pos_;
        continue;
      }
      const uint32_t weight = std::max<uint32_t>(config.weight, 1);
      bool turn_cut_short;
      if (cost_based_) {
        // Credit this visit in microseconds — but only when the current
        // credit can't already afford a grant, mirroring the count-based
        // "fresh visit" rule: a turn resumed after a global-cap cut keeps
        // its credit without re-crediting, and credit stays bounded by
        // charge + weight x quantum. Unspent credit carries over, so a
        // tenant whose queries each cost more than one visit's credit
        // accumulates across ring cycles and still drains (classic DRR
        // backlog handling).
        const double charge =
            q.avg_cost_us > 0.0 ? q.avg_cost_us : cost_quantum_us_;
        if (q.deficit_us < charge) {
          q.deficit_us += static_cast<double>(weight) * cost_quantum_us_;
          // Still short of one grant: demand another pass (classic DRR
          // cycles rounds while backlog exists). Stopping here would
          // strand free tickets behind a tenant whose charge exceeds one
          // visit's credit until some unrelated release redispatches —
          // or forever, when no other ticket is outstanding.
          if (q.deficit_us < charge) progress = true;
        }
        while (q.deficit_us >= charge && !q.waiters.empty() &&
               inflight_ < max_inflight_ && q.inflight < quota) {
          GrantFrontLocked(tenant, q);
          q.deficit_us -= charge;
          progress = true;
        }
        turn_cut_short = !q.waiters.empty() && q.deficit_us >= charge;
      } else {
        if (q.deficit == 0) q.deficit = weight;
        while (q.deficit > 0 && !q.waiters.empty() &&
               inflight_ < max_inflight_ && q.inflight < quota) {
          GrantFrontLocked(tenant, q);
          --q.deficit;
          progress = true;
        }
        turn_cut_short = !q.waiters.empty() && q.deficit > 0;
      }
      if (q.waiters.empty()) {
        q.deficit = 0;
        q.deficit_us = 0.0;
        RemoveFromRingLocked();
        continue;
      }
      if (!turn_cut_short) {
        ++rr_pos_;  // visit fully spent; next tenant's turn
      } else {
        // The global cap (or this tenant's quota mid-drain) cut the turn
        // short. Keep the position and the remaining credit: the next
        // release resumes here. (If it was the quota, the next pass takes
        // the quota-parked branch and moves on.)
        break;
      }
    }
  }
}

WfqAdmissionController::Stats WfqAdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t WfqAdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

size_t WfqAdmissionController::inflight(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(tenant);
  return it == queues_.end() ? 0 : it->second->inflight;
}

size_t WfqAdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

size_t WfqAdmissionController::queued(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(tenant);
  return it == queues_.end() ? 0 : it->second->waiters.size();
}

}  // namespace strr
