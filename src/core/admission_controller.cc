#include "core/admission_controller.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace strr {

namespace {

/// Callers currently parked in an admission queue (this controller and
/// the WFQ one report into the same gauge: at most one is active per
/// executor, and multiple executors' queues sum meaningfully).
obs::Gauge& QueuedGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("strr_admission_queued");
  return g;
}

obs::Counter& WaitsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_admission_waits_total");
  return c;
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : max_inflight_(options.max_inflight), max_queued_(options.max_queued) {
  double share = std::clamp(options.batch_share, 0.0, 1.0);
  batch_cap_ = std::max<size_t>(
      static_cast<size_t>(static_cast<double>(max_inflight_) * share), 1);
  batch_cap_ = std::min(batch_cap_, std::max<size_t>(max_inflight_, 1));
}

Status AdmissionController::Admit() {
  if (!enabled()) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ >= max_inflight_) {
    if (waiting_ >= max_queued_) {
      ++stats_.shed;
      return Status::ResourceExhausted(
          "admission queue full: " + std::to_string(inflight_) +
          " in flight, " + std::to_string(waiting_) + " waiting (limits " +
          std::to_string(max_inflight_) + "/" + std::to_string(max_queued_) +
          ")");
    }
    ++waiting_;
    WaitsCounter().Add();
    QueuedGauge().Add(1);
    ticket_free_.wait(lock, [this] { return inflight_ < max_inflight_; });
    QueuedGauge().Add(-1);
    --waiting_;
  }
  ++inflight_;
  ++stats_.admitted;
  return Status::OK();
}

Status AdmissionController::TryAdmitBatch() {
  if (!enabled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ >= max_inflight_ || batch_inflight_ >= batch_cap_) {
    ++stats_.shed;
    return Status::ResourceExhausted(
        "batch over capacity: " + std::to_string(inflight_) + " in flight (" +
        std::to_string(batch_inflight_) + " batch, batch cap " +
        std::to_string(batch_cap_) + " of " + std::to_string(max_inflight_) +
        ")");
  }
  ++inflight_;
  ++batch_inflight_;
  ++stats_.admitted;
  return Status::OK();
}

void AdmissionController::Release() {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  // notify_all, not _one: a freed ticket may be claimable by a waiting
  // single while another waiter's predicate stays false — waking everyone
  // lets the mutex arbitrate.
  ticket_free_.notify_all();
}

void AdmissionController::ReleaseBatch() {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    --batch_inflight_;
  }
  ticket_free_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

}  // namespace strr
