// Dataset persistence: save/load the pre-processed dataset (re-segmented
// road network + matched trajectory database) in a versioned binary format.
//
// Generating the benchmark-scale dataset costs tens of seconds (fleet
// routing dominates); the bench harness generates once and reloads. The
// format is also the library's interchange format for users bringing their
// own pre-processed data.
#ifndef STRR_CORE_PERSIST_H_
#define STRR_CORE_PERSIST_H_

#include <string>

#include "core/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace strr {

/// Writes `dataset` under `dir` (created if missing): network.strr,
/// trajectories.strr, meta.strr.
Status SaveDataset(const Dataset& dataset, const std::string& dir);

/// Loads a dataset previously written by SaveDataset. Fails with
/// Corruption on format/version mismatches.
StatusOr<Dataset> LoadDataset(const std::string& dir);

/// Serializes one road network to a byte string (exposed for tests).
std::string SerializeNetwork(const RoadNetwork& network);

/// Parses a network serialized by SerializeNetwork.
StatusOr<RoadNetwork> DeserializeNetwork(const std::string& bytes);

}  // namespace strr

#endif  // STRR_CORE_PERSIST_H_
