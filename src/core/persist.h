// Dataset persistence: save/load the pre-processed dataset (re-segmented
// road network + matched trajectory database) in a versioned binary format.
//
// Generating the benchmark-scale dataset costs tens of seconds (fleet
// routing dominates); the bench harness generates once and reloads. The
// format is also the library's interchange format for users bringing their
// own pre-processed data.
#ifndef STRR_CORE_PERSIST_H_
#define STRR_CORE_PERSIST_H_

#include <string>

#include "core/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace strr {

/// Writes `dataset` under `dir` (created if missing) as a new revision:
/// network.<rev>.strr, trajectories.<rev>.strr, meta.<rev>.strr, each
/// published atomically (temp file + fsync + rename), then MANIFEST.strr
/// (format/version/revision plus per-file size and CRC32C) renamed into
/// place as the single commit point. A crash or full disk at any step
/// leaves the previous revision loadable; stale revisions are garbage-
/// collected after the commit.
Status SaveDataset(const Dataset& dataset, const std::string& dir);

/// Loads the dataset committed by the manifest (verifying every file's
/// size and checksum), falling back to the legacy plain-filename layout
/// when no manifest exists. Fails with Corruption on format/version/
/// checksum mismatches and IoError on missing files.
StatusOr<Dataset> LoadDataset(const std::string& dir);

/// True when `dir` holds a committed dataset (manifest or legacy layout).
bool DatasetExists(const std::string& dir);

/// Serializes one road network to a byte string (exposed for tests).
std::string SerializeNetwork(const RoadNetwork& network);

/// Parses a network serialized by SerializeNetwork.
StatusOr<RoadNetwork> DeserializeNetwork(const std::string& bytes);

}  // namespace strr

#endif  // STRR_CORE_PERSIST_H_
