// WfqAdmissionController: per-tenant bounded ticket pools with a global
// cap, dispatched by deficit round robin — the multi-tenant layer of the
// query front door's admission control.
//
// PR 2's AdmissionController bounds *total* outstanding work but knows
// nothing about who submitted it: one aggressive client fills the global
// pool and everyone else sheds. This controller keeps the same outer
// contract (bounded in-flight, bounded waiting, typed ResourceExhausted
// shedding, batch plans never wait, admitted work always completes) and
// adds tenant awareness:
//
//  * global cap — at most `max_inflight` tickets outstanding across all
//    tenants, exactly like the single-tenant controller;
//  * per-tenant quota — a tenant holds at most its configured
//    max_inflight tickets (0 = bounded only by the global cap); a tenant
//    at quota queues or sheds against ITS OWN bounds while every other
//    tenant's admission is untouched;
//  * weighted fair dispatch — when tickets free up under saturation,
//    waiting singles are granted by deficit round robin over the tenants
//    with waiters: each visit credits a tenant `weight` grants, so a
//    weight-2 tenant drains ~2x a weight-1 tenant, and every tenant with
//    waiters is visited each cycle — no tenant starves no matter how
//    large the heaviest weight is;
//  * batch fair share composed per-tenant — batch plans take a ticket or
//    shed (never wait), capped both globally (batch_share of the global
//    cap) and per tenant (batch_share of the tenant's quota), so one
//    tenant's batches can starve neither other tenants nor its own
//    singles.
//
// Configuration (weight, quota, queue bound) and per-tenant counters live
// in the shared TenantRegistry; this class owns only the scheduling
// state. Scheduling state is PER CONTROLLER: when several executors share
// one registry, each executor's controller enforces quotas and weights
// over its own ticket pool — a tenant with quota q may hold q tickets in
// each executor (configs and counters are shared; in-flight arbitration
// is not). Waiting happens on caller threads, never on executor pool
// workers (QueryExecutor skips admission for work already on its own
// pool), so admission can never deadlock the pool against itself.
#ifndef STRR_CORE_WFQ_ADMISSION_H_
#define STRR_CORE_WFQ_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/tenant_registry.h"
#include "util/status.h"

namespace strr {

/// Scheduler knobs. Per-tenant weight/quota/queue bounds come from the
/// TenantRegistry, not from here.
struct WfqOptions {
  /// Max admitted-and-outstanding queries across all tenants. 0 disables
  /// admission (everything admits immediately).
  size_t max_inflight = 0;
  /// Fraction of a pool (global cap, and each tenant's quota) all batch
  /// work combined may hold, in (0, 1]; clamped so batches always get at
  /// least one ticket.
  double batch_share = 0.5;
  /// Cost-based DRR: charge each grant the tenant's measured average query
  /// cost in microseconds (EWMA of the costs passed to Release) instead of
  /// one count. Fairness then holds in CPU time, not grant counts — a
  /// tenant of 100x-costlier m-queries gets ~1/100th the grants of an
  /// equal-weight s-query tenant rather than an equal number.
  bool cost_based = false;
  /// Microseconds of credit one weight unit earns per DRR visit; also the
  /// charge for tenants with no measured cost yet.
  double cost_quantum_us = 10000.0;
};

/// See file comment. All methods are thread-safe. The registry must
/// outlive the controller.
class WfqAdmissionController {
 public:
  WfqAdmissionController(const WfqOptions& options, TenantRegistry* registry);

  bool enabled() const { return max_inflight_ > 0; }

  /// Admits one single query for `tenant`: grants a ticket immediately
  /// when one is free under both caps, waits in the tenant's bounded
  /// queue otherwise, or sheds with a ResourceExhausted naming the
  /// tenant. On OK the caller must eventually call Release(tenant)
  /// exactly once.
  Status Admit(TenantId tenant);

  /// Admits one batch plan for `tenant` without blocking: ticket or
  /// typed ResourceExhausted. On OK the caller must eventually call
  /// ReleaseBatch(tenant) exactly once.
  Status TryAdmitBatch(TenantId tenant);

  /// `cost_us` (>= 0) reports the query's measured execution cost in
  /// microseconds; it feeds the tenant's cost EWMA under cost-based DRR
  /// and is ignored otherwise. Pass a negative value when unmeasured.
  void Release(TenantId tenant, double cost_us = -1.0);
  void ReleaseBatch(TenantId tenant, double cost_us = -1.0);

  /// Tenant's average query cost estimate, microseconds (0 = no sample).
  double AvgCostUs(TenantId tenant) const;

  /// Aggregate counters across tenants (per-tenant breakdowns live in
  /// the registry).
  struct Stats {
    uint64_t admitted = 0;
    uint64_t shed = 0;
  };
  Stats stats() const;

  size_t inflight() const;
  size_t inflight(TenantId tenant) const;
  size_t queued() const;
  size_t queued(TenantId tenant) const;
  size_t max_inflight() const { return max_inflight_; }

  /// Effective per-tenant in-flight quota: the configured per-tenant
  /// max_inflight clamped to the global cap (0 = global cap).
  size_t QuotaFor(TenantId tenant) const;

 private:
  /// One caller blocked in Admit. Stack-allocated in the waiter's frame;
  /// the dispatcher pops it from the queue, marks it granted and
  /// notifies — after which it never touches the node again.
  struct Waiter {
    bool granted = false;
    std::condition_variable cv;
  };

  struct TenantQueue {
    std::deque<Waiter*> waiters;   ///< FIFO within one tenant
    size_t inflight = 0;           ///< tickets held (singles + batch)
    size_t batch_inflight = 0;     ///< tickets held by batch plans
    /// Deficit-round-robin credit: grants this tenant may still take in
    /// its current visit. Credited `weight` when a fresh visit starts
    /// (deficit == 0), decremented per grant, reset when the tenant's
    /// queue drains or it forfeits a visit at quota.
    uint32_t deficit = 0;
    /// Cost-based DRR credit, microseconds. Credited weight x quantum per
    /// visit; each grant is charged the tenant's average measured cost.
    /// Unspent credit carries across visits so queries costlier than one
    /// visit's credit still drain; reset on drain or quota-park.
    double deficit_us = 0.0;
    /// EWMA of measured query costs, microseconds (0 = no sample yet).
    double avg_cost_us = 0.0;
    bool in_ring = false;          ///< member of ring_
  };

  size_t QuotaForLocked(TenantId tenant, const TenantConfig& config) const;
  TenantQueue& QueueForLocked(TenantId tenant);

  /// Grants the tenant's front waiter one ticket (all accounting except
  /// deficit charging). Caller holds mu_.
  void GrantFrontLocked(TenantId tenant, TenantQueue& q);

  /// Folds a measured cost into the tenant's EWMA. Caller holds mu_.
  void RecordCostLocked(TenantQueue& q, double cost_us);

  /// Grants tickets to waiting singles by deficit round robin until the
  /// global cap is reached or no eligible waiter remains. Caller holds
  /// mu_. The ring position and deficits persist across calls — they ARE
  /// the WFQ state.
  void DispatchLocked();

  /// Removes ring_[rr_pos_] from the ring without advancing past the
  /// element that slides into its slot. Caller holds mu_.
  void RemoveFromRingLocked();

  size_t max_inflight_;
  double batch_share_;
  size_t global_batch_cap_;
  bool cost_based_;
  double cost_quantum_us_;
  TenantRegistry* registry_;

  mutable std::mutex mu_;
  std::unordered_map<TenantId, std::unique_ptr<TenantQueue>> queues_;
  /// Tenants that currently have waiters, in DRR visiting order.
  std::vector<TenantId> ring_;
  size_t rr_pos_ = 0;
  size_t inflight_ = 0;        ///< all outstanding tickets
  size_t batch_inflight_ = 0;  ///< tickets held by batch plans
  size_t waiting_ = 0;         ///< callers blocked across all tenants
  Stats stats_;
};

}  // namespace strr

#endif  // STRR_CORE_WFQ_ADMISSION_H_
