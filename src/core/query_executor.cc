#include "core/query_executor.h"

#include <algorithm>
#include <future>
#include <string>

#include "query/es_baseline.h"
#include "query/probability.h"
#include "query/trace_back.h"
#include "util/stopwatch.h"

namespace strr {

namespace {

/// Sanity checks a plan before execution. Plans from QueryPlanner always
/// pass; this guards hand-built or mutated plans so a bad one surfaces as
/// a per-plan Status instead of undefined behaviour mid-batch.
Status ValidatePlan(const QueryPlan& plan) {
  if (plan.locations.empty() || plan.location_starts.empty()) {
    return Status::InvalidArgument("QueryPlan: no resolved locations");
  }
  if (plan.locations.size() != plan.location_starts.size()) {
    return Status::InvalidArgument(
        "QueryPlan: locations/location_starts size mismatch");
  }
  for (const auto& starts : plan.location_starts) {
    if (starts.empty()) {
      return Status::InvalidArgument(
          "QueryPlan: a location resolved to no start segments");
    }
  }
  if (plan.prob <= 0.0 || plan.prob > 1.0) {
    return Status::InvalidArgument("QueryPlan: Prob must be in (0, 1]");
  }
  if (plan.duration <= 0) {
    return Status::InvalidArgument("QueryPlan: duration must be positive");
  }
  if (plan.strategy == QueryStrategy::kExhaustive &&
      plan.locations.size() > 1) {
    return Status::InvalidArgument(
        "QueryPlan: exhaustive strategy is single-location");
  }
  return Status::OK();
}

}  // namespace

QueryExecutor::QueryExecutor(const RoadNetwork& network,
                             const StIndex& st_index,
                             const ConIndex& con_index,
                             const SpeedProfile& profile,
                             int64_t delta_t_seconds,
                             const QueryExecutorOptions& options)
    : network_(&network),
      st_index_(&st_index),
      con_index_(&con_index),
      profile_(&profile),
      delta_t_seconds_(delta_t_seconds),
      options_(options),
      pool_(options.num_threads < 0 ? 1
                                    : static_cast<size_t>(options.num_threads)) {
}

StatusOr<RegionResult> QueryExecutor::Execute(const QueryPlan& plan) {
  STRR_RETURN_IF_ERROR(ValidatePlan(plan));
  switch (plan.strategy) {
    case QueryStrategy::kIndexed:
      return ExecuteIndexed(plan);
    case QueryStrategy::kExhaustive:
      return ExecuteExhaustive(plan);
    case QueryStrategy::kRepeatedS:
      return ExecuteRepeatedS(plan);
  }
  return Status::Internal("QueryPlan: unknown strategy");
}

std::vector<StatusOr<RegionResult>> QueryExecutor::ExecuteBatch(
    std::span<const QueryPlan> plans) {
  std::vector<StatusOr<RegionResult>> results;
  results.reserve(plans.size());
  if (pool_.OnWorkerThread() || pool_.num_threads() <= 1) {
    // Already on a pool worker (nested batch) or no parallelism available:
    // run inline — submitting and blocking here could starve the pool.
    for (const QueryPlan& plan : plans) results.push_back(Execute(plan));
    return results;
  }
  std::vector<std::future<StatusOr<RegionResult>>> futures;
  futures.reserve(plans.size());
  for (const QueryPlan& plan : plans) {
    futures.push_back(pool_.Submit(
        [this, &plan]() -> StatusOr<RegionResult> { return Execute(plan); }));
  }
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

StatusOr<RegionResult> QueryExecutor::RunTraceBack(
    const BoundingRegions& regions, int64_t start_tod, int64_t duration,
    double prob, double setup_ms, const StorageStats& io_before) {
  Stopwatch watch;
  STRR_ASSIGN_OR_RETURN(
      ReachabilityProbability oracle,
      ReachabilityProbability::Create(*st_index_, regions.start_segments,
                                      start_tod, delta_t_seconds_, duration));

  RegionResult result;
  if (oracle.StartHasNoTraffic()) {
    // No trajectory ever left the start window on any day: every segment's
    // probability is identically zero, so the Prob-region is empty. (The
    // bounding regions come from speed *statistics* and can be non-empty
    // even then; trusting them here would fabricate reachability.)
    result.segments.clear();
  } else {
    STRR_ASSIGN_OR_RETURN(TbsOutcome tbs,
                          TraceBackSearch(*network_, regions, prob, oracle));
    result.segments = std::move(tbs.region);
  }
  result.total_length_m = network_->LengthOfSegments(result.segments);
  result.stats.wall_ms = setup_ms + watch.ElapsedMillis();
  result.stats.sum_wall_ms = result.stats.wall_ms;
  result.stats.segments_verified = oracle.verifications();
  result.stats.time_lists_read = oracle.time_lists_read();
  result.stats.io = st_index_->storage_stats() - io_before;
  result.stats.max_region_segments = regions.max_region.size();
  result.stats.min_region_segments = regions.min_region.size();
  result.stats.boundary_segments = regions.boundary.size();
  return result;
}

StatusOr<RegionResult> QueryExecutor::ExecuteIndexed(const QueryPlan& plan) {
  Stopwatch watch;
  StorageStats io_before = st_index_->storage_stats();
  BoundingRegions regions;
  if (plan.IsMultiLocation()) {
    STRR_ASSIGN_OR_RETURN(
        regions, MqmbSearch(*network_, *con_index_, *profile_,
                            plan.AllStartSegments(), plan.start_tod,
                            plan.duration));
  } else {
    STRR_ASSIGN_OR_RETURN(
        regions, SqmbSearchSet(*network_, *con_index_, plan.location_starts[0],
                               plan.start_tod, plan.duration));
  }
  return RunTraceBack(regions, plan.start_tod, plan.duration, plan.prob,
                      watch.ElapsedMillis(), io_before);
}

StatusOr<RegionResult> QueryExecutor::ExecuteExhaustive(
    const QueryPlan& plan) {
  SQuery query{plan.locations[0], plan.start_tod, plan.duration, plan.prob};
  STRR_ASSIGN_OR_RETURN(
      RegionResult result,
      ExhaustiveSearch(*st_index_, *profile_, query, delta_t_seconds_,
                       plan.location_starts[0]));
  result.stats.sum_wall_ms = result.stats.wall_ms;
  return result;
}

StatusOr<RegionResult> QueryExecutor::ExecuteRepeatedS(const QueryPlan& plan) {
  Stopwatch watch;
  StorageStats io_before = st_index_->storage_stats();

  // One independent single-location indexed leg per query location.
  std::vector<QueryPlan> legs;
  legs.reserve(plan.locations.size());
  for (size_t i = 0; i < plan.locations.size(); ++i) {
    QueryPlan leg;
    leg.strategy = QueryStrategy::kIndexed;
    leg.locations = {plan.locations[i]};
    leg.location_starts = {plan.location_starts[i]};
    leg.start_tod = plan.start_tod;
    leg.duration = plan.duration;
    leg.prob = plan.prob;
    legs.push_back(std::move(leg));
  }

  std::vector<StatusOr<RegionResult>> leg_results;
  if (options_.parallel_mquery_legs) {
    // ExecuteBatch already degrades to an inline sequential loop on a pool
    // worker or a single-thread pool — one fan-out decision point.
    leg_results = ExecuteBatch(legs);
  } else {
    leg_results.reserve(legs.size());
    for (const QueryPlan& leg : legs) leg_results.push_back(Execute(leg));
  }

  // Merge in location order so the result is independent of scheduling.
  RegionResult merged;
  std::vector<SegmentId> all;
  for (auto& leg_result : leg_results) {
    if (!leg_result.ok()) return leg_result.status();
    const RegionResult& r = *leg_result;
    all.insert(all.end(), r.segments.begin(), r.segments.end());
    merged.stats.sum_wall_ms += r.stats.wall_ms;
    merged.stats.segments_verified += r.stats.segments_verified;
    merged.stats.time_lists_read += r.stats.time_lists_read;
    merged.stats.max_region_segments += r.stats.max_region_segments;
    merged.stats.min_region_segments += r.stats.min_region_segments;
    merged.stats.boundary_segments += r.stats.boundary_segments;
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  merged.segments = std::move(all);
  merged.total_length_m = network_->LengthOfSegments(merged.segments);
  merged.stats.wall_ms = watch.ElapsedMillis();
  // The outer counter delta already contains every leg's traffic; summing
  // the per-leg deltas on top would double-count it (and under parallel
  // legs the per-leg deltas overlap anyway), so only the outer delta is
  // reported.
  merged.stats.io = st_index_->storage_stats() - io_before;
  return merged;
}

}  // namespace strr
