#include "core/query_executor.h"

#include <algorithm>
#include <future>
#include <optional>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/es_baseline.h"
#include "query/probability.h"
#include "query/trace_back.h"
#include "util/stopwatch.h"

namespace strr {

namespace {

// Front-door observability (no-ops until the global registry/tracer are
// enabled — see obs/metrics.h; handles are cached once per site).
obs::Counter& QueryCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("strr_queries_total");
  return c;
}
obs::Counter& QueryErrorCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("strr_query_errors_total");
  return c;
}
obs::Histogram& QueryWallHistogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("strr_query_wall_us");
  return h;
}
obs::Histogram& AdmissionWaitHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "strr_admission_wait_us");
  return h;
}
obs::Counter& AdmissionShedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "strr_admission_shed_total");
  return c;
}

/// Records the wall time and outcome of one front-door execution.
void RecordQueryMetrics(const Stopwatch& watch,
                        const StatusOr<RegionResult>& result) {
  QueryCounter().Add();
  if (!result.ok()) QueryErrorCounter().Add();
  if (obs::MetricsRegistry::Global().enabled()) {
    QueryWallHistogram().Record(
        static_cast<uint64_t>(watch.ElapsedMicros()));
  }
}

/// Sanity checks a plan before execution. Plans from QueryPlanner always
/// pass; this guards hand-built or mutated plans so a bad one surfaces as
/// a per-plan Status instead of undefined behaviour mid-batch.
Status ValidatePlan(const QueryPlan& plan) {
  if (plan.locations.empty() || plan.location_starts.empty()) {
    return Status::InvalidArgument("QueryPlan: no resolved locations");
  }
  if (plan.locations.size() != plan.location_starts.size()) {
    return Status::InvalidArgument(
        "QueryPlan: locations/location_starts size mismatch");
  }
  for (const auto& starts : plan.location_starts) {
    if (starts.empty()) {
      return Status::InvalidArgument(
          "QueryPlan: a location resolved to no start segments");
    }
  }
  if (plan.prob <= 0.0 || plan.prob > 1.0) {
    return Status::InvalidArgument("QueryPlan: Prob must be in (0, 1]");
  }
  if (plan.duration <= 0) {
    return Status::InvalidArgument("QueryPlan: duration must be positive");
  }
  if (plan.strategy == QueryStrategy::kExhaustive &&
      plan.locations.size() > 1) {
    return Status::InvalidArgument(
        "QueryPlan: exhaustive strategy is single-location");
  }
  return Status::OK();
}

}  // namespace

QueryExecutor::QueryExecutor(const RoadNetwork& network,
                             const StIndex& st_index,
                             const ConIndex& con_index,
                             const SpeedProfile& profile,
                             int64_t delta_t_seconds,
                             const QueryExecutorOptions& options,
                             LiveProfileManager* live,
                             TenantRegistry* tenants)
    : network_(&network),
      st_index_(&st_index),
      con_index_(&con_index),
      profile_(&profile),
      delta_t_seconds_(delta_t_seconds),
      options_(options),
      live_(live),
      pool_(options.num_threads < 0
                ? 1
                : static_cast<size_t>(options.num_threads)) {
  if (options_.tenant_fairness) {
    // Tenant-aware front door: per-tenant attribution always; WFQ
    // admission when a global cap is configured. A shared registry keeps
    // quotas/counters consistent across every executor over one engine;
    // a standalone executor gets a private one.
    if (tenants != nullptr) {
      tenants_ = tenants;
    } else {
      // The executor-level max_queued knob caps the default per-tenant
      // waiting bound, so {max_inflight, max_queued} keeps meaning what
      // it meant on the plain path; explicitly Configure()d tenants may
      // still exceed it.
      TenantConfig defaults = options_.tenant_defaults;
      defaults.max_queued = std::min(defaults.max_queued,
                                     options_.max_queued);
      owned_tenants_ = std::make_unique<TenantRegistry>(defaults);
      tenants_ = owned_tenants_.get();
    }
    if (options_.max_inflight > 0) {
      WfqOptions wfq_opt;
      wfq_opt.max_inflight = options_.max_inflight;
      wfq_opt.batch_share = options_.batch_share;
      wfq_opt.cost_based = options_.wfq_cost_based;
      wfq_ = std::make_unique<WfqAdmissionController>(wfq_opt, tenants_);
    }
  }
  if (options_.result_cache_entries > 0) {
    ResultCacheOptions cache_opt;
    cache_opt.capacity = options_.result_cache_entries;
    cache_opt.shards = options_.result_cache_shards;
    if (options_.result_cache_doorkeeper) {
      // ~8 sketch counters per cached entry keeps the false-positive
      // inflation of 4-bit counting-Bloom estimates negligible.
      cache_opt.doorkeeper_counters = options_.result_cache_entries * 8;
    }
    cache_opt.protected_share = options_.result_cache_protected_share;
    cache_opt.tenant_capacity_share = options_.result_cache_tenant_share;
    cache_ = std::make_unique<ResultCache>(delta_t_seconds_, cache_opt);
  }
  if (options_.interior_workers > 1) {
    interior_pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(options_.interior_workers - 1));
  }
  if (options_.max_inflight > 0 && wfq_ == nullptr) {
    // Plain (tenant-blind) admission — the PR-2 path, byte-for-byte, so
    // single-tenant deployments are unaffected by the tenancy layer.
    AdmissionOptions adm_opt;
    adm_opt.max_inflight = options_.max_inflight;
    adm_opt.max_queued = options_.max_queued;
    adm_opt.batch_share = options_.batch_share;
    admission_ = std::make_unique<AdmissionController>(adm_opt);
  }
  if (live_ != nullptr && cache_ != nullptr) {
    // Every cached executor over a live manager gets the Δt-slot eviction
    // fan-out — including MakeExecutor-created ones the engine does not
    // know about. Unregistered in the destructor, before cache_ dies.
    ResultCache* cache = cache_.get();
    live_listener_id_ = live_->AddInvalidationListener(
        [cache](int64_t begin_tod, int64_t end_tod) {
          cache->InvalidateTimeRange(begin_tod, end_tod);
        });
  }
}

QueryExecutor::~QueryExecutor() {
  if (live_listener_id_ != 0) {
    live_->RemoveInvalidationListener(live_listener_id_);
  }
}

StatusOr<RegionResult> QueryExecutor::Execute(const QueryPlan& plan) {
  return ExecuteFrontDoor(plan, /*batch=*/false);
}

StatusOr<RegionResult> QueryExecutor::ExecuteFrontDoor(const QueryPlan& plan,
                                                       bool batch) {
  // Root span for this query's tree (degrades to a child span when the
  // facade already opened one). All stage spans below record into it.
  obs::QueryTrace trace("query");
  Stopwatch wall_watch;
  std::optional<PlanKey> key;
  if (cache_ != nullptr) {
    key = MakePlanKey(plan, /*tenant_scoped=*/!options_.tenant_shared_cache);
    std::optional<RegionResult> hit;
    {
      obs::TraceSpan span("cache_lookup");
      hit = cache_->Lookup(*key);
    }
    if (hit) {
      if (tenants_ != nullptr) tenants_->RecordCacheHit(plan.tenant);
      StatusOr<RegionResult> result = *std::move(hit);
      RecordQueryMetrics(wall_watch, result);
      return result;
    }
    if (tenants_ != nullptr) tenants_->RecordCacheMiss(plan.tenant);
  }
  // Work already on this executor's pool (m-query legs, nested calls) was
  // admitted as part of its enclosing query; re-admitting it here could
  // shed or block mid-query. Admission gates external callers only.
  bool ticket = false;
  if (AdmissionEnabled() && !pool_.OnWorkerThread()) {
    if (batch) {
      // Batch plans take a ticket or shed — they never wait, and they
      // count against the batch fair share even on the inline path.
      STRR_RETURN_IF_ERROR(TryAdmitBatchTicket(plan.tenant));
    } else {
      STRR_RETURN_IF_ERROR(AdmitSingle(plan.tenant));
    }
    ticket = true;
  }
  Stopwatch exec_watch;
  StatusOr<RegionResult> result = ExecutePinned(plan);
  if (ticket) {
    ReleaseTicket(plan.tenant, batch,
                  /*cost_us=*/exec_watch.ElapsedMillis() * 1000.0);
  }
  if (tenants_ != nullptr && result.ok()) {
    tenants_->RecordCompletion(plan.tenant, result->stats.io);
  }
  if (key && result.ok()) MaybeCacheInsert(*key, *result, plan.tenant);
  RecordQueryMetrics(wall_watch, result);
  return result;
}

Status QueryExecutor::AdmitSingle(TenantId tenant) {
  obs::TraceSpan span("admission_wait");
  bool timed = obs::MetricsRegistry::Global().enabled();
  Stopwatch watch;
  Status admitted =
      wfq_ != nullptr ? wfq_->Admit(tenant) : admission_->Admit();
  if (timed) {
    AdmissionWaitHistogram().Record(
        static_cast<uint64_t>(watch.ElapsedMicros()));
  }
  if (!admitted.ok()) AdmissionShedCounter().Add();
  return admitted;
}

Status QueryExecutor::TryAdmitBatchTicket(TenantId tenant) {
  Status admitted = wfq_ != nullptr ? wfq_->TryAdmitBatch(tenant)
                                    : admission_->TryAdmitBatch();
  if (!admitted.ok()) AdmissionShedCounter().Add();
  return admitted;
}

void QueryExecutor::ReleaseTicket(TenantId tenant, bool batch,
                                  double cost_us) {
  if (wfq_ != nullptr) {
    if (batch) {
      wfq_->ReleaseBatch(tenant, cost_us);
    } else {
      wfq_->Release(tenant, cost_us);
    }
  } else if (admission_ != nullptr) {
    if (batch) {
      admission_->ReleaseBatch();
    } else {
      admission_->Release();
    }
  }
}

StatusOr<RegionResult> QueryExecutor::RunAdmitted(const QueryPlan& plan,
                                                  const PlanKey* key,
                                                  bool batch_ticket) {
  // Batch plans fanned to pool workers root their trace here (lookup and
  // admission already happened on the submitting thread).
  obs::QueryTrace trace("query");
  Stopwatch exec_watch;
  StatusOr<RegionResult> result = ExecutePinned(plan);
  if (batch_ticket) {
    ReleaseTicket(plan.tenant, /*batch=*/true,
                  /*cost_us=*/exec_watch.ElapsedMillis() * 1000.0);
  }
  if (tenants_ != nullptr && result.ok()) {
    tenants_->RecordCompletion(plan.tenant, result->stats.io);
  }
  if (key != nullptr && result.ok()) {
    MaybeCacheInsert(*key, *result, plan.tenant);
  }
  RecordQueryMetrics(exec_watch, result);
  return result;
}

StatusOr<RegionResult> QueryExecutor::ExecutePinned(const QueryPlan& plan) {
  // Pin one snapshot for the whole query (legs included) — after
  // admission, so a query waiting in the admission queue doesn't hold a
  // version alive (and then answers with the freshest snapshot anyway).
  SnapshotRef snap;
  IndexView view = StaticView();
  if (live_ != nullptr) {
    obs::TraceSpan span("snapshot_pin");
    snap = live_->Acquire();
    view = IndexView{&snap.con_index(), &snap.profile(), snap.version()};
  }
  return ExecutePlan(plan, view);
}

void QueryExecutor::MaybeCacheInsert(const PlanKey& key,
                                     const RegionResult& result,
                                     TenantId tenant) {
  if (cache_ == nullptr) return;
  obs::TraceSpan span("cache_insert");
  if (live_ == nullptr) {
    cache_->Insert(key, result, tenant);
    return;
  }
  // Under live ingestion, never let an insert computed on a superseded
  // snapshot outlive that snapshot's Δt-slot invalidation: skip when a
  // newer version already published, and re-check after inserting — a
  // publish can land between the check and the insert, and its eviction
  // pass must not be undone by our late insert. (Publish stores the
  // version before firing evictions, all seq_cst: if the post-insert load
  // still reads our version, every eviction that could cover this entry
  // happens after the insert and removes it normally.)
  if (result.stats.snapshot_version != live_->version()) return;
  cache_->Insert(key, result, tenant);
  if (result.stats.snapshot_version != live_->version()) cache_->Erase(key);
}

std::vector<StatusOr<RegionResult>> QueryExecutor::ExecuteBatch(
    std::span<const QueryPlan> plans) {
  std::vector<StatusOr<RegionResult>> results;
  results.reserve(plans.size());
  if (pool_.OnWorkerThread() || pool_.num_threads() <= 1) {
    // Already on a pool worker (nested batch) or no parallelism available:
    // run inline — submitting and blocking here could starve the pool.
    // Front-door steps still apply per plan with batch semantics (take a
    // ticket or shed, never wait; admission is skipped on a worker
    // thread).
    for (const QueryPlan& plan : plans) {
      results.push_back(ExecuteFrontDoor(plan, /*batch=*/true));
    }
    return results;
  }
  // Fan out. Cache lookups and admission happen here on the caller thread
  // so capacity is enforced at submission time: plans that do not fit are
  // shed in place instead of piling up in the (unbounded) pool queue.
  std::vector<std::future<StatusOr<RegionResult>>> futures(plans.size());
  std::vector<std::optional<StatusOr<RegionResult>>> immediate(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    const QueryPlan& plan = plans[i];
    std::optional<PlanKey> key;
    if (cache_ != nullptr) {
      key = MakePlanKey(plan, /*tenant_scoped=*/!options_.tenant_shared_cache);
      if (std::optional<RegionResult> hit = cache_->Lookup(*key)) {
        if (tenants_ != nullptr) tenants_->RecordCacheHit(plan.tenant);
        immediate[i].emplace(*std::move(hit));
        continue;
      }
      if (tenants_ != nullptr) tenants_->RecordCacheMiss(plan.tenant);
    }
    bool ticket = false;
    if (AdmissionEnabled()) {
      Status admitted = TryAdmitBatchTicket(plan.tenant);
      if (!admitted.ok()) {
        immediate[i].emplace(std::move(admitted));
        continue;
      }
      ticket = true;
    }
    futures[i] = pool_.Submit(
        [this, &plan, key = std::move(key),
         ticket]() -> StatusOr<RegionResult> {
          return RunAdmitted(plan, key ? &*key : nullptr,
                             /*batch_ticket=*/ticket);
        });
  }
  for (size_t i = 0; i < plans.size(); ++i) {
    if (immediate[i].has_value()) {
      results.push_back(std::move(*immediate[i]));
    } else {
      results.push_back(futures[i].get());
    }
  }
  return results;
}

std::vector<StatusOr<RegionResult>> QueryExecutor::ExecuteRaw(
    std::span<const QueryPlan> plans, const IndexView& view) {
  std::vector<StatusOr<RegionResult>> results;
  results.reserve(plans.size());
  if (pool_.OnWorkerThread() || pool_.num_threads() <= 1) {
    for (const QueryPlan& plan : plans) {
      results.push_back(ExecutePlan(plan, view));
    }
    return results;
  }
  std::vector<std::future<StatusOr<RegionResult>>> futures;
  futures.reserve(plans.size());
  for (const QueryPlan& plan : plans) {
    // `view` stays valid: the enclosing query's frame holds the snapshot
    // pin (or the static indexes are engine-owned) and blocks on the
    // futures below before returning.
    futures.push_back(
        pool_.Submit([this, &plan, &view]() -> StatusOr<RegionResult> {
          return ExecutePlan(plan, view);
        }));
  }
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

void QueryExecutor::InvalidateCachedTimeRange(int64_t begin_tod,
                                              int64_t end_tod) {
  if (cache_ != nullptr) cache_->InvalidateTimeRange(begin_tod, end_tod);
}

QueryExecutor::FrontDoorStats QueryExecutor::front_door_stats() const {
  FrontDoorStats out;
  if (cache_ != nullptr) {
    ResultCache::Stats c = cache_->stats();
    out.cache_hits = c.hits;
    out.cache_misses = c.misses;
    out.cache_insertions = c.insertions;
    out.cache_evictions = c.evictions;
    out.cache_invalidated = c.invalidated;
    out.cache_doorkeeper_rejects = c.doorkeeper_rejected;
  }
  {
    ExpansionContextPool::Stats p = ExpansionContextPool::Global().stats();
    out.ctx_pool_acquires = p.acquires;
    out.ctx_pool_reuses = p.reuses;
  }
  if (wfq_ != nullptr) {
    WfqAdmissionController::Stats a = wfq_->stats();
    out.admitted = a.admitted;
    out.shed = a.shed;
  } else if (admission_ != nullptr) {
    AdmissionController::Stats a = admission_->stats();
    out.admitted = a.admitted;
    out.shed = a.shed;
  }
  if (tenants_ != nullptr) out.tenants = tenants_->Snapshot();
  ThreadPool::Stats p = pool_.stats();
  out.pool_submitted = p.submitted;
  out.pool_completed = p.completed;
  out.pool_queue_depth = p.queue_depth;
  if (live_ != nullptr) out.snapshot_version = live_->version();
  return out;
}

StatusOr<RegionResult> QueryExecutor::ExecutePlan(const QueryPlan& plan,
                                                  const IndexView& view) {
  STRR_RETURN_IF_ERROR(ValidatePlan(plan));
  StatusOr<RegionResult> result = [&]() -> StatusOr<RegionResult> {
    switch (plan.strategy) {
      case QueryStrategy::kIndexed:
        return ExecuteIndexed(plan, view);
      case QueryStrategy::kExhaustive:
        return ExecuteExhaustive(plan, view);
      case QueryStrategy::kRepeatedS:
        return ExecuteRepeatedS(plan, view);
    }
    return Status::Internal("QueryPlan: unknown strategy");
  }();
  if (result.ok()) result->stats.snapshot_version = view.version;
  return result;
}

StatusOr<RegionResult> QueryExecutor::ExecuteAgainst(
    const QueryPlan& plan, const ConIndex* con_index,
    const SpeedProfile* profile, uint64_t snapshot_version) {
  if (con_index == nullptr) return ExecutePlan(plan, StaticView());
  return ExecutePlan(plan, IndexView{con_index, profile, snapshot_version});
}

StatusOr<RegionResult> QueryExecutor::RunTraceBack(
    const BoundingRegions& regions, int64_t start_tod, int64_t duration,
    double prob, double setup_ms, const ScopedIoCounters& io_scope) {
  Stopwatch watch;
  obs::TraceSpan tbs_span("tbs", regions.max_region.size());
  STRR_ASSIGN_OR_RETURN(
      ReachabilityProbability oracle, [&] {
        obs::TraceSpan span("probability_oracle");
        return ReachabilityProbability::Create(*st_index_,
                                               regions.start_segments,
                                               start_tod, delta_t_seconds_,
                                               duration);
      }());

  RegionResult result;
  if (oracle.StartHasNoTraffic()) {
    // No trajectory ever left the start window on any day: every segment's
    // probability is identically zero, so the Prob-region is empty. (The
    // bounding regions come from speed *statistics* and can be non-empty
    // even then; trusting them here would fabricate reachability.)
    result.segments.clear();
  } else {
    TraceBackOptions tbs_opt;
    tbs_opt.flat_adjacency = options_.interior_flat_adjacency;
    if (options_.parallel_tbs && interior_pool_ != nullptr) {
      tbs_opt.pool = interior_pool_.get();
      tbs_opt.workers = options_.interior_workers;
    }
    tbs_opt.shard_owner = options_.shard_owner;
    tbs_opt.shard_pools = options_.shard_pools;
    tbs_opt.home_shard = options_.home_shard;
    tbs_opt.min_parallel_ring = options_.min_parallel_ring;
    STRR_ASSIGN_OR_RETURN(
        TbsOutcome tbs,
        TraceBackSearch(*network_, regions, prob, oracle, tbs_opt));
    result.segments = std::move(tbs.region);
  }
  result.total_length_m = network_->LengthOfSegments(result.segments);
  result.stats.wall_ms = setup_ms + watch.ElapsedMillis();
  result.stats.sum_wall_ms = result.stats.wall_ms;
  result.stats.segments_verified = oracle.verifications();
  result.stats.time_lists_read = oracle.time_lists_read();
  result.stats.io = io_scope.stats();
  result.stats.max_region_segments = regions.max_region.size();
  result.stats.min_region_segments = regions.min_region.size();
  result.stats.boundary_segments = regions.boundary.size();
  return result;
}

StatusOr<RegionResult> QueryExecutor::ExecuteIndexed(const QueryPlan& plan,
                                                     const IndexView& view) {
  Stopwatch watch;
  ScopedIoCounters io_scope;  // attributes this query's storage traffic
  SearchMetrics metrics;
  BoundingSearchOptions search_opt;
  search_opt.metrics = &metrics;
  if (interior_pool_ != nullptr) {
    search_opt.runtime.pool = interior_pool_.get();
    search_opt.runtime.workers = options_.interior_workers;
  }
  // Layout knobs apply to sequential and parallel interiors alike; the
  // engine falls back to the legacy walk when the network has no CSR.
  search_opt.runtime.flat_adjacency = options_.interior_flat_adjacency;
  search_opt.runtime.prefetch = options_.interior_prefetch;
  search_opt.runtime.locality_chunking = options_.interior_locality_chunking;
  search_opt.runtime.shard_owner = options_.shard_owner;
  search_opt.runtime.shard_pools = options_.shard_pools;
  search_opt.runtime.home_shard = options_.home_shard;
  search_opt.runtime.min_parallel_frontier = options_.min_parallel_frontier;
  BoundingRegions regions;
  if (plan.IsMultiLocation()) {
    obs::TraceSpan span("mqmb_search");
    STRR_ASSIGN_OR_RETURN(
        regions, MqmbSearch(*network_, *view.con_index, *view.profile,
                            plan.AllStartSegments(), plan.start_tod,
                            plan.duration, search_opt));
  } else {
    obs::TraceSpan span("sqmb_search");
    STRR_ASSIGN_OR_RETURN(
        regions,
        SqmbSearchSet(*network_, *view.con_index, plan.location_starts[0],
                      plan.start_tod, plan.duration, search_opt));
  }
  StatusOr<RegionResult> result =
      RunTraceBack(regions, plan.start_tod, plan.duration, plan.prob,
                   watch.ElapsedMillis(), io_scope);
  if (result.ok()) {
    result->stats.segments_expanded = metrics.segments_expanded;
    result->stats.heap_pops = metrics.heap_pops;
    result->stats.parallel_rounds = metrics.parallel_rounds;
  }
  return result;
}

StatusOr<RegionResult> QueryExecutor::ExecuteExhaustive(
    const QueryPlan& plan, const IndexView& view) {
  ScopedIoCounters io_scope;
  SQuery query{plan.locations[0], plan.start_tod, plan.duration, plan.prob};
  STRR_ASSIGN_OR_RETURN(
      RegionResult result,
      ExhaustiveSearch(*st_index_, *view.profile, query, delta_t_seconds_,
                       plan.location_starts[0]));
  result.stats.sum_wall_ms = result.stats.wall_ms;
  // ES computes stats.io as an engine-global delta (fine for its
  // standalone single-threaded callers); under the executor the scoped
  // per-thread counters are authoritative.
  result.stats.io = io_scope.stats();
  return result;
}

StatusOr<RegionResult> QueryExecutor::ExecuteRepeatedS(const QueryPlan& plan,
                                                       const IndexView& view) {
  Stopwatch watch;

  // One independent single-location indexed leg per query location.
  std::vector<QueryPlan> legs;
  legs.reserve(plan.locations.size());
  for (size_t i = 0; i < plan.locations.size(); ++i) {
    QueryPlan leg;
    leg.strategy = QueryStrategy::kIndexed;
    leg.locations = {plan.locations[i]};
    leg.location_starts = {plan.location_starts[i]};
    leg.start_tod = plan.start_tod;
    leg.duration = plan.duration;
    leg.prob = plan.prob;
    legs.push_back(std::move(leg));
  }

  std::vector<StatusOr<RegionResult>> leg_results;
  obs::TraceSpan legs_span("mquery_legs", legs.size());
  if (options_.parallel_mquery_legs) {
    // ExecuteRaw degrades to an inline sequential loop on a pool worker or
    // a single-thread pool — one fan-out decision point. Legs bypass the
    // front door: the m-query was admitted (and snapshot-pinned, and will
    // be cached) as one unit, so every leg reads the same version.
    leg_results = ExecuteRaw(legs, view);
  } else {
    leg_results.reserve(legs.size());
    for (const QueryPlan& leg : legs) {
      leg_results.push_back(ExecutePlan(leg, view));
    }
  }

  // Merge in location order so the result is independent of scheduling.
  RegionResult merged;
  std::vector<SegmentId> all;
  for (auto& leg_result : leg_results) {
    if (!leg_result.ok()) return leg_result.status();
    const RegionResult& r = *leg_result;
    all.insert(all.end(), r.segments.begin(), r.segments.end());
    merged.stats.sum_wall_ms += r.stats.wall_ms;
    merged.stats.segments_verified += r.stats.segments_verified;
    merged.stats.time_lists_read += r.stats.time_lists_read;
    merged.stats.segments_expanded += r.stats.segments_expanded;
    merged.stats.heap_pops += r.stats.heap_pops;
    merged.stats.parallel_rounds += r.stats.parallel_rounds;
    merged.stats.max_region_segments += r.stats.max_region_segments;
    merged.stats.min_region_segments += r.stats.min_region_segments;
    merged.stats.boundary_segments += r.stats.boundary_segments;
    // Per-leg scoped counters are exact and disjoint (each leg counts on
    // its own thread), so the sum attributes the whole m-query without
    // double counting — unlike the engine-global delta PR 1 used, which
    // absorbed every concurrent neighbour's traffic.
    merged.stats.io += r.stats.io;
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  merged.segments = std::move(all);
  merged.total_length_m = network_->LengthOfSegments(merged.segments);
  merged.stats.wall_ms = watch.ElapsedMillis();
  return merged;
}

}  // namespace strr
