#include "core/dataset.h"

namespace strr {

StatusOr<Dataset> BuildDataset(const DatasetOptions& options) {
  STRR_ASSIGN_OR_RETURN(City city, GenerateCity(options.city));
  STRR_ASSIGN_OR_RETURN(ResegmentResult reseg,
                        Resegment(city.network, options.reseg));

  Dataset dataset;
  dataset.network = std::move(reseg.network);
  dataset.projection = city.projection;
  dataset.center = city.center;

  STRR_ASSIGN_OR_RETURN(
      FleetResult fleet,
      SimulateFleet(dataset.network, options.fleet, options.raw_gps_days));
  dataset.store = std::move(fleet.store);
  dataset.raw_sample = std::move(fleet.raw_sample);
  dataset.num_trips = fleet.num_trips;
  dataset.approx_gps_points = fleet.num_gps_points;
  return dataset;
}

DatasetOptions TestDatasetOptions() {
  DatasetOptions opt;
  opt.city.grid_cols = 8;
  opt.city.grid_rows = 6;
  opt.city.block_meters = 700.0;
  opt.city.radial_highways = 2;
  opt.city.seed = 11;
  opt.reseg.granularity_meters = 500.0;
  opt.fleet.num_taxis = 40;
  opt.fleet.num_days = 8;
  opt.fleet.trips_per_hour = 2.0;
  opt.fleet.seed = 17;
  return opt;
}

DatasetOptions BenchDatasetOptions() {
  DatasetOptions opt;
  opt.city.grid_cols = 18;
  opt.city.grid_rows = 13;
  opt.city.block_meters = 850.0;
  opt.city.seed = 7;
  opt.reseg.granularity_meters = 500.0;
  // The real Shenzhen fleet (21k taxis) gives a downtown segment tens of
  // distinct trajectories per 5-minute slot. We run ~30x fewer taxis on a
  // proportionally smaller, more hotspot-concentrated city so the
  // per-segment flux — what the probability computation actually consumes
  // — lands in the same regime.
  opt.fleet.num_taxis = 1300;
  opt.fleet.num_days = 30;
  // High trip rate = short idle gaps: taxis drive nearly back-to-back the
  // way occupied-or-cruising fleets do. A taxi crossing the query start
  // then keeps moving for the whole duration window, which is what makes
  // the mined reachable blob fill the Far-list bounding cone.
  opt.fleet.trips_per_hour = 15.0;
  opt.fleet.num_hotspots = 16;
  opt.fleet.hotspot_trip_fraction = 0.9;
  // Tight speed noise: in dense urban traffic the fastest observed
  // traversal is barely above the typical one, which keeps the Far-list
  // maximum bounding region close to the true reachable blob (the regime
  // the paper's 50-90% savings live in).
  opt.fleet.speed_noise_std = 0.05;
  opt.fleet.seed = 2014;
  return opt;
}

}  // namespace strr
