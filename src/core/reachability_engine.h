// ReachabilityEngine: the library's public query facade.
//
// Owns the full index stack (speed profile, ST-Index, Con-Index) over one
// road network + trajectory database plus the plan -> execute pipeline
// (QueryPlanner + QueryExecutor), and answers:
//  * s-queries with SQMB + TBS (the paper's indexed path),
//  * s-queries with ES (the exhaustive baseline),
//  * m-queries with MQMB + shared TBS,
//  * m-queries as n independent s-queries (the paper's m-query baseline).
//
// The SQuery/MQuery methods are thin conveniences: they plan and execute
// in one call. Callers that batch many queries, pick strategies
// explicitly, or want intra-query parallelism use planner() / executor()
// directly:
//
//   auto plans = ...;                      // engine.planner().PlanSQuery(...)
//   auto results = engine.executor().ExecuteBatch(plans);
//
// Typical one-shot use:
//   auto dataset = BuildDataset(DatasetOptions{...});
//   auto engine = ReachabilityEngine::Build(dataset->network, *dataset->store,
//                                           {.work_dir = "/tmp/strr"});
//   auto region = engine->SQueryIndexed({.location = p, .start_tod =
//       HMS(11), .duration = 10 * 60, .prob = 0.2});
#ifndef STRR_CORE_REACHABILITY_ENGINE_H_
#define STRR_CORE_REACHABILITY_ENGINE_H_

#include <memory>
#include <string>

#include "core/query_executor.h"
#include "index/con_index.h"
#include "index/speed_profile.h"
#include "index/st_index.h"
#include "query/bounding_region.h"
#include "query/query.h"
#include "query/query_plan.h"
#include "traj/trajectory_store.h"
#include "util/result.h"

namespace strr {

/// Engine construction knobs.
struct EngineOptions {
  /// Directory for index files (the ST-Index posting file). Required.
  std::string work_dir;
  int64_t delta_t_seconds = 300;          ///< Δt (index slot & query window)
  int64_t profile_slot_seconds = 3600;    ///< speed-profile granularity
  size_t cache_pages = 4096;              ///< ST-Index buffer-pool pages
  uint32_t page_size = kDefaultPageSize;
  bool precompute_con_index = false;      ///< BuildAll vs lazy tables
  int build_threads = 4;
  /// Worker threads for the query executor (batches, parallel m-query
  /// legs). 0 = one per hardware thread, so executor().ExecuteBatch is
  /// fast out of the box; pass 1 for strictly sequential facade use to
  /// avoid idle workers (they cost address space, and join only at
  /// engine destruction).
  int query_threads = 0;
  /// Run MQueryRepeatedSQuery legs in parallel. Off by default so the
  /// facade reproduces the paper's single-threaded baseline timings;
  /// throughput-oriented callers flip it (or use the executor directly).
  bool parallel_mquery_legs = false;
  // --- Query front door (see QueryExecutorOptions; both off by default so
  // the facade's per-query stats keep their paper-reproduction semantics —
  // cached results replay the original execution's stats) ---------------------
  /// Result-cache capacity in entries; 0 disables caching.
  size_t result_cache_entries = 0;
  size_t result_cache_shards = 8;
  /// Max admitted-and-outstanding queries; 0 disables admission control.
  size_t max_inflight_queries = 0;
  /// Max single-query callers blocked waiting for admission.
  size_t max_queued_queries = 64;
  /// Share of max_inflight_queries all batch work combined may hold.
  double batch_share = 0.5;
};

/// Facade over the whole query stack. Thread-safe for concurrent queries:
/// the index read paths are concurrent-read-safe and the executor's pool
/// is shared. (Per-query StorageStats deltas are only meaningful for
/// sequential execution — the counters are engine-global.)
class ReachabilityEngine {
 public:
  /// Builds every index. The network and store must outlive the engine.
  static StatusOr<std::unique_ptr<ReachabilityEngine>> Build(
      const RoadNetwork& network, const TrajectoryStore& store,
      const EngineOptions& options);

  /// s-query via SQMB + TBS (indexed path).
  StatusOr<RegionResult> SQueryIndexed(const SQuery& query);

  /// s-query via exhaustive search (baseline).
  StatusOr<RegionResult> SQueryExhaustive(const SQuery& query);

  /// m-query via MQMB + one shared TBS pass.
  StatusOr<RegionResult> MQueryIndexed(const MQuery& query);

  /// m-query as n s-queries whose regions are unioned (baseline; pays
  /// duplicate verification in overlapping areas).
  StatusOr<RegionResult> MQueryRepeatedSQuery(const MQuery& query);

  // --- Pipeline --------------------------------------------------------------

  const QueryPlanner& planner() const { return *planner_; }
  QueryExecutor& executor() { return *executor_; }

  /// Builds an additional executor over this engine's indexes (e.g. a
  /// bench sweeping worker counts, or an isolated pool per tenant). The
  /// engine must outlive it.
  std::unique_ptr<QueryExecutor> MakeExecutor(
      const QueryExecutorOptions& options) const;

  // --- Introspection ---------------------------------------------------------

  const StIndex& st_index() const { return *st_index_; }
  StIndex& st_index() { return *st_index_; }
  const ConIndex& con_index() const { return *con_index_; }
  ConIndex& con_index() { return *con_index_; }
  const SpeedProfile& speed_profile() const { return *profile_; }
  SpeedProfile& speed_profile() { return *profile_; }
  const RoadNetwork& network() const { return *network_; }
  int64_t delta_t_seconds() const { return options_.delta_t_seconds; }

  /// Resets ST-Index I/O counters and optionally drops the page cache.
  void ResetIoStats(bool drop_cache = false);

  // --- Live updates ----------------------------------------------------------

  /// Folds a fresh speed observation (e.g. a live congestion feed sample)
  /// into the speed profile and invalidates everything derived from the
  /// covered time range: the Con-Index tables of that profile slot and
  /// the default executor's cached results whose Δt windows intersect it
  /// (SpeedProfile update listeners carry the fan-out, so additional
  /// listeners can be registered on speed_profile()). Results computed
  /// after this call reflect the updated statistics and are bit-identical
  /// to an uncached recompute.
  ///
  /// NOT safe against concurrent queries — quiesce them first. Executors
  /// created through MakeExecutor own private caches that this call does
  /// not see; invalidate them explicitly.
  void ApplySpeedObservation(SegmentId seg, int64_t time_of_day_sec,
                             double speed_mps);

 private:
  ReachabilityEngine(const RoadNetwork& network, EngineOptions options)
      : network_(&network), options_(std::move(options)) {}

  const RoadNetwork* network_;
  EngineOptions options_;
  std::unique_ptr<SpeedProfile> profile_;
  std::unique_ptr<StIndex> st_index_;
  std::unique_ptr<ConIndex> con_index_;
  // Constructed after (and destroyed before) the indexes they reference.
  std::unique_ptr<QueryPlanner> planner_;
  std::unique_ptr<QueryExecutor> executor_;
};

}  // namespace strr

#endif  // STRR_CORE_REACHABILITY_ENGINE_H_
