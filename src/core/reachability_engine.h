// ReachabilityEngine: the library's public query facade.
//
// Owns the full index stack (speed profile, ST-Index, Con-Index) over one
// road network + trajectory database plus the plan -> execute pipeline
// (QueryPlanner + QueryExecutor), and answers:
//  * s-queries with SQMB + TBS (the paper's indexed path),
//  * s-queries with ES (the exhaustive baseline),
//  * m-queries with MQMB + shared TBS,
//  * m-queries as n independent s-queries (the paper's m-query baseline).
//
// The SQuery/MQuery methods are thin conveniences: they plan and execute
// in one call. Callers that batch many queries, pick strategies
// explicitly, or want intra-query parallelism use planner() / executor()
// directly:
//
//   auto plans = ...;                      // engine.planner().PlanSQuery(...)
//   auto results = engine.executor().ExecuteBatch(plans);
//
// Typical one-shot use:
//   auto dataset = BuildDataset(DatasetOptions{...});
//   auto engine = ReachabilityEngine::Build(dataset->network, *dataset->store,
//                                           {.work_dir = "/tmp/strr"});
//   auto region = engine->SQueryIndexed({.location = p, .start_tod =
//       HMS(11), .duration = 10 * 60, .prob = 0.2});
#ifndef STRR_CORE_REACHABILITY_ENGINE_H_
#define STRR_CORE_REACHABILITY_ENGINE_H_

#include <memory>
#include <string>

#include "core/negative_cache.h"
#include "core/query_executor.h"
#include "index/con_index.h"
#include "index/speed_profile.h"
#include "index/st_index.h"
#include "live/epoch_manager.h"
#include "live/live_profile_manager.h"
#include "live/observation_ingestor.h"
#include "live/observation_journal.h"
#include "query/bounding_region.h"
#include "query/query.h"
#include "query/query_plan.h"
#include "shard/shard_options.h"
#include "traj/trajectory_store.h"
#include "util/result.h"

namespace strr {

class ShardCoordinator;

/// Engine construction knobs.
struct EngineOptions {
  /// Directory for index files (the ST-Index posting file). Required.
  std::string work_dir;
  int64_t delta_t_seconds = 300;          ///< Δt (index slot & query window)
  int64_t profile_slot_seconds = 3600;    ///< speed-profile granularity
  size_t cache_pages = 4096;              ///< ST-Index buffer-pool pages
  uint32_t page_size = kDefaultPageSize;
  bool precompute_con_index = false;      ///< BuildAll vs lazy tables
  int build_threads = 4;
  /// Worker threads for the query executor (batches, parallel m-query
  /// legs). 0 = one per hardware thread, so executor().ExecuteBatch is
  /// fast out of the box; pass 1 for strictly sequential facade use to
  /// avoid idle workers (they cost address space, and join only at
  /// engine destruction).
  int query_threads = 0;
  /// Run MQueryRepeatedSQuery legs in parallel. Off by default so the
  /// facade reproduces the paper's single-threaded baseline timings;
  /// throughput-oriented callers flip it (or use the executor directly).
  bool parallel_mquery_legs = false;
  /// Parallel SQMB/MQMB search interior (bit-identical results; see
  /// QueryExecutorOptions::interior_workers). <= 1 keeps the paper's
  /// sequential interior.
  int interior_workers = 1;
  /// Raw-speed interior layout (results bit-identical either way; see
  /// QueryExecutorOptions). flat_adjacency also flows into Con-Index
  /// table builds (ConIndexOptions::flat_interior).
  bool interior_flat_adjacency = false;
  bool interior_prefetch = false;
  bool interior_locality_chunking = false;
  /// Parallel TBS ring verification on the interior pool (bit-identical;
  /// see query/trace_back.h). Needs interior_workers > 1.
  bool parallel_tbs = false;
  // --- Query front door (see QueryExecutorOptions; both off by default so
  // the facade's per-query stats keep their paper-reproduction semantics —
  // cached results replay the original execution's stats) ---------------------
  /// Result-cache capacity in entries; 0 disables caching.
  size_t result_cache_entries = 0;
  size_t result_cache_shards = 8;
  /// TinyLFU doorkeeper on the result cache (see
  /// ResultCacheOptions::doorkeeper_counters). Off by default.
  bool result_cache_doorkeeper = false;
  /// Segmented-LRU protected share / per-tenant capacity envelope for the
  /// result cache (see ResultCacheOptions). Both off by default.
  double result_cache_protected_share = 0.0;
  double result_cache_tenant_share = 0.0;
  /// Max admitted-and-outstanding queries; 0 disables admission control.
  size_t max_inflight_queries = 0;
  /// Max single-query callers blocked waiting for admission. With
  /// tenant_fairness on, caps the default per-tenant waiting bound.
  size_t max_queued_queries = 64;
  /// Share of max_inflight_queries all batch work combined may hold.
  double batch_share = 0.5;
  // --- Multi-tenant front door (off by default — single-tenant behavior
  // is bit-identical to the plain admission path) -----------------------------
  /// Tenant-aware admission: per-tenant quotas + weighted fair queueing
  /// keyed on QueryPlan::tenant, with per-tenant counters in
  /// front_door_stats(). The engine then owns a TenantRegistry shared by
  /// its executor and every MakeExecutor-created one; configure tenants
  /// through tenant_registry()->Configure(). See core/wfq_admission.h.
  bool tenant_fairness = false;
  /// Cost-based DRR dispatch: WFQ charges grants in measured microseconds
  /// instead of counts (see WfqOptions::cost_based).
  bool wfq_cost_based = false;
  /// Share result-cache entries across tenants instead of scoping them
  /// per tenant (see QueryExecutorOptions::tenant_shared_cache).
  bool tenant_shared_cache = false;
  /// Registry defaults for tenants never configured explicitly.
  TenantConfig tenant_defaults;
  /// Dynamic tenant configuration: when non-empty (and tenant_fairness is
  /// on), the registry loads this file at build and re-loads it whenever
  /// its mtime changes — weights/quotas reconfigure under load without a
  /// restart (see TenantRegistry::StartFileWatch). Build fails if the
  /// initial load fails.
  std::string tenant_config_path;
  /// Poll interval for tenant_config_path mtime checks.
  int64_t tenant_config_poll_ms = 200;
  // --- Sharded serving tier (src/shard/; off by default — the engine
  // then serves through its single executor exactly as before) ----------------
  /// Partition the network into sharding.num_shards engine shards behind
  /// a scatter-gather ShardCoordinator with a shard-shared result cache
  /// and engine-global tenant quota arbitration. Results stay
  /// bit-identical to the unsharded executor. Facade queries route
  /// through the coordinator when enabled; executor() remains available
  /// and unsharded.
  ShardingOptions sharding;
  // --- Live ingestion (see live/; off by default so paper-reproduction
  // numbers are untouched — queries then read the engine-built indexes
  // directly with zero snapshot overhead) ------------------------------------
  /// Enables the streaming ingestion subsystem: ApplySpeedObservation and
  /// OfferObservation enqueue into a batcher that publishes immutable
  /// snapshot versions, and queries pin a snapshot instead of racing a
  /// mutable profile — refreshes are safe under full query load.
  bool live_ingestion = false;
  /// Batch window the ingestor coalesces over before publishing.
  int64_t live_batch_window_ms = 20;
  /// Ingestion queue bound; observations beyond it are dropped (counted).
  size_t live_queue_bound = 4096;
  /// Superseded snapshot versions tolerated before publishers wait for
  /// readers to drain (memory bound under publish storms).
  size_t live_max_retained_epochs = 8;
  /// Ingest-driven Con-Index prewarm: rebuild partially-invalidated
  /// tables in the background right after a publish, before queries pay
  /// the lazy-build latency (see LiveProfileOptions). Off by default.
  bool live_prewarm = false;
  int live_prewarm_threads = 1;
  /// Crash-safe durability for the live tier: every accepted observation
  /// batch is WAL-logged before it is published (the ack point), sealed
  /// into checksummed immutable tables, and replayed on engine build so
  /// the serving snapshots resume at exactly the last acked observation.
  /// Off by default (seed behavior: live state is in-memory only).
  /// Requires live_ingestion.
  bool live_durability = false;
  /// Journal directory; defaults to "<work_dir>/obs_wal" when empty.
  std::string live_durability_dir;
  /// Memtable byte threshold that seals a table and rotates the WAL.
  size_t live_memtable_flush_bytes = 1 << 20;
  /// fdatasync the WAL per batch (ack = stable storage). Off trades power-
  /// loss durability for throughput; process crashes still lose nothing.
  bool live_wal_sync_each_batch = true;
  // --- Storage engine (checkpoint / compaction / block cache; all off by
  // default — seed behavior is untouched with the knobs off). -----------
  /// Commit a live-profile checkpoint (then truncate the tables and WAL
  /// it covers) every N acked batches, so restart replays O(delta)
  /// instead of the whole stream. 0 disables. Requires live_durability.
  uint64_t live_checkpoint_interval_batches = 0;
  /// Background-merge runs of small observation tables into larger
  /// seq-deduplicated tables (rebuilt blooms, atomic swap). Requires
  /// live_durability.
  bool live_compaction = false;
  /// A sealed table below this many bytes is a compaction candidate.
  size_t live_compaction_small_bytes = 4 << 20;
  /// Merge once this many contiguous candidates accumulate.
  size_t live_compaction_min_tables = 4;
  /// Observations per snapshot publish during recovery replay (bounds
  /// replay memory; correctness is chunk-size independent).
  size_t live_replay_chunk = 4096;
  /// TinyLFU segmented block cache for the ST-Index buffer pool instead
  /// of plain LRU (scan-resistant; per-role metric labels).
  bool block_cache_tinylfu = false;
  double block_cache_protected_share = 0.8;
  /// Bloom doorkeeper over ST-Index posting keys: cold-start point probes
  /// for traffic-less (segment, slot) pairs skip the store. 0 disables.
  int posting_bloom_bits_per_key = 0;
  /// Location match radius for planning (see
  /// StIndexOptions::max_locate_distance_m); <= 0 restores unconditional
  /// snap-to-nearest.
  double max_locate_distance_m = 25000.0;
  // --- Observability (src/obs/; all off by default — with every knob off
  // the query path records nothing, allocates nothing, and results plus
  // bench rows stay bit-identical). These configure the PROCESS-GLOBAL
  // metrics registry and tracer: engines in one process share one export
  // surface, and the last Build() wins on conflicting settings. ---------
  /// Enable the global MetricsRegistry: counters/gauges/histograms across
  /// the whole stack (admission, cache, live tier, WAL, frontier, pools),
  /// scraped via obs::MetricsRegistry::Global().DumpPrometheus or
  /// DumpMetricsPrometheus() below.
  bool metrics = false;
  /// Record every Nth query's span tree into the flight recorder; 0
  /// disables sampling (tracing stays off unless slow_query_ms arms it).
  uint32_t trace_sample_n = 0;
  /// Flight-recorder ring capacity in span events.
  size_t flight_recorder_events = 4096;
  /// Queries slower than this log their full span tree through
  /// util/logging (one structured sink) and are force-recorded into the
  /// flight recorder; 0 disables the slow-query log.
  double slow_query_ms = 0.0;
  // --- Negative caching (off by default) -------------------------------------
  /// Entries in the facade's NotFound cache; 0 disables it. Junk query
  /// locations (no matchable segment) then fail from memory instead of
  /// re-running location resolution on every attempt.
  size_t negative_cache_entries = 0;
  /// Lifetime of a cached NotFound.
  int64_t negative_cache_ttl_ms = 1000;
};

/// Facade over the whole query stack. Thread-safe for concurrent queries:
/// the index read paths are concurrent-read-safe and the executor's pool
/// is shared. With live ingestion enabled, speed refreshes are also safe
/// under full query load — queries pin immutable index snapshots (see
/// live/) instead of racing a mutable profile. (Per-query StorageStats
/// deltas are only meaningful for sequential execution — the counters are
/// engine-global.)
class ReachabilityEngine {
 public:
  /// Builds every index. The network and store must outlive the engine.
  static StatusOr<std::unique_ptr<ReachabilityEngine>> Build(
      const RoadNetwork& network, const TrajectoryStore& store,
      const EngineOptions& options);

  ~ReachabilityEngine();

  /// s-query via SQMB + TBS (indexed path).
  StatusOr<RegionResult> SQueryIndexed(const SQuery& query);

  /// s-query via exhaustive search (baseline).
  StatusOr<RegionResult> SQueryExhaustive(const SQuery& query);

  /// m-query via MQMB + one shared TBS pass.
  StatusOr<RegionResult> MQueryIndexed(const MQuery& query);

  /// m-query as n s-queries whose regions are unioned (baseline; pays
  /// duplicate verification in overlapping areas).
  StatusOr<RegionResult> MQueryRepeatedSQuery(const MQuery& query);

  // --- Pipeline --------------------------------------------------------------

  const QueryPlanner& planner() const { return *planner_; }
  QueryExecutor& executor() { return *executor_; }

  /// Builds an additional executor over this engine's indexes (e.g. a
  /// bench sweeping worker counts, or an isolated pool per tenant),
  /// snapshot-pinning when live ingestion is on. The engine must outlive
  /// it.
  std::unique_ptr<QueryExecutor> MakeExecutor(
      const QueryExecutorOptions& options) const;

  /// Builds a standalone sharded serving tier over this engine's indexes
  /// (the bench's shard-count sweep uses this; the facade's own
  /// coordinator comes from EngineOptions::sharding). Snapshot-pinning
  /// and quota arbitration wire up exactly as the built-in coordinator's.
  /// The engine must outlive it.
  std::unique_ptr<ShardCoordinator> MakeShardCoordinator(
      const ShardingOptions& options) const;

  /// The built-in sharded serving tier, or nullptr when sharding is off.
  ShardCoordinator* shard_coordinator() { return coordinator_.get(); }

  // --- Introspection ---------------------------------------------------------

  const StIndex& st_index() const { return *st_index_; }
  StIndex& st_index() { return *st_index_; }
  const ConIndex& con_index() const { return *con_index_; }
  ConIndex& con_index() { return *con_index_; }
  const SpeedProfile& speed_profile() const { return *profile_; }
  SpeedProfile& speed_profile() { return *profile_; }
  const RoadNetwork& network() const { return *network_; }
  int64_t delta_t_seconds() const { return options_.delta_t_seconds; }

  /// Resets ST-Index I/O counters and optionally drops the page cache.
  void ResetIoStats(bool drop_cache = false);

  // --- Live updates ----------------------------------------------------------

  /// Folds a fresh speed observation (e.g. a live congestion feed sample)
  /// into the serving speed statistics and invalidates everything derived
  /// from the covered time range (Con-Index tables, cached results whose
  /// Δt windows intersect it).
  ///
  /// With live ingestion ON (EngineOptions::live_ingestion) this enqueues
  /// into the ObservationIngestor — safe from any thread, under full
  /// concurrent query load, with no quiescing: queries pin immutable
  /// snapshots and the refresh lands as the next published version (use
  /// OfferObservation to see drops). With live ingestion OFF this is the
  /// legacy direct-mutation path: it mutates the profile in place and is
  /// NOT safe against concurrent queries (callers must serialize), which
  /// is why live deployments turn the subsystem on. Executors created
  /// through MakeExecutor own private caches this fan-out does not see
  /// only in the OFF path; in the ON path they registered with the live
  /// manager at construction.
  void ApplySpeedObservation(SegmentId seg, int64_t time_of_day_sec,
                             double speed_mps);

  /// Live-mode ApplySpeedObservation with backpressure visibility: false
  /// when the observation was rejected (invalid speed, queue full, or
  /// live ingestion off).
  bool OfferObservation(const SpeedObservation& observation);

  /// The live snapshot manager, or nullptr when live ingestion is off.
  LiveProfileManager* live_manager() { return live_manager_.get(); }

  /// The observation ingestor, or nullptr when live ingestion is off.
  ObservationIngestor* ingestor() { return ingestor_.get(); }

  /// The live tier's durability journal, or nullptr when off.
  ObservationJournal* journal() { return journal_.get(); }

  /// What Build() recovered from the journal before serving.
  struct LiveRecoveryInfo {
    uint64_t recovered_batches = 0;   ///< acked batches replayed
    uint64_t last_seq = 0;            ///< highest acked sequence number
    uint64_t checkpoint_seq = 0;      ///< seq the loaded checkpoint covers
    bool wal_tail_torn = false;       ///< crash tore the final WAL record
    size_t tables_loaded = 0;
    size_t wal_files_loaded = 0;
    size_t replay_publishes = 0;      ///< snapshot publishes during replay
  };
  const LiveRecoveryInfo& live_recovery() const { return live_recovery_; }

  /// The facade's NotFound cache, or nullptr when disabled.
  NegativeCache* negative_cache() { return negative_cache_.get(); }

  // --- Observability ---------------------------------------------------------

  /// Writes the flight recorder as Chrome trace-event JSON (loadable in
  /// chrome://tracing / Perfetto). Available whenever tracing was enabled
  /// (trace_sample_n or slow_query_ms); the recorder is process-global.
  Status DumpTrace(const std::string& path) const;

  /// Appends the global metrics registry in Prometheus text exposition
  /// format (convenience over obs::MetricsRegistry::Global()).
  void DumpMetricsPrometheus(std::string* out) const;

  /// The engine-wide tenant config/stats registry, or nullptr when
  /// tenant_fairness is off. Shared by every executor over this engine.
  TenantRegistry* tenant_registry() { return tenants_.get(); }

 private:
  // Out of line (with the destructor): members include a
  // unique_ptr<ShardCoordinator> over a forward declaration.
  ReachabilityEngine(const RoadNetwork& network, EngineOptions options);

  /// Negative-cache key for a location set (NotFound depends only on the
  /// locations, never on T/L/Prob).
  static std::string NegativeKey(const XyPoint* locations, size_t n);

  /// Facade tail shared by the query methods: negative-cache lookup,
  /// plan, negative-cache insert on NotFound, execute.
  template <typename PlanFn>
  StatusOr<RegionResult> PlanAndExecute(const XyPoint* locations, size_t n,
                                        PlanFn&& plan_fn);

  const RoadNetwork* network_;
  EngineOptions options_;
  std::unique_ptr<SpeedProfile> profile_;
  std::unique_ptr<StIndex> st_index_;
  std::unique_ptr<ConIndex> con_index_;
  // Live ingestion stack (null when off). Sits between the indexes it
  // snapshots and the executor that pins those snapshots; destroyed in
  // reverse order, so the ingestor's batcher joins before the manager
  // reclaims and the manager before the base indexes die.
  std::unique_ptr<EpochManager> epochs_;
  std::unique_ptr<LiveProfileManager> live_manager_;
  // Journal before ingestor: the ingestor appends to it from the batcher
  // thread, so it must be destroyed after the ingestor joins.
  std::unique_ptr<ObservationJournal> journal_;
  LiveRecoveryInfo live_recovery_;
  std::unique_ptr<ObservationIngestor> ingestor_;
  std::unique_ptr<NegativeCache> negative_cache_;  // null when disabled
  /// Per-tenant config/stats shared across executors (null = tenancy off).
  std::unique_ptr<TenantRegistry> tenants_;
  // Constructed after (and destroyed before) the indexes they reference.
  std::unique_ptr<QueryPlanner> planner_;
  std::unique_ptr<QueryExecutor> executor_;
  /// Sharded serving tier (null when EngineOptions::sharding is off).
  /// Declared last: destroyed first, while every index and pool it
  /// references is still alive.
  std::unique_ptr<ShardCoordinator> coordinator_;
};

}  // namespace strr

#endif  // STRR_CORE_REACHABILITY_ENGINE_H_
