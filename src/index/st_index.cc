#include "index/st_index.h"

#include <algorithm>

#include "util/serialize.h"

namespace strr {

namespace {

/// Build-time tuple; sorting groups (segment, slot) together, then days,
/// then ids (so duplicates from multi-sample traversals collapse).
struct BuildTuple {
  PostingKey key;  // (segment << 32) | slot
  uint32_t day;
  TrajectoryId traj;

  bool operator<(const BuildTuple& o) const {
    if (key != o.key) return key < o.key;
    if (day != o.day) return day < o.day;
    return traj < o.traj;
  }
  bool operator==(const BuildTuple& o) const {
    return key == o.key && day == o.day && traj == o.traj;
  }
};

/// Encodes one time list: varint day count, then per present day:
/// varint day, sorted-delta id list.
std::string EncodeTimeList(
    const std::vector<std::pair<uint32_t, std::vector<TrajectoryId>>>& days) {
  BinaryWriter w;
  w.PutVarint32(static_cast<uint32_t>(days.size()));
  for (const auto& [day, ids] : days) {
    w.PutVarint32(day);
    w.PutU32List(ids, /*sorted=*/true);
  }
  return w.Release();
}

}  // namespace

StatusOr<std::unique_ptr<StIndex>> StIndex::Build(
    const RoadNetwork& network, const TrajectoryStore& store,
    const StIndexOptions& options) {
  if (!network.finalized()) {
    return Status::FailedPrecondition("StIndex::Build: network not finalized");
  }
  if (options.slot_seconds <= 0 || options.slot_seconds > kSecondsPerDay) {
    return Status::InvalidArgument("StIndex: slot width out of range");
  }
  if (options.posting_path.empty()) {
    return Status::InvalidArgument("StIndex: posting_path is required");
  }

  auto index = std::unique_ptr<StIndex>(new StIndex(network, options));
  index->slots_per_day_ = SlotsPerDay(options.slot_seconds);
  index->num_days_ = store.num_days();

  // Temporal B+-tree: slot start second -> slot id.
  for (SlotId s = 0; s < index->slots_per_day_; ++s) {
    index->temporal_.Insert(static_cast<int64_t>(s) * options.slot_seconds,
                            static_cast<uint32_t>(s));
  }

  // Shared spatial R-tree, STR bulk-loaded over segment MBRs.
  {
    std::vector<RTree::Entry> entries;
    entries.reserve(network.NumSegments());
    for (const RoadSegment& seg : network.segments()) {
      entries.push_back({seg.bounding_box(), seg.id});
    }
    index->rtree_.BulkLoad(std::move(entries));
  }

  // Time lists: gather (segment, slot, day, traj) tuples, sort, encode.
  std::vector<BuildTuple> tuples;
  {
    uint64_t total_samples = 0;
    store.ForEach([&](const MatchedTrajectory& t) {
      total_samples += t.samples.size();
    });
    tuples.reserve(total_samples);
  }
  store.ForEach([&](const MatchedTrajectory& traj) {
    for (const MatchedSample& s : traj.samples) {
      if (s.segment >= network.NumSegments()) continue;
      SlotId slot = SlotOf(s.timestamp, options.slot_seconds);
      tuples.push_back({MakePostingKey(s.segment, static_cast<uint32_t>(slot)),
                        static_cast<uint32_t>(traj.day), traj.id});
    }
  });
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());

  STRR_ASSIGN_OR_RETURN(
      std::unique_ptr<PostingStoreBuilder> builder,
      PostingStoreBuilder::Create(options.posting_path, options.page_size));

  size_t i = 0;
  while (i < tuples.size()) {
    PostingKey key = tuples[i].key;
    std::vector<std::pair<uint32_t, std::vector<TrajectoryId>>> days;
    while (i < tuples.size() && tuples[i].key == key) {
      uint32_t day = tuples[i].day;
      std::vector<TrajectoryId> ids;
      while (i < tuples.size() && tuples[i].key == key &&
             tuples[i].day == day) {
        ids.push_back(tuples[i].traj);
        ++i;
      }
      days.emplace_back(day, std::move(ids));
    }
    STRR_RETURN_IF_ERROR(builder->Add(key, EncodeTimeList(days)));
  }
  STRR_RETURN_IF_ERROR(builder->Finish());

  PostingStoreOptions store_options;
  store_options.cache_pages = options.cache_pages;
  store_options.page_size = options.page_size;
  store_options.cache_policy = options.cache_policy;
  store_options.cache_protected_share = options.cache_protected_share;
  store_options.bloom_bits_per_key = options.posting_bloom_bits_per_key;
  store_options.role = "posting";
  STRR_ASSIGN_OR_RETURN(index->postings_,
                        PostingStore::Open(options.posting_path,
                                           store_options));
  return index;
}

StatusOr<SegmentId> StIndex::LocateSegment(const XyPoint& p) const {
  // The R-tree ranks by box distance; re-rank the top candidates by true
  // geometric distance to pick the segment the location actually lies on.
  std::vector<uint32_t> candidates = rtree_.Nearest(p, 8);
  if (candidates.empty()) return Status::NotFound("no segments in index");
  SegmentId best = candidates.front();
  double best_dist = network_->segment(best).shape.Project(p).distance;
  for (size_t i = 1; i < candidates.size(); ++i) {
    double d = network_->segment(candidates[i]).shape.Project(p).distance;
    if (d < best_dist) {
      best_dist = d;
      best = candidates[i];
    }
  }
  if (options_.max_locate_distance_m > 0 &&
      best_dist > options_.max_locate_distance_m) {
    return Status::NotFound("no segment within " +
                            std::to_string(options_.max_locate_distance_m) +
                            "m of query location");
  }
  return best;
}

std::vector<SegmentId> StIndex::SegmentsInRange(const Mbr& box) const {
  return rtree_.Search(box);
}

SlotId StIndex::SlotForTime(int64_t time_of_day_sec) const {
  int64_t tod = ((time_of_day_sec % kSecondsPerDay) + kSecondsPerDay) %
                kSecondsPerDay;
  auto hit = temporal_.Floor(tod);
  return hit ? static_cast<SlotId>(hit->second) : 0;
}

std::vector<SlotId> StIndex::SlotsCovering(int64_t begin_tod,
                                           int64_t end_tod) const {
  std::vector<SlotId> slots;
  if (end_tod <= begin_tod) return slots;
  begin_tod = std::max<int64_t>(0, begin_tod);
  end_tod = std::min<int64_t>(kSecondsPerDay, end_tod);
  SlotId first = SlotForTime(begin_tod);
  SlotId last = SlotForTime(end_tod - 1);
  for (SlotId s = first; s <= last; ++s) slots.push_back(s);
  return slots;
}

StatusOr<TimeList> StIndex::ReadTimeList(SegmentId seg, SlotId slot) const {
  TimeList lists(static_cast<size_t>(num_days_));
  PostingKey key = MakePostingKey(seg, static_cast<uint32_t>(slot));
  if (!postings_->Contains(key)) return lists;  // no traffic at all
  STRR_ASSIGN_OR_RETURN(std::string blob, postings_->Get(key));
  BinaryReader r(blob);
  STRR_ASSIGN_OR_RETURN(uint32_t day_count, r.GetVarint32());
  for (uint32_t i = 0; i < day_count; ++i) {
    STRR_ASSIGN_OR_RETURN(uint32_t day, r.GetVarint32());
    STRR_ASSIGN_OR_RETURN(std::vector<uint32_t> ids,
                          r.GetU32List(/*sorted=*/true));
    if (day < lists.size()) {
      lists[day] = std::move(ids);
    } else {
      return Status::Corruption("time list day out of range");
    }
  }
  return lists;
}

bool StIndex::HasTraffic(SegmentId seg, SlotId slot) const {
  return postings_->Contains(MakePostingKey(seg, static_cast<uint32_t>(slot)));
}

}  // namespace strr
