// StIndex: the paper's Spatio-Temporal Index (§3.2.1).
//
// Three components, exactly as Figure 3.2 lays them out:
//  * Temporal index — a B+-tree over the day's Δt-wide time slots
//    (key = slot start second, value = slot id).
//  * Spatial index — an R-tree over the re-segmented road network. The
//    network is static, so all temporal leaves share ONE R-tree (the paper
//    makes the same observation).
//  * Time lists — for each (segment, slot), the per-date lists of
//    trajectory IDs that traversed the segment in that slot. These live on
//    disk in a PostingStore and are read through a BufferPool, so every
//    access is measurable I/O.
#ifndef STRR_INDEX_ST_INDEX_H_
#define STRR_INDEX_ST_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "index/bplus_tree.h"
#include "index/rtree.h"
#include "roadnet/road_network.h"
#include "storage/posting_store.h"
#include "traj/trajectory_store.h"
#include "util/result.h"
#include "util/time_util.h"

namespace strr {

/// ST-Index construction knobs.
struct StIndexOptions {
  int64_t slot_seconds = 300;   ///< Δt: temporal granularity (default 5 min)
  std::string posting_path;     ///< where the time-list file goes (required)
  size_t cache_pages = 4096;    ///< buffer-pool capacity for reads
  uint32_t page_size = kDefaultPageSize;
  /// LocateSegment match radius: a query location farther than this from
  /// every segment is NotFound instead of silently snapping to a road
  /// kilometres away (junk coordinates from misbehaving clients). 25 km
  /// comfortably covers GPS noise and off-network pickups while rejecting
  /// other-continent floods; <= 0 disables the cap and restores the
  /// unconditional snap-to-nearest behavior. Deliberately on by default —
  /// fabricating reachability for a point 1000 km off-network is a bug,
  /// not behavior to preserve; city-scale workloads (the paper's) never
  /// hit the cap. EngineOptions::max_locate_distance_m plumbs it through.
  double max_locate_distance_m = 25000.0;
  /// Block-cache policy for the posting BufferPool (kTinyLfu = segmented
  /// scan-resistant cache; the metric series are labeled role="posting").
  CachePolicy cache_policy = CachePolicy::kLru;
  double cache_protected_share = 0.8;
  /// Bloom doorkeeper over posting keys: point probes for (segment, slot)
  /// pairs with no traffic skip the store entirely. 0 disables.
  int posting_bloom_bits_per_key = 0;
};

/// Per-day trajectory-ID lists for one (segment, slot): time_lists[d] is
/// the sorted list of trajectory ids active on day d.
using TimeList = std::vector<std::vector<TrajectoryId>>;

/// Built index; immutable after Build and thread-safe for concurrent
/// queries: the R-tree/B+-tree lookups are const over frozen structures,
/// and ReadTimeList goes through PostingStore::Get, which copies page
/// bytes out under the BufferPool lock. The StorageStats counters are
/// shared across all concurrent queries (FileManager keeps them atomic);
/// per-query I/O deltas are only meaningful for sequential execution.
class StIndex {
 public:
  /// Builds from the matched-trajectory database, writing the posting file
  /// and loading its directory back for querying.
  static StatusOr<std::unique_ptr<StIndex>> Build(
      const RoadNetwork& network, const TrajectoryStore& store,
      const StIndexOptions& options);

  // --- Spatial -------------------------------------------------------------

  /// Segment whose geometry is nearest to `p` (query location -> start
  /// road segment, the first step of every query). NotFound when empty.
  StatusOr<SegmentId> LocateSegment(const XyPoint& p) const;

  /// Segments intersecting the rectangle (spatial range selection).
  std::vector<SegmentId> SegmentsInRange(const Mbr& box) const;

  // --- Temporal ------------------------------------------------------------

  /// Slot covering a time of day (floor lookup through the B+-tree).
  SlotId SlotForTime(int64_t time_of_day_sec) const;

  /// All slot ids whose windows intersect [begin_tod, end_tod) within one
  /// day; clamps to the day.
  std::vector<SlotId> SlotsCovering(int64_t begin_tod, int64_t end_tod) const;

  int64_t slot_seconds() const { return options_.slot_seconds; }
  int32_t slots_per_day() const { return slots_per_day_; }
  int32_t num_days() const { return num_days_; }

  // --- Time lists ------------------------------------------------------------

  /// Reads the time list of (segment, slot) from disk. Days with no
  /// traversals have empty lists. Costs buffer-pool I/O.
  StatusOr<TimeList> ReadTimeList(SegmentId seg, SlotId slot) const;

  /// True when some trajectory traversed (segment, slot) on any day —
  /// directory-only check, no I/O.
  bool HasTraffic(SegmentId seg, SlotId slot) const;

  // --- Introspection ---------------------------------------------------------

  StorageStats storage_stats() const { return postings_->stats(); }
  void ResetStorageStats() { postings_->ResetStats(); }
  void DropCache() { postings_->DropCache(); }

  const RTree& rtree() const { return rtree_; }
  const BPlusTree& temporal_tree() const { return temporal_; }
  uint64_t NumPostings() const { return postings_->NumEntries(); }
  /// Absent-key probes the posting bloom doorkeeper short-circuited.
  uint64_t PostingBloomNegatives() const {
    return postings_->BloomNegatives();
  }
  const RoadNetwork& network() const { return *network_; }

 private:
  StIndex(const RoadNetwork& network, StIndexOptions options)
      : network_(&network), options_(std::move(options)) {}

  const RoadNetwork* network_;
  StIndexOptions options_;
  int32_t slots_per_day_ = 0;
  int32_t num_days_ = 0;
  RTree rtree_;
  BPlusTree temporal_;
  std::unique_ptr<PostingStore> postings_;
};

}  // namespace strr

#endif  // STRR_INDEX_ST_INDEX_H_
