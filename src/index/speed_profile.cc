#include "index/speed_profile.h"

#include <algorithm>
#include <cmath>

namespace strr {

SpeedProfile::SpeedProfile(const RoadNetwork& network,
                           SpeedProfileOptions options)
    : network_(&network), options_(options) {
  num_slots_ = SlotsPerDay(options_.slot_seconds);
  cells_.assign(network.NumSegments() * static_cast<size_t>(num_slots_),
                Cell{});
  level_fallback_.assign(3 * static_cast<size_t>(num_slots_), Cell{});
}

StatusOr<SpeedProfile> SpeedProfile::Build(const RoadNetwork& network,
                                           const TrajectoryStore& store,
                                           const SpeedProfileOptions& options) {
  if (options.slot_seconds <= 0 || options.slot_seconds > kSecondsPerDay) {
    return Status::InvalidArgument("profile slot width out of range");
  }
  if (kSecondsPerDay % options.slot_seconds != 0) {
    return Status::InvalidArgument(
        "profile slot width must divide 86400 seconds");
  }
  SpeedProfile profile(network, options);

  auto update = [&](Cell& cell, float speed) {
    if (cell.count == 0) {
      cell.min_speed = speed;
      cell.max_speed = speed;
    } else {
      cell.min_speed = std::min(cell.min_speed, speed);
      cell.max_speed = std::max(cell.max_speed, speed);
    }
    cell.sum_speed += speed;
    ++cell.count;
  };

  store.ForEach([&](const MatchedTrajectory& traj) {
    for (const MatchedSample& s : traj.samples) {
      if (s.segment >= network.NumSegments()) continue;
      if (s.speed_mps < options.min_speed_floor) continue;  // drop "zero"
      SlotId slot = profile.SlotFor(TimeOfDay(s.timestamp));
      update(profile.cells_[profile.CellIndex(s.segment, slot)], s.speed_mps);
      size_t level = static_cast<size_t>(network.segment(s.segment).level);
      update(profile.level_fallback_[level * profile.num_slots_ + slot],
             s.speed_mps);
    }
  });
  return profile;
}

bool SpeedProfile::HasObservations(SegmentId seg,
                                   int64_t time_of_day_sec) const {
  if (seg >= network_->NumSegments()) return false;
  return cells_[CellIndex(seg, SlotFor(time_of_day_sec))].count > 0;
}

double SpeedProfile::MinSpeed(SegmentId seg, int64_t time_of_day_sec) const {
  SlotId slot = SlotFor(time_of_day_sec);
  const Cell& cell = cells_[CellIndex(seg, slot)];
  if (cell.count > 0) return cell.min_speed;
  size_t level = static_cast<size_t>(network_->segment(seg).level);
  const Cell& fb = level_fallback_[level * num_slots_ + slot];
  if (fb.count > 0) return fb.min_speed;
  // No observation anywhere in this slot: assume worst-case crawl. The
  // Near lists built from this bound the minimum region conservatively.
  return 0.2 * FreeFlowSpeed(network_->segment(seg).level);
}

double SpeedProfile::MaxSpeed(SegmentId seg, int64_t time_of_day_sec) const {
  SlotId slot = SlotFor(time_of_day_sec);
  const Cell& cell = cells_[CellIndex(seg, slot)];
  if (cell.count > 0) return cell.max_speed;
  size_t level = static_cast<size_t>(network_->segment(seg).level);
  const Cell& fb = level_fallback_[level * num_slots_ + slot];
  if (fb.count > 0) return fb.max_speed;
  return FreeFlowSpeed(network_->segment(seg).level);
}

double SpeedProfile::MeanSpeed(SegmentId seg, int64_t time_of_day_sec) const {
  SlotId slot = SlotFor(time_of_day_sec);
  const Cell& cell = cells_[CellIndex(seg, slot)];
  if (cell.count > 0) return cell.sum_speed / cell.count;
  size_t level = static_cast<size_t>(network_->segment(seg).level);
  const Cell& fb = level_fallback_[level * num_slots_ + slot];
  if (fb.count > 0) return fb.sum_speed / fb.count;
  return 0.7 * FreeFlowSpeed(network_->segment(seg).level);
}

void SpeedProfile::AddUpdateListener(UpdateListener listener) {
  listeners_.push_back(std::move(listener));
}

void SpeedProfile::ApplyObservation(SegmentId seg, int64_t time_of_day_sec,
                                    double speed_mps) {
  if (seg >= network_->NumSegments()) return;
  // Reject NaN alongside "zero" speeds (NaN fails every >= comparison):
  // one poisoned sample would otherwise corrupt the cell stats forever.
  if (!std::isfinite(speed_mps) || speed_mps < options_.min_speed_floor) {
    return;
  }
  float speed = static_cast<float>(speed_mps);
  SlotId slot = SlotFor(NormalizeTimeOfDay(time_of_day_sec));
  ApplyUpdate(seg, static_cast<int64_t>(slot) * options_.slot_seconds, speed,
              speed, speed, 1);

  int64_t begin_tod = static_cast<int64_t>(slot) * options_.slot_seconds;
  int64_t end_tod = begin_tod + options_.slot_seconds;
  for (const UpdateListener& listener : listeners_) {
    listener(begin_tod, end_tod);
  }
}

uint8_t SpeedProfile::ApplyUpdate(SegmentId seg, int64_t time_of_day_sec,
                                  float min_speed, float max_speed,
                                  float sum_speed, uint32_t count) {
  if (seg >= network_->NumSegments() || count == 0) return kNoExtremeChange;
  SlotId slot = SlotFor(NormalizeTimeOfDay(time_of_day_sec));
  auto update = [&](Cell& cell) {
    bool changed = false;
    if (cell.count == 0) {
      cell.min_speed = min_speed;
      cell.max_speed = max_speed;
      changed = true;
    } else {
      if (min_speed < cell.min_speed) {
        cell.min_speed = min_speed;
        changed = true;
      }
      if (max_speed > cell.max_speed) {
        cell.max_speed = max_speed;
        changed = true;
      }
    }
    cell.sum_speed += sum_speed;
    cell.count += count;
    return changed;
  };
  uint8_t effect = kNoExtremeChange;
  if (update(cells_[CellIndex(seg, slot)])) effect |= kCellExtremesChanged;
  size_t level = static_cast<size_t>(network_->segment(seg).level);
  if (update(level_fallback_[level * num_slots_ + slot])) {
    effect |= kFallbackExtremesChanged;
  }
  return effect;
}

SpeedProfile SpeedProfile::Fork() const {
  SpeedProfile copy = *this;
  copy.listeners_.clear();
  return copy;
}

double SpeedProfile::CoverageFraction() const {
  if (cells_.empty()) return 0.0;
  size_t covered = 0;
  for (const Cell& c : cells_) {
    if (c.count > 0) ++covered;
  }
  return static_cast<double>(covered) / cells_.size();
}

}  // namespace strr
