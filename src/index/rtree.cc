#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

namespace strr {

struct RTree::Node {
  bool leaf = true;
  Mbr box;
  std::vector<Entry> entries;                  // leaf payloads
  std::vector<std::unique_ptr<Node>> children;  // internal children

  void RecomputeBox() {
    box = Mbr();
    if (leaf) {
      for (const Entry& e : entries) box.Extend(e.box);
    } else {
      for (const auto& c : children) box.Extend(c->box);
    }
  }
};

RTree::RTree(size_t max_entries)
    : root_(std::make_unique<Node>()),
      max_entries_(max_entries < 4 ? 4 : max_entries) {}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

// --- Bulk load (STR) ---------------------------------------------------------

namespace {

/// Packs `items` (already leaves or subtrees) into parent nodes of fan-out
/// M using sort-tile-recursive on node-box centers.
std::vector<std::unique_ptr<RTree::Node>> PackLevel(
    std::vector<std::unique_ptr<RTree::Node>> items, size_t fanout) {
  using Node = RTree::Node;
  size_t n = items.size();
  size_t num_parents = (n + fanout - 1) / fanout;
  size_t slices = static_cast<size_t>(std::ceil(std::sqrt(
      static_cast<double>(num_parents))));
  // Sort by center x, slice, then sort each slice by center y.
  std::sort(items.begin(), items.end(),
            [](const std::unique_ptr<Node>& a, const std::unique_ptr<Node>& b) {
              return a->box.Center().x < b->box.Center().x;
            });
  size_t slice_size = (n + slices - 1) / slices;
  std::vector<std::unique_ptr<Node>> parents;
  for (size_t s = 0; s < slices; ++s) {
    size_t begin = s * slice_size;
    if (begin >= n) break;
    size_t end = std::min(begin + slice_size, n);
    std::sort(items.begin() + begin, items.begin() + end,
              [](const std::unique_ptr<Node>& a,
                 const std::unique_ptr<Node>& b) {
                return a->box.Center().y < b->box.Center().y;
              });
    for (size_t i = begin; i < end; i += fanout) {
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      size_t stop = std::min(i + fanout, end);
      for (size_t j = i; j < stop; ++j) {
        parent->children.push_back(std::move(items[j]));
      }
      parent->RecomputeBox();
      parents.push_back(std::move(parent));
    }
  }
  return parents;
}

}  // namespace

void RTree::BulkLoad(std::vector<Entry> entries) {
  size_ = entries.size();
  if (entries.empty()) {
    root_ = std::make_unique<Node>();
    return;
  }

  // Tile the entries into leaves.
  size_t n = entries.size();
  size_t num_leaves = (n + max_entries_ - 1) / max_entries_;
  size_t slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.box.Center().x < b.box.Center().x;
  });
  size_t slice_size = (n + slices - 1) / slices;
  std::vector<std::unique_ptr<Node>> leaves;
  for (size_t s = 0; s < slices; ++s) {
    size_t begin = s * slice_size;
    if (begin >= n) break;
    size_t end = std::min(begin + slice_size, n);
    std::sort(entries.begin() + begin, entries.begin() + end,
              [](const Entry& a, const Entry& b) {
                return a.box.Center().y < b.box.Center().y;
              });
    for (size_t i = begin; i < end; i += max_entries_) {
      auto leaf = std::make_unique<Node>();
      leaf->leaf = true;
      size_t stop = std::min(i + max_entries_, end);
      leaf->entries.assign(entries.begin() + i, entries.begin() + stop);
      leaf->RecomputeBox();
      leaves.push_back(std::move(leaf));
    }
  }

  while (leaves.size() > 1) {
    leaves = PackLevel(std::move(leaves), max_entries_);
  }
  root_ = std::move(leaves.front());
}

// --- Incremental insert ------------------------------------------------------

namespace {

/// Quadratic split of an overfull collection into two groups, returning the
/// index partition. Generic over anything exposing a box via `get_box`.
template <typename T, typename GetBox>
std::pair<std::vector<size_t>, std::vector<size_t>> QuadraticSplit(
    const std::vector<T>& items, const GetBox& get_box, size_t min_fill) {
  const size_t n = items.size();
  // Pick the pair wasting the most area as seeds.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      Mbr combined = get_box(items[i]);
      combined.Extend(get_box(items[j]));
      double waste = combined.Area() - get_box(items[i]).Area() -
                     get_box(items[j]).Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  std::vector<size_t> group_a{seed_a}, group_b{seed_b};
  Mbr box_a = get_box(items[seed_a]);
  Mbr box_b = get_box(items[seed_b]);
  for (size_t i = 0; i < n; ++i) {
    if (i == seed_a || i == seed_b) continue;
    size_t remaining = n - group_a.size() - group_b.size() - 1;
    // Force-assign when a group must take everything left to reach min fill.
    if (group_a.size() + remaining + 1 <= min_fill) {
      group_a.push_back(i);
      box_a.Extend(get_box(items[i]));
      continue;
    }
    if (group_b.size() + remaining + 1 <= min_fill) {
      group_b.push_back(i);
      box_b.Extend(get_box(items[i]));
      continue;
    }
    double grow_a = box_a.EnlargementToCover(get_box(items[i]));
    double grow_b = box_b.EnlargementToCover(get_box(items[i]));
    if (grow_a < grow_b ||
        (grow_a == grow_b && group_a.size() <= group_b.size())) {
      group_a.push_back(i);
      box_a.Extend(get_box(items[i]));
    } else {
      group_b.push_back(i);
      box_b.Extend(get_box(items[i]));
    }
  }
  return {group_a, group_b};
}

}  // namespace

void RTree::InsertRecursive(Node* node, const Entry& entry, int target_level,
                            std::unique_ptr<Node>* split_out) {
  if (node->leaf) {
    node->entries.push_back(entry);
    node->box.Extend(entry.box);
    if (node->entries.size() > max_entries_) {
      auto [ga, gb] = QuadraticSplit(
          node->entries, [](const Entry& e) -> const Mbr& { return e.box; },
          max_entries_ / 2);
      auto sibling = std::make_unique<Node>();
      sibling->leaf = true;
      std::vector<Entry> keep;
      for (size_t i : ga) keep.push_back(node->entries[i]);
      for (size_t i : gb) sibling->entries.push_back(node->entries[i]);
      node->entries = std::move(keep);
      node->RecomputeBox();
      sibling->RecomputeBox();
      *split_out = std::move(sibling);
    }
    return;
  }

  // Choose the child needing least enlargement (ties: smaller area).
  size_t best = 0;
  double best_grow = std::numeric_limits<double>::max();
  double best_area = std::numeric_limits<double>::max();
  for (size_t i = 0; i < node->children.size(); ++i) {
    double grow = node->children[i]->box.EnlargementToCover(entry.box);
    double area = node->children[i]->box.Area();
    if (grow < best_grow || (grow == best_grow && area < best_area)) {
      best_grow = grow;
      best_area = area;
      best = i;
    }
  }
  std::unique_ptr<Node> child_split;
  InsertRecursive(node->children[best].get(), entry, target_level,
                  &child_split);
  node->box.Extend(entry.box);
  if (child_split != nullptr) {
    node->children.push_back(std::move(child_split));
    if (node->children.size() > max_entries_) {
      auto [ga, gb] = QuadraticSplit(
          node->children,
          [](const std::unique_ptr<Node>& c) -> const Mbr& { return c->box; },
          max_entries_ / 2);
      auto sibling = std::make_unique<Node>();
      sibling->leaf = false;
      std::vector<std::unique_ptr<Node>> keep;
      for (size_t i : ga) keep.push_back(std::move(node->children[i]));
      for (size_t i : gb) {
        sibling->children.push_back(std::move(node->children[i]));
      }
      node->children = std::move(keep);
      node->RecomputeBox();
      sibling->RecomputeBox();
      *split_out = std::move(sibling);
    }
  }
}

void RTree::Insert(const Mbr& box, uint32_t value) {
  std::unique_ptr<Node> split;
  InsertRecursive(root_.get(), Entry{box, value}, 0, &split);
  if (split != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    new_root->RecomputeBox();
    root_ = std::move(new_root);
  }
  ++size_;
}

// --- Queries -----------------------------------------------------------------

void RTree::SearchNode(const Node* node, const Mbr& query,
                       const std::function<bool(const Entry&)>& visit,
                       bool* keep_going) {
  if (!*keep_going) return;
  if (node->leaf) {
    for (const Entry& e : node->entries) {
      if (e.box.Intersects(query)) {
        if (!visit(e)) {
          *keep_going = false;
          return;
        }
      }
    }
    return;
  }
  for (const auto& child : node->children) {
    if (child->box.Intersects(query)) {
      SearchNode(child.get(), query, visit, keep_going);
      if (!*keep_going) return;
    }
  }
}

void RTree::SearchVisit(const Mbr& query,
                        const std::function<bool(const Entry&)>& visit) const {
  bool keep_going = true;
  if (size_ > 0) SearchNode(root_.get(), query, visit, &keep_going);
}

std::vector<uint32_t> RTree::Search(const Mbr& query) const {
  std::vector<uint32_t> out;
  SearchVisit(query, [&out](const Entry& e) {
    out.push_back(e.value);
    return true;
  });
  return out;
}

std::vector<uint32_t> RTree::Nearest(const XyPoint& p, size_t k) const {
  std::vector<uint32_t> out;
  if (size_ == 0 || k == 0) return out;

  struct QueueItem {
    double dist;
    const Node* node;    // null when this is an entry
    const Entry* entry;  // null when this is a node
    bool operator>(const QueueItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;
  queue.push({root_->box.MinDistance(p), root_.get(), nullptr});
  while (!queue.empty() && out.size() < k) {
    QueueItem top = queue.top();
    queue.pop();
    if (top.entry != nullptr) {
      out.push_back(top.entry->value);
      continue;
    }
    const Node* node = top.node;
    if (node->leaf) {
      for (const Entry& e : node->entries) {
        queue.push({e.box.MinDistance(p), nullptr, &e});
      }
    } else {
      for (const auto& child : node->children) {
        queue.push({child->box.MinDistance(p), child.get(), nullptr});
      }
    }
  }
  return out;
}

// --- Invariants --------------------------------------------------------------

namespace {
bool CheckNode(const RTree::Node* node, bool is_root, size_t max_entries) {
  using Node = RTree::Node;
  size_t count = node->leaf ? node->entries.size() : node->children.size();
  if (count > max_entries) return false;
  if (!is_root && count < max_entries / 2 && count > 0) {
    // Bulk-loaded rightmost nodes may be underfull; tolerate >= 1.
  }
  Mbr recomputed;
  if (node->leaf) {
    for (const auto& e : node->entries) recomputed.Extend(e.box);
  } else {
    for (const auto& c : node->children) {
      recomputed.Extend(c->box);
      if (!CheckNode(c.get(), false, max_entries)) return false;
    }
  }
  if (count > 0 && !(recomputed == node->box)) return false;
  return true;
}

int NodeHeight(const RTree::Node* node) {
  if (node->leaf) return 1;
  int h = 0;
  for (const auto& c : node->children) h = std::max(h, NodeHeight(c.get()));
  return h + 1;
}
}  // namespace

bool RTree::CheckInvariants() const {
  if (size_ == 0) return true;
  return CheckNode(root_.get(), true, max_entries_);
}

int RTree::Height() const { return size_ == 0 ? 0 : NodeHeight(root_.get()); }

}  // namespace strr
