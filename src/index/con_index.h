// ConIndex: the paper's Connection Index (§3.2.2).
//
// For each road segment and time slot it stores two reachability lists
// computed by bounded network expansion over one Δt interval:
//  * Near list  — every segment reachable within Δt at the *minimum*
//    observed speeds (lower bound of where traffic can get),
//  * Far list   — … at the *maximum* observed speeds (upper bound).
//
// Speeds come from the SpeedProfile (historical statistics); expansion is
// the modified INE of the paper. Because travel speeds are profiled at a
// coarser granularity (hourly by default) than Δt, connection tables are
// materialized per *profile slot* and shared by the Δt steps inside it —
// the substitution is documented in DESIGN.md and keeps the table count
// (and memory) bounded while preserving the time-varying behaviour.
//
// Tables are built lazily and memoized by default (BuildAll precomputes);
// both paths produce identical lists, and the lazy path lets benches sweep
// Δt without paying a full rebuild for slots they never touch.
#ifndef STRR_INDEX_CON_INDEX_H_
#define STRR_INDEX_CON_INDEX_H_

#include <memory>
#include <mutex>
#include <vector>

#include "index/speed_profile.h"
#include "roadnet/road_network.h"
#include "util/result.h"
#include "util/time_util.h"

namespace strr {

/// Con-Index construction knobs.
struct ConIndexOptions {
  int64_t delta_t_seconds = 300;  ///< Δt: expansion budget per hop
  int num_build_threads = 4;      ///< BuildAll parallelism
};

/// Connection tables. Thread-safe, including the lazy build path:
///  * each time slot has its own mutex guarding its `ready` flags, so
///    concurrent queries materializing different slots never contend;
///  * losers of a same-(seg, slot) build race discard their result and keep
///    the winner's (ComputeTables is deterministic, so either is correct);
///  * the per-slot near/far outer vectors are sized once at construction
///    and never resized, so the references returned by Far()/Near() stay
///    valid for the index lifetime — an element is written at most once,
///    before its `ready` flag is published under the slot mutex.
class ConIndex {
 public:
  /// Creates an empty (lazy) index over the network + profile.
  static StatusOr<std::unique_ptr<ConIndex>> Create(
      const RoadNetwork& network, const SpeedProfile& profile,
      const ConIndexOptions& options);

  /// Far list: segments reachable from `seg` within one Δt at max speeds,
  /// under the speed profile slot covering `time_of_day_sec`. Sorted.
  const std::vector<SegmentId>& Far(SegmentId seg,
                                    int64_t time_of_day_sec) const;

  /// Near list: same with minimum speeds. Sorted. Always a subset of Far.
  const std::vector<SegmentId>& Near(SegmentId seg,
                                     int64_t time_of_day_sec) const;

  /// Precomputes every table (the paper's offline index construction).
  Status BuildAll();

  /// Drops the materialized tables of every profile slot overlapping
  /// [begin_tod, end_tod) so the next query lazily rebuilds them against
  /// the current SpeedProfile — the hook a profile/congestion refresh
  /// fires (see SpeedProfile::AddUpdateListener). Returns the number of
  /// tables dropped.
  ///
  /// NOT safe against concurrent readers: Far()/Near() hand out references
  /// whose lifetime assumes tables are written once. Quiesce queries
  /// before invalidating, exactly as for SpeedProfile::ApplyObservation.
  size_t InvalidateTimeRange(int64_t begin_tod, int64_t end_tod);

  int64_t delta_t_seconds() const { return options_.delta_t_seconds; }
  int32_t num_profile_slots() const { return num_slots_; }

  /// Number of materialized (segment, slot) tables so far.
  size_t MaterializedTables() const;

  /// Total ids across materialized Near+Far lists (memory proxy).
  size_t TotalListEntries() const;

 private:
  struct SlotTables {
    std::vector<std::vector<SegmentId>> near;  // per segment
    std::vector<std::vector<SegmentId>> far;
    std::vector<uint8_t> ready;                // per segment
    size_t ready_count = 0;  // materialized tables; invalidation fast path
    std::mutex mu;
  };

  ConIndex(const RoadNetwork& network, const SpeedProfile& profile,
           const ConIndexOptions& options);

  /// Ensures tables for (seg, slot) exist; returns the slot bucket.
  SlotTables& EnsureTables(SegmentId seg, SlotId slot) const;

  void ComputeTables(SegmentId seg, SlotId slot, SlotTables& bucket) const;

  const RoadNetwork* network_;
  const SpeedProfile* profile_;
  ConIndexOptions options_;
  int32_t num_slots_ = 0;
  mutable std::vector<std::unique_ptr<SlotTables>> slots_;
};

}  // namespace strr

#endif  // STRR_INDEX_CON_INDEX_H_
