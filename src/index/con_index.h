// ConIndex: the paper's Connection Index (§3.2.2).
//
// For each road segment and time slot it stores two reachability lists
// computed by bounded network expansion over one Δt interval:
//  * Near list  — every segment reachable within Δt at the *minimum*
//    observed speeds (lower bound of where traffic can get),
//  * Far list   — … at the *maximum* observed speeds (upper bound).
//
// Speeds come from the SpeedProfile (historical statistics); expansion is
// the modified INE of the paper. Because travel speeds are profiled at a
// coarser granularity (hourly by default) than Δt, connection tables are
// materialized per *profile slot* and shared by the Δt steps inside it —
// the substitution is documented in DESIGN.md and keeps the table count
// (and memory) bounded while preserving the time-varying behaviour.
//
// Tables are built lazily and memoized by default (BuildAll precomputes);
// both paths produce identical lists, and the lazy path lets benches sweep
// Δt without paying a full rebuild for slots they never touch.
#ifndef STRR_INDEX_CON_INDEX_H_
#define STRR_INDEX_CON_INDEX_H_

#include <memory>
#include <mutex>
#include <vector>

#include "index/speed_profile.h"
#include "roadnet/road_network.h"
#include "util/result.h"
#include "util/time_util.h"

namespace strr {

class ExpansionContext;  // search/expansion_context.h
class FrontierEngine;    // search/frontier_engine.h

/// Con-Index construction knobs.
struct ConIndexOptions {
  int64_t delta_t_seconds = 300;  ///< Δt: expansion budget per hop
  int num_build_threads = 4;      ///< BuildAll parallelism
  /// Build tables over the network's flat CSR adjacency view (with
  /// prefetch) instead of the per-segment vectors. Tables are
  /// bit-identical either way (see search/frontier_engine.h); this only
  /// changes build speed. Falls back to legacy when the network carries
  /// no CSR.
  bool flat_interior = false;
};

/// Connection tables. Thread-safe, including the lazy build path:
///  * each time slot has its own mutex guarding its `ready` flags, so
///    concurrent queries materializing different slots never contend;
///  * losers of a same-(seg, slot) build race discard their result and keep
///    the winner's (ComputeTables is deterministic, so either is correct);
///  * the per-slot near/far outer vectors are sized once at construction
///    and never resized, so the references returned by Far()/Near() stay
///    valid for the index lifetime — an element is written at most once,
///    before its `ready` flag is published under the slot mutex.
class ConIndex {
 public:
  /// Creates an empty (lazy) index over the network + profile.
  static StatusOr<std::unique_ptr<ConIndex>> Create(
      const RoadNetwork& network, const SpeedProfile& profile,
      const ConIndexOptions& options);

  /// Far list: segments reachable from `seg` within one Δt at max speeds,
  /// under the speed profile slot covering `time_of_day_sec`. Sorted.
  const std::vector<SegmentId>& Far(SegmentId seg,
                                    int64_t time_of_day_sec) const;

  /// Near list: same with minimum speeds. Sorted. Always a subset of Far.
  const std::vector<SegmentId>& Near(SegmentId seg,
                                     int64_t time_of_day_sec) const;

  /// Precomputes every table (the paper's offline index construction).
  Status BuildAll();

  /// Drops the materialized tables of every profile slot overlapping
  /// [begin_tod, end_tod) so the next query lazily rebuilds them against
  /// the current SpeedProfile — the hook a profile/congestion refresh
  /// fires (see SpeedProfile::AddUpdateListener). Returns the number of
  /// tables dropped.
  ///
  /// Direct-mutation path: NOT safe against concurrent readers (Far()/
  /// Near() hand out references whose lifetime assumes tables are written
  /// once), so callers must serialize against queries. Refreshes under
  /// live query load go through CloneWithInvalidation instead, which
  /// leaves this index untouched.
  size_t InvalidateTimeRange(int64_t begin_tod, int64_t end_tod);

  /// One slot whose extremes changed on a *few segment cells only* (no
  /// level-fallback change): instead of dropping the whole slot, the
  /// clone keeps serving every table provably unaffected by the change.
  struct PartialInvalidation {
    SlotId slot = 0;
    std::vector<SegmentId> changed;  ///< sorted, deduplicated cell changes
  };

  /// Copy-on-invalidate for snapshot publication (live ingestion): builds
  /// a new index over `profile` (the refreshed fork) that *shares* the
  /// slot buckets of every profile slot not invalidated, starts the
  /// `invalidated_slots` empty (full invalidation: next queries lazily
  /// rebuild from the new profile), and gives each `partial` slot an
  /// overlay — the old bucket keeps serving its materialized tables
  /// except those a changed segment can actually reach, which rebuild
  /// lazily in a fresh per-generation bucket. O(#slots) pointer copies
  /// plus, per partial slot, membership probes over its materialized
  /// lists — no table data is copied or recomputed eagerly.
  /// `rebuild_out` (optional) receives, per partial slot, every segment
  /// whose table was serving in this generation (base-shared tables
  /// newly knocked out, plus tables materialized in this generation's
  /// own bucket, which the clone's fresh bucket discards) — the exact
  /// work list an ingest-driven prewarm pass should run (see
  /// LiveProfileManager). Never-built tables are excluded: no query
  /// needed them yet.
  ///
  /// Sharing is sound because an untouched slot has bit-identical speed
  /// statistics in both profiles, and lazy builds are deterministic:
  /// whichever index materializes a shared table first produces the same
  /// lists the other would (bucket mutexes make the concurrent fill
  /// race-safe, exactly as between two queries). The partial filter is
  /// sound because expansion labels are *completion* times: a speed
  /// change on segment X can alter the table of Y only via a path that
  /// completes X or enters X — and entering X means completing one of
  /// X's predecessors — so a table whose Near/Far lists contain neither X
  /// nor any predecessor of X (nor is X's own table) is bit-identical
  /// under the new profile. `profile` must have the same slot layout and
  /// must outlive the clone.
  std::unique_ptr<ConIndex> CloneWithInvalidation(
      const SpeedProfile& profile,
      const std::vector<SlotId>& invalidated_slots,
      const std::vector<PartialInvalidation>& partial = {},
      std::vector<PartialInvalidation>* rebuild_out = nullptr) const;

  /// Eagerly materializes the tables of `segments` in `slot` (skipping
  /// ones already ready or overlay-served) so queries don't pay the lazy
  /// build — the ingest-driven prewarm entry point. Safe under concurrent
  /// queries (same contract as the lazy path); one pooled context serves
  /// the whole batch. Returns the number of tables built by this call.
  size_t PrewarmSlot(SlotId slot, const std::vector<SegmentId>& segments) const;

  int64_t delta_t_seconds() const { return options_.delta_t_seconds; }
  int32_t num_profile_slots() const { return num_slots_; }

  /// Number of materialized (segment, slot) tables so far.
  size_t MaterializedTables() const;

  /// Total ids across materialized Near+Far lists (memory proxy).
  size_t TotalListEntries() const;

 private:
  struct SlotTables {
    std::vector<std::vector<SegmentId>> near;  // per segment
    std::vector<std::vector<SegmentId>> far;
    std::vector<uint8_t> ready;                // per segment
    size_t ready_count = 0;  // materialized tables; invalidation fast path
    std::mutex mu;
  };

  /// Partial-invalidation overlay (see CloneWithInvalidation): segments
  /// with use_base set serve straight from `base` (their tables were
  /// materialized and provably unaffected when the overlay was built —
  /// write-once, so reading them needs no lock); everything else builds
  /// lazily into this generation's own bucket (slots_[slot]) against this
  /// generation's profile. `base` is always the lineage's last fully-built
  /// bucket, so repeated partial invalidations only shrink use_base — no
  /// overlay chains.
  struct SlotOverlay {
    std::shared_ptr<SlotTables> base;  // null = slot has no overlay
    std::vector<uint8_t> use_base;     // per segment
  };

  /// `allocate_buckets` false leaves slots_ as null shared_ptrs — the
  /// CloneWithInvalidation path, which aliases or allocates per slot
  /// itself and must not pay O(num_slots x num_segments) throwaway
  /// allocations on every publish.
  ConIndex(const RoadNetwork& network, const SpeedProfile& profile,
           const ConIndexOptions& options, bool allocate_buckets = true);

  /// A fresh empty bucket sized for the network.
  std::shared_ptr<SlotTables> MakeBucket() const;

  /// Ensures tables for (seg, slot) exist; returns the slot bucket.
  /// Acquires a pooled expansion context per call — batch builders
  /// (BuildAll, PrewarmSlot) hold one context across their loop instead.
  SlotTables& EnsureTables(SegmentId seg, SlotId slot) const;

  /// Same, reusing the caller's engine + context across calls.
  SlotTables& EnsureTablesWith(FrontierEngine& engine, ExpansionContext& ctx,
                               SegmentId seg, SlotId slot) const;

  /// Expands (seg, slot) on the unified frontier core and publishes the
  /// Near/Far lists into `bucket` (first writer wins).
  void ComputeTables(FrontierEngine& engine, ExpansionContext& ctx,
                     SegmentId seg, SlotId slot, SlotTables& bucket) const;

  const RoadNetwork* network_;
  const SpeedProfile* profile_;
  ConIndexOptions options_;
  int32_t num_slots_ = 0;
  /// Shared, not unique: CloneWithInvalidation aliases unaffected buckets
  /// across snapshot generations, so a bucket lazily filled by any
  /// generation serves all of them.
  mutable std::vector<std::shared_ptr<SlotTables>> slots_;
  /// Parallel to slots_; entry active iff base != nullptr.
  mutable std::vector<SlotOverlay> overlays_;
};

}  // namespace strr

#endif  // STRR_INDEX_CON_INDEX_H_
