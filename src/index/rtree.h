// RTree: in-memory R-tree over (Mbr, payload-id) entries.
//
// The spatial component of the paper's ST-Index. Because the re-segmented
// road network is static, the tree is typically STR bulk-loaded once
// (BulkLoad) — the paper notes every temporal leaf can share the same
// spatial structure, which is exactly what StIndex does with one shared
// RTree. Incremental Insert (quadratic-split R-tree) is also provided and
// tested so the structure is usable as a general index.
#ifndef STRR_INDEX_RTREE_H_
#define STRR_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geo/mbr.h"
#include "geo/point.h"

namespace strr {

/// R-tree mapping rectangles to uint32 payloads (segment ids here).
class RTree {
 public:
  struct Entry {
    Mbr box;
    uint32_t value;
  };

  struct Node;  // public for the implementation's free helpers

  /// `max_entries` is the node fan-out M; min fill is M/2.
  explicit RTree(size_t max_entries = 16);
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Sort-Tile-Recursive bulk load; replaces current contents.
  void BulkLoad(std::vector<Entry> entries);

  /// Incremental insert (quadratic split on overflow).
  void Insert(const Mbr& box, uint32_t value);

  /// All payloads whose boxes intersect `query`.
  std::vector<uint32_t> Search(const Mbr& query) const;

  /// Payloads of the `k` entries nearest to `p` (by box distance),
  /// best-first search. Fewer when the tree is smaller than k.
  std::vector<uint32_t> Nearest(const XyPoint& p, size_t k) const;

  /// Visits every entry intersecting `query`; return false to stop early.
  void SearchVisit(const Mbr& query,
                   const std::function<bool(const Entry&)>& visit) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Height of the tree (0 for empty, 1 for a root-leaf).
  int Height() const;

  /// Internal consistency check (child boxes covered by parents, fill
  /// bounds respected); used by tests.
  bool CheckInvariants() const;

 private:
  std::unique_ptr<Node> root_;
  size_t max_entries_;
  size_t size_ = 0;

  void InsertRecursive(Node* node, const Entry& entry, int target_level,
                       std::unique_ptr<Node>* split_out);
  static void SearchNode(const Node* node, const Mbr& query,
                         const std::function<bool(const Entry&)>& visit,
                         bool* keep_going);
};

}  // namespace strr

#endif  // STRR_INDEX_RTREE_H_
