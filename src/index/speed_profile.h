// SpeedProfile: per-(segment, time-slot) speed statistics mined from the
// historical trajectories.
//
// The Con-Index construction (paper §3.2.2) expands the network with the
// minimum observed speed (zero speeds removed) for Near lists and the
// maximum observed speed for Far lists. This class aggregates those
// statistics per segment per profile slot (default: hourly), with a
// per-(road-level, slot) fallback for segments with no observations in a
// slot, so the expansion always has a defined speed.
#ifndef STRR_INDEX_SPEED_PROFILE_H_
#define STRR_INDEX_SPEED_PROFILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "roadnet/road_network.h"
#include "traj/trajectory_store.h"
#include "util/result.h"
#include "util/time_util.h"

namespace strr {

/// Profile construction knobs.
struct SpeedProfileOptions {
  int64_t slot_seconds = 3600;     ///< profile slot width (default hourly)
  double min_speed_floor = 0.5;    ///< speeds below this are "zero", dropped
};

/// Aggregated min/mean/max speeds.
class SpeedProfile {
 public:
  /// Scans every matched sample once and fills the tables.
  static StatusOr<SpeedProfile> Build(const RoadNetwork& network,
                                      const TrajectoryStore& store,
                                      const SpeedProfileOptions& options = {});

  /// Minimum observed speed for the slot covering `time_of_day_sec`
  /// (fallback chain: segment stats -> level/slot aggregate -> 45% of
  /// free-flow).
  double MinSpeed(SegmentId seg, int64_t time_of_day_sec) const;

  /// Maximum observed speed (fallbacks analogous; last resort free-flow).
  double MaxSpeed(SegmentId seg, int64_t time_of_day_sec) const;

  /// Mean observed speed (fallbacks analogous; last resort 70% free-flow).
  double MeanSpeed(SegmentId seg, int64_t time_of_day_sec) const;

  /// True when the segment itself (not a fallback) had samples in the slot.
  bool HasObservations(SegmentId seg, int64_t time_of_day_sec) const;

  // --- Live updates ----------------------------------------------------------

  /// Called after ApplyObservation mutates a slot, with the time-of-day
  /// range [begin_tod, end_tod) the change covers. The engine wires this
  /// to Con-Index table invalidation and result-cache Δt-slot eviction so
  /// a congestion refresh evicts exactly the affected windows.
  using UpdateListener = std::function<void(int64_t begin_tod,
                                            int64_t end_tod)>;

  /// Registers a listener; fired synchronously inside ApplyObservation in
  /// registration order. Register during engine construction — not
  /// thread-safe against concurrent ApplyObservation calls.
  void AddUpdateListener(UpdateListener listener);

  /// Folds one fresh speed observation (e.g. from a live congestion feed)
  /// into the (segment, slot) statistics and notifies update listeners.
  /// Observations below the min_speed_floor are dropped, mirroring Build.
  ///
  /// Direct-mutation path: NOT safe against concurrent readers (the cell
  /// floats are read lock-free on the query path) — callers must serialize
  /// against queries themselves. For refreshes under live query load use
  /// the live ingestion subsystem (live/), which applies updates to forked
  /// snapshot copies instead of mutating a profile readers hold.
  void ApplyObservation(SegmentId seg, int64_t time_of_day_sec,
                        double speed_mps);

  /// ApplyUpdate outcome flags: which *extreme* statistics changed (the
  /// only statistics the Con-Index and bounding-region expansion read,
  /// hence the triggers for invalidating derived tables — mean/count
  /// updates alone never invalidate anything). Cell changes affect only
  /// expansions that reach this segment; fallback changes affect every
  /// observation-less segment of the road level, i.e. the whole slot.
  enum UpdateEffect : uint8_t {
    kNoExtremeChange = 0,
    kCellExtremesChanged = 1,
    kFallbackExtremesChanged = 2,
  };

  /// Folds a pre-aggregated batch of observations for one (segment, slot)
  /// — the coalesced form the live ingestor produces; equivalent to
  /// `count` ApplyObservation calls but without listener fan-out (the
  /// snapshot publisher carries its own invalidation). Inputs must be
  /// pre-filtered (finite, >= min_speed_floor) and `count` > 0. Returns
  /// UpdateEffect flags (OR-ed).
  uint8_t ApplyUpdate(SegmentId seg, int64_t time_of_day_sec, float min_speed,
                      float max_speed, float sum_speed, uint32_t count);

  /// Copy with listeners dropped — the mutable working copy a live
  /// snapshot publisher applies a batch to before publishing.
  SpeedProfile Fork() const;

  double min_speed_floor() const { return options_.min_speed_floor; }

  int64_t slot_seconds() const { return options_.slot_seconds; }
  int32_t num_slots() const { return num_slots_; }

  /// Fraction of (segment, slot) cells with direct observations.
  double CoverageFraction() const;

 private:
  struct Cell {
    float min_speed = 0.0f;
    float max_speed = 0.0f;
    float sum_speed = 0.0f;
    uint32_t count = 0;
  };

  SpeedProfile(const RoadNetwork& network, SpeedProfileOptions options);

  size_t CellIndex(SegmentId seg, SlotId slot) const {
    return static_cast<size_t>(seg) * num_slots_ + slot;
  }
  SlotId SlotFor(int64_t time_of_day_sec) const {
    return SlotOfTimeOfDay(time_of_day_sec % kSecondsPerDay,
                           options_.slot_seconds);
  }

  const RoadNetwork* network_;
  SpeedProfileOptions options_;
  int32_t num_slots_ = 0;
  std::vector<Cell> cells_;                 // segment-major
  std::vector<Cell> level_fallback_;        // (level, slot)
  std::vector<UpdateListener> listeners_;
};

}  // namespace strr

#endif  // STRR_INDEX_SPEED_PROFILE_H_
