// SpeedProfile: per-(segment, time-slot) speed statistics mined from the
// historical trajectories.
//
// The Con-Index construction (paper §3.2.2) expands the network with the
// minimum observed speed (zero speeds removed) for Near lists and the
// maximum observed speed for Far lists. This class aggregates those
// statistics per segment per profile slot (default: hourly), with a
// per-(road-level, slot) fallback for segments with no observations in a
// slot, so the expansion always has a defined speed.
#ifndef STRR_INDEX_SPEED_PROFILE_H_
#define STRR_INDEX_SPEED_PROFILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "roadnet/road_network.h"
#include "traj/trajectory_store.h"
#include "util/result.h"
#include "util/time_util.h"

namespace strr {

/// Profile construction knobs.
struct SpeedProfileOptions {
  int64_t slot_seconds = 3600;     ///< profile slot width (default hourly)
  double min_speed_floor = 0.5;    ///< speeds below this are "zero", dropped
};

/// Aggregated min/mean/max speeds.
class SpeedProfile {
 public:
  /// Scans every matched sample once and fills the tables.
  static StatusOr<SpeedProfile> Build(const RoadNetwork& network,
                                      const TrajectoryStore& store,
                                      const SpeedProfileOptions& options = {});

  /// Minimum observed speed for the slot covering `time_of_day_sec`
  /// (fallback chain: segment stats -> level/slot aggregate -> 45% of
  /// free-flow).
  double MinSpeed(SegmentId seg, int64_t time_of_day_sec) const;

  /// Maximum observed speed (fallbacks analogous; last resort free-flow).
  double MaxSpeed(SegmentId seg, int64_t time_of_day_sec) const;

  /// Mean observed speed (fallbacks analogous; last resort 70% free-flow).
  double MeanSpeed(SegmentId seg, int64_t time_of_day_sec) const;

  /// True when the segment itself (not a fallback) had samples in the slot.
  bool HasObservations(SegmentId seg, int64_t time_of_day_sec) const;

  // --- Live updates ----------------------------------------------------------

  /// Called after ApplyObservation mutates a slot, with the time-of-day
  /// range [begin_tod, end_tod) the change covers. The engine wires this
  /// to Con-Index table invalidation and result-cache Δt-slot eviction so
  /// a congestion refresh evicts exactly the affected windows.
  using UpdateListener = std::function<void(int64_t begin_tod,
                                            int64_t end_tod)>;

  /// Registers a listener; fired synchronously inside ApplyObservation in
  /// registration order. Register during engine construction — not
  /// thread-safe against concurrent ApplyObservation calls.
  void AddUpdateListener(UpdateListener listener);

  /// Folds one fresh speed observation (e.g. from a live congestion feed)
  /// into the (segment, slot) statistics and notifies update listeners.
  /// Observations below the min_speed_floor are dropped, mirroring Build.
  ///
  /// NOT safe against concurrent readers: quiesce queries first (the cell
  /// floats are read lock-free on the query path). ReachabilityEngine::
  /// ApplySpeedObservation documents the same contract.
  void ApplyObservation(SegmentId seg, int64_t time_of_day_sec,
                        double speed_mps);

  int64_t slot_seconds() const { return options_.slot_seconds; }
  int32_t num_slots() const { return num_slots_; }

  /// Fraction of (segment, slot) cells with direct observations.
  double CoverageFraction() const;

 private:
  struct Cell {
    float min_speed = 0.0f;
    float max_speed = 0.0f;
    float sum_speed = 0.0f;
    uint32_t count = 0;
  };

  SpeedProfile(const RoadNetwork& network, SpeedProfileOptions options);

  size_t CellIndex(SegmentId seg, SlotId slot) const {
    return static_cast<size_t>(seg) * num_slots_ + slot;
  }
  SlotId SlotFor(int64_t time_of_day_sec) const {
    return SlotOfTimeOfDay(time_of_day_sec % kSecondsPerDay,
                           options_.slot_seconds);
  }

  const RoadNetwork* network_;
  SpeedProfileOptions options_;
  int32_t num_slots_ = 0;
  std::vector<Cell> cells_;                 // segment-major
  std::vector<Cell> level_fallback_;        // (level, slot)
  std::vector<UpdateListener> listeners_;
};

}  // namespace strr

#endif  // STRR_INDEX_SPEED_PROFILE_H_
