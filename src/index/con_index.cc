#include "index/con_index.h"

#include <algorithm>

#include "roadnet/expansion.h"
#include "util/thread_pool.h"

namespace strr {

ConIndex::ConIndex(const RoadNetwork& network, const SpeedProfile& profile,
                   const ConIndexOptions& options)
    : network_(&network), profile_(&profile), options_(options) {
  num_slots_ = profile.num_slots();
  slots_.resize(num_slots_);
  for (auto& slot : slots_) {
    slot = std::make_unique<SlotTables>();
    slot->near.resize(network.NumSegments());
    slot->far.resize(network.NumSegments());
    slot->ready.assign(network.NumSegments(), 0);
  }
}

StatusOr<std::unique_ptr<ConIndex>> ConIndex::Create(
    const RoadNetwork& network, const SpeedProfile& profile,
    const ConIndexOptions& options) {
  if (!network.finalized()) {
    return Status::FailedPrecondition("ConIndex: network not finalized");
  }
  if (options.delta_t_seconds <= 0) {
    return Status::InvalidArgument("ConIndex: delta_t must be positive");
  }
  return std::unique_ptr<ConIndex>(new ConIndex(network, profile, options));
}

void ConIndex::ComputeTables(SegmentId seg, SlotId slot,
                             SlotTables& bucket) const {
  const int64_t slot_tod = static_cast<int64_t>(slot) *
                           profile_->slot_seconds();
  const double budget = static_cast<double>(options_.delta_t_seconds);

  SpeedFn max_speed = [this, slot_tod](SegmentId id) {
    return profile_->MaxSpeed(id, slot_tod);
  };
  SpeedFn min_speed = [this, slot_tod](SegmentId id) {
    return profile_->MinSpeed(id, slot_tod);
  };

  std::vector<ExpansionHit> far_hits =
      ExpandFrom(*network_, seg, budget, max_speed);
  std::vector<ExpansionHit> near_hits =
      ExpandFrom(*network_, seg, budget, min_speed);

  std::vector<SegmentId> far_list, near_list;
  far_list.reserve(far_hits.size());
  for (const ExpansionHit& h : far_hits) far_list.push_back(h.segment);
  near_list.reserve(near_hits.size());
  for (const ExpansionHit& h : near_hits) near_list.push_back(h.segment);
  std::sort(far_list.begin(), far_list.end());
  std::sort(near_list.begin(), near_list.end());

  std::lock_guard<std::mutex> lock(bucket.mu);
  if (bucket.ready[seg]) return;  // lost a race; keep the first result
  bucket.far[seg] = std::move(far_list);
  bucket.near[seg] = std::move(near_list);
  bucket.ready[seg] = 1;
  ++bucket.ready_count;
}

ConIndex::SlotTables& ConIndex::EnsureTables(SegmentId seg,
                                             SlotId slot) const {
  SlotTables& bucket = *slots_[slot];
  {
    std::lock_guard<std::mutex> lock(bucket.mu);
    if (bucket.ready[seg]) return bucket;
  }
  ComputeTables(seg, slot, bucket);
  return bucket;
}

const std::vector<SegmentId>& ConIndex::Far(SegmentId seg,
                                            int64_t time_of_day_sec) const {
  SlotId slot = SlotOfTimeOfDay(
      ((time_of_day_sec % kSecondsPerDay) + kSecondsPerDay) % kSecondsPerDay,
      profile_->slot_seconds());
  return EnsureTables(seg, slot).far[seg];
}

const std::vector<SegmentId>& ConIndex::Near(SegmentId seg,
                                             int64_t time_of_day_sec) const {
  SlotId slot = SlotOfTimeOfDay(
      ((time_of_day_sec % kSecondsPerDay) + kSecondsPerDay) % kSecondsPerDay,
      profile_->slot_seconds());
  return EnsureTables(seg, slot).near[seg];
}

Status ConIndex::BuildAll() {
  ThreadPool pool(options_.num_build_threads > 0 ? options_.num_build_threads
                                                 : 1);
  for (SlotId slot = 0; slot < num_slots_; ++slot) {
    pool.Submit([this, slot] {
      for (SegmentId seg = 0; seg < network_->NumSegments(); ++seg) {
        EnsureTables(seg, slot);
      }
    });
  }
  pool.Wait();
  return Status::OK();
}

size_t ConIndex::InvalidateTimeRange(int64_t begin_tod, int64_t end_tod) {
  if (end_tod <= begin_tod) return 0;
  const int64_t width = profile_->slot_seconds();
  SlotId first = static_cast<SlotId>(std::max<int64_t>(begin_tod, 0) / width);
  SlotId last = static_cast<SlotId>((end_tod - 1) / width);
  first = std::min(first, num_slots_ - 1);
  last = std::min(last, num_slots_ - 1);
  size_t dropped = 0;
  for (SlotId slot = first; slot <= last; ++slot) {
    SlotTables& bucket = *slots_[slot];
    std::lock_guard<std::mutex> lock(bucket.mu);
    // Fast path for a refresh stream hitting an already-cold slot: don't
    // rescan every segment when nothing is materialized.
    if (bucket.ready_count == 0) continue;
    for (SegmentId seg = 0; seg < network_->NumSegments(); ++seg) {
      if (!bucket.ready[seg]) continue;
      bucket.near[seg].clear();
      bucket.near[seg].shrink_to_fit();
      bucket.far[seg].clear();
      bucket.far[seg].shrink_to_fit();
      bucket.ready[seg] = 0;
      ++dropped;
    }
    bucket.ready_count = 0;
  }
  return dropped;
}

size_t ConIndex::MaterializedTables() const {
  size_t count = 0;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    for (uint8_t r : slot->ready) count += r;
  }
  return count;
}

size_t ConIndex::TotalListEntries() const {
  size_t count = 0;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    for (size_t i = 0; i < slot->ready.size(); ++i) {
      if (slot->ready[i]) {
        count += slot->near[i].size() + slot->far[i].size();
      }
    }
  }
  return count;
}

}  // namespace strr
