#include "index/con_index.h"

#include <algorithm>

#include "roadnet/expansion.h"
#include "util/thread_pool.h"

namespace strr {

std::shared_ptr<ConIndex::SlotTables> ConIndex::MakeBucket() const {
  auto bucket = std::make_shared<SlotTables>();
  bucket->near.resize(network_->NumSegments());
  bucket->far.resize(network_->NumSegments());
  bucket->ready.assign(network_->NumSegments(), 0);
  return bucket;
}

ConIndex::ConIndex(const RoadNetwork& network, const SpeedProfile& profile,
                   const ConIndexOptions& options, bool allocate_buckets)
    : network_(&network), profile_(&profile), options_(options) {
  num_slots_ = profile.num_slots();
  slots_.resize(num_slots_);
  overlays_.resize(num_slots_);
  if (!allocate_buckets) return;
  for (auto& slot : slots_) slot = MakeBucket();
}

StatusOr<std::unique_ptr<ConIndex>> ConIndex::Create(
    const RoadNetwork& network, const SpeedProfile& profile,
    const ConIndexOptions& options) {
  if (!network.finalized()) {
    return Status::FailedPrecondition("ConIndex: network not finalized");
  }
  if (options.delta_t_seconds <= 0) {
    return Status::InvalidArgument("ConIndex: delta_t must be positive");
  }
  return std::unique_ptr<ConIndex>(new ConIndex(network, profile, options));
}

void ConIndex::ComputeTables(SegmentId seg, SlotId slot,
                             SlotTables& bucket) const {
  const int64_t slot_tod = static_cast<int64_t>(slot) *
                           profile_->slot_seconds();
  const double budget = static_cast<double>(options_.delta_t_seconds);

  SpeedFn max_speed = [this, slot_tod](SegmentId id) {
    return profile_->MaxSpeed(id, slot_tod);
  };
  SpeedFn min_speed = [this, slot_tod](SegmentId id) {
    return profile_->MinSpeed(id, slot_tod);
  };

  std::vector<ExpansionHit> far_hits =
      ExpandFrom(*network_, seg, budget, max_speed);
  std::vector<ExpansionHit> near_hits =
      ExpandFrom(*network_, seg, budget, min_speed);

  std::vector<SegmentId> far_list, near_list;
  far_list.reserve(far_hits.size());
  for (const ExpansionHit& h : far_hits) far_list.push_back(h.segment);
  near_list.reserve(near_hits.size());
  for (const ExpansionHit& h : near_hits) near_list.push_back(h.segment);
  std::sort(far_list.begin(), far_list.end());
  std::sort(near_list.begin(), near_list.end());

  std::lock_guard<std::mutex> lock(bucket.mu);
  if (bucket.ready[seg]) return;  // lost a race; keep the first result
  bucket.far[seg] = std::move(far_list);
  bucket.near[seg] = std::move(near_list);
  bucket.ready[seg] = 1;
  ++bucket.ready_count;
}

ConIndex::SlotTables& ConIndex::EnsureTables(SegmentId seg,
                                             SlotId slot) const {
  SlotTables& bucket = *slots_[slot];
  {
    std::lock_guard<std::mutex> lock(bucket.mu);
    if (bucket.ready[seg]) return bucket;
  }
  ComputeTables(seg, slot, bucket);
  return bucket;
}

const std::vector<SegmentId>& ConIndex::Far(SegmentId seg,
                                            int64_t time_of_day_sec) const {
  SlotId slot = SlotOfTimeOfDay(NormalizeTimeOfDay(time_of_day_sec),
                                profile_->slot_seconds());
  const SlotOverlay& overlay = overlays_[slot];
  if (overlay.base != nullptr && overlay.use_base[seg]) {
    return overlay.base->far[seg];  // write-once + ready at clone: no lock
  }
  return EnsureTables(seg, slot).far[seg];
}

const std::vector<SegmentId>& ConIndex::Near(SegmentId seg,
                                             int64_t time_of_day_sec) const {
  SlotId slot = SlotOfTimeOfDay(NormalizeTimeOfDay(time_of_day_sec),
                                profile_->slot_seconds());
  const SlotOverlay& overlay = overlays_[slot];
  if (overlay.base != nullptr && overlay.use_base[seg]) {
    return overlay.base->near[seg];
  }
  return EnsureTables(seg, slot).near[seg];
}

std::unique_ptr<ConIndex> ConIndex::CloneWithInvalidation(
    const SpeedProfile& profile, const std::vector<SlotId>& invalidated_slots,
    const std::vector<PartialInvalidation>& partial) const {
  // No bucket allocation in the constructor: unaffected slots alias this
  // index's buckets (materialized tables keep serving, future lazy fills
  // are shared both ways) and only invalidated slots pay a fresh one.
  auto clone = std::unique_ptr<ConIndex>(
      new ConIndex(*network_, profile, options_, /*allocate_buckets=*/false));
  for (SlotId slot = 0; slot < num_slots_; ++slot) {
    clone->slots_[slot] = slots_[slot];
    clone->overlays_[slot] = overlays_[slot];
  }
  for (SlotId slot : invalidated_slots) {
    if (slot < 0 || slot >= num_slots_) continue;
    clone->slots_[slot] = MakeBucket();
    clone->overlays_[slot] = SlotOverlay{};
  }

  for (const PartialInvalidation& p : partial) {
    if (p.slot < 0 || p.slot >= num_slots_ || p.changed.empty()) continue;
    // Probe set: the changed segments and their predecessors. A table
    // whose lists contain none of these (and is not a changed segment's
    // own) is provably bit-identical under the new profile — see the
    // header's completion-time argument.
    std::vector<SegmentId> probe = p.changed;
    for (SegmentId changed : p.changed) {
      if (changed >= network_->NumSegments()) continue;
      const auto& preds = network_->IncomingOf(changed);
      probe.insert(probe.end(), preds.begin(), preds.end());
    }
    std::sort(probe.begin(), probe.end());
    probe.erase(std::unique(probe.begin(), probe.end()), probe.end());

    // Start from what the previous generation could serve: its overlay
    // bitmap, or a ready snapshot of the plain bucket. `base` stays the
    // lineage's last fully-built bucket, so use_base only ever shrinks —
    // repeated partial hits never chain overlays.
    const SlotOverlay& prev = overlays_[p.slot];
    SlotOverlay next;
    if (prev.base != nullptr) {
      next.base = prev.base;
      next.use_base = prev.use_base;
    } else {
      next.base = slots_[p.slot];
      std::lock_guard<std::mutex> lock(next.base->mu);
      next.use_base = next.base->ready;
    }
    auto in_lists = [&](SegmentId seg, SegmentId q) {
      return std::binary_search(next.base->near[seg].begin(),
                                next.base->near[seg].end(), q) ||
             std::binary_search(next.base->far[seg].begin(),
                                next.base->far[seg].end(), q);
    };
    for (SegmentId seg = 0; seg < network_->NumSegments(); ++seg) {
      if (!next.use_base[seg]) continue;
      bool affected =
          std::binary_search(p.changed.begin(), p.changed.end(), seg);
      if (!affected) {
        for (SegmentId q : probe) {
          if (in_lists(seg, q)) {
            affected = true;
            break;
          }
        }
      }
      if (affected) next.use_base[seg] = 0;
    }
    clone->slots_[p.slot] = MakeBucket();
    clone->overlays_[p.slot] = std::move(next);
  }
  return clone;
}

Status ConIndex::BuildAll() {
  ThreadPool pool(options_.num_build_threads > 0 ? options_.num_build_threads
                                                 : 1);
  for (SlotId slot = 0; slot < num_slots_; ++slot) {
    pool.Submit([this, slot] {
      const SlotOverlay& overlay = overlays_[slot];
      for (SegmentId seg = 0; seg < network_->NumSegments(); ++seg) {
        // Tables an overlay serves from its base are already built.
        if (overlay.base != nullptr && overlay.use_base[seg]) continue;
        EnsureTables(seg, slot);
      }
    });
  }
  pool.Wait();
  return Status::OK();
}

size_t ConIndex::InvalidateTimeRange(int64_t begin_tod, int64_t end_tod) {
  if (end_tod <= begin_tod) return 0;
  const int64_t width = profile_->slot_seconds();
  SlotId first = static_cast<SlotId>(std::max<int64_t>(begin_tod, 0) / width);
  SlotId last = static_cast<SlotId>((end_tod - 1) / width);
  first = std::min(first, num_slots_ - 1);
  last = std::min(last, num_slots_ - 1);
  size_t dropped = 0;
  for (SlotId slot = first; slot <= last; ++slot) {
    // Defensive: live-mode clones carry overlays; dropping one counts its
    // base-served tables and falls through to clearing the local bucket.
    // (The legacy direct-mutation path never creates overlays.)
    SlotOverlay& overlay = overlays_[slot];
    if (overlay.base != nullptr) {
      for (uint8_t u : overlay.use_base) dropped += u;
      overlay = SlotOverlay{};
    }
    SlotTables& bucket = *slots_[slot];
    std::lock_guard<std::mutex> lock(bucket.mu);
    // Fast path for a refresh stream hitting an already-cold slot: don't
    // rescan every segment when nothing is materialized.
    if (bucket.ready_count == 0) continue;
    for (SegmentId seg = 0; seg < network_->NumSegments(); ++seg) {
      if (!bucket.ready[seg]) continue;
      bucket.near[seg].clear();
      bucket.near[seg].shrink_to_fit();
      bucket.far[seg].clear();
      bucket.far[seg].shrink_to_fit();
      bucket.ready[seg] = 0;
      ++dropped;
    }
    bucket.ready_count = 0;
  }
  return dropped;
}

size_t ConIndex::MaterializedTables() const {
  size_t count = 0;
  for (SlotId s = 0; s < num_slots_; ++s) {
    {
      std::lock_guard<std::mutex> lock(slots_[s]->mu);
      for (uint8_t r : slots_[s]->ready) count += r;
    }
    const SlotOverlay& overlay = overlays_[s];
    if (overlay.base != nullptr) {
      for (uint8_t u : overlay.use_base) count += u;
    }
  }
  return count;
}

size_t ConIndex::TotalListEntries() const {
  size_t count = 0;
  for (SlotId s = 0; s < num_slots_; ++s) {
    {
      const auto& slot = slots_[s];
      std::lock_guard<std::mutex> lock(slot->mu);
      for (size_t i = 0; i < slot->ready.size(); ++i) {
        if (slot->ready[i]) {
          count += slot->near[i].size() + slot->far[i].size();
        }
      }
    }
    const SlotOverlay& overlay = overlays_[s];
    if (overlay.base != nullptr) {
      for (size_t i = 0; i < overlay.use_base.size(); ++i) {
        if (overlay.use_base[i]) {
          count += overlay.base->near[i].size() +
                   overlay.base->far[i].size();
        }
      }
    }
  }
  return count;
}

}  // namespace strr
