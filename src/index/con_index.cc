#include "index/con_index.h"

#include <algorithm>

#include "search/expansion_context.h"
#include "search/frontier_engine.h"
#include "util/thread_pool.h"

namespace strr {

namespace {

/// Interior runtime for table builds: the flat-CSR walk (with prefetch)
/// when opted in, the legacy per-segment walk otherwise. Builds stay
/// sequential per table either way.
FrontierRuntime BuildRuntime(const ConIndexOptions& options) {
  FrontierRuntime runtime;
  runtime.flat_adjacency = options.flat_interior;
  runtime.prefetch = options.flat_interior;
  return runtime;
}

}  // namespace

std::shared_ptr<ConIndex::SlotTables> ConIndex::MakeBucket() const {
  auto bucket = std::make_shared<SlotTables>();
  bucket->near.resize(network_->NumSegments());
  bucket->far.resize(network_->NumSegments());
  bucket->ready.assign(network_->NumSegments(), 0);
  return bucket;
}

ConIndex::ConIndex(const RoadNetwork& network, const SpeedProfile& profile,
                   const ConIndexOptions& options, bool allocate_buckets)
    : network_(&network), profile_(&profile), options_(options) {
  num_slots_ = profile.num_slots();
  slots_.resize(num_slots_);
  overlays_.resize(num_slots_);
  if (!allocate_buckets) return;
  for (auto& slot : slots_) slot = MakeBucket();
}

StatusOr<std::unique_ptr<ConIndex>> ConIndex::Create(
    const RoadNetwork& network, const SpeedProfile& profile,
    const ConIndexOptions& options) {
  if (!network.finalized()) {
    return Status::FailedPrecondition("ConIndex: network not finalized");
  }
  if (options.delta_t_seconds <= 0) {
    return Status::InvalidArgument("ConIndex: delta_t must be positive");
  }
  return std::unique_ptr<ConIndex>(new ConIndex(network, profile, options));
}

void ConIndex::ComputeTables(FrontierEngine& engine, ExpansionContext& ctx,
                             SegmentId seg, SlotId slot,
                             SlotTables& bucket) const {
  const int64_t slot_tod = static_cast<int64_t>(slot) *
                           profile_->slot_seconds();

  SpeedFn max_speed = [this, slot_tod](SegmentId id) {
    return profile_->MaxSpeed(id, slot_tod);
  };
  SpeedFn min_speed = [this, slot_tod](SegmentId id) {
    return profile_->MinSpeed(id, slot_tod);
  };

  FrontierEngine::TimedRequest request;
  request.sources = std::span<const SegmentId>(&seg, 1);
  request.budget = static_cast<double>(options_.delta_t_seconds);

  engine.RunTimed(ctx, request, max_speed);
  std::vector<SegmentId> far_list = engine.ReachedSorted(ctx);
  engine.RunTimed(ctx, request, min_speed);
  std::vector<SegmentId> near_list = engine.ReachedSorted(ctx);

  std::lock_guard<std::mutex> lock(bucket.mu);
  if (bucket.ready[seg]) return;  // lost a race; keep the first result
  bucket.far[seg] = std::move(far_list);
  bucket.near[seg] = std::move(near_list);
  bucket.ready[seg] = 1;
  ++bucket.ready_count;
}

ConIndex::SlotTables& ConIndex::EnsureTablesWith(FrontierEngine& engine,
                                                 ExpansionContext& ctx,
                                                 SegmentId seg,
                                                 SlotId slot) const {
  SlotTables& bucket = *slots_[slot];
  {
    std::lock_guard<std::mutex> lock(bucket.mu);
    if (bucket.ready[seg]) return bucket;
  }
  ComputeTables(engine, ctx, seg, slot, bucket);
  return bucket;
}

ConIndex::SlotTables& ConIndex::EnsureTables(SegmentId seg,
                                             SlotId slot) const {
  SlotTables& bucket = *slots_[slot];
  {
    std::lock_guard<std::mutex> lock(bucket.mu);
    if (bucket.ready[seg]) return bucket;
  }
  FrontierEngine engine(*network_, BuildRuntime(options_));
  auto ctx = ExpansionContextPool::Global().Acquire();
  ComputeTables(engine, *ctx, seg, slot, bucket);
  return bucket;
}

const std::vector<SegmentId>& ConIndex::Far(SegmentId seg,
                                            int64_t time_of_day_sec) const {
  SlotId slot = SlotOfTimeOfDay(NormalizeTimeOfDay(time_of_day_sec),
                                profile_->slot_seconds());
  const SlotOverlay& overlay = overlays_[slot];
  if (overlay.base != nullptr && overlay.use_base[seg]) {
    return overlay.base->far[seg];  // write-once + ready at clone: no lock
  }
  return EnsureTables(seg, slot).far[seg];
}

const std::vector<SegmentId>& ConIndex::Near(SegmentId seg,
                                             int64_t time_of_day_sec) const {
  SlotId slot = SlotOfTimeOfDay(NormalizeTimeOfDay(time_of_day_sec),
                                profile_->slot_seconds());
  const SlotOverlay& overlay = overlays_[slot];
  if (overlay.base != nullptr && overlay.use_base[seg]) {
    return overlay.base->near[seg];
  }
  return EnsureTables(seg, slot).near[seg];
}

std::unique_ptr<ConIndex> ConIndex::CloneWithInvalidation(
    const SpeedProfile& profile, const std::vector<SlotId>& invalidated_slots,
    const std::vector<PartialInvalidation>& partial,
    std::vector<PartialInvalidation>* rebuild_out) const {
  if (rebuild_out != nullptr) rebuild_out->clear();
  // No bucket allocation in the constructor: unaffected slots alias this
  // index's buckets (materialized tables keep serving, future lazy fills
  // are shared both ways) and only invalidated slots pay a fresh one.
  auto clone = std::unique_ptr<ConIndex>(
      new ConIndex(*network_, profile, options_, /*allocate_buckets=*/false));
  for (SlotId slot = 0; slot < num_slots_; ++slot) {
    clone->slots_[slot] = slots_[slot];
    clone->overlays_[slot] = overlays_[slot];
  }
  for (SlotId slot : invalidated_slots) {
    if (slot < 0 || slot >= num_slots_) continue;
    clone->slots_[slot] = MakeBucket();
    clone->overlays_[slot] = SlotOverlay{};
  }

  for (const PartialInvalidation& p : partial) {
    if (p.slot < 0 || p.slot >= num_slots_ || p.changed.empty()) continue;
    // Probe set: the changed segments and their predecessors. A table
    // whose lists contain none of these (and is not a changed segment's
    // own) is provably bit-identical under the new profile — see the
    // header's completion-time argument.
    std::vector<SegmentId> probe = p.changed;
    for (SegmentId changed : p.changed) {
      if (changed >= network_->NumSegments()) continue;
      const auto& preds = network_->IncomingOf(changed);
      probe.insert(probe.end(), preds.begin(), preds.end());
    }
    std::sort(probe.begin(), probe.end());
    probe.erase(std::unique(probe.begin(), probe.end()), probe.end());

    // Start from what the previous generation could serve: its overlay
    // bitmap, or a ready snapshot of the plain bucket. `base` stays the
    // lineage's last fully-built bucket, so use_base only ever shrinks —
    // repeated partial hits never chain overlays.
    const SlotOverlay& prev = overlays_[p.slot];
    SlotOverlay next;
    if (prev.base != nullptr) {
      next.base = prev.base;
      next.use_base = prev.use_base;
    } else {
      next.base = slots_[p.slot];
      std::lock_guard<std::mutex> lock(next.base->mu);
      next.use_base = next.base->ready;
    }
    auto in_lists = [&](SegmentId seg, SegmentId q) {
      return std::binary_search(next.base->near[seg].begin(),
                                next.base->near[seg].end(), q) ||
             std::binary_search(next.base->far[seg].begin(),
                                next.base->far[seg].end(), q);
    };
    std::vector<SegmentId> flipped;
    for (SegmentId seg = 0; seg < network_->NumSegments(); ++seg) {
      if (!next.use_base[seg]) continue;
      bool affected =
          std::binary_search(p.changed.begin(), p.changed.end(), seg);
      if (!affected) {
        for (SegmentId q : probe) {
          if (in_lists(seg, q)) {
            affected = true;
            break;
          }
        }
      }
      if (affected) {
        next.use_base[seg] = 0;
        flipped.push_back(seg);
      }
    }
    if (rebuild_out != nullptr) {
      // The prewarm work list: every table that was serving in this
      // generation but must rebuild lazily in the clone. That is the
      // newly flipped base tables PLUS whatever this generation's own
      // per-generation bucket had materialized (earlier flips, lazy
      // fills) — the clone starts that bucket fresh, so those tables are
      // knocked out again even though this publish didn't touch them.
      {
        SlotTables& prev_bucket = *slots_[p.slot];
        std::lock_guard<std::mutex> lock(prev_bucket.mu);
        if (prev_bucket.ready_count > 0) {
          for (SegmentId seg = 0; seg < network_->NumSegments(); ++seg) {
            if (prev_bucket.ready[seg] && !next.use_base[seg]) {
              flipped.push_back(seg);
            }
          }
        }
      }
      std::sort(flipped.begin(), flipped.end());
      flipped.erase(std::unique(flipped.begin(), flipped.end()),
                    flipped.end());
      if (!flipped.empty()) {
        rebuild_out->push_back(
            PartialInvalidation{p.slot, std::move(flipped)});
      }
    }
    clone->slots_[p.slot] = MakeBucket();
    clone->overlays_[p.slot] = std::move(next);
  }
  return clone;
}

size_t ConIndex::PrewarmSlot(SlotId slot,
                             const std::vector<SegmentId>& segments) const {
  if (slot < 0 || slot >= num_slots_) return 0;
  FrontierEngine engine(*network_, BuildRuntime(options_));
  auto ctx = ExpansionContextPool::Global().Acquire();
  SlotTables& bucket = *slots_[slot];
  size_t built = 0;
  for (SegmentId seg : segments) {
    if (seg >= network_->NumSegments()) continue;
    const SlotOverlay& overlay = overlays_[slot];
    if (overlay.base != nullptr && overlay.use_base[seg]) continue;
    {
      std::lock_guard<std::mutex> lock(bucket.mu);
      if (bucket.ready[seg]) continue;
    }
    ComputeTables(engine, *ctx, seg, slot, bucket);
    ++built;
  }
  return built;
}

Status ConIndex::BuildAll() {
  ThreadPool pool(options_.num_build_threads > 0 ? options_.num_build_threads
                                                 : 1);
  for (SlotId slot = 0; slot < num_slots_; ++slot) {
    pool.Submit([this, slot] {
      // One pooled context + engine per task: the whole slot builds with
      // zero per-table allocation beyond the stored lists themselves.
      FrontierEngine engine(*network_, BuildRuntime(options_));
      auto ctx = ExpansionContextPool::Global().Acquire();
      const SlotOverlay& overlay = overlays_[slot];
      for (SegmentId seg = 0; seg < network_->NumSegments(); ++seg) {
        // Tables an overlay serves from its base are already built.
        if (overlay.base != nullptr && overlay.use_base[seg]) continue;
        EnsureTablesWith(engine, *ctx, seg, slot);
      }
    });
  }
  pool.Wait();
  return Status::OK();
}

size_t ConIndex::InvalidateTimeRange(int64_t begin_tod, int64_t end_tod) {
  if (end_tod <= begin_tod) return 0;
  const int64_t width = profile_->slot_seconds();
  SlotId first = static_cast<SlotId>(std::max<int64_t>(begin_tod, 0) / width);
  SlotId last = static_cast<SlotId>((end_tod - 1) / width);
  first = std::min(first, num_slots_ - 1);
  last = std::min(last, num_slots_ - 1);
  size_t dropped = 0;
  for (SlotId slot = first; slot <= last; ++slot) {
    // Defensive: live-mode clones carry overlays; dropping one counts its
    // base-served tables and falls through to clearing the local bucket.
    // (The legacy direct-mutation path never creates overlays.)
    SlotOverlay& overlay = overlays_[slot];
    if (overlay.base != nullptr) {
      for (uint8_t u : overlay.use_base) dropped += u;
      overlay = SlotOverlay{};
    }
    SlotTables& bucket = *slots_[slot];
    std::lock_guard<std::mutex> lock(bucket.mu);
    // Fast path for a refresh stream hitting an already-cold slot: don't
    // rescan every segment when nothing is materialized.
    if (bucket.ready_count == 0) continue;
    for (SegmentId seg = 0; seg < network_->NumSegments(); ++seg) {
      if (!bucket.ready[seg]) continue;
      bucket.near[seg].clear();
      bucket.near[seg].shrink_to_fit();
      bucket.far[seg].clear();
      bucket.far[seg].shrink_to_fit();
      bucket.ready[seg] = 0;
      ++dropped;
    }
    bucket.ready_count = 0;
  }
  return dropped;
}

size_t ConIndex::MaterializedTables() const {
  size_t count = 0;
  for (SlotId s = 0; s < num_slots_; ++s) {
    {
      std::lock_guard<std::mutex> lock(slots_[s]->mu);
      for (uint8_t r : slots_[s]->ready) count += r;
    }
    const SlotOverlay& overlay = overlays_[s];
    if (overlay.base != nullptr) {
      for (uint8_t u : overlay.use_base) count += u;
    }
  }
  return count;
}

size_t ConIndex::TotalListEntries() const {
  size_t count = 0;
  for (SlotId s = 0; s < num_slots_; ++s) {
    {
      const auto& slot = slots_[s];
      std::lock_guard<std::mutex> lock(slot->mu);
      for (size_t i = 0; i < slot->ready.size(); ++i) {
        if (slot->ready[i]) {
          count += slot->near[i].size() + slot->far[i].size();
        }
      }
    }
    const SlotOverlay& overlay = overlays_[s];
    if (overlay.base != nullptr) {
      for (size_t i = 0; i < overlay.use_base.size(); ++i) {
        if (overlay.use_base[i]) {
          count += overlay.base->near[i].size() +
                   overlay.base->far[i].size();
        }
      }
    }
  }
  return count;
}

}  // namespace strr
