#include "index/bplus_tree.h"

#include <algorithm>
#include <cassert>

namespace strr {

struct BPlusTree::Node {
  bool leaf = true;
  std::vector<Key> keys;
  // Leaves: values parallel to keys. Internals: children.size() ==
  // keys.size() + 1; keys[i] is the smallest key in children[i+1]'s subtree.
  std::vector<Value> values;
  std::vector<std::unique_ptr<Node>> children;
  Node* next = nullptr;  // leaf chain
};

BPlusTree::BPlusTree(size_t order)
    : root_(std::make_unique<Node>()), order_(order < 4 ? 4 : order) {}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

namespace {

/// Index of the child a key descends into within an internal node.
size_t ChildIndex(const std::vector<BPlusTree::Key>& keys,
                  BPlusTree::Key key) {
  // keys[i] = min key of children[i+1]; descend right of the last key <= key.
  size_t i = static_cast<size_t>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
  return i;
}

}  // namespace

void BPlusTree::Insert(Key key, Value value) {
  // Iterative descent, remembering the path for splits.
  std::vector<Node*> path;
  Node* node = root_.get();
  while (!node->leaf) {
    path.push_back(node);
    node = node->children[ChildIndex(node->keys, key)].get();
  }

  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  size_t pos = static_cast<size_t>(it - node->keys.begin());
  if (it != node->keys.end() && *it == key) {
    node->values[pos] = value;  // overwrite
    return;
  }
  node->keys.insert(it, key);
  node->values.insert(node->values.begin() + pos, value);
  ++size_;

  // Split bottom-up while overfull.
  Node* current = node;
  std::unique_ptr<Node> carry;  // new right sibling created by a split
  Key carry_key = 0;
  while (current->keys.size() > order_) {
    size_t mid = current->keys.size() / 2;
    auto sibling = std::make_unique<Node>();
    sibling->leaf = current->leaf;
    if (current->leaf) {
      sibling->keys.assign(current->keys.begin() + mid, current->keys.end());
      sibling->values.assign(current->values.begin() + mid,
                             current->values.end());
      current->keys.resize(mid);
      current->values.resize(mid);
      sibling->next = current->next;
      current->next = sibling.get();
      carry_key = sibling->keys.front();
    } else {
      // Internal: middle key moves up, does not stay.
      carry_key = current->keys[mid];
      sibling->keys.assign(current->keys.begin() + mid + 1,
                           current->keys.end());
      for (size_t i = mid + 1; i < current->children.size(); ++i) {
        sibling->children.push_back(std::move(current->children[i]));
      }
      current->keys.resize(mid);
      current->children.resize(mid + 1);
    }
    carry = std::move(sibling);

    if (path.empty()) {
      // Root split: grow a new root.
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      new_root->keys.push_back(carry_key);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(carry));
      root_ = std::move(new_root);
      return;
    }
    Node* parent = path.back();
    path.pop_back();
    size_t child_pos = ChildIndex(parent->keys, carry_key);
    // carry_key splits current (at child_pos... find current's slot).
    // Insert carry right after current's position.
    size_t cur_pos = 0;
    for (; cur_pos < parent->children.size(); ++cur_pos) {
      if (parent->children[cur_pos].get() == current) break;
    }
    assert(cur_pos < parent->children.size());
    (void)child_pos;
    parent->keys.insert(parent->keys.begin() + cur_pos, carry_key);
    parent->children.insert(parent->children.begin() + cur_pos + 1,
                            std::move(carry));
    current = parent;
  }
}

std::optional<BPlusTree::Value> BPlusTree::Find(Key key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[ChildIndex(node->keys, key)].get();
  }
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it != node->keys.end() && *it == key) {
    return node->values[static_cast<size_t>(it - node->keys.begin())];
  }
  return std::nullopt;
}

std::optional<std::pair<BPlusTree::Key, BPlusTree::Value>> BPlusTree::Floor(
    Key key) const {
  if (size_ == 0) return std::nullopt;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[ChildIndex(node->keys, key)].get();
  }
  // Largest key <= query within this leaf; if none, it lives in an earlier
  // leaf — but by descent, this leaf is the one whose range covers `key`,
  // so "none here" means key precedes the whole tree... unless intermediate
  // separators equal key boundaries; walk the leaf chain is forward-only,
  // so handle by re-scanning from the leftmost leaf only in that rare case.
  auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
  if (it != node->keys.begin()) {
    size_t pos = static_cast<size_t>(it - node->keys.begin()) - 1;
    return std::make_pair(node->keys[pos], node->values[pos]);
  }
  // key is smaller than every key in its covering leaf: find the previous
  // leaf by a full scan (O(tree) but effectively never taken for slot
  // lookups, which always hit floor within the leaf).
  const Node* prev = nullptr;
  const Node* walk = root_.get();
  while (!walk->leaf) walk = walk->children.front().get();
  while (walk != nullptr && walk != node) {
    prev = walk;
    walk = walk->next;
  }
  if (prev == nullptr || prev->keys.empty() || prev->keys.back() > key) {
    return std::nullopt;
  }
  return std::make_pair(prev->keys.back(), prev->values.back());
}

void BPlusTree::Range(Key lo, Key hi,
                      const std::function<bool(Key, Value)>& visit) const {
  if (size_ == 0 || lo > hi) return;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[ChildIndex(node->keys, lo)].get();
  }
  while (node != nullptr) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), lo);
    for (size_t i = static_cast<size_t>(it - node->keys.begin());
         i < node->keys.size(); ++i) {
      if (node->keys[i] > hi) return;
      if (!visit(node->keys[i], node->values[i])) return;
    }
    node = node->next;
  }
}

int BPlusTree::Height() const {
  if (size_ == 0) return 0;
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

bool BPlusTree::CheckInvariants() const {
  // Keys sorted within nodes, leaf chain sorted globally, internal fan-out
  // consistent.
  struct Checker {
    size_t order;
    bool ok = true;
    void Visit(const Node* node, bool is_root) {
      if (!ok) return;
      if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
        ok = false;
        return;
      }
      if (node->keys.size() > order) {
        ok = false;
        return;
      }
      if (node->leaf) {
        if (node->keys.size() != node->values.size()) ok = false;
        return;
      }
      if (node->children.size() != node->keys.size() + 1) {
        ok = false;
        return;
      }
      for (const auto& c : node->children) Visit(c.get(), false);
    }
  } checker{order_};
  checker.Visit(root_.get(), true);
  if (!checker.ok) return false;

  // Leaf chain is globally sorted and covers exactly `size_` entries.
  const Node* leaf = root_.get();
  while (!leaf->leaf) leaf = leaf->children.front().get();
  size_t seen = 0;
  bool first = true;
  Key prev{};
  while (leaf != nullptr) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (!first && leaf->keys[i] <= prev) return false;
      prev = leaf->keys[i];
      first = false;
      ++seen;
    }
    leaf = leaf->next;
  }
  return seen == size_;
}

}  // namespace strr
