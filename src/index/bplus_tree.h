// BPlusTree: in-memory B+ tree keyed by int64, valued by uint32.
//
// The temporal component of the paper's ST-Index: keys are time-slot start
// offsets (seconds since midnight) and values are slot ids pointing at the
// per-slot spatial structures. A header-only generic-enough implementation
// with range scans and a floor lookup (largest key <= query), which is the
// operation the temporal index actually performs ("which slot covers T?").
#ifndef STRR_INDEX_BPLUS_TREE_H_
#define STRR_INDEX_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace strr {

/// B+ tree with linked leaves. Insert-only (the temporal index never
/// deletes slots); duplicate keys overwrite.
class BPlusTree {
 public:
  using Key = int64_t;
  using Value = uint32_t;

  struct Node;  // public for the implementation's free helpers

  /// `order` = max keys per node (fan-out - 1 for internals).
  explicit BPlusTree(size_t order = 32);
  ~BPlusTree();

  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts or overwrites `key`.
  void Insert(Key key, Value value);

  /// Exact lookup.
  std::optional<Value> Find(Key key) const;

  /// Largest entry with key <= `key` (the "slot covering time T" query).
  std::optional<std::pair<Key, Value>> Floor(Key key) const;

  /// Visits entries with lo <= key <= hi in ascending order; return false
  /// to stop.
  void Range(Key lo, Key hi,
             const std::function<bool(Key, Value)>& visit) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int Height() const;

  /// Structural checks (ordering, fill, leaf chain); used by tests.
  bool CheckInvariants() const;

 private:
  std::unique_ptr<Node> root_;
  size_t order_;
  size_t size_ = 0;
};

}  // namespace strr

#endif  // STRR_INDEX_BPLUS_TREE_H_
