// Deterministic observation-batch stream shared by the crash harness's
// writer and checker (and the durability tests' oracle): batch `seq` is a
// pure function of (seq, num_segments), so a checker process can regenerate
// exactly the batches a killed writer acked and compare bit-for-bit.
#ifndef STRR_TOOLS_CRASH_STREAM_H_
#define STRR_TOOLS_CRASH_STREAM_H_

#include <cstdint>
#include <vector>

#include "live/observation.h"
#include "util/rng.h"

namespace strr {
namespace crash_stream {

/// Regenerates batch `seq` of the stream over `num_segments` segments.
inline std::vector<SpeedObservation> GenBatch(uint64_t seq,
                                              uint32_t num_segments) {
  Rng rng(1234567 + seq);
  int64_t count = rng.UniformInt(1, 8);
  std::vector<SpeedObservation> batch;
  batch.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    SpeedObservation obs;
    obs.segment = static_cast<SegmentId>(
        rng.UniformInt(0, static_cast<int64_t>(num_segments) - 1));
    obs.time_of_day_sec = rng.UniformInt(0, 86399);
    obs.speed_mps = rng.Uniform(1.0, 30.0);
    batch.push_back(obs);
  }
  return batch;
}

}  // namespace crash_stream
}  // namespace strr

#endif  // STRR_TOOLS_CRASH_STREAM_H_
