// Crash-recovery harness for the live tier's durability layer.
//
//   crash_harness write <dir> [max_batches] [checkpoint_interval] [compaction]
//     Opens (recovering) the observation journal in <dir>, touches
//     <dir>/READY, then appends the deterministic crash_stream batches:
//     each batch is WAL-acked first, then its sequence number is appended
//     to <dir>/acked.txt and fsynced. Meant to be SIGKILLed mid-stream.
//     checkpoint_interval > 0 enables profile checkpoints every that many
//     batches (so the kill lands inside checkpoint-write / WAL-truncation
//     windows); compaction=1 enables background table compaction (so the
//     kill lands inside the table-swap window).
//
//   crash_harness check <dir>
//     After the kill: recovers the journal, asserts every acked batch was
//     recovered, the recovered delta stream is bit-identical to the
//     regenerated crash_stream, any committed checkpoint's aggregates are
//     bit-identical (sums included) to an oracle fold of the covered
//     stream, and an engine recovered from <dir> serves the same regions
//     as an oracle engine fed the full regenerated stream live.
//
// Exit codes: 0 = consistent, 1 = recovery contract violated,
// 2 = harness/setup error.
#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/persist.h"
#include "core/reachability_engine.h"
#include "live/observation_journal.h"
#include "live/recovery_manager.h"
#include "storage/checkpoint/profile_checkpoint.h"
#include "storage/fs_util.h"
#include "tools/crash_stream.h"
#include "util/logging.h"

namespace strr {
namespace {

// Must match EngineOptions::profile_slot_seconds: the checker recovers an
// engine from this journal, and Replay rejects a slot-width mismatch.
constexpr int64_t kSlotSeconds = 3600;

int Fail(int code, const std::string& message) {
  std::fprintf(stderr, "crash_harness: %s\n", message.c_str());
  return code;
}

StatusOr<Dataset> HarnessDataset() {
  // Small but deterministic: the writer and the checker regenerate the
  // identical network, so segment ids in the stream stay valid.
  return BuildDataset(TestDatasetOptions());
}

int RunWriter(const std::string& dir, uint64_t max_batches,
              uint64_t checkpoint_interval, bool compaction) {
  auto dataset = HarnessDataset();
  if (!dataset.ok()) return Fail(2, dataset.status().ToString());
  const uint32_t num_segments =
      static_cast<uint32_t>(dataset->network.NumSegments());

  auto recovered = RecoveryManager::Recover(dir);
  if (!recovered.ok()) return Fail(2, recovered.status().ToString());
  ObservationJournalOptions jopt;
  jopt.dir = dir;
  // Small threshold so a short run still exercises table seals and WAL
  // rotations, not just a single growing log.
  jopt.memtable_flush_bytes = 8 * 1024;
  jopt.sync_each_batch = true;
  jopt.slot_seconds = kSlotSeconds;
  jopt.checkpoint_interval_batches = checkpoint_interval;
  jopt.compaction = compaction;
  // Tiny thresholds so compaction actually fires within a short run.
  jopt.compaction_small_bytes = 64 * 1024;
  jopt.compaction_min_tables = 3;
  auto journal = ObservationJournal::Open(jopt, *recovered);
  if (!journal.ok()) return Fail(2, journal.status().ToString());

  int acked_fd = ::open((dir + "/acked.txt").c_str(),
                        O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (acked_fd < 0) return Fail(2, "cannot open acked.txt");

  // Signal the killer that appends are about to start.
  Status ready = AtomicWriteFile(dir + "/READY", "ready\n");
  if (!ready.ok()) return Fail(2, ready.ToString());

  uint64_t seq = (*journal)->last_seq() + 1;
  for (uint64_t n = 0; n < max_batches; ++n, ++seq) {
    std::vector<SpeedObservation> batch =
        crash_stream::GenBatch(seq, num_segments);
    auto acked = (*journal)->AppendBatch(batch);
    if (!acked.ok()) return Fail(2, acked.status().ToString());
    if (*acked != seq) {
      return Fail(2, "journal acked seq " + std::to_string(*acked) +
                         ", expected " + std::to_string(seq));
    }
    // Record the ack only after the WAL ack: acked.txt is always a subset
    // of what recovery must reproduce.
    std::string line = std::to_string(seq) + "\n";
    if (::write(acked_fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
      return Fail(2, "short write to acked.txt");
    }
    if (::fdatasync(acked_fd) != 0) return Fail(2, "fdatasync acked.txt");
  }
  ::close(acked_fd);
  return 0;
}

std::vector<uint64_t> ReadAcked(const std::string& path) {
  std::vector<uint64_t> acked;
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) return acked;  // no acks recorded before the kill
  size_t pos = 0;
  while (pos < bytes->size()) {
    size_t nl = bytes->find('\n', pos);
    if (nl == std::string::npos) break;  // torn final line: not yet acked
    acked.push_back(std::strtoull(bytes->substr(pos, nl - pos).c_str(),
                                  nullptr, 10));
    pos = nl + 1;
  }
  return acked;
}

int RunChecker(const std::string& dir) {
  auto dataset = HarnessDataset();
  if (!dataset.ok()) return Fail(2, dataset.status().ToString());
  const uint32_t num_segments =
      static_cast<uint32_t>(dataset->network.NumSegments());

  auto recovered = RecoveryManager::Recover(dir);
  if (!recovered.ok()) {
    return Fail(1, "recovery failed: " + recovered.status().ToString());
  }

  // 1. Every acked batch must have been recovered (the WAL ack precedes
  // the acked.txt record, so acked is a floor on the recovered stream).
  std::vector<uint64_t> acked = ReadAcked(dir + "/acked.txt");
  uint64_t max_acked = acked.empty() ? 0 : acked.back();
  if (recovered->last_seq < max_acked) {
    return Fail(1, "acked batch lost: acked through " +
                       std::to_string(max_acked) + ", recovered through " +
                       std::to_string(recovered->last_seq));
  }

  // 2. The recovered delta (everything past the checkpoint) must be the
  // contiguous range checkpoint_seq+1..last_seq (Recover enforces
  // gaps/dupes; re-check the shape here) and bit-identical to the
  // regenerated deterministic stream.
  auto delta = RecoveryManager::CollectBatches(*recovered);
  if (!delta.ok()) {
    return Fail(1, "replay stream failed: " + delta.status().ToString());
  }
  if (delta->size() != recovered->replay_batches()) {
    return Fail(1, "recovered delta not contiguous: " +
                       std::to_string(delta->size()) + " batches, ckpt seq " +
                       std::to_string(recovered->checkpoint_seq) +
                       ", last seq " + std::to_string(recovered->last_seq));
  }
  for (size_t i = 0; i < delta->size(); ++i) {
    const ObservationBatch& got = (*delta)[i];
    if (got.seq != recovered->checkpoint_seq + i + 1) {
      return Fail(1, "recovered seq out of order at index " +
                         std::to_string(i));
    }
    std::vector<SpeedObservation> want =
        crash_stream::GenBatch(got.seq, num_segments);
    if (got.observations.size() != want.size()) {
      return Fail(1, "batch " + std::to_string(got.seq) + " size mismatch");
    }
    for (size_t k = 0; k < want.size(); ++k) {
      if (got.observations[k].segment != want[k].segment ||
          got.observations[k].time_of_day_sec != want[k].time_of_day_sec ||
          got.observations[k].speed_mps != want[k].speed_mps) {
        return Fail(1, "batch " + std::to_string(got.seq) +
                           " not bit-identical at observation " +
                           std::to_string(k));
      }
    }
  }

  // 3. A committed checkpoint's aggregates must be bit-identical (sums
  // included) to an oracle fold of the covered regenerated stream: the
  // journal folds per acked batch in sequence order, and CheckpointState
  // reproduces exactly those fold boundaries.
  if (!recovered->checkpoint_path.empty()) {
    auto ckpt = ReadProfileCheckpoint(recovered->checkpoint_path);
    if (!ckpt.ok()) {
      return Fail(1, "committed checkpoint unreadable: " +
                         ckpt.status().ToString());
    }
    if (ckpt->covered_seq != recovered->checkpoint_seq) {
      return Fail(1, "checkpoint covered_seq mismatch");
    }
    CheckpointState oracle(ckpt->slot_seconds);
    for (uint64_t seq = 1; seq <= ckpt->covered_seq; ++seq) {
      oracle.FoldObservations(crash_stream::GenBatch(seq, num_segments));
    }
    std::vector<CoalescedUpdate> want = oracle.Snapshot();
    if (want.size() != ckpt->entries.size()) {
      return Fail(1, "checkpoint entry count " +
                         std::to_string(ckpt->entries.size()) +
                         " != oracle " + std::to_string(want.size()));
    }
    for (size_t i = 0; i < want.size(); ++i) {
      const CoalescedUpdate& a = ckpt->entries[i];
      const CoalescedUpdate& b = want[i];
      if (a.segment != b.segment || a.slot_tod != b.slot_tod ||
          a.min_speed != b.min_speed || a.max_speed != b.max_speed ||
          a.sum_speed != b.sum_speed || a.count != b.count) {
        return Fail(1, "checkpoint aggregate differs from oracle at entry " +
                           std::to_string(i));
      }
    }
  }

  // 4. End-to-end: an engine recovered from the journal (checkpoint +
  // delta replay) serves the same regions as an oracle engine fed the
  // full regenerated stream 1..last_seq through the live ingest path.
  EngineOptions opt_a;
  opt_a.work_dir = dir + "/check_a";
  opt_a.live_ingestion = true;
  opt_a.live_durability = true;
  opt_a.live_durability_dir = dir;
  auto engine_a = ReachabilityEngine::Build(dataset->network, *dataset->store,
                                            opt_a);
  if (!engine_a.ok()) return Fail(2, engine_a.status().ToString());

  EngineOptions opt_b;
  opt_b.work_dir = dir + "/check_b";
  opt_b.live_ingestion = true;
  auto engine_b = ReachabilityEngine::Build(dataset->network, *dataset->store,
                                            opt_b);
  if (!engine_b.ok()) return Fail(2, engine_b.status().ToString());
  for (uint64_t seq = 1; seq <= recovered->last_seq; ++seq) {
    for (const SpeedObservation& obs :
         crash_stream::GenBatch(seq, num_segments)) {
      if (!(*engine_b)->OfferObservation(obs)) {
        return Fail(2, "oracle engine rejected an acked observation");
      }
    }
    (*engine_b)->ingestor()->Flush();
  }

  for (int64_t tod : {7 * 3600 + 30 * 60, 11 * 3600, 18 * 3600}) {
    for (int64_t duration : {300, 900}) {
      SQuery q{dataset->center, tod, duration, 0.2};
      auto result_a = (*engine_a)->SQueryIndexed(q);
      auto result_b = (*engine_b)->SQueryIndexed(q);
      if (!result_a.ok()) return Fail(2, result_a.status().ToString());
      if (!result_b.ok()) return Fail(2, result_b.status().ToString());
      if (result_a->segments != result_b->segments) {
        return Fail(1, "recovered region differs from oracle at tod=" +
                           std::to_string(tod) + " duration=" +
                           std::to_string(duration) + " (" +
                           std::to_string(result_a->segments.size()) + " vs " +
                           std::to_string(result_b->segments.size()) +
                           " segments)");
      }
    }
  }

  std::fprintf(stderr,
               "crash_harness: consistent (seq %llu, ckpt seq %llu, "
               "%zu acked, %zu tables, torn_tail=%d)\n",
               static_cast<unsigned long long>(recovered->last_seq),
               static_cast<unsigned long long>(recovered->checkpoint_seq),
               acked.size(), recovered->tables_loaded,
               recovered->wal_tail_torn ? 1 : 0);
  return 0;
}

}  // namespace
}  // namespace strr

int main(int argc, char** argv) {
  strr::SetLogLevelFromEnv();
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: crash_harness write <dir> [max_batches] "
                 "[checkpoint_interval] [compaction]\n"
                 "       crash_harness check <dir>\n");
    return 2;
  }
  std::string mode = argv[1];
  std::string dir = argv[2];
  if (mode == "write") {
    uint64_t max_batches =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1000000ULL;
    uint64_t checkpoint_interval =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;
    bool compaction = argc > 5 && std::strtoull(argv[5], nullptr, 10) != 0;
    return strr::RunWriter(dir, max_batches, checkpoint_interval, compaction);
  }
  if (mode == "check") return strr::RunChecker(dir);
  return strr::Fail(2, "unknown mode " + mode);
}
