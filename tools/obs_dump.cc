// Observability export demo: builds the deterministic small dataset,
// enables every obs knob, drives a concurrent query mix through the front
// door (small admission capacity, so queries actually queue), and writes
//
//   <out_dir>/metrics.prom  — Prometheus text exposition of the registry
//   <out_dir>/trace.json    — Chrome trace-event JSON of the flight
//                             recorder (chrome://tracing / Perfetto)
//
// Used manually ("what does a scrape look like?") and by CI as a smoke
// test that both export surfaces stay parseable.
//
// Exit codes: 0 = ok, 1 = export looks wrong, 2 = setup error.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "core/reachability_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace strr {
namespace {

int Fail(int code, const std::string& message) {
  std::fprintf(stderr, "obs_dump: %s\n", message.c_str());
  return code;
}

int64_t HMS(int hour) { return static_cast<int64_t>(hour) * 3600; }

int Run(const std::string& out_dir) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) return Fail(2, "cannot create " + out_dir + ": " + ec.message());

  auto dataset = BuildDataset(TestDatasetOptions());
  if (!dataset.ok()) return Fail(2, dataset.status().ToString());

  EngineOptions opt;
  opt.work_dir = out_dir + "/engine";
  opt.delta_t_seconds = 300;
  opt.cache_pages = 1024;
  // Tiny admission capacity: the concurrent mix below must queue, so the
  // trace shows real admission_wait spans, not zero-length ones.
  opt.max_inflight_queries = 2;
  opt.max_queued_queries = 64;
  // Result cache + live snapshots on, so cache_lookup / cache_insert /
  // snapshot_pin spans appear in the trace alongside the search spans.
  opt.result_cache_entries = 256;
  opt.live_ingestion = true;
  // Every obs knob on. slow_query_ms is set low enough that the heavier
  // m-queries trip the slow-query log on any machine.
  opt.metrics = true;
  opt.trace_sample_n = 1;
  opt.flight_recorder_events = 8192;
  opt.slow_query_ms = 0.05;
  auto engine =
      ReachabilityEngine::Build(dataset->network, *dataset->store, opt);
  if (!engine.ok()) return Fail(2, engine.status().ToString());

  // Concurrent s-queries (4 threads over 2 admission slots) plus m-queries
  // on the main thread: admission waits, expansion rounds, TBS and the
  // result cache all light up. Repeats hit the cache, so cache_lookup
  // spans show both outcomes.
  const XyPoint center = dataset->center;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&engine, center, t] {
      for (int i = 0; i < 8; ++i) {
        SQuery q{center, HMS(9 + (t + i) % 4), 600 + 300 * (i % 3), 0.1};
        auto r = (*engine)->SQueryIndexed(q);
        (void)r;
      }
    });
  }
  Mbr box = (*engine)->network().BoundingBox();
  for (int i = 0; i < 4; ++i) {
    MQuery m;
    m.locations = {center,
                   {box.min_x() + box.Width() * 0.4,
                    box.min_y() + box.Height() * 0.4}};
    m.start_tod = HMS(10 + i % 2);
    m.duration = 900;
    m.prob = 0.1;
    auto r = (*engine)->MQueryIndexed(m);
    if (!r.ok() && !r.status().IsNotFound()) {
      return Fail(2, "m-query failed: " + r.status().ToString());
    }
  }
  for (auto& w : workers) w.join();

  std::string prom;
  (*engine)->DumpMetricsPrometheus(&prom);
  if (prom.find("strr_queries_total") == std::string::npos ||
      prom.find("strr_query_wall_us_bucket") == std::string::npos) {
    return Fail(1, "Prometheus dump is missing core series:\n" + prom);
  }
  const std::string prom_path = out_dir + "/metrics.prom";
  std::FILE* f = std::fopen(prom_path.c_str(), "w");
  if (f == nullptr) return Fail(2, "cannot open " + prom_path);
  std::fwrite(prom.data(), 1, prom.size(), f);
  std::fclose(f);

  const std::string trace_path = out_dir + "/trace.json";
  Status ts = (*engine)->DumpTrace(trace_path);
  if (!ts.ok()) return Fail(2, ts.ToString());

  obs::Tracer& tracer = obs::Tracer::Global();
  std::printf(
      "obs_dump: wrote %s (%zu bytes) and %s\n"
      "  trace events recorded: %llu (dropped %llu), slow queries: %llu\n",
      prom_path.c_str(), prom.size(), trace_path.c_str(),
      static_cast<unsigned long long>(tracer.events_recorded()),
      static_cast<unsigned long long>(tracer.events_dropped()),
      static_cast<unsigned long long>(tracer.slow_queries()));
  if (tracer.events_recorded() == 0) {
    return Fail(1, "flight recorder is empty after a traced workload");
  }
  return 0;
}

}  // namespace
}  // namespace strr

int main(int argc, char** argv) {
  strr::SetLogLevelFromEnv();
  if (argc != 2) {
    std::fprintf(stderr, "usage: obs_dump <out_dir>\n");
    return 2;
  }
  return strr::Run(argv[1]);
}
