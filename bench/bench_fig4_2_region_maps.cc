// Figures 4.2 and 4.4 — Prob-reachable region map visualizations.
//
// Fig 4.2: regions for L = 5 and 10 min at Prob = 20%.
// Fig 4.4: regions for Prob = 20/60/80/100% at L = 10 min.
//
// Writes one GeoJSON FeatureCollection per panel (render with geojson.io
// or any slippy-map tool); segments carry a `prob_reachable` property and
// the start location is a Point feature. Shape checks assert the
// monotone-shrink behaviour visible in the paper's maps, and that the
// highway backbone survives longer than local streets as Prob rises.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench/bench_common.h"
#include "geo/geojson.h"

using namespace strr;        // NOLINT
using namespace strr::bench;  // NOLINT

namespace {

/// Dumps a region to GeoJSON.
Status WriteRegionMap(const std::string& path, const Dataset& dataset,
                      const RegionResult& region, const XyPoint& start) {
  GeoJsonWriter geo;
  const RoadNetwork& net = dataset.network;
  for (SegmentId s : region.segments) {
    std::vector<GeoPoint> coords;
    for (const XyPoint& p : net.segment(s).shape.points()) {
      coords.push_back(dataset.projection.ToGeo(p));
    }
    geo.AddLineString(coords,
                      {{"segment", std::to_string(s)},
                       {"level", GeoJsonWriter::Quoted(RoadLevelName(
                                     net.segment(s).level))}});
  }
  geo.AddPoint(dataset.projection.ToGeo(start),
               {{"role", GeoJsonWriter::Quoted("query-location")}});
  return geo.WriteFile(path);
}

size_t CountLevel(const RoadNetwork& net, const std::vector<SegmentId>& segs,
                  RoadLevel level) {
  size_t n = 0;
  for (SegmentId s : segs) {
    if (net.segment(s).level == level) ++n;
  }
  return n;
}

}  // namespace

int main() {
  auto maybe_stack = LoadBenchStack();
  if (!maybe_stack.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 maybe_stack.status().ToString().c_str());
    return 1;
  }
  BenchStack& stack = **maybe_stack;
  ReachabilityEngine& engine = *stack.engine;
  const RoadNetwork& net = engine.network();
  XyPoint loc = stack.query_location;
  std::string out_dir = "bench_maps";
  std::filesystem::create_directories(out_dir);

  std::printf("Figures 4.2 & 4.4: region maps (GeoJSON under %s/)\n",
              out_dir.c_str());
  PrintRow({"panel", "L(min)", "Prob", "segments", "len_km", "file"});

  // Fig 4.2: L sweep at Prob=20%.
  std::vector<double> lengths_by_L;
  for (int minutes : {5, 10}) {
    SQuery q{loc, HMS(11), minutes * 60, 0.2};
    auto r = engine.SQueryIndexed(q);
    if (!r.ok()) return 1;
    std::string file =
        out_dir + "/fig4_2_L" + std::to_string(minutes) + "min.geojson";
    if (!WriteRegionMap(file, stack.dataset, *r, loc).ok()) return 1;
    PrintRow({"fig4.2", std::to_string(minutes), "20%",
              std::to_string(r->segments.size()),
              Cell(r->total_length_m / 1000.0, 1), file});
    lengths_by_L.push_back(r->total_length_m);
  }

  // Fig 4.4: Prob sweep at L=10.
  std::vector<std::vector<SegmentId>> regions_by_prob;
  for (int prob_pct : {20, 60, 80, 100}) {
    SQuery q{loc, HMS(11), 600, prob_pct / 100.0};
    auto r = engine.SQueryIndexed(q);
    if (!r.ok()) return 1;
    std::string file =
        out_dir + "/fig4_4_prob" + std::to_string(prob_pct) + ".geojson";
    if (!WriteRegionMap(file, stack.dataset, *r, loc).ok()) return 1;
    PrintRow({"fig4.4", "10", std::to_string(prob_pct) + "%",
              std::to_string(r->segments.size()),
              Cell(r->total_length_m / 1000.0, 1), file});
    regions_by_prob.push_back(r->segments);
  }

  bool shrink = true;
  for (size_t i = 1; i < regions_by_prob.size(); ++i) {
    if (regions_by_prob[i].size() > regions_by_prob[i - 1].size()) {
      shrink = false;
    }
  }
  ShapeCheck("fig4.2.region_grows_with_L",
             lengths_by_L.size() == 2 && lengths_by_L[1] >= lengths_by_L[0],
             "L=10 region >= L=5 region");
  ShapeCheck("fig4.4.region_shrinks_with_prob", shrink,
             "region size non-increasing across 20/60/80/100%");

  // Highway backbone persists while local streets drop out (paper: the
  // overall reachable structure formed by highways remains).
  const auto& low = regions_by_prob.front();
  const auto& high = regions_by_prob[regions_by_prob.size() - 2];  // 80%
  double hw_keep =
      low.empty() || CountLevel(net, low, RoadLevel::kHighway) == 0
          ? 1.0
          : static_cast<double>(CountLevel(net, high, RoadLevel::kHighway)) /
                CountLevel(net, low, RoadLevel::kHighway);
  double local_keep =
      low.empty() || CountLevel(net, low, RoadLevel::kLocal) == 0
          ? 1.0
          : static_cast<double>(CountLevel(net, high, RoadLevel::kLocal)) /
                CountLevel(net, low, RoadLevel::kLocal);
  ShapeCheck("fig4.4.highway_backbone_stable", hw_keep >= local_keep,
             "highway kept " + Cell(hw_keep * 100, 0) + "% vs local " +
                 Cell(local_keep * 100, 0) + "% (20% -> 80%)");
  return 0;
}
