// Figure 4.9 — m-query region maps: three locations, individually and
// unioned.
//
// Writes GeoJSON for each single-location region (panels b-d) and the
// 3-location m-query region (panel a). Shape check: the union region
// covers (essentially) each individual region.
#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "geo/geojson.h"

using namespace strr;        // NOLINT
using namespace strr::bench;  // NOLINT

namespace {

Status WriteMap(const std::string& file, const BenchStack& stack,
                const std::vector<SegmentId>& segments,
                const std::vector<XyPoint>& starts) {
  GeoJsonWriter geo;
  for (SegmentId s : segments) {
    std::vector<GeoPoint> coords;
    for (const XyPoint& p :
         stack.dataset.network.segment(s).shape.points()) {
      coords.push_back(stack.dataset.projection.ToGeo(p));
    }
    geo.AddLineString(coords, {{"segment", std::to_string(s)}});
  }
  for (const XyPoint& p : starts) {
    geo.AddPoint(stack.dataset.projection.ToGeo(p),
                 {{"role", GeoJsonWriter::Quoted("query-location")}});
  }
  return geo.WriteFile(file);
}

}  // namespace

int main() {
  auto maybe_stack = LoadBenchStack();
  if (!maybe_stack.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 maybe_stack.status().ToString().c_str());
    return 1;
  }
  BenchStack& stack = **maybe_stack;
  ReachabilityEngine& engine = *stack.engine;
  std::string out_dir = "bench_maps";
  std::filesystem::create_directories(out_dir);

  Mbr box = engine.network().BoundingBox();
  std::vector<XyPoint> locations = {
      stack.query_location,
      {stack.dataset.center.x - box.Width() * 0.2,
       stack.dataset.center.y + box.Height() * 0.15},
      {stack.dataset.center.x + box.Width() * 0.2,
       stack.dataset.center.y - box.Height() * 0.15}};

  std::printf("Figure 4.9: m-query maps (T=10:00, L=15min, Prob=20%%; "
              "GeoJSON under %s/)\n", out_dir.c_str());
  PrintRow({"panel", "segments", "len_km", "file"});

  std::vector<SegmentId> union_of_singles;
  const char* names[3] = {"B_locationA", "C_locationB", "D_locationC"};
  for (int i = 0; i < 3; ++i) {
    SQuery q{locations[i], HMS(10), 900, 0.2};
    auto r = engine.SQueryIndexed(q);
    if (!r.ok()) return 1;
    std::string file = std::string(out_dir) + "/fig4_9" + names[i] +
                       ".geojson";
    if (!WriteMap(file, stack, r->segments, {locations[i]}).ok()) return 1;
    PrintRow({names[i], std::to_string(r->segments.size()),
              Cell(r->total_length_m / 1000.0, 1), file});
    union_of_singles.insert(union_of_singles.end(), r->segments.begin(),
                            r->segments.end());
  }
  std::sort(union_of_singles.begin(), union_of_singles.end());
  union_of_singles.erase(
      std::unique(union_of_singles.begin(), union_of_singles.end()),
      union_of_singles.end());

  MQuery m;
  m.locations = locations;
  m.start_tod = HMS(10);
  m.duration = 900;
  m.prob = 0.2;
  auto mr = engine.MQueryIndexed(m);
  if (!mr.ok()) return 1;
  std::string file = std::string(out_dir) + "/fig4_9A_all_locations.geojson";
  if (!WriteMap(file, stack, mr->segments, locations).ok()) return 1;
  PrintRow({"A_all3", std::to_string(mr->segments.size()),
            Cell(mr->total_length_m / 1000.0, 1), file});

  // Union coverage: the m-query region covers the bulk of what the three
  // individual queries found (overlap-elimination may trim edges).
  std::vector<SegmentId> common;
  std::set_intersection(mr->segments.begin(), mr->segments.end(),
                        union_of_singles.begin(), union_of_singles.end(),
                        std::back_inserter(common));
  double coverage = union_of_singles.empty()
                        ? 1.0
                        : static_cast<double>(common.size()) /
                              union_of_singles.size();
  ShapeCheck("fig4.9.union_of_three", coverage > 0.6,
             "m-query covers " + Cell(coverage * 100, 0) +
                 "% of the single-query union");
  return 0;
}
