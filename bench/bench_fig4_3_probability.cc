// Figure 4.3 — Effect of the query probability Prob on s-query processing.
//
// (a) running time for Prob ∈ {20..100%} with L = 10 and 15 min plus the
//     ES reference; (b) reachable road length vs Prob.
//
// Expected shapes (paper): running time nearly flat in Prob (the bounding
// regions don't depend on it), well below ES; reachable length decreases
// as Prob rises.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace strr;        // NOLINT
using namespace strr::bench;  // NOLINT

int main() {
  auto maybe_stack = LoadBenchStack();
  if (!maybe_stack.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 maybe_stack.status().ToString().c_str());
    return 1;
  }
  BenchStack& stack = **maybe_stack;
  ReachabilityEngine& engine = *stack.engine;
  XyPoint loc = stack.query_location;

  std::printf("Figure 4.3(a,b): effect of probability (T=11:00)\n");
  PrintRow({"Prob", "L10_ms", "L15_ms", "ES10_ms", "len10_km", "len15_km",
            "L10_lists", "ES10_lists"});

  std::vector<double> times10;
  double prev_len10 = 1e18, prev_len15 = 1e18;
  bool length_decreases = true;
  bool below_es = true;

  for (int prob_pct = 20; prob_pct <= 100; prob_pct += 20) {
    double prob = prob_pct / 100.0;
    SQuery q10{loc, HMS(11), 600, prob};
    SQuery q15{loc, HMS(11), 900, prob};
    auto r10 = ColdSQueryIndexed(engine, q10);
    auto r15 = ColdSQueryIndexed(engine, q15);
    auto es10 = ColdSQueryExhaustive(engine, q10);
    if (!r10.ok() || !r15.ok() || !es10.ok()) {
      std::fprintf(stderr, "FATAL: query failed at Prob=%d%%\n", prob_pct);
      return 1;
    }
    PrintRow({std::to_string(prob_pct) + "%", Cell(r10->stats.wall_ms, 2),
              Cell(r15->stats.wall_ms, 2), Cell(es10->stats.wall_ms, 2),
              Cell(r10->total_length_m / 1000.0, 1),
              Cell(r15->total_length_m / 1000.0, 1),
              std::to_string(r10->stats.time_lists_read),
              std::to_string(es10->stats.time_lists_read)});
    times10.push_back(r10->stats.wall_ms);
    if (r10->total_length_m > prev_len10 + 1e-6) length_decreases = false;
    if (r15->total_length_m > prev_len15 + 1e-6) length_decreases = false;
    prev_len10 = r10->total_length_m;
    prev_len15 = r15->total_length_m;
    below_es = below_es &&
               r10->stats.time_lists_read <= es10->stats.time_lists_read;
  }

  double tmin = times10[0], tmax = times10[0];
  for (double t : times10) {
    tmin = std::min(tmin, t);
    tmax = std::max(tmax, t);
  }
  // "Almost unchanged": spread within a generous factor (wall clock noise).
  bool flat = tmax <= 2.0 * tmin + 1.0;

  ShapeCheck("fig4.3.time_flat_in_prob", flat,
             "L=10 times " + Cell(tmin, 2) + ".." + Cell(tmax, 2) + " ms");
  ShapeCheck("fig4.3.length_decreases_with_prob", length_decreases,
             "reachable length non-increasing in Prob");
  ShapeCheck("fig4.3.indexed_below_es", below_es,
             "SQMB+TBS I/O <= ES at every Prob");
  return 0;
}
