// Ablation bench — the design choices DESIGN.md calls out:
//
//  1. Con-Index value: SQMB+TBS vs ES (no Con-Index at all).
//  2. Buffer-pool capacity sweep: query I/O under memory pressure
//     (cache_pages in {0, 256, 2048, 16384}).
//  3. Posting layout: per-(segment,slot) blocks mean one Get per candidate
//     slot; measured as lists-read per verified segment.
//  4. Interior-trust: segments TBS accepted without verification.
#include <cstdio>

#include "bench/bench_common.h"

using namespace strr;        // NOLINT
using namespace strr::bench;  // NOLINT

int main() {
  auto dataset = LoadOrBuildBenchDataset();
  if (!dataset.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  std::printf("Ablation 1+4: Con-Index value and interior trust "
              "(T=11:00, Prob=20%%)\n");
  PrintRow({"L(min)", "tbs_verified", "es_verified", "interior_trusted",
            "tbs_ms", "es_ms"});
  {
    auto engine = BuildBenchEngine(*dataset, 300);
    if (!engine.ok()) return 1;
    XyPoint loc = PickBusyLocation(**engine, *dataset, HMS(11));
    bool always_fewer = true;
    for (int minutes : {5, 10, 20, 30}) {
      SQuery q{loc, HMS(11), minutes * 60, 0.2};
      auto tbs = ColdSQueryIndexed(**engine, q);
      auto es = ColdSQueryExhaustive(**engine, q);
      if (!tbs.ok() || !es.ok()) return 1;
      uint64_t trusted =
          tbs->stats.max_region_segments - tbs->stats.segments_verified;
      PrintRow({std::to_string(minutes),
                std::to_string(tbs->stats.segments_verified),
                std::to_string(es->stats.segments_verified),
                std::to_string(trusted), Cell(tbs->stats.wall_ms, 2),
                Cell(es->stats.wall_ms, 2)});
      always_fewer &=
          tbs->stats.segments_verified < es->stats.segments_verified;
    }
    ShapeCheck("ablation.con_index_saves_verification", always_fewer,
               "TBS verifies fewer segments than ES at every L");
  }

  std::printf("\nAblation 2: buffer-pool capacity sweep "
              "(L=10min, Prob=20%%)\n");
  PrintRow({"cache_pages", "disk_reads", "hits", "misses", "wall_ms"});
  uint64_t reads_small = 0, reads_large = 0;
  for (size_t pages : {size_t{0}, size_t{256}, size_t{2048}, size_t{16384}}) {
    auto engine = BuildBenchEngine(*dataset, 300, pages);
    if (!engine.ok()) return 1;
    XyPoint loc = PickBusyLocation(**engine, *dataset, HMS(11));
    SQuery q{loc, HMS(11), 600, 0.2};
    // Warm con-index, then measure a query against a dropped page cache —
    // within one query, re-reads of hot pages hit (or miss) the pool.
    auto warm = (*engine)->SQueryIndexed(q);
    if (!warm.ok()) return 1;
    (*engine)->ResetIoStats(true);
    auto r = (*engine)->SQueryIndexed(q);
    if (!r.ok()) return 1;
    PrintRow({std::to_string(pages),
              std::to_string(r->stats.io.disk_page_reads),
              std::to_string(r->stats.io.cache_hits),
              std::to_string(r->stats.io.cache_misses),
              Cell(r->stats.wall_ms, 2)});
    if (pages == 0) reads_small = r->stats.io.disk_page_reads;
    if (pages == 16384) reads_large = r->stats.io.disk_page_reads;
  }
  ShapeCheck("ablation.buffer_pool_reduces_disk_reads",
             reads_large <= reads_small,
             std::to_string(reads_large) + " reads at 16k pages vs " +
                 std::to_string(reads_small) + " at 0");

  std::printf("\nAblation 3: posting layout efficiency (L=10min)\n");
  {
    auto engine = BuildBenchEngine(*dataset, 300);
    if (!engine.ok()) return 1;
    XyPoint loc = PickBusyLocation(**engine, *dataset, HMS(11));
    SQuery q{loc, HMS(11), 600, 0.2};
    auto r = ColdSQueryIndexed(**engine, q);
    if (!r.ok()) return 1;
    double lists_per_seg =
        r->stats.segments_verified == 0
            ? 0.0
            : static_cast<double>(r->stats.time_lists_read) /
                  r->stats.segments_verified;
    double slots = 600.0 / 300.0;  // candidate slots per verification
    PrintRow({"lists/verified", Cell(lists_per_seg, 2)});
    PrintRow({"candidate slots", Cell(slots, 0)});
    ShapeCheck("ablation.posting_layout_one_get_per_slot",
               lists_per_seg <= slots + 1.0,
               Cell(lists_per_seg, 2) + " list reads per verified segment");
  }
  return 0;
}
