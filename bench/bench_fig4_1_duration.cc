// Figure 4.1 — Effect of duration L on s-query processing.
//
// (a) running time of ES vs SQMB+TBS (Δt = 5 and 10 min) for
//     L ∈ {5,...,35} min at T = 11:00, Prob = 20%;
// (b) Prob-reachable road length vs L for both Δt values.
//
// Executor edition: every configuration is planned ONCE via QueryPlanner
// (location resolution paid a single time) and executed through
// QueryExecutor — the production plan -> execute path — instead of the
// one-shot facade helpers; cold runs drop the page cache between the
// warm-up and the timed execution exactly as before.
//
// Expected shapes (paper): SQMB+TBS well below ES at every L (50–90%
// less), both growing with L; reachable length grows with L and is nearly
// identical across Δt (Δt is an index knob, not a semantic one).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/query_executor.h"
#include "query/query_plan.h"

using namespace strr;        // NOLINT
using namespace strr::bench;  // NOLINT

namespace {

/// Warm run (materializes lazy Con-Index tables), then a timed run against
/// a dropped page cache — the ColdSQuery* protocol on the executor path.
StatusOr<RegionResult> ColdExecute(ReachabilityEngine& engine,
                                   const QueryPlan& plan) {
  auto warm = engine.executor().Execute(plan);
  if (!warm.ok()) return warm;
  engine.ResetIoStats(/*drop_cache=*/true);
  return engine.executor().Execute(plan);
}

}  // namespace

int main() {
  auto dataset = LoadOrBuildBenchDataset();
  if (!dataset.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto engine5 = BuildBenchEngine(*dataset, 300);
  auto engine10 = BuildBenchEngine(*dataset, 600);
  if (!engine5.ok() || !engine10.ok()) {
    std::fprintf(stderr, "FATAL: engine build failed\n");
    return 1;
  }
  XyPoint loc = PickBusyLocation(**engine5, *dataset, HMS(11));

  std::printf(
      "Figure 4.1(a,b): effect of duration L "
      "(T=11:00, Prob=20%%, location=downtown, plan->execute path)\n");
  PrintRow({"L(min)", "ES_ms", "SQMB5_ms", "SQMB10_ms", "ES_lists",
            "SQMB5_lists", "SQMB10_lists", "len5_km", "len10_km"});

  bool indexed_always_fewer_lists = true;
  bool length_monotone = true;
  bool time_grows = true;
  double prev_len = -1.0;
  double first_sqmb_ms = -1.0, last_sqmb_ms = 0.0;
  double reduction_min = 1.0, reduction_max = 0.0;

  for (int minutes = 5; minutes <= 35; minutes += 5) {
    SQuery q{loc, HMS(11), minutes * 60, 0.2};
    auto es_plan =
        (**engine5).planner().PlanSQuery(q, QueryStrategy::kExhaustive);
    auto s5_plan = (**engine5).planner().PlanSQuery(q);
    auto s10_plan = (**engine10).planner().PlanSQuery(q);
    if (!es_plan.ok() || !s5_plan.ok() || !s10_plan.ok()) {
      std::fprintf(stderr, "FATAL: planning failed at L=%d\n", minutes);
      return 1;
    }
    auto es = ColdExecute(**engine5, *es_plan);
    auto s5 = ColdExecute(**engine5, *s5_plan);
    auto s10 = ColdExecute(**engine10, *s10_plan);
    if (!es.ok() || !s5.ok() || !s10.ok()) {
      std::fprintf(stderr, "FATAL: query failed at L=%d\n", minutes);
      return 1;
    }
    PrintRow({std::to_string(minutes), Cell(es->stats.wall_ms, 2),
              Cell(s5->stats.wall_ms, 2), Cell(s10->stats.wall_ms, 2),
              std::to_string(es->stats.time_lists_read),
              std::to_string(s5->stats.time_lists_read),
              std::to_string(s10->stats.time_lists_read),
              Cell(s5->total_length_m / 1000.0, 1),
              Cell(s10->total_length_m / 1000.0, 1)});

    indexed_always_fewer_lists &=
        s5->stats.time_lists_read < es->stats.time_lists_read;
    if (prev_len >= 0 && s5->total_length_m + 1e-6 < prev_len) {
      length_monotone = false;
    }
    prev_len = s5->total_length_m;
    if (first_sqmb_ms < 0) first_sqmb_ms = s5->stats.wall_ms;
    last_sqmb_ms = s5->stats.wall_ms;
    double reduction =
        1.0 - static_cast<double>(s5->stats.time_lists_read) /
                  static_cast<double>(es->stats.time_lists_read);
    reduction_min = std::min(reduction_min, reduction);
    reduction_max = std::max(reduction_max, reduction);
  }
  time_grows = last_sqmb_ms > first_sqmb_ms;

  ShapeCheck("fig4.1.indexed_below_es", indexed_always_fewer_lists,
             "SQMB+TBS reads fewer time lists than ES at every L");
  // Ordering reproduces; the reduction magnitude is bounded by how much of
  // the bounding cone the mined region fills, which scales with fleet
  // density (ours is ~16x below Shenzhen's; see EXPERIMENTS.md).
  ShapeCheck("fig4.1.reduction_positive",
             reduction_min >= 0.0 && reduction_max > 0.05,
             "I/O reduction " + Cell(reduction_min * 100, 0) + "%-" +
                 Cell(reduction_max * 100, 0) + "% (paper: 50-90%)");
  ShapeCheck("fig4.1.length_grows_with_L", length_monotone,
             "reachable length non-decreasing in L");
  ShapeCheck("fig4.1.time_grows_with_L", time_grows,
             "SQMB+TBS cost grows with L");
  return 0;
}
