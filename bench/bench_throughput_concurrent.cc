// Concurrent query throughput — queries/sec vs executor worker count.
//
// Not a paper figure: the paper evaluates one query at a time, but the
// production north star is a stream of s-/m-queries from many clients.
// This bench plans a fixed mixed workload once, then executes it through
// QueryExecutor::ExecuteBatch with 1/2/4/8 workers, reporting throughput
// and the scaling ratio vs the single-worker run. Results are checked
// bit-identical across worker counts (threading must never change a
// region).
//
// Expected shape: near-linear scaling while workers <= physical cores
// (the workload is dominated by per-query CPU — expansion, TBS, sorted
// intersections — with short critical sections in the buffer pool).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/query_executor.h"
#include "query/query_plan.h"
#include "util/stopwatch.h"

using namespace strr;         // NOLINT
using namespace strr::bench;  // NOLINT

namespace {

/// The fixed workload: a ring of s-queries around downtown at staggered
/// rush-hour start times, plus every 8th query an m-query (3 locations,
/// repeated-s strategy so its legs can exploit intra-query parallelism).
std::vector<QueryPlan> PlanWorkload(const BenchStack& stack, int n) {
  const QueryPlanner& planner = stack.engine->planner();
  Mbr box = stack.dataset.network.BoundingBox();
  std::vector<QueryPlan> plans;
  plans.reserve(n);
  for (int i = 0; plans.size() < static_cast<size_t>(n); ++i) {
    double angle = 2.0 * M_PI * (i % 16) / 16.0;
    double rx = box.Width() * 0.10 * (1 + i % 3);
    double ry = box.Height() * 0.10 * (1 + (i / 3) % 3);
    XyPoint p{stack.dataset.center.x + std::cos(angle) * rx,
              stack.dataset.center.y + std::sin(angle) * ry};
    int64_t tod = HMS(9 + (i % 4), 15 * (i % 4));
    if (i % 8 == 7) {
      MQuery m;
      m.locations = {stack.query_location, p,
                     {stack.dataset.center.x - std::cos(angle) * rx,
                      stack.dataset.center.y - std::sin(angle) * ry}};
      m.start_tod = tod;
      m.duration = 600;
      m.prob = 0.2;
      auto plan = planner.PlanMQuery(m, QueryStrategy::kRepeatedS);
      if (plan.ok()) plans.push_back(std::move(plan).value());
      continue;
    }
    SQuery q{p, tod, 600 + 300 * (i % 3), 0.1 + 0.1 * (i % 3)};
    auto plan = planner.PlanSQuery(q);
    if (plan.ok()) plans.push_back(std::move(plan).value());
  }
  return plans;
}

}  // namespace

int main() {
  auto maybe_stack = LoadBenchStack();
  if (!maybe_stack.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 maybe_stack.status().ToString().c_str());
    return 1;
  }
  BenchStack& stack = **maybe_stack;

  const int kQueries = 64;
  std::vector<QueryPlan> plans = PlanWorkload(stack, kQueries);
  std::fprintf(stderr, "# workload: %zu plans\n", plans.size());

  // Warm-up on one worker: materializes the lazy Con-Index tables and the
  // page cache so every measured run sees the same warm engine, and
  // provides the reference regions for the identity check.
  auto reference_exec = stack.engine->MakeExecutor({.num_threads = 1});
  auto reference = reference_exec->ExecuteBatch(plans);
  for (size_t i = 0; i < reference.size(); ++i) {
    if (!reference[i].ok()) {
      std::fprintf(stderr, "FATAL: plan %zu: %s\n", i,
                   reference[i].status().ToString().c_str());
      return 1;
    }
  }

  std::printf("Concurrent throughput: %zu mixed s-/m-queries per batch\n",
              plans.size());
  PrintRow({"workers", "batch_ms", "qps", "speedup", "identical"});
  double qps1 = 0.0, qps4 = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    auto executor = stack.engine->MakeExecutor({.num_threads = workers});
    // Median of three timed runs.
    std::vector<double> times;
    bool identical = true;
    for (int run = 0; run < 3; ++run) {
      Stopwatch watch;
      auto results = executor->ExecuteBatch(plans);
      times.push_back(watch.ElapsedMillis());
      for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok() ||
            results[i]->segments != reference[i]->segments) {
          identical = false;
        }
      }
    }
    std::sort(times.begin(), times.end());
    double batch_ms = times[1];
    double qps = plans.size() / (batch_ms / 1000.0);
    if (workers == 1) qps1 = qps;
    if (workers == 4) qps4 = qps;
    PrintRow({std::to_string(workers), Cell(batch_ms, 1), Cell(qps, 1),
              Cell(qps1 > 0 ? qps / qps1 : 0.0, 2),
              identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr, "FATAL: results diverged at %d workers\n",
                   workers);
      return 1;
    }
  }

  ShapeCheck("throughput_scales_with_workers", qps4 >= 2.0 * qps1,
             "4-worker qps " + Cell(qps4, 1) + " vs 1-worker " +
                 Cell(qps1, 1) + " (>=2x expected on >=4 cores; this host has " +
                 std::to_string(std::thread::hardware_concurrency()) +
                 " hardware threads)");
  return 0;
}
